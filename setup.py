from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="DeltaZip reproduction (EuroSys '25)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
