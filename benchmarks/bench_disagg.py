"""Disaggregated prefill/decode serving vs colocated and sharded baselines.

Sweeps two traffic regimes — **prefill-heavy** (long prompts, short
answers: summarization/RAG-style) and **decode-heavy** (short prompts,
long generations) — across three deployments of the *same four GPUs*:

* ``colocated``  — four independent DeltaZip replicas behind a
  least-outstanding cluster gateway (continuous batching mixes prefill
  and decode in every iteration);
* ``disagg``     — a 2-prefill + 2-decode disaggregated engine paying
  the priced KV transfer between pools;
* ``sharded``    — one tp=4 tensor-parallel group spanning the four
  nodes, paying per-layer cross-node all-reduces.

Each cell runs with the radix prefix cache off and on (session traffic
re-sends its accumulated context every turn, so caching shrinks both
re-prefill work and the KV bytes that cross the disaggregation link).

Asserted shape:

* in the prefill-heavy regime, ``disagg`` improves TTFT p50 over
  ``colocated`` at equal GPU count — dedicated prefill workers never
  stall a prompt behind another request's decode iterations;
* with caching on, the disaggregated engine moves strictly fewer KV
  bytes than with caching off (the transfer prices only the uncached
  suffix);
* pre-existing engines are untouched by the subsystem: a fixed-seed
  ``deltazip`` and ``vllm-scb`` replay must still produce the archived
  record digests recorded when this benchmark was introduced.

Run: ``PYTHONPATH=src python benchmarks/bench_disagg.py [--quick]``
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (ClusterGateway, EngineConfig, LLAMA_7B,
                           ModelManager, SchedulerConfig, ServingGateway,
                           create_engine)
from repro.workload import LengthSampler, session_trace, synthetic_trace

N_MODELS = 4
N_GPUS = 4               # every system gets exactly this many
TRACE_SEED = 31
MEAN_TURNS = 3.0
SHARED_PREFIX_TOKENS = 128

#: (label, conversation rate, length sampler) — the traffic shapes.
#: prefill-heavy: long prompts (median ~550 tokens, ~2.7x the output)
#: at a rate that keeps colocated batch slots pinned by in-flight
#: decodes, which is exactly the contention disaggregation removes;
#: decode-heavy: short prompts, long generations, lighter arrival rate.
REGIMES = [
    ("prefill-heavy", 8.0, LengthSampler(prompt_log_mean=6.3,
                                         prompt_log_sigma=0.4,
                                         output_mean=200.0,
                                         max_prompt=2048,
                                         max_output=512)),
    ("decode-heavy", 3.0, LengthSampler(prompt_log_mean=3.4,
                                        prompt_log_sigma=0.6,
                                        output_mean=256.0, max_prompt=256,
                                        max_output=512)),
]

SYSTEMS = ("colocated", "disagg", "sharded")

#: record digests of fixed-seed replays on the engines that predate the
#: disaggregation subsystem — recorded when this benchmark was
#: introduced; a change means the new subsystem perturbed old physics
ARCHIVED_DIGESTS = {
    "deltazip":
        "ade37357b65b30e9bf4eef8a59f3ea54e950b29617240885fb9fb33f501c0f07",
    "vllm-scb":
        "1a785c995a98c02f4ac9198b0dbf9435761650fa2279adccddffe90481273a21",
}


def make_manager() -> ModelManager:
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def scheduler() -> SchedulerConfig:
    return SchedulerConfig(max_batch_requests=8, max_concurrent_deltas=4)


def engine_cfg(prefix_cache: bool) -> EngineConfig:
    return EngineConfig(tp_degree=1, prefix_cache=prefix_cache)


def build_system(name: str, prefix_cache: bool):
    """One deployment of N_GPUS single-GPU a800 nodes."""
    mgr = make_manager()
    if name == "colocated":
        def factory(node):
            return create_engine(
                "deltazip", mgr,
                node or GPUNode(node_from_name("a800", 1)),
                scheduler_config=scheduler(),
                engine_config=engine_cfg(prefix_cache))
        return ClusterGateway(engine_factory=factory,
                              cluster=Cluster.from_name("a800", N_GPUS, 1),
                              n_replicas=N_GPUS,
                              balancer="least-outstanding")
    if name == "disagg":
        engine = create_engine(
            "disagg", mgr, GPUNode(node_from_name("a800", 1)),
            scheduler_config=scheduler(),
            engine_config=engine_cfg(prefix_cache),
            prefill_workers=N_GPUS // 2, decode_workers=N_GPUS // 2)
        return ServingGateway(engine)
    if name == "sharded":
        engine = create_engine(
            "sharded", mgr, GPUNode(node_from_name("a800", 1)),
            scheduler_config=scheduler(),
            engine_config=engine_cfg(prefix_cache), tp_degree=N_GPUS)
        return ServingGateway(engine)
    raise ValueError(name)


def ttft_decomposition(records):
    """Mean (prefill, transfer, decode) seconds over finished requests."""
    recs = [r for r in records
            if r.status == "finished" and r.first_token_s is not None]
    if not recs:
        return 0.0, 0.0, 0.0
    n = len(recs)
    xfer = sum(r.transfer_s for r in recs) / n
    prefill = sum(max(0.0, (r.first_token_s - r.arrival_s)
                      - r.queue_wait_s - r.transfer_s) for r in recs) / n
    decode = sum(r.finish_s - r.first_token_s for r in recs) / n
    return prefill, xfer, decode


def run_cell(system: str, trace, prefix_cache: bool):
    gateway = build_system(system, prefix_cache)
    start = time.perf_counter()
    result = gateway.replay(trace)
    wall_s = time.perf_counter() - start
    stats = result.stats
    prefill, xfer, decode = ttft_decomposition(result.records)
    return {
        "system": system,
        "prefix_cache": prefix_cache,
        "n_requests": result.n_requests,
        "n_finished": result.n_finished,
        "ttft_p50_s": result.percentile_ttft_s(50),
        "ttft_p99_s": result.percentile_ttft_s(99),
        "e2e_p50_s": result.percentile_e2e_s(50),
        "goodput_rps": result.goodput_rps(),
        "mean_prefill_s": prefill,
        "mean_transfer_s": xfer,
        "mean_decode_s": decode,
        "kv_transfers": stats.kv_transfers if stats else 0,
        "kv_transfer_bytes": stats.kv_transfer_bytes if stats else 0,
        "prefix_hit_rate": stats.prefix_hit_rate if stats else 0.0,
        "wall_s": wall_s,
    }


def record_digest(records) -> str:
    """Stable content hash of a replay's full record stream."""
    h = hashlib.sha256()
    for r in records:
        h.update(repr((r.request_id, r.model_id, r.arrival_s, r.finish_s,
                       r.first_token_s, r.queue_wait_s, r.loading_s,
                       r.inference_s, r.status)).encode())
    return h.hexdigest()


def legacy_digest(engine_name: str) -> str:
    """Fixed-seed replay of a pre-disaggregation engine (disagg off)."""
    trace = synthetic_trace(N_MODELS, rate=2.0, duration_s=60.0, seed=7)
    engine = create_engine(
        engine_name, make_manager(), GPUNode(node_from_name("a800", 1)),
        scheduler_config=scheduler(), engine_config=engine_cfg(False))
    return record_digest(ServingGateway(engine).replay(trace).records)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter trace for CI smoke runs")
    parser.add_argument("--out", default="BENCH_disagg.json",
                        help="where to write the results JSON")
    parser.add_argument("--archive", action="store_true",
                        help="print legacy digests instead of checking")
    args = parser.parse_args(argv)

    if args.archive:
        for name in ARCHIVED_DIGESTS:
            print(f'    "{name}": "{legacy_digest(name)}",')
        return 0

    # pre-existing engines replay bit-identically with disagg off
    legacy_ok = True
    for name, want in ARCHIVED_DIGESTS.items():
        got = legacy_digest(name)
        if want is not None and got != want:
            print(f"FAIL: {name} records diverged from the archived "
                  f"digest ({got} != {want})")
            legacy_ok = False
    if not legacy_ok:
        return 1

    duration_s = 60.0 if args.quick else 240.0
    cells = []
    print(f"{'regime':>14s} {'system':>10s} {'cache':>5s} {'p50_ttft':>9s} "
          f"{'p99_ttft':>9s} {'p50_e2e':>8s} {'goodput':>8s} {'xfer':>7s} "
          f"{'hit':>5s}")
    for label, conv_rate, sampler in REGIMES:
        trace = session_trace(N_MODELS, conv_rate, duration_s,
                              seed=TRACE_SEED, mean_turns=MEAN_TURNS,
                              shared_prefix_tokens=SHARED_PREFIX_TOKENS,
                              length_sampler=sampler)
        for system in SYSTEMS:
            for prefix_cache in (False, True):
                cell = run_cell(system, trace, prefix_cache)
                cell["regime"] = label
                cells.append(cell)
                print(f"{label:>14s} {system:>10s} "
                      f"{'on' if prefix_cache else 'off':>5s} "
                      f"{cell['ttft_p50_s']:9.4f} "
                      f"{cell['ttft_p99_s']:9.4f} "
                      f"{cell['e2e_p50_s']:8.3f} "
                      f"{cell['goodput_rps']:8.3f} "
                      f"{cell['mean_transfer_s']:7.4f} "
                      f"{cell['prefix_hit_rate']:5.2f}")

    def pick(regime, system, cache):
        return next(c for c in cells if c["regime"] == regime
                    and c["system"] == system
                    and c["prefix_cache"] is cache)

    # 1. disaggregation wins TTFT where it should: prefill-heavy traffic
    #    at equal GPU count
    disagg = pick("prefill-heavy", "disagg", False)
    coloc = pick("prefill-heavy", "colocated", False)
    ttft_win = coloc["ttft_p50_s"] / max(disagg["ttft_p50_s"], 1e-9)
    if disagg["ttft_p50_s"] >= coloc["ttft_p50_s"]:
        print(f"FAIL: disagg TTFT p50 {disagg['ttft_p50_s']:.4f}s did not "
              f"beat colocated {coloc['ttft_p50_s']:.4f}s (prefill-heavy, "
              f"{N_GPUS} GPUs each)")
        return 1

    # 2. the prefix cache shrinks what crosses the disaggregation wire
    for regime, _, _ in REGIMES:
        on = pick(regime, "disagg", True)
        off = pick(regime, "disagg", False)
        if not on["kv_transfer_bytes"] < off["kv_transfer_bytes"]:
            print(f"FAIL: prefix cache did not reduce KV transfer bytes "
                  f"({regime}: {on['kv_transfer_bytes']} >= "
                  f"{off['kv_transfer_bytes']})")
            return 1

    payload = {
        "benchmark": "disagg",
        "quick": args.quick,
        "n_gpus": N_GPUS,
        "conv_rates_per_s": {label: rate for label, rate, _ in REGIMES},
        "duration_s": duration_s,
        "cells": cells,
        "prefill_heavy_ttft_p50_speedup": ttft_win,
        "legacy_digests_checked": {k: v is not None
                                   for k, v in ARCHIVED_DIGESTS.items()},
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
    print(f"\nwrote {args.out}; prefill-heavy TTFT p50 improved "
          f"{ttft_win:.2f}x over colocated on the same {N_GPUS} GPUs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
