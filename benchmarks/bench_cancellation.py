"""Cancellation economics: goodput and wasted tokens vs client patience.

Impatient clients abandon requests that take too long; PR 5's abort path
frees the scheduler slot mid-batch and charges only the tokens actually
generated.  This driver overloads one replica and sweeps client patience
(mean seconds before abandonment) from infinite down to aggressive,
measuring per cell:

* **goodput** — *finished* requests per second (abandoned work excluded);
* **wasted-token fraction** — output tokens generated for requests that
  were then abandoned (capacity burned to no benefit);
* **finished p50 e2e** — latency of the work that did complete.

Expected shape: as patience falls, more requests cancel (waste rises),
but the survivors finish faster because aborts keep releasing batch
slots — the mean finished latency under impatience must beat the
no-cancellation baseline under the same overload.  The driver asserts
both that mechanism (abort frees slots → faster survivors) and the
record-identity of a zero-cancel run against a plain replay.

Run: ``PYTHONPATH=src python benchmarks/bench_cancellation.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_7B, ModelManager,
                           SchedulerConfig, ServingGateway, create_engine)
from repro.workload import (PatienceModel, impatient_cancel_schedule,
                            synthetic_trace)

N_MODELS = 4
TRACE_SEED = 11
SCHEDULE_SEED = 5
#: offered load far beyond one small replica's capacity, so queues build
RATE = 3.0
#: finished-latency improvement floor for the headline impatient cell
MIN_LATENCY_IMPROVEMENT = 1.05


def make_manager() -> ModelManager:
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def make_gateway(mgr: ModelManager) -> ServingGateway:
    engine = create_engine(
        "deltazip", mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(tp_degree=1))
    return ServingGateway(engine)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s, rec.status)


def run_cell(mgr, trace, patience_s):
    gateway = make_gateway(mgr)
    schedule = None
    if patience_s is not None:
        schedule = impatient_cancel_schedule(
            trace, PatienceModel(mean_s=patience_s), seed=SCHEDULE_SEED)
    start = time.perf_counter()
    result = gateway.replay(trace, cancels=schedule)
    wall_s = time.perf_counter() - start
    finished = result.finished_only()
    return {
        "patience_s": patience_s,
        "n_requests": result.n_requests,
        "n_finished": result.n_finished,
        "n_cancelled": result.status_counts().get("cancelled", 0),
        "goodput_rps": result.goodput_rps(),
        "wasted_token_fraction": result.wasted_token_fraction(),
        "finished_p50_e2e_s": finished.percentile_e2e_s(50),
        "finished_mean_e2e_s": finished.mean_e2e_latency_s(),
        "makespan_s": result.makespan_s,
        "wall_s": wall_s,
    }, result


def assert_abort_frees_batch_slots(mgr) -> None:
    """Mechanism check: cancelling running requests admits waiting ones
    before the cancelled work would have finished."""
    engine = create_engine(
        "deltazip", mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=2,
                                         max_concurrent_deltas=2),
        engine_config=EngineConfig(tp_degree=1))
    gateway = ServingGateway(engine)
    hog_a = gateway.submit("variant-00", 32, 400)
    hog_b = gateway.submit("variant-00", 32, 400)
    waiter = gateway.submit("variant-00", 32, 4)
    for _ in range(4):
        gateway.step()
    hog_a.cancel()
    gateway.run_until_drained()
    assert hog_a.record().status == "cancelled"
    assert waiter.record().finished
    assert waiter.record().finish_s < hog_b.record().finish_s, \
        "the freed slot must serve waiting work before the survivor ends"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter trace for CI smoke runs")
    parser.add_argument("--out", default="BENCH_cancellation.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)

    duration_s = 60.0 if args.quick else 180.0
    patience_grid = [None, 60.0, 20.0, 5.0]

    mgr = make_manager()
    assert_abort_frees_batch_slots(mgr)
    trace = synthetic_trace(N_MODELS, rate=RATE, duration_s=duration_s,
                            seed=TRACE_SEED)

    # zero-cancel identity: replay with an empty schedule must be
    # bit-identical to a plain replay (the PR's compatibility contract)
    plain = make_gateway(mgr).replay(trace)
    empty = make_gateway(mgr).replay(trace, cancels=[])
    identical = [record_key(r) for r in plain.records] == \
        [record_key(r) for r in empty.records]
    if not identical:
        print("FAIL: empty cancel schedule changed the replay records")
        return 1

    cells = []
    print(f"{'patience':>8s} {'done':>5s} {'cancel':>6s} {'goodput':>8s} "
          f"{'waste':>6s} {'p50_e2e':>8s} {'mean_e2e':>9s}")
    for patience in patience_grid:
        cell, _ = run_cell(mgr, trace, patience)
        cells.append(cell)
        label = "inf" if patience is None else f"{patience:.0f}s"
        print(f"{label:>8s} {cell['n_finished']:5d} "
              f"{cell['n_cancelled']:6d} {cell['goodput_rps']:8.3f} "
              f"{cell['wasted_token_fraction']:6.1%} "
              f"{cell['finished_p50_e2e_s']:8.2f} "
              f"{cell['finished_mean_e2e_s']:9.2f}")

    baseline, impatient = cells[0], cells[-1]
    improvement = baseline["finished_mean_e2e_s"] / \
        max(impatient["finished_mean_e2e_s"], 1e-9)
    waste_monotone = all(
        a["wasted_token_fraction"] <= b["wasted_token_fraction"] + 1e-9
        for a, b in zip(cells, cells[1:]))

    payload = {
        "benchmark": "cancellation",
        "quick": args.quick,
        "rate_rps": RATE,
        "duration_s": duration_s,
        "cells": cells,
        "zero_cancel_records_identical": identical,
        "finished_latency_improvement": improvement,
        "min_required_improvement": MIN_LATENCY_IMPROVEMENT,
        "waste_monotone_in_impatience": waste_monotone,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
    print(f"\nwrote {args.out}; impatient clients cut finished mean e2e "
          f"{improvement:.2f}x (floor {MIN_LATENCY_IMPROVEMENT}x)")

    if impatient["n_cancelled"] == 0:
        print("FAIL: the impatient cell cancelled nothing")
        return 1
    if not waste_monotone:
        print("FAIL: wasted-token fraction should grow as patience falls")
        return 1
    if improvement < MIN_LATENCY_IMPROVEMENT:
        print("FAIL: aborts must speed up the surviving requests "
              "(freed batch slots) under overload")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
