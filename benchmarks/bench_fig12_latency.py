"""Fig 12: average E2E latency and TTFT across the Fig 11 grid.

Paper reports 1.6x-16x E2E improvement, with an even larger TTFT gap
(queuing dominates the baseline's TTFT).
"""

from conftest import run_once, save_table
from repro.workload import trace_from_distribution
from serving_common import (N_VARIANTS, TRACE_SECONDS, a800_node,
                            delta_manager, deltazip_engine, full_manager,
                            scb_engine)

GRID = [("azure", 0.5), ("azure", 1.0), ("uniform", 0.5), ("uniform", 1.0),
        ("zipf:1.5", 0.5), ("zipf:1.5", 1.0)]


def _experiment():
    node = a800_node(4)
    rows = []
    for dist, rate in GRID:
        trace = trace_from_distribution(dist, N_VARIANTS, rate=rate,
                                        duration_s=TRACE_SECONDS, seed=1)
        scb = scb_engine(full_manager(), node).run(trace)
        dz8 = deltazip_engine(delta_manager(), node, n_deltas=8).run(trace)
        dz12 = deltazip_engine(delta_manager(), node, n_deltas=12).run(trace)
        rows.append({
            "dist": dist, "rate": rate,
            "scb_e2e": scb.mean_e2e_latency_s(),
            "dz8_e2e": dz8.mean_e2e_latency_s(),
            "dz12_e2e": dz12.mean_e2e_latency_s(),
            "scb_ttft": scb.mean_ttft_s(),
            "dz8_ttft": dz8.mean_ttft_s(),
            "dz12_ttft": dz12.mean_ttft_s(),
        })
    return rows


def test_fig12_latency(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'dist':9s} {'rate':>5s} | {'scb_e2e':>8s} {'dz8_e2e':>8s} "
             f"{'dz12_e2e':>8s} | {'scb_ttft':>9s} {'dz8_ttft':>9s} "
             f"{'dz12_ttft':>9s}  (s)"]
    for r in rows:
        lines.append(
            f"{r['dist']:9s} {r['rate']:5.1f} | {r['scb_e2e']:8.1f} "
            f"{r['dz8_e2e']:8.2f} {r['dz12_e2e']:8.2f} | "
            f"{r['scb_ttft']:9.1f} {r['dz8_ttft']:9.2f} "
            f"{r['dz12_ttft']:9.2f}")
    e2e_gain = [r["scb_e2e"] / max(r["dz8_e2e"], 1e-9) for r in rows]
    ttft_gain = [r["scb_ttft"] / max(r["dz8_ttft"], 1e-9) for r in rows]
    lines.append(f"\nE2E improvement: {min(e2e_gain):.1f}x-"
                 f"{max(e2e_gain):.1f}x (paper: 1.6x-16x)")
    lines.append(f"TTFT improvement: {min(ttft_gain):.1f}x-"
                 f"{max(ttft_gain):.1f}x (paper: larger than E2E)")
    save_table("fig12_latency", lines)

    assert all(g > 1.6 for g in e2e_gain)
    # TTFT improves even more than E2E on average
    assert sum(ttft_gain) / len(ttft_gain) > sum(e2e_gain) / len(e2e_gain)
