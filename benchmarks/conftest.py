"""Shared benchmark fixtures and table output helpers.

Every benchmark regenerates one table or figure from the paper.  Measured
rows are printed and also written to ``benchmarks/results/<name>.txt`` so a
full ``pytest benchmarks/ --benchmark-only`` run leaves the reproduced
artifacts on disk next to the timing table.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import numpy as np
import pytest

from repro.evaluation import make_task, pretrain_base_model, run_fmt, run_lora
from repro.nn import TransformerConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# quality-experiment scale knobs (kept small enough for CPU benching)
QUALITY_TASKS = ("review", "yesno", "math")
N_TRAIN = 512
N_EVAL = 60
FMT_EPOCHS = 15
LORA_EPOCHS = 15


def save_table(name: str, lines: Sequence[str]) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as f:
        f.write(text)
    print(f"\n[{name}]")
    print(text)
    return path


@pytest.fixture(scope="session")
def quality_base():
    """The shared pre-trained base model for all quality experiments."""
    config = TransformerConfig.small(vocab_size=128, max_seq=64)
    return pretrain_base_model(config, n_sequences=256, epochs=6, seed=0)


@pytest.fixture(scope="session")
def quality_checkpoints(quality_base):
    """FMT and LoRA checkpoints per task (trained once per session)."""
    out: Dict[str, Dict[str, object]] = {}
    for name in QUALITY_TASKS:
        task = make_task(name)
        fmt = run_fmt(quality_base, task, n_train=N_TRAIN,
                      epochs=FMT_EPOCHS, lr=1e-3, seed=0)
        lora = run_lora(quality_base, task, rank=2, n_train=N_TRAIN,
                        epochs=LORA_EPOCHS, lr=5e-3, seed=0)
        out[name] = {"task": task, "fmt": fmt, "lora": lora}
    return out


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
