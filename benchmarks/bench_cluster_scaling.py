"""Cluster scaling: replica sweep, balancer policies, and autoscaler ramps.

Beyond the paper: §5.1 fixes one engine per base model, but the ROADMAP's
production north-star needs horizontal scale *within* a base.  This driver
sweeps replica count x load-balancing policy over a bursty trace (the
regime where join-shortest-queue should beat blind rotation), then drives
a queue-watermark autoscaler with a triangular arrival-rate ramp and
records how the replica count tracks offered load.
"""

import numpy as np

from conftest import run_once, save_table
from repro.serving import Autoscaler, summarize
from repro.workload import ramp_trace, trace_from_distribution
from serving_common import (N_VARIANTS, TRACE_SECONDS, delta_manager,
                            deltazip_cluster)

REPLICA_COUNTS = (1, 2, 4)
BALANCER_POLICIES = ("round-robin", "least-outstanding", "lineage")
BURSTY_RATE = 2.0
RAMP_PEAK_RATE = 3.0


def _experiment():
    trace = trace_from_distribution("azure", N_VARIANTS, rate=BURSTY_RATE,
                                    duration_s=TRACE_SECONDS, seed=1)
    mgr = delta_manager()
    sweep = {}
    for policy in BALANCER_POLICIES:
        for n in REPLICA_COUNTS:
            gateway = deltazip_cluster(n_replicas=n, mgr=mgr,
                                       balancer=policy)
            res = gateway.replay(trace)
            s = summarize(res)
            sweep[(policy, n)] = {
                "makespan_s": s["makespan_s"],
                "thr_rps": res.throughput_within(trace.duration_s),
                "p50_e2e_s": s["p50_e2e_s"],
                "p99_e2e_s": s["p99_e2e_s"],
                "p99_ttft_s": s["p99_ttft_s"],
            }

    ramp = ramp_trace(N_VARIANTS, peak_rate=RAMP_PEAK_RATE,
                      duration_s=2 * TRACE_SECONDS, base_rate=0.2,
                      cv=2.0, seed=2)
    autoscaler = Autoscaler(min_replicas=1, max_replicas=4,
                            high_queue_per_replica=6.0,
                            low_queue_per_replica=1.0,
                            check_interval_s=5.0,
                            scale_up_cooldown_s=10.0,
                            scale_down_cooldown_s=30.0)
    gateway = deltazip_cluster(n_replicas=1, mgr=mgr, autoscaler=autoscaler)
    auto_res = gateway.replay(ramp)
    samples = [(s.clock_s, s.n_replicas, s.queue_per_replica)
               for s in autoscaler.history]
    return {"sweep": sweep, "auto_summary": summarize(auto_res),
            "auto_samples": samples, "n_ramp_requests": len(ramp)}


def test_cluster_scaling(benchmark):
    out = run_once(benchmark, _experiment)
    sweep = out["sweep"]

    lines = [f"{'balancer':18s} {'replicas':>8s} {'thr(rps)':>9s} "
             f"{'makespan':>9s} {'p50_e2e':>8s} {'p99_e2e':>8s} "
             f"{'p99_ttft':>9s}"]
    for (policy, n), row in sweep.items():
        lines.append(f"{policy:18s} {n:8d} {row['thr_rps']:9.3f} "
                     f"{row['makespan_s']:9.1f} {row['p50_e2e_s']:8.2f} "
                     f"{row['p99_e2e_s']:8.2f} {row['p99_ttft_s']:9.2f}")

    counts = [n for _, n, _ in out["auto_samples"]]
    lines.append("")
    lines.append(f"autoscaler ramp: {out['n_ramp_requests']} requests, "
                 f"replicas min={min(counts)} max={max(counts)} "
                 f"final={counts[-1]}")
    step = max(1, len(out["auto_samples"]) // 20)
    for clock, n, queue in out["auto_samples"][::step]:
        lines.append(f"  t={clock:7.1f}s replicas={n} queue/rep={queue:6.2f}")
    save_table("cluster_scaling", lines)

    # more replicas must cut tail latency under load, for every policy
    for policy in BALANCER_POLICIES:
        assert sweep[(policy, 4)]["p99_e2e_s"] < \
            sweep[(policy, 1)]["p99_e2e_s"]
        assert sweep[(policy, 4)]["makespan_s"] <= \
            sweep[(policy, 1)]["makespan_s"] * 1.001
    # lineage affinity's residency win shows up in TTFT (no delta swap)
    assert sweep[("lineage", 4)]["p99_ttft_s"] < \
        sweep[("round-robin", 4)]["p99_ttft_s"]
    # the controller followed the ramp up and back down
    assert max(counts) > 1
    assert counts[-1] < max(counts)
