"""Ablation (paper §8 future work): preemption policy variants.

The paper ships parent-finish preemption with swap-and-resume and names two
refinements as future work: (1) sparing requests that are about to finish
(output-length prediction), (2) recompute-instead-of-swap resume.  All are
implemented here; this bench compares the four policies on a
starvation-prone trace.
"""

from conftest import run_once, save_table
from repro.serving import EngineConfig, LLAMA_7B, SchedulerConfig
from repro.serving.engine import DeltaZipEngine
from repro.workload import trace_from_distribution
from serving_common import DELTA_RATIO_7B, delta_manager, rtx3090_node

POLICIES = [
    ("no_preemption", dict(preemption=False), {}),
    ("swap_resume", dict(preemption=True), {}),
    ("recompute_resume", dict(preemption=True),
     dict(preempt_mode="recompute")),
    ("length_aware", dict(preemption=True, preempt_min_remaining=16), {}),
]


def _experiment():
    trace = trace_from_distribution("zipf:2.0", 12, rate=2.5,
                                    duration_s=120.0, seed=11)
    node = rtx3090_node(1)
    out = {}
    for label, sched_kw, engine_kw in POLICIES:
        mgr = delta_manager(LLAMA_7B, n_models=12, ratio=DELTA_RATIO_7B)
        engine = DeltaZipEngine(
            mgr, node,
            SchedulerConfig(max_batch_requests=24, max_concurrent_deltas=3,
                            **sched_kw),
            EngineConfig(tp_degree=1, **engine_kw))
        out[label] = engine.run(trace)
    return out


def test_ablation_preemption_modes(benchmark):
    out = run_once(benchmark, _experiment)
    lines = [f"{'policy':18s} {'mean_e2e':>9s} {'p90_e2e':>9s} "
             f"{'mean_ttft':>10s} {'p90_ttft':>9s}  (s)"]
    for label, res in out.items():
        lines.append(f"{label:18s} {res.mean_e2e_latency_s():9.2f} "
                     f"{res.percentile_e2e_s(90):9.2f} "
                     f"{res.mean_ttft_s():10.3f} "
                     f"{res.percentile_ttft_s(90):9.2f}")
    save_table("ablation_preemption_modes", lines)

    # every policy completes the trace
    n = {label: res.n_requests for label, res in out.items()}
    assert len(set(n.values())) == 1
    # preemption variants do not degrade the TTFT tail vs no preemption
    base_p90 = out["no_preemption"].percentile_ttft_s(90)
    for label in ("swap_resume", "length_aware"):
        assert out[label].percentile_ttft_s(90) <= base_p90 * 1.05
