"""Table 2: model quality of FMT vs LoRA vs ΔCompress.

Paper's point: where LoRA cannot match FMT (hard tasks), ΔCompress keeps
FMT-level accuracy while making the checkpoints cheap to serve.
"""

from conftest import N_EVAL, QUALITY_TASKS, run_once, save_table
from repro.compression import CompressionConfig, DeltaCompressor
from repro.evaluation import evaluate_task
from repro.nn import TransformerModel


def _experiment(quality_base, quality_checkpoints):
    base_state = quality_base.state_dict()
    rows = []
    for task_name in QUALITY_TASKS:
        entry = quality_checkpoints[task_name]
        task, fmt, lora = entry["task"], entry["fmt"], entry["lora"]
        artifact = DeltaCompressor(CompressionConfig.deltazip_4bit()).compress(
            fmt.model, base_state, fmt.calibration_tokens)
        compressed = TransformerModel(quality_base.config, seed=0)
        compressed.load_state_dict(artifact.to_state_dict(base_state))
        rows.append({
            "task": task_name,
            "hard": task.hard,
            "fmt": evaluate_task(fmt.model, task, N_EVAL).percent,
            "lora": evaluate_task(lora.model, task, N_EVAL).percent,
            "dcompress": evaluate_task(compressed, task, N_EVAL).percent,
        })
    return rows


def test_table2_fmt_lora(benchmark, quality_base, quality_checkpoints):
    rows = run_once(benchmark, _experiment, quality_base,
                    quality_checkpoints)
    lines = [f"{'task':8s} {'FMT':>6s} {'LoRA':>6s} {'ΔCompress':>10s}"]
    for r in rows:
        tag = " (hard)" if r["hard"] else ""
        lines.append(f"{r['task']:8s} {r['fmt']:6.1f} {r['lora']:6.1f} "
                     f"{r['dcompress']:10.1f}{tag}")
    save_table("table2_fmt_lora", lines)

    for r in rows:
        # ΔCompress stays close to FMT on every task
        assert r["dcompress"] >= r["fmt"] - 8.0
    hard = [r for r in rows if r["hard"]]
    assert hard, "need at least one hard task"
    for r in hard:
        # on hard tasks LoRA lags FMT, but ΔCompress does not
        assert r["fmt"] > r["lora"] + 15.0
        assert r["dcompress"] > r["lora"] + 15.0
