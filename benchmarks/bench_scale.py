"""Million-request scale: streaming sketches vs. keep-everything records.

Serving simulators are judged on the regime papers actually sweep —
10^5..10^6 requests across replica fleets — and at that scale the
*metrics pipeline* becomes the bottleneck, not the engine.  The classic
failure mode (the MetaSys "always-on dashboard" scenario): an operator
dashboard polls ``summarize()`` every few thousand completions while the
run is in flight.  With ``RecordPolicy.KEEP_ALL`` every poll rebuilds
percentile arrays from the ever-growing record list — O(total) per
refresh, O(total^2 / interval) over the run — and the process drags a
million live ``ServingRequest``/``RequestRecord`` objects through every
gen-2 GC pass.  With ``RecordPolicy.DROP`` the same queries answer from
constant-size DDSketch bins and per-tenant counters: O(active) memory,
O(bins) per refresh, identical answers within the documented
±``SKETCH_RELATIVE_ERROR`` relative error.

This benchmark prices exactly that contrast:

* **scale sweep** — 10^4 -> 10^6 requests on one replica, DROP vs
  KEEP_ALL, an always-busy closed loop (bounded in-flight population)
  with a dashboard refresh (``summarize`` + ``slo_attainment``) every
  ``CHECKPOINT_EVERY`` retirements;
* **memory pass** — the same loop under ``tracemalloc``: DROP's peak
  must stay ~flat as the request count grows 10x (O(active), not
  O(total)); KEEP_ALL's peak must grow with it;
* **replica sweep** — 1 -> 64 replicas under DROP, demonstrating the
  sketch path composes through ``ClusterGateway`` result merging;
* **accuracy gate** — sketch quantiles bracketed by the exact order
  statistics within the documented relative error, asserted on a
  KEEP_ALL run where both answers are available.

Results land in ``BENCH_scale.json``.  Run:
``PYTHONPATH=src python benchmarks/bench_scale.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc

import numpy as np

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (ClusterGateway, EngineConfig, LLAMA_7B,
                           ModelManager, RecordPolicy, SchedulerConfig,
                           ServingGateway, SKETCH_RELATIVE_ERROR,
                           create_engine, summarize)
from repro.workload.spec import TraceRequest

N_MODELS = 8
PROMPT_TOKENS = 64
#: dashboard refresh cadence (retirements between ``summarize`` polls)
CHECKPOINT_EVERY = 2_500
#: closed-loop in-flight population per replica (keeps batches full
#: without letting the queue itself grow O(total))
INFLIGHT_PER_REPLICA = 2_048
#: full-mode floors (quick mode uses the gentler ``QUICK_*`` values)
MIN_DROP_SPEEDUP = 3.0
MAX_DROP_PEAK_GROWTH = 2.5
MIN_KEEPALL_PEAK_RATIO = 3.0
QUICK_MIN_DROP_SPEEDUP = 1.15
QUICK_MAX_DROP_PEAK_GROWTH = 3.0
QUICK_MIN_KEEPALL_PEAK_RATIO = 1.5


def make_manager() -> ModelManager:
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def build_gateway(mgr: ModelManager, n_replicas: int,
                  policy: RecordPolicy):
    config = EngineConfig(tp_degree=1, record_policy=policy)

    def factory(node):
        return create_engine(
            "deltazip", mgr, node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=32,
                                             max_concurrent_deltas=8),
            engine_config=config)

    if n_replicas == 1:
        return ServingGateway(factory(None))
    return ClusterGateway(engine_factory=factory,
                          cluster=Cluster.from_name("a800", n_replicas, 1),
                          n_replicas=n_replicas)


def _request(i: int) -> TraceRequest:
    """Deterministic request shapes — no RNG, so every cell replays the
    identical workload regardless of policy or ordering."""
    return TraceRequest(request_id=i,
                        model_id=f"variant-{i % N_MODELS:02d}",
                        arrival_s=0.0,  # placeholder; set at ingest time
                        prompt_tokens=PROMPT_TOKENS,
                        output_tokens=4 + (i * 7) % 8,
                        tenant_id=f"tenant-{i % 4}")


def drive(gateway, n_requests: int, n_replicas: int = 1) -> dict:
    """Closed-loop overload drive with live dashboard polls.

    Keeps a bounded in-flight population (always-busy engine, O(active)
    queue), retires ``n_requests`` total, and every
    ``CHECKPOINT_EVERY`` retirements refreshes the "dashboard":
    ``summarize(result)`` plus an SLO attainment query — the pattern an
    operator UI or autoscaler produces while the run is in flight.
    """
    target = INFLIGHT_PER_REPLICA * n_replicas
    retired = [0]
    gateway.add_completion_listener(
        lambda rec: retired.__setitem__(0, retired[0] + 1))
    submitted = 0
    next_checkpoint = CHECKPOINT_EVERY
    n_checkpoints = 0
    last_summary: dict = {}
    while retired[0] < n_requests:
        while submitted < n_requests and submitted - retired[0] < target:
            req = _request(submitted)
            gateway.ingest(TraceRequest(
                request_id=req.request_id, model_id=req.model_id,
                arrival_s=gateway.clock, prompt_tokens=req.prompt_tokens,
                output_tokens=req.output_tokens, tenant_id=req.tenant_id))
            submitted += 1
        if not gateway.step():
            if retired[0] < n_requests:
                raise RuntimeError(
                    f"engine drained early: {retired[0]}/{n_requests}")
            break
        if retired[0] >= next_checkpoint:
            snapshot = gateway.result()
            last_summary = summarize(snapshot)
            last_summary["slo_attainment"] = snapshot.slo_attainment(0.5)
            n_checkpoints += 1
            next_checkpoint += CHECKPOINT_EVERY
    return {"retired": retired[0], "n_checkpoints": n_checkpoints,
            "summary": last_summary}


def timing_cell(mgr, n_requests: int, policy: RecordPolicy,
                n_replicas: int = 1) -> dict:
    gateway = build_gateway(mgr, n_replicas, policy)
    start = time.perf_counter()
    stats = drive(gateway, n_requests, n_replicas)
    wall_s = time.perf_counter() - start
    return {"n_requests": n_requests, "policy": policy.value,
            "n_replicas": n_replicas, "wall_s": round(wall_s, 3),
            "rps": round(n_requests / wall_s, 1),
            "n_checkpoints": stats["n_checkpoints"],
            "ru_maxrss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
                1)}


def memory_cell(mgr, n_requests: int, policy: RecordPolicy) -> dict:
    """Peak *traced* allocation for one cell.  ``tracemalloc`` slows the
    run several-fold, so memory and timing are separate passes; the
    stop/start pair resets the trace so cells don't contaminate each
    other the way the process-wide ``ru_maxrss`` watermark does."""
    gateway = build_gateway(mgr, 1, policy)
    tracemalloc.start()
    try:
        drive(gateway, n_requests)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {"n_requests": n_requests, "policy": policy.value,
            "peak_traced_mb": round(peak / (1024.0 * 1024.0), 2)}


def accuracy_check(mgr, n_requests: int = 5_000) -> dict:
    """Sketch quantiles vs. exact order statistics on a KEEP_ALL run.

    The DDSketch contract: for percentile q over n samples, with
    ``lo = x[floor(q/100*(n-1))]`` and ``hi = x[ceil(q/100*(n-1))]``,
    the estimate lies in ``[lo*(1-a), hi*(1+a)]`` for
    ``a = SKETCH_RELATIVE_ERROR``.  KEEP_ALL runs carry both the exact
    records and the sketches, so the bracket is checkable directly.
    """
    gateway = build_gateway(mgr, 1, RecordPolicy.KEEP_ALL)
    drive(gateway, n_requests)
    result = gateway.result()
    stream = result.stream
    assert stream is not None and stream.complete
    alpha = SKETCH_RELATIVE_ERROR
    report: dict = {"alpha": alpha, "n": n_requests, "ok": True,
                    "quantiles": []}
    for metric in ("e2e", "ttft"):
        exact = np.sort(np.array(
            [getattr(rec, "e2e_latency_s" if metric == "e2e" else "ttft_s")
             for rec in result.records if rec.finished]))
        for q in (50.0, 90.0, 99.0):
            est = (stream.percentile_e2e_s(q) if metric == "e2e"
                   else stream.percentile_ttft_s(q))
            rank = q / 100.0 * (len(exact) - 1)
            lo = float(exact[int(np.floor(rank))])
            hi = float(exact[int(np.ceil(rank))])
            ok = lo * (1 - alpha) <= est <= hi * (1 + alpha)
            report["ok"] = report["ok"] and ok
            report["quantiles"].append(
                {"metric": metric, "q": q, "exact_lo": round(lo, 6),
                 "exact_hi": round(hi, 6), "sketch": round(est, 6),
                 "ok": ok})
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_scale.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)

    if args.quick:
        sizes = (10_000, 40_000)
        mem_sizes = (5_000, 20_000)
        replica_counts = (1, 4)
        sweep_n = 20_000
        floors = {"min_drop_speedup": QUICK_MIN_DROP_SPEEDUP,
                  "max_drop_peak_growth": QUICK_MAX_DROP_PEAK_GROWTH,
                  "min_keepall_peak_ratio": QUICK_MIN_KEEPALL_PEAK_RATIO}
    else:
        sizes = (10_000, 100_000, 1_000_000)
        mem_sizes = (10_000, 100_000)
        replica_counts = (1, 4, 16, 64)
        sweep_n = 100_000
        floors = {"min_drop_speedup": MIN_DROP_SPEEDUP,
                  "max_drop_peak_growth": MAX_DROP_PEAK_GROWTH,
                  "min_keepall_peak_ratio": MIN_KEEPALL_PEAK_RATIO}

    mgr = make_manager()
    failures = []

    # -- scale sweep (DROP first at each size: the ru_maxrss watermark is
    #    process-monotone, so KEEP_ALL exceeding it afterwards is an
    #    honest O(total) signal at sizes too big to trace) -------------
    print(f"{'n_req':>9s} {'policy':>9s} {'wall_s':>8s} {'rps':>9s} "
          f"{'polls':>5s} {'maxrss_mb':>9s}")
    cells = []
    rps = {}
    for n in sizes:
        for policy in (RecordPolicy.DROP, RecordPolicy.KEEP_ALL):
            cell = timing_cell(mgr, n, policy)
            cells.append(cell)
            rps[(n, policy)] = cell["rps"]
            print(f"{n:>9d} {policy.value:>9s} {cell['wall_s']:>8.2f} "
                  f"{cell['rps']:>9.1f} {cell['n_checkpoints']:>5d} "
                  f"{cell['ru_maxrss_mb']:>9.1f}")
    largest = sizes[-1]
    speedup = rps[(largest, RecordPolicy.DROP)] / \
        rps[(largest, RecordPolicy.KEEP_ALL)]
    print(f"DROP vs KEEP_ALL at n={largest}: {speedup:.2f}x "
          f"(floor {floors['min_drop_speedup']}x)")
    if speedup < floors["min_drop_speedup"]:
        failures.append(f"DROP speedup {speedup:.2f}x below floor "
                        f"{floors['min_drop_speedup']}x at n={largest}")

    # -- memory pass -------------------------------------------------- #
    mem_cells = []
    peaks = {}
    for policy in (RecordPolicy.DROP, RecordPolicy.KEEP_ALL):
        for n in mem_sizes:
            cell = memory_cell(mgr, n, policy)
            mem_cells.append(cell)
            peaks[(n, policy)] = cell["peak_traced_mb"]
            print(f"memory n={n:>7d} {policy.value:>9s} "
                  f"peak={cell['peak_traced_mb']:>8.2f} MB")
    growth = peaks[(mem_sizes[-1], RecordPolicy.DROP)] / \
        peaks[(mem_sizes[0], RecordPolicy.DROP)]
    keep_ratio = peaks[(mem_sizes[-1], RecordPolicy.KEEP_ALL)] / \
        peaks[(mem_sizes[-1], RecordPolicy.DROP)]
    scale = mem_sizes[-1] / mem_sizes[0]
    print(f"DROP peak growth over {scale:.0f}x more requests: "
          f"{growth:.2f}x (ceiling {floors['max_drop_peak_growth']}x); "
          f"KEEP_ALL/DROP peak at n={mem_sizes[-1]}: {keep_ratio:.2f}x "
          f"(floor {floors['min_keepall_peak_ratio']}x)")
    if growth > floors["max_drop_peak_growth"]:
        failures.append(f"DROP peak grew {growth:.2f}x over a {scale:.0f}x "
                        f"size increase (O(active) violated)")
    if keep_ratio < floors["min_keepall_peak_ratio"]:
        failures.append(f"KEEP_ALL/DROP peak ratio {keep_ratio:.2f}x below "
                        f"floor {floors['min_keepall_peak_ratio']}x")

    # -- replica sweep (DROP) ----------------------------------------- #
    sweep_cells = []
    for n_replicas in replica_counts:
        cell = timing_cell(mgr, sweep_n, RecordPolicy.DROP, n_replicas)
        sweep_cells.append(cell)
        print(f"replicas={n_replicas:>3d} n={sweep_n} "
              f"wall={cell['wall_s']:>8.2f}s rps={cell['rps']:>9.1f}")

    # -- accuracy gate ------------------------------------------------ #
    accuracy = accuracy_check(mgr)
    print(f"sketch accuracy (alpha={accuracy['alpha']}): "
          f"{'ok' if accuracy['ok'] else 'FAILED'}")
    if not accuracy["ok"]:
        failures.append("sketch quantile outside documented error bracket: "
                        + json.dumps(accuracy["quantiles"]))

    payload = {
        "benchmark": "scale",
        "quick": args.quick,
        "checkpoint_every": CHECKPOINT_EVERY,
        "inflight_per_replica": INFLIGHT_PER_REPLICA,
        "floors": floors,
        "cells": cells,
        "memory": mem_cells,
        "replica_sweep": sweep_cells,
        "accuracy": accuracy,
        "headline": {
            "largest_n": largest,
            "drop_speedup": round(speedup, 2),
            "drop_peak_growth": round(growth, 2),
            "keepall_peak_ratio": round(keep_ratio, 2),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
