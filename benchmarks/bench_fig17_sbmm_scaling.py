"""Fig 17: SBMM kernel latency vs number of models (uniform and Zipf).

Fixed request count spread over a growing number of deltas: the FP16 and
naive for-loop implementations degrade linearly with model count; request
reordering ("Ours") buys ~2x; the dynamic-parallelism kernel ("Ours+")
stays nearly flat.
"""

import numpy as np

from conftest import run_once, save_table
from repro.hardware import A800, sbmm_time
from repro.workload import zipf_popularity

TOTAL_REQUESTS = 64
MODEL_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128]
DIM = 4096
IMPLS = [("fp16", "fp16_forloop"), ("for-loop", "naive_forloop"),
         ("ours", "sbmm_reorder"), ("ours+", "sbmm")]


def _counts(n_models: int, dist: str) -> list:
    if dist == "uniform":
        base = TOTAL_REQUESTS // n_models
        counts = [base] * n_models
        for i in range(TOTAL_REQUESTS - base * n_models):
            counts[i] += 1
        return counts
    pop = zipf_popularity(n_models, 1.5)
    counts = np.maximum(1, np.round(pop * TOTAL_REQUESTS)).astype(int)
    return counts.tolist()


def _experiment():
    rows = []
    for dist in ("uniform", "zipf"):
        for n_models in MODEL_COUNTS:
            if n_models > TOTAL_REQUESTS and dist == "uniform":
                continue
            counts = _counts(n_models, dist)
            entry = {"dist": dist, "models": n_models}
            for label, impl in IMPLS:
                entry[label] = sbmm_time(counts, DIM, DIM, A800,
                                         impl=impl).total * 1e3
            rows.append(entry)
    return rows


def test_fig17_sbmm_scaling(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'dist':8s} {'models':>7s} {'fp16':>8s} {'for-loop':>9s} "
             f"{'ours':>8s} {'ours+':>8s}  (ms)"]
    for r in rows:
        lines.append(f"{r['dist']:8s} {r['models']:7d} {r['fp16']:8.3f} "
                     f"{r['for-loop']:9.3f} {r['ours']:8.3f} "
                     f"{r['ours+']:8.3f}")
    save_table("fig17_sbmm_scaling", lines)

    for dist in ("uniform", "zipf"):
        sub = [r for r in rows if r["dist"] == dist]
        first, last = sub[0], sub[-1]
        # ours+ scales far more gently than the loops
        growth_plus = last["ours+"] - first["ours+"]
        growth_loop = last["for-loop"] - first["for-loop"]
        assert growth_plus < growth_loop / 3
        # at high model counts: ours+ < ours < for-loop < fp16
        assert last["ours+"] < last["ours"]
        assert last["ours"] < last["for-loop"] * 1.01
        assert last["for-loop"] < last["fp16"]
