"""Fig 13: SLO attainment of E2E latency and TTFT (azure distribution).

Success rate as the SLO threshold sweeps, at λ ∈ {0.5, 1.0} — DeltaZip's
curves dominate the baseline's everywhere.
"""

import numpy as np

from conftest import run_once, save_table
from repro.serving import slo_attainment, summarize
from repro.workload import trace_from_distribution
from serving_common import (N_VARIANTS, TRACE_SECONDS, a800_node,
                            delta_manager, deltazip_engine, full_manager,
                            scb_engine)

SLO_GRID_E2E = [5, 10, 25, 50, 100, 200, 400, 800]
SLO_GRID_TTFT = [1, 2, 5, 10, 25, 50, 100, 250, 500]


def _experiment():
    node = a800_node(4)
    out = {}
    for rate in (0.5, 1.0):
        trace = trace_from_distribution("azure", N_VARIANTS, rate=rate,
                                        duration_s=TRACE_SECONDS, seed=1)
        scb = scb_engine(full_manager(), node).run(trace)
        dz8 = deltazip_engine(delta_manager(), node, n_deltas=8).run(trace)
        dz12 = deltazip_engine(delta_manager(), node, n_deltas=12).run(trace)
        out[rate] = {
            name: {
                "e2e": [slo_attainment(res.records, s, "e2e")
                        for s in SLO_GRID_E2E],
                "ttft": [slo_attainment(res.records, s, "ttft")
                         for s in SLO_GRID_TTFT],
                # SLO curves are read at the tail: keep the percentiles
                # an operator would set the thresholds from
                "tails": {k: v for k, v in summarize(res).items()
                          if k.startswith(("p50_", "p99_"))},
            }
            for name, res in [("vllm_scb", scb), ("dz8", dz8),
                              ("dz12", dz12)]
        }
    return out


def test_fig13_slo(benchmark):
    out = run_once(benchmark, _experiment)
    lines = []
    for rate, systems in out.items():
        lines.append(f"arrival rate {rate}: E2E SLO grid {SLO_GRID_E2E}")
        for name, curves in systems.items():
            vals = " ".join(f"{v:5.2f}" for v in curves["e2e"])
            lines.append(f"  {name:9s} {vals}")
        lines.append(f"arrival rate {rate}: TTFT SLO grid {SLO_GRID_TTFT}")
        for name, curves in systems.items():
            vals = " ".join(f"{v:5.2f}" for v in curves["ttft"])
            lines.append(f"  {name:9s} {vals}")
        lines.append(f"arrival rate {rate}: tail latencies (s)")
        for name, curves in systems.items():
            t = curves["tails"]
            lines.append(f"  {name:9s} e2e p50/p99 {t['p50_e2e_s']:7.2f}/"
                         f"{t['p99_e2e_s']:7.2f}  ttft p50/p99 "
                         f"{t['p50_ttft_s']:7.3f}/{t['p99_ttft_s']:7.3f}")
    save_table("fig13_slo", lines)

    for rate, systems in out.items():
        scb = systems["vllm_scb"]
        dz = systems["dz8"]
        # DeltaZip's attainment curve dominates at every threshold
        assert all(d >= s - 1e-9 for d, s in zip(dz["e2e"], scb["e2e"]))
        assert all(d >= s - 1e-9 for d, s in zip(dz["ttft"], scb["ttft"]))
        # and is strictly better at tight SLOs
        assert dz["e2e"][1] > scb["e2e"][1] + 0.2
