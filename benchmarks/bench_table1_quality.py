"""Table 1: post-compression model quality and compression ratios.

Per base model and task: FP16 (uncompressed FMT), SparseGPT-direct 4bit*,
AWQ 4bit, DeltaZip 4bit*, DeltaZip 2bit* (* = +50% structured sparsity).
Paper's claims, checked in-shape here:

* ΔCompress (2-bit + 2:4) reaches ~8-14x on linear weights with accuracy
  comparable to FP16 (end-to-end ratio is lower on embedding-heavy models
  — our tiny models are embedding-heavy, like Gemma-2 in the paper);
* compressing the *delta* tracks the fine-tuned model's function better
  than compressing the weights directly (SparseGPT rows) — at toy scale
  the gap shows in logit-MSE/NLL rather than saturated accuracy, see
  EXPERIMENTS.md;
* AWQ holds accuracy but tops out at ~4x (quantization only).
"""

from conftest import (N_EVAL, QUALITY_TASKS, run_once, save_table)
from repro.compression import CompressionConfig, DeltaCompressor
from repro.evaluation import evaluate_task
from repro.nn import TransformerModel

CONFIGS = [
    ("SparseGPT(4bit*)", CompressionConfig.sparsegpt_4bit()),
    ("SparseGPT(2bit*)", CompressionConfig(bits=2, sparsity_n=2,
                                           sparsity_m=4, delta_mode=False)),
    ("AWQ(4bit)", CompressionConfig.awq_4bit()),
    ("DeltaZip(4bit*)", CompressionConfig.deltazip_4bit()),
    ("DeltaZip(2bit*)", CompressionConfig.deltazip_2bit()),
]


def _experiment(quality_base, quality_checkpoints):
    import numpy as np
    from repro.evaluation import answer_nll
    base_state = quality_base.state_dict()
    rows = []
    for task_name in QUALITY_TASKS:
        entry = quality_checkpoints[task_name]
        task, fmt = entry["task"], entry["fmt"]
        eval_rng = np.random.default_rng(1234)
        examples = task.examples(N_EVAL, eval_rng)
        from repro.evaluation import evaluate_examples
        ref_toks = fmt.calibration_tokens[:16]
        ref_logits = fmt.model(ref_toks)
        rows.append({"task": task_name, "method": "FP16",
                     "acc": evaluate_examples(fmt.model, examples).accuracy
                     * 100,
                     "nll": answer_nll(fmt.model, examples),
                     "logit_mse": 0.0,
                     "ratio": 1.0, "linear_ratio": 1.0})
        for label, config in CONFIGS:
            artifact = DeltaCompressor(config).compress(
                fmt.model, base_state, fmt.calibration_tokens)
            model = TransformerModel(quality_base.config, seed=0)
            model.load_state_dict(artifact.to_state_dict(base_state))
            mse = float(np.mean((ref_logits - model(ref_toks)) ** 2))
            rows.append({"task": task_name, "method": label,
                         "acc": evaluate_examples(model, examples).accuracy
                         * 100,
                         "nll": answer_nll(model, examples),
                         "logit_mse": mse,
                         "ratio": artifact.compression_ratio(),
                         "linear_ratio": artifact.linear_compression_ratio()})
    return rows


def test_table1_quality(benchmark, quality_base, quality_checkpoints):
    rows = run_once(benchmark, _experiment, quality_base,
                    quality_checkpoints)
    lines = [f"{'task':8s} {'method':18s} {'acc%':>6s} {'nll':>7s} "
             f"{'logitMSE':>9s} {'ratio':>6s} {'linear-ratio':>12s}"]
    for r in rows:
        lines.append(f"{r['task']:8s} {r['method']:18s} {r['acc']:6.1f} "
                     f"{r['nll']:7.3f} {r['logit_mse']:9.5f} "
                     f"{r['ratio']:6.2f} {r['linear_ratio']:12.2f}")
    lines.append(
        "\nNote: at this model scale accuracy saturates (tiny task-tuned "
        "models are heavily over-parameterized), so the delta-vs-direct "
        "contrast shows in the continuous metrics (answer NLL, logit MSE); "
        "see EXPERIMENTS.md.")
    save_table("table1_quality", lines)

    by = {(r["task"], r["method"]): r for r in rows}
    for task in QUALITY_TASKS:
        fp16 = by[(task, "FP16")]["acc"]
        dz4 = by[(task, "DeltaZip(4bit*)")]
        dz2 = by[(task, "DeltaZip(2bit*)")]
        # ΔCompress holds quality near FP16 at both bit widths
        assert dz4["acc"] >= fp16 - 8.0, (task, dz4["acc"], fp16)
        assert dz2["acc"] >= fp16 - 10.0, (task, dz2["acc"], fp16)

    def total(metric, method):
        return sum(by[(t, method)][metric] for t in QUALITY_TASKS)

    # the delta-compressed models track the FMT models' function better
    # than direct weight compression at the same config — aggregated over
    # tasks (per-task the margin varies at toy scale, where fine-tuning
    # deltas are proportionally much larger than on real LLMs)
    assert total("logit_mse", "DeltaZip(4bit*)") < \
        total("logit_mse", "SparseGPT(4bit*)")
    assert total("logit_mse", "DeltaZip(2bit*)") < \
        total("logit_mse", "SparseGPT(2bit*)")
    assert total("nll", "DeltaZip(2bit*)") <= \
        total("nll", "SparseGPT(2bit*)") + 0.02
    # accuracy ordering is directional (ties allowed at saturation)
    assert total("acc", "DeltaZip(4bit*)") >= \
        total("acc", "SparseGPT(4bit*)") - 5.0
    # ratio ordering: DeltaZip 2bit > 4bit >= AWQ (linear-weight view)
    some = QUALITY_TASKS[0]
    assert by[(some, "DeltaZip(2bit*)")]["linear_ratio"] > \
        by[(some, "DeltaZip(4bit*)")]["linear_ratio"]
    assert by[(some, "DeltaZip(4bit*)")]["linear_ratio"] > \
        by[(some, "AWQ(4bit)")]["linear_ratio"]
