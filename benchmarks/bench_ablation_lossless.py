"""Ablation (paper §4.1 step 4): when is the lossless stage worth it?

The paper: GDeflate-style lossless compression helps when disk bandwidth is
the bottleneck (e.g. NFS) and may hurt otherwise, because decompression
throughput caps the effective read rate.  We sweep disk bandwidth and
compare delta fetch times with and without the stage, using the measured
zlib ratio of a real packed artifact.
"""

from conftest import run_once, save_table
from repro.compression import (CompressionConfig, DeltaCompressor, ZlibCodec)
from repro.hardware import Tier, TransferModel, node_from_name

DISK_GBPS = [0.5, 1.0, 2.0, 6.0, 12.0]
DECOMPRESS_GBPS = 50.0  # nvcomp GDeflate on an A100-class GPU


def _experiment(quality_base, quality_checkpoints):
    fmt = quality_checkpoints["review"]["fmt"]
    base_state = quality_base.state_dict()
    plain = DeltaCompressor(CompressionConfig.deltazip_2bit()).compress(
        fmt.model, base_state, fmt.calibration_tokens)
    packed = DeltaCompressor(CompressionConfig.deltazip_2bit(lossless=True),
                             codec=ZlibCodec(level=9)).compress(
        fmt.model, base_state, fmt.calibration_tokens)
    lossless_ratio = plain.nbytes() / packed.nbytes()

    # scale the measured ratio up to a 13B-like delta fetch
    delta_bytes = 2.6e9
    rows = []
    for disk in DISK_GBPS:
        node = node_from_name("a800", 4, disk_gbps=disk)
        tm = TransferModel(node)
        t_plain = tm.time(delta_bytes, Tier.DISK, Tier.CPU)
        t_lossless = tm.time(delta_bytes / lossless_ratio, Tier.DISK,
                             Tier.CPU, decompress_gbps=DECOMPRESS_GBPS)
        rows.append({"disk_gbps": disk, "plain_s": t_plain,
                     "lossless_s": t_lossless})
    return lossless_ratio, rows


def test_ablation_lossless(benchmark, quality_base, quality_checkpoints):
    ratio, rows = run_once(benchmark, _experiment, quality_base,
                           quality_checkpoints)
    lines = [f"measured zlib stage ratio on packed 2-bit delta: {ratio:.2f}x",
             f"{'disk GB/s':>10s} {'plain(s)':>9s} {'lossless(s)':>12s} "
             f"{'winner':>9s}"]
    for r in rows:
        winner = "lossless" if r["lossless_s"] < r["plain_s"] else "plain"
        lines.append(f"{r['disk_gbps']:10.1f} {r['plain_s']:9.2f} "
                     f"{r['lossless_s']:12.2f} {winner:>9s}")
    save_table("ablation_lossless", lines)

    assert ratio > 1.0  # packed streams still deflate somewhat
    # slow disk: lossless wins; the advantage shrinks as disk speeds up
    assert rows[0]["lossless_s"] < rows[0]["plain_s"]
    gain_slow = rows[0]["plain_s"] / rows[0]["lossless_s"]
    gain_fast = rows[-1]["plain_s"] / rows[-1]["lossless_s"]
    assert gain_slow > gain_fast
