"""Fig 1: invocation counts per 5-minute window across 20 model variants.

Paper's point: per-variant traffic is sporadic, bursty, and wildly uneven —
the workload property motivating multi-variant serving.  We regenerate the
trace statistics with the synthetic arena generator.
"""

import numpy as np

from conftest import run_once, save_table
from repro.workload import arena_trace


def _experiment():
    trace = arena_trace(n_models=20, duration_s=7 * 24 * 3600.0,
                        mean_rate=0.02, seed=0)
    windows = trace.windowed_counts(300.0)  # 5-minute windows, as in Fig 1
    rows = []
    for model_id in trace.model_ids:
        counts = windows[model_id]
        active = counts > 0
        rows.append({
            "model": model_id,
            "total": int(counts.sum()),
            "peak_per_5min": int(counts.max()),
            "quiet_fraction": float(np.mean(~active)),
        })
    rows.sort(key=lambda r: -r["total"])
    return rows


def test_fig01_lmsys_trace(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'model':22s} {'total':>7s} {'peak/5min':>10s} {'quiet%':>7s}"]
    for r in rows:
        lines.append(f"{r['model']:22s} {r['total']:7d} "
                     f"{r['peak_per_5min']:10d} "
                     f"{100 * r['quiet_fraction']:6.1f}%")
    save_table("fig01_lmsys_trace", lines)

    totals = [r["total"] for r in rows]
    quiets = [r["quiet_fraction"] for r in rows]
    # popularity spans an order of magnitude and some variants are sporadic
    assert totals[0] > 10 * max(totals[-1], 1)
    assert max(quiets) > 0.5
    assert min(quiets) < 0.4
