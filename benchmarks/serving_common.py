"""Shared builders for the serving benchmarks (Figs 10-19)."""

from __future__ import annotations

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_13B, LLAMA_7B, ModelManager,
                           SchedulerConfig, ServingEngine, create_engine)

# the paper's serving defaults: 32 variants of a 13B model on 4xA800, TP=4
N_VARIANTS = 32
DELTA_RATIO_13B = 10.0   # the ~10x ΔCompress 2-bit ratio of Table 1
DELTA_RATIO_7B = 5.0     # the ~5x 4-bit ratio
TRACE_SECONDS = 300.0


def a800_node(n: int = 4) -> GPUNode:
    return GPUNode(node_from_name("a800", n))


def rtx3090_node(n: int = 1) -> GPUNode:
    return GPUNode(node_from_name("rtx3090", n))


def delta_manager(spec=LLAMA_13B, n_models: int = N_VARIANTS,
                  ratio: float = DELTA_RATIO_13B,
                  prefix: str = "variant") -> ModelManager:
    mgr = ModelManager(spec)
    mgr.register_base("base")
    width = max(2, len(str(n_models - 1)))
    for i in range(n_models):
        mgr.register_delta(f"{prefix}-{i:0{width}d}", "base", ratio)
    return mgr


def full_manager(spec=LLAMA_13B, n_models: int = N_VARIANTS,
                 prefix: str = "variant") -> ModelManager:
    mgr = ModelManager(spec)
    mgr.register_base("base")
    width = max(2, len(str(n_models - 1)))
    for i in range(n_models):
        mgr.register_full(f"{prefix}-{i:0{width}d}", "base")
    return mgr


def lora_manager(spec=LLAMA_13B, n_models: int = N_VARIANTS,
                 rank: int = 16, prefix: str = "variant") -> ModelManager:
    from repro.nn import LoRAConfig, lora_nbytes
    mgr = ModelManager(spec)
    mgr.register_base("base")
    nbytes = lora_nbytes(spec.dim, spec.n_layers, LoRAConfig(rank=rank),
                         mlp_hidden=spec.mlp_hidden)
    width = max(2, len(str(n_models - 1)))
    for i in range(n_models):
        mgr.register_lora(f"{prefix}-{i:0{width}d}", "base", nbytes)
    return mgr


def build_engine(name: str, mgr, node, scheduler: SchedulerConfig = None,
                 engine_config: EngineConfig = None,
                 **kwargs) -> ServingEngine:
    """Construct any registered engine by name (see ENGINES)."""
    return create_engine(name, mgr, node, scheduler_config=scheduler,
                         engine_config=engine_config, **kwargs)


def deltazip_engine(mgr, node, n_deltas: int = 8, k: int = 32,
                    tp: int = 4, preemption: bool = True,
                    variant_kind: str = "delta",
                    lora_rank: int = 16) -> ServingEngine:
    return build_engine(
        "deltazip", mgr, node,
        scheduler=SchedulerConfig(max_batch_requests=k,
                                  max_concurrent_deltas=n_deltas,
                                  preemption=preemption),
        engine_config=EngineConfig(tp_degree=tp, variant_kind=variant_kind,
                                   lora_rank=lora_rank))


def scb_engine(mgr, node, tp: int = 4, k: int = 32) -> ServingEngine:
    return build_engine("vllm-scb", mgr, node,
                        engine_config=EngineConfig(tp_degree=tp),
                        max_batch_requests=k)


def deltazip_cluster(n_replicas: int = 2, mgr=None,
                     balancer="least-outstanding", autoscaler=None,
                     n_deltas: int = 8, k: int = 32, tp: int = 4,
                     gpu: str = "a800", gpus_per_node: int = 4,
                     spec=LLAMA_13B):
    """A multi-replica DeltaZip deployment behind a ClusterGateway.

    One engine per node drawn from a homogeneous hardware cluster sized to
    the replica count (or the autoscaler's ceiling)."""
    from repro.hardware import Cluster
    from repro.serving import ClusterGateway

    mgr = mgr or delta_manager(spec=spec)
    ceiling = n_replicas if autoscaler is None else \
        max(n_replicas, autoscaler.config.max_replicas)
    cluster = Cluster.from_name(gpu, n_nodes=ceiling,
                                gpus_per_node=gpus_per_node)

    def factory(node):
        return deltazip_engine(mgr, node, n_deltas=n_deltas, k=k, tp=tp)

    return ClusterGateway(engine_factory=factory, cluster=cluster,
                          n_replicas=n_replicas, balancer=balancer,
                          autoscaler=autoscaler)
