"""Fig 11: serving throughput vs vLLM-SCB across arrival rates/distributions.

Grid: λ ∈ {0.5, 1.0} x distribution ∈ {azure, uniform, zipf:1.5}, 32
variants of a 13B base on 4xA800 (TP=4).  Paper reports 2x-12x improvement,
larger under skew, smaller under uniform high load.
"""

import pytest

from conftest import run_once, save_table
from repro.workload import trace_from_distribution
from serving_common import (N_VARIANTS, TRACE_SECONDS, a800_node,
                            delta_manager, deltazip_engine, full_manager,
                            scb_engine)

GRID = [("azure", 0.5), ("azure", 1.0), ("uniform", 0.5), ("uniform", 1.0),
        ("zipf:1.5", 0.5), ("zipf:1.5", 1.0)]


def _experiment():
    node = a800_node(4)
    rows = []
    for dist, rate in GRID:
        trace = trace_from_distribution(dist, N_VARIANTS, rate=rate,
                                        duration_s=TRACE_SECONDS, seed=1)
        scb = scb_engine(full_manager(), node).run(trace)
        dz8 = deltazip_engine(delta_manager(), node, n_deltas=8).run(trace)
        dz12 = deltazip_engine(delta_manager(), node, n_deltas=12).run(trace)
        h = TRACE_SECONDS
        rows.append({
            "dist": dist, "rate": rate,
            "vllm_scb": scb.throughput_within(h),
            "deltazip_n8": dz8.throughput_within(h),
            "deltazip_n12": dz12.throughput_within(h),
        })
    return rows


def test_fig11_throughput(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'dist':9s} {'rate':>5s} {'vLLM+SCB':>9s} {'DZ(N=8)':>9s} "
             f"{'DZ(N=12)':>9s}  (req/s within the trace window)"]
    for r in rows:
        lines.append(f"{r['dist']:9s} {r['rate']:5.1f} {r['vllm_scb']:9.3f} "
                     f"{r['deltazip_n8']:9.3f} {r['deltazip_n12']:9.3f}")
    speedups = [max(r["deltazip_n8"], r["deltazip_n12"]) / max(r["vllm_scb"],
                                                               1e-9)
                for r in rows]
    lines.append(f"\nspeedup range: {min(speedups):.1f}x - "
                 f"{max(speedups):.1f}x (paper: 2x-12x)")
    save_table("fig11_throughput", lines)

    # DeltaZip wins everywhere, by at least ~2x somewhere and never loses
    assert all(s > 1.2 for s in speedups)
    assert max(speedups) > 2.0
