"""Multi-tenant fairness: FCFS vs VTC fair queueing vs SLO-aware shedding.

Beyond the paper's single-operator view: the ROADMAP's production
north-star shares one deployment between tenants, and PR 2's cluster
frontier is where admission control lives.  This driver overloads one
aggressive batch tenant against two light interactive/standard tenants on
a single replica and measures, per admission policy, each tenant's TTFT
tail and SLO attainment (drops count against the tenant that was dropped)
plus Jain's fairness index over attainment.

Expected shape: FCFS lets the aggressive tenant's backlog head-of-line
block everyone; VTC restores the light tenants' latency; VTC + shedding
additionally caps the aggressive backlog so light attainment stays high
under sustained overload.
"""

from conftest import run_once, save_table
from repro.serving import (EngineConfig, LLAMA_7B, SchedulerConfig,
                           ServingGateway, Tenant, TenantGateway,
                           create_engine, jain_fairness_index)
from repro.workload import TenantWorkload, multi_tenant_trace
from serving_common import a800_node, delta_manager

DURATION_S = 120.0
TRACE_SEED = 11
AGGRESSIVE_RATE = 6.0      # far beyond one replica's capacity
LIGHT_RATE = 0.4

TENANTS = (
    Tenant("agg", weight=1.0, slo_class="batch"),
    Tenant("gold", weight=2.0, slo_class="interactive"),
    Tenant("silver", weight=1.0, slo_class="standard"),
)
WORKLOADS = (
    TenantWorkload("agg", rate=AGGRESSIVE_RATE, n_models=4),
    TenantWorkload("gold", rate=LIGHT_RATE, n_models=2),
    TenantWorkload("silver", rate=LIGHT_RATE, n_models=2),
)
#: (policy, shed, extra controller kwargs); the weighted run charges
#: decode tokens 2x prefill in the VTC counters (FairServe-style stage
#: weights: output tokens occupy the batch far longer than prompt ones)
POLICIES = (("fcfs", False, {}), ("vtc", False, {}), ("vtc", True, {}),
            ("vtc-weighted", True, {"prefill_weight": 0.5,
                                    "decode_weight": 2.0}))


def _run_policy(trace, mgr, policy, shed, controller_kwargs):
    engine = create_engine(
        "deltazip", mgr, a800_node(1),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(tp_degree=1))
    gateway = TenantGateway(ServingGateway(engine), tenants=TENANTS,
                            policy=policy.split("-")[0], shed=shed,
                            **controller_kwargs)
    result = gateway.replay(trace)
    attainment = gateway.slo_attainment(result)
    rows = {}
    for tenant in TENANTS:
        stats = gateway.controller.stats[tenant.tenant_id]
        sliced = result.for_tenant(tenant.tenant_id)
        rows[tenant.tenant_id] = {
            "offered": stats.offered,
            "done": sliced.n_requests,
            "shed": stats.shed,
            "p50_ttft_s": sliced.percentile_ttft_s(50),
            "p99_ttft_s": sliced.percentile_ttft_s(99),
            "attainment": attainment[tenant.tenant_id],
        }
    return rows


def _experiment():
    trace = multi_tenant_trace(WORKLOADS, duration_s=DURATION_S,
                               seed=TRACE_SEED)
    mgr = delta_manager(spec=LLAMA_7B, n_models=1, ratio=8.0)
    for model_id in trace.model_ids:
        mgr.register_delta(model_id, "base", 8.0)
    out = {}
    for policy, shed, kwargs in POLICIES:
        out[(policy, shed)] = _run_policy(trace, mgr, policy, shed, kwargs)
    return {"per_policy": out, "n_requests": len(trace)}


def test_fairness(benchmark):
    out = run_once(benchmark, _experiment)
    per_policy = out["per_policy"]

    lines = [f"offered load: {out['n_requests']} requests over "
             f"{DURATION_S:.0f}s (agg {AGGRESSIVE_RATE}/s vs "
             f"2 light x {LIGHT_RATE}/s, 1 replica)"]
    jain = {}
    for (policy, shed), rows in per_policy.items():
        label = f"{policy}{'+shed' if shed else ''}"
        lines.append("")
        lines.append(f"[{label}]")
        lines.append(f"{'tenant':8s} {'offered':>7s} {'done':>6s} "
                     f"{'shed':>5s} {'p50_ttft':>9s} {'p99_ttft':>9s} "
                     f"{'attain':>7s}")
        for tenant, row in rows.items():
            lines.append(f"{tenant:8s} {row['offered']:7d} {row['done']:6d} "
                         f"{row['shed']:5d} {row['p50_ttft_s']:9.2f} "
                         f"{row['p99_ttft_s']:9.2f} "
                         f"{row['attainment']:7.1%}")
        jain[(policy, shed)] = jain_fairness_index(
            [row["attainment"] for row in rows.values()])
        lines.append(f"Jain fairness (attainment): "
                     f"{jain[(policy, shed)]:.3f}")
    save_table("fairness", lines)

    fcfs = per_policy[("fcfs", False)]
    vtc = per_policy[("vtc", False)]
    vtc_shed = per_policy[("vtc", True)]
    weighted = per_policy[("vtc-weighted", True)]
    # the weighted-stage run must keep the light tenants protected (it
    # reweights the fair-share charge, it does not break fairness)
    for light in ("gold", "silver"):
        assert weighted[light]["attainment"] > fcfs[light]["attainment"]
    for light in ("gold", "silver"):
        # VTC must cut the light tenants' TTFT tail vs FCFS under overload
        assert vtc[light]["p99_ttft_s"] < fcfs[light]["p99_ttft_s"]
        # ... and VTC + shedding must raise their SLO attainment (the
        # PR's acceptance criterion)
        assert vtc_shed[light]["attainment"] > fcfs[light]["attainment"]
        # shedding protects the light tenants, not the aggressor
        assert vtc_shed[light]["shed"] == 0
    assert vtc_shed["agg"]["shed"] > 0
    # fairness index: VTC beats FCFS, with or without shedding
    assert jain[("vtc", False)] > jain[("fcfs", False)]
    assert jain[("vtc", True)] > jain[("fcfs", False)]
    # shedding caps the aggressive backlog: its served tail tightens
    assert vtc_shed["agg"]["p99_ttft_s"] < vtc["agg"]["p99_ttft_s"]
