"""Fig 2: LoRA vs full-model-tuning accuracy across task difficulty.

Paper's claim: LoRA approaches FMT on simple tasks (SQL generation) but
falls behind on complex ones (code, math).  Our stand-ins: ``review``
(simple), ``yesno`` (medium), ``math`` (hard multi-token reasoning).
"""

from conftest import N_EVAL, QUALITY_TASKS, run_once, save_table
from repro.evaluation import evaluate_task


def _experiment(quality_base, quality_checkpoints):
    rows = []
    for name in QUALITY_TASKS:
        entry = quality_checkpoints[name]
        task = entry["task"]
        rows.append({
            "task": name,
            "hard": task.hard,
            "base": evaluate_task(quality_base, task, N_EVAL).percent,
            "lora": evaluate_task(entry["lora"].model, task, N_EVAL).percent,
            "fmt": evaluate_task(entry["fmt"].model, task, N_EVAL).percent,
        })
    return rows


def test_fig02_lora_vs_fmt(benchmark, quality_base, quality_checkpoints):
    rows = run_once(benchmark, _experiment, quality_base,
                    quality_checkpoints)
    lines = [f"{'task':10s} {'base':>6s} {'LoRA':>6s} {'FMT':>6s}  (accuracy %)"]
    for r in rows:
        tag = " (hard)" if r["hard"] else ""
        lines.append(f"{r['task']:10s} {r['base']:6.1f} {r['lora']:6.1f} "
                     f"{r['fmt']:6.1f}{tag}")
    save_table("fig02_lora_vs_fmt", lines)

    for r in rows:
        assert r["fmt"] > r["base"], f"FMT failed to learn {r['task']}"
        assert r["fmt"] >= r["lora"] - 5.0
    hard = [r for r in rows if r["hard"]]
    # the Fig 2 gap: on the hard task FMT clearly beats LoRA
    assert all(r["fmt"] > r["lora"] + 15.0 for r in hard)
