"""Fig 7: batched matrix-multiplication execution-time breakdown.

Compares FP16 for-loop, FP16 bmm (stacked), naive low-precision for-loop,
and the SBMM kernel at 16/64 models for 2048x2048 and 4096x4096 deltas —
total time vs compute-only time (the dark bar portion in the paper).
"""

from conftest import run_once, save_table
from repro.hardware import A800, SBMM_IMPLEMENTATIONS, sbmm_time


def _experiment():
    rows = []
    for dim in (2048, 4096):
        for n_models in (16, 64):
            counts = [2] * n_models
            for impl in ("fp16_forloop", "fp16_bmm", "naive_forloop",
                         "sbmm"):
                b = sbmm_time(counts, dim, dim, A800, impl=impl)
                rows.append({"dim": dim, "models": n_models, "impl": impl,
                             "total_ms": b.total * 1e3,
                             "compute_ms": b.compute * 1e3})
    return rows


def test_fig07_sbmm_breakdown(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'dim':>5s} {'models':>7s} {'impl':14s} {'total':>9s} "
             f"{'compute':>9s}  (ms)"]
    for r in rows:
        lines.append(f"{r['dim']:5d} {r['models']:7d} {r['impl']:14s} "
                     f"{r['total_ms']:9.4f} {r['compute_ms']:9.4f}")
    save_table("fig07_sbmm_breakdown", lines)

    by = {(r["dim"], r["models"], r["impl"]): r for r in rows}
    for dim in (2048, 4096):
        for n in (16, 64):
            sbmm = by[(dim, n, "sbmm")]
            naive = by[(dim, n, "naive_forloop")]
            fp16 = by[(dim, n, "fp16_forloop")]
            bmm = by[(dim, n, "fp16_bmm")]
            # low-precision compute is faster, but the naive loop's *total*
            # stays overhead-dominated (the paper's motivating observation)
            assert naive["compute_ms"] < fp16["compute_ms"]
            assert naive["total_ms"] > 3 * naive["compute_ms"]
            # SBMM removes most of the overhead
            assert sbmm["total_ms"] < naive["total_ms"] / 2
            # bmm pays for stacking the weights
            assert bmm["total_ms"] > sbmm["total_ms"]
