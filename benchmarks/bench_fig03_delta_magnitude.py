"""Fig 3: weight vs delta magnitude distributions on real checkpoints.

Paper's observation: the fine-tuning delta has a much narrower value range
and fewer outliers than the weights themselves — the property that makes
aggressive delta compression possible.
"""

import numpy as np

from conftest import run_once, save_table
from repro.compression import delta_statistics, quantization_mse


def _experiment(quality_base, quality_checkpoints):
    fmt_model = quality_checkpoints["review"]["fmt"].model
    stats = delta_statistics(fmt_model.state_dict(),
                             quality_base.state_dict())
    linear = {k: v for k, v in stats.items() if "proj" in k}

    # relative quantization error at 4 bits: delta vs raw weight
    base_state = quality_base.state_dict()
    ft_state = fmt_model.state_dict()
    rel_err_weight, rel_err_delta = [], []
    for name in list(linear)[:6]:
        w = ft_state[name]
        d = ft_state[name] - base_state[name]
        rel_err_weight.append(quantization_mse(w, 4, 32) / np.mean(w ** 2))
        rel_err_delta.append(quantization_mse(d, 4, 32) / np.mean(d ** 2))
    return linear, float(np.mean(rel_err_weight)), float(np.mean(rel_err_delta))


def test_fig03_delta_magnitude(benchmark, quality_base, quality_checkpoints):
    linear, rel_w, rel_d = run_once(benchmark, _experiment, quality_base,
                                    quality_checkpoints)
    lines = [f"{'layer':40s} {'|w|max':>8s} {'|Δ|max':>8s} "
             f"{'std(w)':>8s} {'std(Δ)':>8s}"]
    for name, s in list(linear.items())[:8]:
        lines.append(f"{name:40s} {s['finetuned_absmax']:8.4f} "
                     f"{s['delta_absmax']:8.4f} {s['finetuned_std']:8.4f} "
                     f"{s['delta_std']:8.4f}")
    ratio_absmax = np.mean([s["delta_absmax"] / s["finetuned_absmax"]
                            for s in linear.values()])
    lines.append(f"\nmean |Δ|max / |w|max = {ratio_absmax:.3f}")
    lines.append(f"relative 4-bit quantization MSE: weight={rel_w:.4f} "
                 f"delta={rel_d:.4f}")
    save_table("fig03_delta_magnitude", lines)

    # deltas are narrower than weights on most layers...
    narrower = sum(s["delta_absmax"] < s["finetuned_absmax"]
                   for s in linear.values())
    assert narrower >= 0.8 * len(linear)
    # ...and relatively easier to quantize
    assert rel_d < rel_w
