"""Step overhead: event-driven idle-skip vs dense activity scanning.

The :mod:`repro.sim` kernel advances every timeline by jumping straight
to the next scheduled event (O(log n) heap ops); the pre-kernel
architecture's cost model was a loop that kept stepping through idle
time at iteration granularity.  ``EngineConfig.idle_quantum_s`` preserves
that dense mode, so this benchmark can price both strategies on the same
traces — and assert that the request records are identical, which is the
kernel's correctness contract.

Grid: {dense, sparse} arrivals x {1, 4, 16} replicas x {event, quantum}
stepping.  Dense traces keep every replica busy (idle-skip is moot);
sparse traces are the overnight regime — short requests separated by
long gaps — where event-driven stepping wins big.  Results land in
``BENCH_step.json`` so successive PRs can track the perf trajectory.

A final section prices the live ops plane (:mod:`repro.telemetry`):
with telemetry off the engine hot path must carry zero observability
state (asserted structurally), and with telemetry on the records must
stay bit-identical — telemetry is pure observation.  The measured
telemetry-on/off wall ratio lands in the JSON alongside the step cells.

Run: ``PYTHONPATH=src python benchmarks/bench_step_overhead.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (ClusterGateway, EngineConfig, LLAMA_7B,
                           ModelManager, SchedulerConfig, ServingGateway,
                           create_engine)
from repro.workload.spec import Trace, TraceRequest

N_MODELS = 8
#: the dense-mode idle quantum: one typical iteration of simulated time,
#: i.e. "step every iteration" instead of jumping the gap
IDLE_QUANTUM_S = 0.05
#: acceptance floor for the headline case (sparse arrivals, most replicas)
MIN_SPARSE_CLUSTER_SPEEDUP = 2.0


def make_manager() -> ModelManager:
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def make_trace(kind: str, duration_s: float, seed: int = 7) -> Trace:
    """Short interactive requests; only the arrival process differs.

    ``dense`` packs arrivals so replicas always have a batch to run;
    ``sparse`` spreads the same request shape over long idle gaps (the
    overnight trace the idle-skip exists for).
    """
    rate = 4.0 if kind == "dense" else 0.1
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1.0 / rate,
                                      size=max(1, int(rate * duration_s))))
    times = times[times < duration_s]
    requests = [
        TraceRequest(request_id=i, model_id=f"variant-{i % N_MODELS:02d}",
                     arrival_s=float(t), prompt_tokens=64, output_tokens=8)
        for i, t in enumerate(times)
    ]
    return Trace(requests=requests,
                 model_ids=[f"variant-{i:02d}" for i in range(N_MODELS)],
                 duration_s=duration_s)


def build_gateway(mgr: ModelManager, n_replicas: int,
                  idle_quantum_s):
    config = EngineConfig(tp_degree=1, idle_quantum_s=idle_quantum_s)

    def factory(node):
        return create_engine(
            "deltazip", mgr, node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=config)

    if n_replicas == 1:
        return ServingGateway(factory(None))
    return ClusterGateway(engine_factory=factory,
                          cluster=Cluster.from_name("a800", n_replicas, 1),
                          n_replicas=n_replicas)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s)


def run_cell(mgr, trace, n_replicas, idle_quantum_s):
    gateway = build_gateway(mgr, n_replicas, idle_quantum_s)
    start = time.perf_counter()
    result = gateway.replay(trace)
    wall_s = time.perf_counter() - start
    return wall_s, result


def bench_telemetry(mgr, trace, n_replicas):
    """Price the ops plane: off must be untouched, on must be identical."""
    from repro.telemetry import Telemetry

    bare = build_gateway(mgr, n_replicas, None)
    engines = [r.engine for r in bare.replicas] \
        if isinstance(bare, ClusterGateway) else [bare.engine]
    for engine in engines:
        # zero-overhead-when-disabled is structural: no hook, no phase
        # emission, so the step loop never even branches into telemetry
        assert engine.on_event is None, "telemetry-off engine has a hook"
        assert engine.emit_phases is False, \
            "telemetry-off engine emits phases"
    start = time.perf_counter()
    bare_res = bare.replay(trace)
    bare_wall = time.perf_counter() - start

    telemetry = Telemetry(interval_s=1.0)
    wired = build_gateway(mgr, n_replicas, None)
    if isinstance(wired, ClusterGateway):
        telemetry.attach_cluster(wired)
    else:
        telemetry.attach_serving(wired)
    start = time.perf_counter()
    wired_res = wired.replay(trace)
    wired_wall = time.perf_counter() - start

    identical = [record_key(r) for r in bare_res.records] == \
        [record_key(r) for r in wired_res.records]
    ratio = wired_wall / max(bare_wall, 1e-9)
    return {
        "n_replicas": n_replicas,
        "wall_s_telemetry_off": bare_wall,
        "wall_s_telemetry_on": wired_wall,
        "telemetry_overhead_ratio": ratio,
        "records_identical": identical,
        "spans_closed": telemetry.spans.n_closed,
        "gauge_snapshots": len(telemetry.gauges),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_step.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)

    replica_counts = (1, 4) if args.quick else (1, 4, 16)
    durations = {"dense": 30.0 if args.quick else 60.0,
                 "sparse": 1200.0 if args.quick else 3600.0}

    mgr = make_manager()
    cells = []
    speedups = {}
    print(f"{'arrivals':8s} {'replicas':>8s} {'n_req':>6s} "
          f"{'skip_s':>8s} {'dense_s':>8s} {'speedup':>8s}  identical")
    for kind in ("dense", "sparse"):
        trace = make_trace(kind, durations[kind])
        for n in replica_counts:
            skip_wall, skip_res = run_cell(mgr, trace, n, None)
            dense_wall, dense_res = run_cell(mgr, trace, n, IDLE_QUANTUM_S)
            identical = [record_key(r) for r in skip_res.records] == \
                [record_key(r) for r in dense_res.records]
            speedup = dense_wall / max(skip_wall, 1e-9)
            speedups[(kind, n)] = speedup
            print(f"{kind:8s} {n:8d} {len(trace):6d} "
                  f"{skip_wall:8.3f} {dense_wall:8.3f} {speedup:7.1f}x  "
                  f"{identical}")
            if not identical:
                print(f"FAIL: records differ for {kind} x{n} "
                      "(idle-skip must be record-identical)")
                return 1
            cells.append({
                "arrivals": kind, "n_replicas": n,
                "n_requests": len(trace),
                "wall_s_idle_skip": skip_wall,
                "wall_s_dense_quantum": dense_wall,
                "speedup": speedup,
                "records_identical": identical,
                "makespan_s": skip_res.makespan_s,
            })

    print("\ntelemetry plane (dense arrivals):")
    print(f"{'replicas':>8s} {'off_s':>8s} {'on_s':>8s} {'ratio':>6s}  "
          "identical")
    telemetry_cells = []
    dense_trace = make_trace("dense", durations["dense"])
    for n in replica_counts:
        cell = bench_telemetry(mgr, dense_trace, n)
        telemetry_cells.append(cell)
        print(f"{n:8d} {cell['wall_s_telemetry_off']:8.3f} "
              f"{cell['wall_s_telemetry_on']:8.3f} "
              f"{cell['telemetry_overhead_ratio']:5.2f}x  "
              f"{cell['records_identical']}")
        if not cell["records_identical"]:
            print(f"FAIL: telemetry changed records at x{n} "
                  "(the ops plane must be pure observation)")
            return 1

    headline = speedups[("sparse", max(replica_counts))]
    payload = {
        "benchmark": "step_overhead",
        "idle_quantum_s": IDLE_QUANTUM_S,
        "quick": args.quick,
        "cells": cells,
        "telemetry_cells": telemetry_cells,
        "headline_sparse_cluster_speedup": headline,
        "min_required_speedup": MIN_SPARSE_CLUSTER_SPEEDUP,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
    print(f"\nwrote {args.out}; sparse x{max(replica_counts)} idle-skip "
          f"speedup: {headline:.1f}x (floor {MIN_SPARSE_CLUSTER_SPEEDUP}x)")
    if headline < MIN_SPARSE_CLUSTER_SPEEDUP:
        print("FAIL: idle-skip speedup below the acceptance floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
