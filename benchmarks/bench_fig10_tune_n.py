"""Fig 10: tuning N, the number of concurrent deltas in GPU memory.

Offline profiling on a memory-tight RTX 3090 with a 7B base: N=1 serializes
variants and is clearly bad; a small interior N is optimal; beyond it the
deltas' memory pressure leaves no headroom, so performance stops improving.
"""

from conftest import run_once, save_table
from repro.serving import EngineConfig, LLAMA_7B
from repro.serving.tuning import pick_optimal_n, profile_concurrent_deltas
from repro.workload import trace_from_distribution
from serving_common import DELTA_RATIO_7B, delta_manager, rtx3090_node

CONFIGS = [(3.0, 4.0), (3.5, 4.0), (4.0, 3.0), (4.0, 4.0), (4.5, 4.0),
           (5.0, 4.0)]
CANDIDATE_N = [1, 2, 3, 4, 5, 6]


def _experiment():
    node = rtx3090_node(1)
    rows = {}
    for rate, alpha in CONFIGS:
        trace = trace_from_distribution(f"zipf:{alpha}", 12, rate=rate,
                                        duration_s=25.0, seed=3)
        mgr = delta_manager(LLAMA_7B, n_models=12, ratio=DELTA_RATIO_7B)
        points = profile_concurrent_deltas(
            mgr, node, trace, CANDIDATE_N,
            engine_config=EngineConfig(tp_degree=1), max_batch_requests=48)
        rows[(rate, alpha)] = points
    return rows


def test_fig10_tune_n(benchmark):
    rows = run_once(benchmark, _experiment)
    header = "config          " + "".join(f"   N={n}" for n in CANDIDATE_N)
    lines = [header + "   (mean s/token)"]
    for (rate, alpha), points in rows.items():
        vals = "".join(f" {p.mean_time_per_token_s:6.3f}" for p in points)
        best = pick_optimal_n(points)
        lines.append(f"ar={rate:3.1f} zipf:{alpha:3.1f}{vals}  -> N*={best}")
    save_table("fig10_tune_n", lines)

    for points in rows.values():
        mtpt = {p.n_deltas: p.mean_time_per_token_s for p in points}
        best = pick_optimal_n(points)
        # N=1 is never optimal; the chosen N clearly beats it
        assert best > 1
        assert mtpt[best] < mtpt[1]
    # the profiling-selected N is small (paper picks N=3 on this setup)
    picks = [pick_optimal_n(p) for p in rows.values()]
    assert all(2 <= n <= 6 for n in picks)
