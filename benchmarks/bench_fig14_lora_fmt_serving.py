"""Fig 14: co-serving LoRA and FMT models — DeltaZip vs vLLM(+Punica/SCB).

Paper setup: LoRA adapters served on one node, FMT variants on another.
For LoRA serving DeltaZip matches vLLM-with-Punica (it inherits the same
kernels); for FMT serving DeltaZip's compressed deltas crush the
swap-full-models baseline.
"""

from conftest import run_once, save_table
from repro.workload import trace_from_distribution
from serving_common import (a800_node, delta_manager, deltazip_engine,
                            full_manager, lora_manager, scb_engine)

N_MODELS = 16
RATE = 0.8
SECONDS = 180.0


def _experiment():
    trace = trace_from_distribution("zipf:1.5", N_MODELS, rate=RATE,
                                    duration_s=SECONDS, seed=2)
    # LoRA node: both systems batch adapters with Punica-style kernels
    lora_vllm = deltazip_engine(lora_manager(n_models=N_MODELS),
                                a800_node(4), n_deltas=16,
                                variant_kind="lora").run(trace)
    lora_dz = deltazip_engine(lora_manager(n_models=N_MODELS),
                              a800_node(4), n_deltas=16,
                              variant_kind="lora").run(trace)
    # FMT node: vLLM+SCB swaps full models; DeltaZip serves deltas
    fmt_vllm = scb_engine(full_manager(n_models=N_MODELS),
                          a800_node(4)).run(trace)
    fmt_dz = deltazip_engine(delta_manager(n_models=N_MODELS),
                             a800_node(4), n_deltas=8).run(trace)
    return {
        "lora": {"vllm": lora_vllm, "deltazip": lora_dz},
        "fmt": {"vllm": fmt_vllm, "deltazip": fmt_dz},
    }


def test_fig14_lora_fmt_serving(benchmark):
    out = run_once(benchmark, _experiment)
    lines = [f"{'workload':8s} {'system':9s} {'E2E(s)':>8s} {'TTFT(s)':>8s}"]
    for workload, systems in out.items():
        for name, res in systems.items():
            lines.append(f"{workload:8s} {name:9s} "
                         f"{res.mean_e2e_latency_s():8.2f} "
                         f"{res.mean_ttft_s():8.3f}")
    save_table("fig14_lora_fmt_serving", lines)

    lora = out["lora"]
    fmt = out["fmt"]
    # LoRA serving: DeltaZip ~= vLLM+Punica (same mechanism)
    assert abs(lora["deltazip"].mean_e2e_latency_s()
               - lora["vllm"].mean_e2e_latency_s()) < 0.2 * \
        lora["vllm"].mean_e2e_latency_s() + 0.1
    # FMT serving: DeltaZip is far faster than swapping full models
    assert fmt["deltazip"].mean_e2e_latency_s() < \
        fmt["vllm"].mean_e2e_latency_s() / 3
    assert fmt["deltazip"].mean_ttft_s() < fmt["vllm"].mean_ttft_s() / 5
