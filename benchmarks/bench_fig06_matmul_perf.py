"""Fig 6: (compressed) matrix-multiplication performance vs input size.

Paper's microbenchmark: normalized achieved FLOPs for FP16, INT1/2/4
(quantization-only) and sparse INT4 kernels as the input size sweeps from
decode-scale (1-4 rows) to prefill-scale (16-4096).  Headline: sparse INT4
reaches ~1.6x the dense FP16 peak at large inputs.
"""

from conftest import run_once, save_table
from repro.hardware import A800, GemmShape, achieved_flops_ratio


INPUT_SIZES = [1, 2, 4, 8, 16, 64, 256, 1024, 4096]
K = N = 4096


def _experiment():
    rows = []
    for m in INPUT_SIZES:
        shape = GemmShape(m, K, N)
        rows.append({
            "m": m,
            "fp16": achieved_flops_ratio(shape, A800, "fp16"),
            "int4": achieved_flops_ratio(shape, A800, "quant", 4),
            "int2": achieved_flops_ratio(shape, A800, "quant", 2),
            "int1": achieved_flops_ratio(shape, A800, "quant", 1),
            "sparse_int4": achieved_flops_ratio(shape, A800, "sparse_quant", 4),
        })
    return rows


def test_fig06_matmul_perf(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'input':>6s} {'fp16':>7s} {'int4':>7s} {'int2':>7s} "
             f"{'sp-int4':>8s}   (achieved flops / dense fp16 peak)"]
    for r in rows:
        lines.append(f"{r['m']:6d} {r['fp16']:7.3f} {r['int4']:7.3f} "
                     f"{r['int2']:7.3f} {r['sparse_int4']:8.3f}")
    save_table("fig06_matmul_perf", lines)

    small = rows[0]
    large = rows[-1]
    # decode regime: compressed kernels beat fp16 (memory-bound)
    assert small["sparse_int4"] > 3 * small["fp16"]
    assert small["int2"] > small["int4"] > small["fp16"]
    # prefill regime: sparse tensor cores exceed the dense peak ~1.6x
    assert large["sparse_int4"] > 1.4 * large["fp16"]
    # quantization-only plateaus at the dense peak
    assert abs(large["int4"] - large["fp16"]) / large["fp16"] < 0.05
