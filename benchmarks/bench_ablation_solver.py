"""Ablation (DESIGN.md): solver and grid choices inside ΔCompress.

* OBS calibration vs round-to-nearest at 2 bits (why Algorithm 1 solves a
  least-squares problem instead of rounding);
* quantization group size: smaller groups fit the grid better but pay more
  scale/zero metadata.
"""

import numpy as np

from conftest import run_once, save_table
from repro.compression import CompressionConfig, DeltaCompressor
from repro.nn import TransformerModel

GROUP_SIZES = [8, 16, 32, 64]


def _logit_mse(artifact, base_state, fmt, toks):
    model = TransformerModel(fmt.model.config, seed=0)
    model.load_state_dict(artifact.to_state_dict(base_state))
    return float(np.mean((fmt.model(toks) - model(toks)) ** 2))


def _experiment(quality_base, quality_checkpoints):
    fmt = quality_checkpoints["review"]["fmt"]
    base_state = quality_base.state_dict()
    toks = fmt.calibration_tokens[:16]

    solver_rows = []
    for label, algorithm in [("OBS", "obs"), ("RTN", "rtn")]:
        config = CompressionConfig(bits=2, sparsity_n=2, sparsity_m=4,
                                   algorithm=algorithm)
        art = DeltaCompressor(config).compress(fmt.model, base_state,
                                               fmt.calibration_tokens)
        solver_rows.append({"label": label,
                            "mse": _logit_mse(art, base_state, fmt, toks),
                            "ratio": art.compression_ratio()})

    group_rows = []
    for group in GROUP_SIZES:
        config = CompressionConfig(bits=4, sparsity_n=2, sparsity_m=4,
                                   group_size=group)
        art = DeltaCompressor(config).compress(fmt.model, base_state,
                                               fmt.calibration_tokens)
        group_rows.append({"group": group,
                           "mse": _logit_mse(art, base_state, fmt, toks),
                           "linear_ratio": art.linear_compression_ratio()})
    return solver_rows, group_rows


def test_ablation_solver(benchmark, quality_base, quality_checkpoints):
    solver_rows, group_rows = run_once(benchmark, _experiment, quality_base,
                                       quality_checkpoints)
    lines = ["solver (2-bit + 2:4):"]
    for r in solver_rows:
        lines.append(f"  {r['label']:4s} logit-MSE {r['mse']:.5f}  "
                     f"ratio {r['ratio']:.2f}x")
    lines.append("\ngroup size (4-bit + 2:4):")
    for r in group_rows:
        lines.append(f"  g={r['group']:<3d} logit-MSE {r['mse']:.5f}  "
                     f"linear-ratio {r['linear_ratio']:.2f}x")
    save_table("ablation_solver", lines)

    by = {r["label"]: r for r in solver_rows}
    assert by["OBS"]["mse"] < by["RTN"]["mse"]
    # smaller groups fit better but compress less
    assert group_rows[0]["mse"] <= group_rows[-1]["mse"] * 1.5
    assert group_rows[0]["linear_ratio"] < group_rows[-1]["linear_ratio"]
