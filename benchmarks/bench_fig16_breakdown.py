"""Fig 16: per-request latency breakdown (queuing / loading / inference).

Paper's small-scale visualization: 12 models, arrival rate 0.5 req/s, 60 s.
The baseline's time is dominated by queuing and full-model loading;
DeltaZip's requests spend almost all their lifetime in inference.
(The paper uses 2x RTX 3090 with a 13B model; we use 1x 3090 with the 7B
spec — same memory-tightness regime.)
"""

import numpy as np

from conftest import run_once, save_table
from repro.serving import LLAMA_7B
from repro.workload import trace_from_distribution
from serving_common import (DELTA_RATIO_7B, delta_manager, deltazip_engine,
                            full_manager, rtx3090_node, scb_engine)


def _experiment():
    trace = trace_from_distribution("zipf:1.5", 12, rate=0.5,
                                    duration_s=60.0, seed=6)
    node = rtx3090_node(1)
    scb = scb_engine(full_manager(LLAMA_7B, n_models=12), node,
                     tp=1).run(trace, collect_timeline=True)
    dz = deltazip_engine(delta_manager(LLAMA_7B, n_models=12,
                                       ratio=DELTA_RATIO_7B),
                         node, n_deltas=3, tp=1).run(trace,
                                                     collect_timeline=True)
    return {"vllm_scb": scb, "deltazip": dz}


def _phases(result):
    queue = [r.queue_wait_s for r in result.records]
    load = [r.loading_s for r in result.records]
    infer = [r.inference_s for r in result.records]
    return (float(np.mean(queue)), float(np.mean(load)),
            float(np.mean(infer)))


def test_fig16_breakdown(benchmark):
    out = run_once(benchmark, _experiment)
    lines = [f"{'system':9s} {'queue(s)':>9s} {'load(s)':>8s} "
             f"{'infer(s)':>9s} {'makespan':>9s}"]
    for name, result in out.items():
        q, l, i = _phases(result)
        lines.append(f"{name:9s} {q:9.2f} {l:8.2f} {i:9.2f} "
                     f"{result.makespan_s:9.1f}")
    lines.append("\nper-request timeline (first 10 of each):")
    for name, result in out.items():
        lines.append(f"  {name}:")
        for ev in sorted(result.config["timeline"],
                         key=lambda e: e.arrival_s)[:10]:
            lines.append(
                f"    {ev.model_id:12s} arrive={ev.arrival_s:6.1f} "
                f"queued->{ev.queue_until_s:6.1f} "
                f"loaded->{ev.loading_until_s:6.1f} "
                f"finish->{ev.finish_s:6.1f}")
    save_table("fig16_breakdown", lines)

    scb_q, scb_l, scb_i = _phases(out["vllm_scb"])
    dz_q, dz_l, dz_i = _phases(out["deltazip"])
    # baseline: queuing + loading dominate; DeltaZip: inference dominates
    assert scb_q + scb_l > scb_i
    assert dz_q + dz_l < scb_q + scb_l
    assert dz_l < scb_l / 3  # deltas are 5-10x smaller to load
    # overall completion is several times faster (paper: ~400s vs ~80s)
    assert out["deltazip"].makespan_s < out["vllm_scb"].makespan_s
