"""Cost-effectiveness study (paper §8/§9's deployment guidance).

Dedicated per-variant GPU groups minimize latency but burn idle GPU-hours
on sporadic variants; a shared DeltaZip pool serves the same long-tail
traffic on a fraction of the hardware at a modest latency premium.
"""

from conftest import run_once, save_table
from repro.serving import DedicatedEngine, EngineConfig
from repro.serving.economics import compare_deployments, deployment_cost
from repro.workload import trace_from_distribution
from serving_common import (a800_node, delta_manager, deltazip_engine,
                            full_manager)

N_MODELS = 16
RATE = 0.5
SECONDS = 300.0


def _experiment():
    trace = trace_from_distribution("zipf:1.5", N_MODELS, rate=RATE,
                                    duration_s=SECONDS, seed=13)
    node = a800_node(4)
    shared_run = deltazip_engine(delta_manager(n_models=N_MODELS), node,
                                 n_deltas=8).run(trace)
    dedicated_run = DedicatedEngine(full_manager(n_models=N_MODELS), node,
                                    EngineConfig(tp_degree=4)).run(trace)
    gpu = node.gpu_spec
    # both deployments are provisioned for the whole trace window
    shared = deployment_cost(shared_run, gpu, n_gpus=4, system="deltazip",
                             wall_seconds=SECONDS)
    dedicated = deployment_cost(dedicated_run, gpu,
                                n_gpus=4 * N_MODELS, system="dedicated",
                                wall_seconds=SECONDS)
    return shared, dedicated


def test_cost_efficiency(benchmark):
    shared, dedicated = run_once(benchmark, _experiment)
    comparison = compare_deployments(shared, dedicated)
    lines = [shared.row(), dedicated.row(), ""]
    lines.append(f"cost saving: {comparison['cost_saving_factor']:.1f}x "
                 f"cheaper per 1k requests")
    lines.append(f"latency penalty: "
                 f"{comparison['latency_penalty_factor']:.2f}x mean E2E")
    lines.append(f"GPU reduction: "
                 f"{comparison['gpu_reduction_factor']:.0f}x fewer GPUs")
    save_table("cost_efficiency", lines)

    # the paper's conclusion: large cost saving, bounded latency premium
    assert comparison["gpu_reduction_factor"] == N_MODELS
    assert comparison["cost_saving_factor"] > 4.0
    assert comparison["latency_penalty_factor"] < 10.0
