"""Prefix/KV-cache reuse: repeat-turn TTFT and throughput vs cache on/off.

Multi-turn conversations replay their entire accumulated context on every
turn; without prefix reuse the engine re-prefills tokens whose KV state it
already computed.  This driver sweeps prefix-share regimes (no shared
prefix / medium / high) over a session trace and measures, per cell and
per cache mode:

* **repeat-turn TTFT p50** — first-token latency for turns ≥ 2 of a
  conversation (the turns a radix prefix hit can accelerate);
* **goodput** — finished requests per second;
* **hit rate / saved prefill tokens** — from the engine's counters.

Expected shape: with caching on, repeat turns skip re-prefilling the
cached context and TTFT collapses toward the cost of the new suffix
alone; the high-share regime must show at least ``MIN_REPEAT_TTFT_SPEEDUP``.
The driver also asserts the two determinism contracts: a cache-off run
must be record-identical to the same trace with all conversation metadata
stripped (the metadata is inert unless caching is enabled), and a
cache-on run must be record-identical across repeated runs.

Run: ``PYTHONPATH=src python benchmarks/bench_prefix_cache.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_7B, ModelManager,
                           SchedulerConfig, ServingGateway, create_engine)
from repro.workload import Trace, TraceRequest, session_trace

N_MODELS = 4
TRACE_SEED = 23
#: conversation starts per second — light enough that turn k usually
#: retires (committing its prefix) before turn k+1 arrives
CONV_RATE = 0.15
PREFIX_BLOCK_TOKENS = 16
#: repeat-turn TTFT p50 improvement floor for the high-share regime
MIN_REPEAT_TTFT_SPEEDUP = 2.0

#: (label, shared system-prompt tokens, mean turns per conversation)
REGIMES = [
    ("none", 0, 1.5),
    ("medium", 128, 3.0),
    ("high", 256, 6.0),
]


def make_manager() -> ModelManager:
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def make_gateway(mgr: ModelManager, prefix_cache: bool) -> ServingGateway:
    engine = create_engine(
        "deltazip", mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(
            tp_degree=1, prefix_cache=prefix_cache,
            prefix_block_tokens=PREFIX_BLOCK_TOKENS))
    return ServingGateway(engine)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s, rec.status)


def full_key(rec):
    return record_key(rec) + (rec.conversation_id, rec.cached_prefix_tokens)


def strip_metadata(trace: Trace) -> Trace:
    """The same trace with every conversation/prefix tag removed —
    what a pre-prefix-cache trace generator would have produced."""
    requests = [TraceRequest(request_id=r.request_id, model_id=r.model_id,
                             arrival_s=r.arrival_s,
                             prompt_tokens=r.prompt_tokens,
                             output_tokens=r.output_tokens,
                             tenant_id=r.tenant_id, deadline_s=r.deadline_s)
                for r in trace.requests]
    return Trace(requests=requests, model_ids=list(trace.model_ids),
                 duration_s=trace.duration_s)


def repeat_turn_ttfts(records):
    """TTFTs of finished turns ≥ 2, grouped per conversation."""
    convs = {}
    for rec in records:
        if rec.conversation_id is not None and rec.status == "finished":
            convs.setdefault(rec.conversation_id, []).append(rec)
    out = []
    for recs in convs.values():
        recs.sort(key=lambda r: (r.arrival_s, r.request_id))
        out.extend(r.ttft_s for r in recs[1:])
    return out


def run_cell(mgr, trace, prefix_cache: bool):
    gateway = make_gateway(mgr, prefix_cache)
    start = time.perf_counter()
    result = gateway.replay(trace)
    wall_s = time.perf_counter() - start
    repeats = repeat_turn_ttfts(result.records)
    stats = result.stats
    prompt_total = sum(r.prompt_tokens for r in trace.requests)
    cell = {
        "prefix_cache": prefix_cache,
        "n_requests": result.n_requests,
        "n_finished": result.n_finished,
        "n_repeat_turns": len(repeats),
        "repeat_ttft_p50_s": statistics.median(repeats) if repeats else 0.0,
        "ttft_p50_s": result.percentile_ttft_s(50),
        "goodput_rps": result.goodput_rps(),
        "prefix_hit_rate": stats.prefix_hit_rate if stats else 0.0,
        "prefix_saved_tokens": stats.prefix_hit_tokens if stats else 0,
        "saved_prefill_fraction":
            (stats.prefix_hit_tokens / prompt_total)
            if stats and prompt_total else 0.0,
        "wall_s": wall_s,
    }
    return cell, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter trace for CI smoke runs")
    parser.add_argument("--out", default="BENCH_prefix.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)

    duration_s = 240.0 if args.quick else 600.0
    mgr = make_manager()

    # determinism contracts, checked on the high-share regime
    _, shared, turns = REGIMES[-1]
    probe = session_trace(N_MODELS, CONV_RATE, duration_s, seed=TRACE_SEED,
                          shared_prefix_tokens=shared, mean_turns=turns)

    # 1. metadata inertness: cache-off on the tagged trace must be
    #    bit-identical to cache-off on the same trace stripped of every
    #    conversation/prefix tag (the pre-PR record stream)
    tagged = make_gateway(mgr, prefix_cache=False).replay(probe)
    stripped = make_gateway(mgr, prefix_cache=False).replay(
        strip_metadata(probe))
    off_identical = [record_key(r) for r in tagged.records] == \
        [record_key(r) for r in stripped.records]
    if not off_identical:
        print("FAIL: conversation metadata changed a cache-off replay")
        return 1
    assert all(r.cached_prefix_tokens == 0 for r in tagged.records), \
        "cache-off records must never report cached prefix tokens"

    # 2. cache-on determinism: two runs over the same trace must agree
    #    on every record, including the cached-prefix accounting
    on_a = make_gateway(mgr, prefix_cache=True).replay(probe)
    on_b = make_gateway(mgr, prefix_cache=True).replay(probe)
    on_identical = [full_key(r) for r in on_a.records] == \
        [full_key(r) for r in on_b.records]
    if not on_identical:
        print("FAIL: cache-on replay is not run-to-run deterministic")
        return 1

    regimes = []
    print(f"{'regime':>8s} {'cache':>5s} {'turns':>5s} {'rep_p50':>8s} "
          f"{'p50_ttft':>9s} {'goodput':>8s} {'hit':>5s} {'saved':>7s}")
    for label, shared, turns in REGIMES:
        trace = session_trace(N_MODELS, CONV_RATE, duration_s,
                              seed=TRACE_SEED, shared_prefix_tokens=shared,
                              mean_turns=turns)
        row = {"regime": label, "shared_prefix_tokens": shared,
               "mean_turns": turns, "cells": {}}
        for prefix_cache in (False, True):
            cell, _ = run_cell(mgr, trace, prefix_cache)
            row["cells"]["on" if prefix_cache else "off"] = cell
            print(f"{label:>8s} {'on' if prefix_cache else 'off':>5s} "
                  f"{cell['n_repeat_turns']:5d} "
                  f"{cell['repeat_ttft_p50_s']:8.4f} "
                  f"{cell['ttft_p50_s']:9.4f} {cell['goodput_rps']:8.3f} "
                  f"{cell['prefix_hit_rate']:5.2f} "
                  f"{cell['prefix_saved_tokens']:7d}")
        regimes.append(row)

    high = regimes[-1]["cells"]
    speedup = high["off"]["repeat_ttft_p50_s"] / \
        max(high["on"]["repeat_ttft_p50_s"], 1e-9)

    payload = {
        "benchmark": "prefix_cache",
        "quick": args.quick,
        "conv_rate_per_s": CONV_RATE,
        "duration_s": duration_s,
        "prefix_block_tokens": PREFIX_BLOCK_TOKENS,
        "regimes": regimes,
        "cache_off_records_identical": off_identical,
        "cache_on_run_to_run_identical": on_identical,
        "high_share_repeat_ttft_speedup": speedup,
        "min_required_speedup": MIN_REPEAT_TTFT_SPEEDUP,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
    print(f"\nwrote {args.out}; high-share repeat-turn TTFT p50 improved "
          f"{speedup:.2f}x with caching (floor {MIN_REPEAT_TTFT_SPEEDUP}x)")

    if high["on"]["prefix_hit_rate"] <= 0.0:
        print("FAIL: the high-share cache-on cell never hit the cache")
        return 1
    if high["on"]["n_repeat_turns"] == 0:
        print("FAIL: the high-share regime produced no repeat turns")
        return 1
    if speedup < MIN_REPEAT_TTFT_SPEEDUP:
        print("FAIL: prefix reuse must cut repeat-turn TTFT p50 by "
              f"{MIN_REPEAT_TTFT_SPEEDUP}x on the high-share regime")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
