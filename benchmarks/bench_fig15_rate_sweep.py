"""Fig 15: latency/TTFT vs arrival rate — delta, full-model, LoRA serving.

Paper's ordering: swapping full models saturates first; compressed deltas
and LoRA adapters stay efficient much longer, with LoRA slightly ahead of
deltas thanks to its smaller footprint.
"""

from conftest import run_once, save_table
from repro.workload import trace_from_distribution
from serving_common import (a800_node, delta_manager, deltazip_engine,
                            full_manager, lora_manager, scb_engine)

RATES = [0.25, 0.5, 1.0, 2.0, 4.0]
N_MODELS = 16
SECONDS = 150.0


def _experiment():
    rows = []
    for rate in RATES:
        trace = trace_from_distribution("zipf:1.5", N_MODELS, rate=rate,
                                        duration_s=SECONDS, seed=4)
        full = scb_engine(full_manager(n_models=N_MODELS),
                          a800_node(4)).run(trace)
        delta = deltazip_engine(delta_manager(n_models=N_MODELS),
                                a800_node(4), n_deltas=8).run(trace)
        lora16 = deltazip_engine(lora_manager(n_models=N_MODELS, rank=16),
                                 a800_node(4), n_deltas=16,
                                 variant_kind="lora",
                                 lora_rank=16).run(trace)
        lora64 = deltazip_engine(lora_manager(n_models=N_MODELS, rank=64),
                                 a800_node(4), n_deltas=16,
                                 variant_kind="lora",
                                 lora_rank=64).run(trace)
        rows.append({"rate": rate,
                     "full": full, "delta": delta,
                     "lora16": lora16, "lora64": lora64})
    return rows


def test_fig15_rate_sweep(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'rate':>5s} | {'full_e2e':>9s} {'delta_e2e':>9s} "
             f"{'l16_e2e':>8s} {'l64_e2e':>8s} | {'full_ttft':>9s} "
             f"{'delta_ttft':>10s} {'l16_ttft':>8s}  (s)"]
    for r in rows:
        lines.append(
            f"{r['rate']:5.2f} | {r['full'].mean_e2e_latency_s():9.1f} "
            f"{r['delta'].mean_e2e_latency_s():9.2f} "
            f"{r['lora16'].mean_e2e_latency_s():8.2f} "
            f"{r['lora64'].mean_e2e_latency_s():8.2f} | "
            f"{r['full'].mean_ttft_s():9.1f} "
            f"{r['delta'].mean_ttft_s():10.3f} "
            f"{r['lora16'].mean_ttft_s():8.3f}")
    save_table("fig15_rate_sweep", lines)

    for r in rows:
        # full-model swapping is the clear loser at every rate
        assert r["delta"].mean_e2e_latency_s() < \
            r["full"].mean_e2e_latency_s()
        # LoRA is at least as cheap as compressed deltas (smaller payloads)
        assert r["lora16"].mean_e2e_latency_s() <= \
            r["delta"].mean_e2e_latency_s() * 1.25
    # the baseline degrades with rate much faster than delta serving
    full_growth = rows[-1]["full"].mean_e2e_latency_s() / \
        max(rows[0]["full"].mean_e2e_latency_s(), 1e-9)
    delta_growth = rows[-1]["delta"].mean_e2e_latency_s() / \
        max(rows[0]["delta"].mean_e2e_latency_s(), 1e-9)
    assert delta_growth < full_growth
