"""Fig 5: compression-pipeline byte walk (1.77x pruned, 5.33x/8x packed).

Checks the analytic stage ratios annotated in the figure and the measured
byte breakdown of a real compressed artifact.
"""

import numpy as np
import pytest

from conftest import run_once, save_table
from repro.compression import (CompressionConfig, DeltaCompressor,
                               artifact_summary, pipeline_stage_bytes)


def _experiment(quality_base, quality_checkpoints):
    fmt = quality_checkpoints["review"]["fmt"]
    base_state = quality_base.state_dict()
    walks = {}
    for label, config in [("4bit", CompressionConfig.deltazip_4bit()),
                          ("2bit", CompressionConfig.deltazip_2bit())]:
        walks[label] = pipeline_stage_bytes(config, n_weights=64)
    artifacts = {}
    for label, config in [
            ("4bit", CompressionConfig.deltazip_4bit()),
            ("2bit", CompressionConfig.deltazip_2bit()),
            ("2bit+lossless", CompressionConfig.deltazip_2bit(lossless=True))]:
        art = DeltaCompressor(config).compress(
            fmt.model, base_state, fmt.calibration_tokens)
        artifacts[label] = artifact_summary(art)
    return walks, artifacts


def test_fig05_pipeline_ratio(benchmark, quality_base, quality_checkpoints):
    walks, artifacts = run_once(benchmark, _experiment, quality_base,
                                quality_checkpoints)
    lines = ["analytic 64-weight stage walk:"]
    for label, stages in walks.items():
        for s in stages:
            lines.append(f"  {label}: {s.stage:14s} {s.nbytes:6.1f} B  "
                         f"cumulative x{s.cumulative_ratio:.2f}")
    lines.append("\nmeasured artifacts (trained checkpoint):")
    for label, s in artifacts.items():
        lines.append(f"  {label:14s} linear-ratio x"
                     f"{s['linear_compression_ratio']:.2f}  end-to-end x"
                     f"{s['compression_ratio']:.2f}  "
                     f"(values {s['value_bytes']:.0f} B, indices "
                     f"{s['index_bytes']:.0f} B, metadata "
                     f"{s['metadata_bytes']:.0f} B)")
    save_table("fig05_pipeline_ratio", lines)

    # Fig 5 annotations: 1.77x after pruning; 5.33x / 8x after packing
    four = {s.stage: s.cumulative_ratio for s in walks["4bit"]}
    two = {s.stage: s.cumulative_ratio for s in walks["2bit"]}
    assert four["2:4 pruned"] == pytest.approx(1.78, abs=0.01)
    assert four["int4 packed"] == pytest.approx(5.33, abs=0.01)
    assert two["int2 packed"] == pytest.approx(8.0, abs=0.01)
    # measured artifacts respect the analytic bound (grid metadata costs)
    assert artifacts["4bit"]["linear_compression_ratio"] < 5.34
    assert artifacts["2bit"]["linear_compression_ratio"] > \
        artifacts["4bit"]["linear_compression_ratio"]
