"""Fig 18: tensor-parallel scaling of DeltaZip.

Paper: 7B on 1x/2x RTX 3090 and 13B on 2x/4x A800 — latency drops with
more GPUs, and the drop is larger on the NVLink-connected A800 platform.
"""

from conftest import run_once, save_table
from repro.serving import LLAMA_13B, LLAMA_7B
from repro.workload import trace_from_distribution
from serving_common import (DELTA_RATIO_7B, a800_node, delta_manager,
                            deltazip_engine, rtx3090_node)

SECONDS = 120.0


def _experiment():
    rows = []
    trace7 = trace_from_distribution("zipf:1.5", 12, rate=1.5,
                                     duration_s=SECONDS, seed=8)
    for tp in (1, 2):
        mgr = delta_manager(LLAMA_7B, n_models=12, ratio=DELTA_RATIO_7B)
        res = deltazip_engine(mgr, rtx3090_node(2), n_deltas=3,
                              tp=tp).run(trace7)
        rows.append({"model": "7B", "platform": f"{tp}x3090",
                     "e2e": res.mean_e2e_latency_s(),
                     "ttft": res.mean_ttft_s()})
    trace13 = trace_from_distribution("zipf:1.5", 24, rate=1.5,
                                      duration_s=SECONDS, seed=8)
    for tp in (2, 4):
        mgr = delta_manager(LLAMA_13B, n_models=24)
        res = deltazip_engine(mgr, a800_node(4), n_deltas=8,
                              tp=tp).run(trace13)
        rows.append({"model": "13B", "platform": f"{tp}xA800",
                     "e2e": res.mean_e2e_latency_s(),
                     "ttft": res.mean_ttft_s()})
    return rows


def test_fig18_parallelism(benchmark):
    rows = run_once(benchmark, _experiment)
    lines = [f"{'model':>6s} {'platform':>9s} {'E2E(s)':>8s} {'TTFT(s)':>8s}"]
    for r in rows:
        lines.append(f"{r['model']:>6s} {r['platform']:>9s} "
                     f"{r['e2e']:8.2f} {r['ttft']:8.3f}")
    save_table("fig18_parallelism", lines)

    by = {(r["model"], r["platform"]): r for r in rows}
    # more GPUs -> lower latency on both platforms (the figure's headline)
    assert by[("7B", "2x3090")]["e2e"] < by[("7B", "1x3090")]["e2e"]
    assert by[("13B", "4xA800")]["e2e"] < by[("13B", "2xA800")]["e2e"]
    assert by[("7B", "2x3090")]["ttft"] <= by[("7B", "1x3090")]["ttft"]
    # note: in our cost model the 3090 gains more from TP=2 than the paper
    # reports, because the single-3090 configuration is memory-pressure
    # bound (deltas + KV in 24 GB) and doubling the pool relieves it; the
    # paper's larger A800 gain comes from faster inter-GPU links, which we
    # also model (see EXPERIMENTS.md).
