"""Fig 19: starvation handling — FCFS+skip-the-line with vs without
parent-finish preemption.

Paper reports improved P90 SLO: +18.8% (E2E) and +49% (TTFT) with
preemption on a starvation-prone skewed trace.
"""

import numpy as np

from conftest import run_once, save_table
from repro.serving import LLAMA_7B, slo_attainment
from repro.workload import trace_from_distribution
from serving_common import (DELTA_RATIO_7B, delta_manager, deltazip_engine,
                            rtx3090_node)

SLO_GRID = [1, 2, 5, 10, 20, 40, 80, 160]


def _experiment():
    # heavy skew + high rate: the popular variant's stream of arrivals
    # keeps skipping the line, starving the tail without preemption
    trace = trace_from_distribution("zipf:2.0", 12, rate=2.5,
                                    duration_s=120.0, seed=11)
    node = rtx3090_node(1)
    out = {}
    for label, preemption in [("with_preemption", True),
                              ("fcfs_skip_only", False)]:
        mgr = delta_manager(LLAMA_7B, n_models=12, ratio=DELTA_RATIO_7B)
        out[label] = deltazip_engine(mgr, node, n_deltas=3, tp=1, k=24,
                                     preemption=preemption).run(trace)
    return out


def test_fig19_preemption(benchmark):
    out = run_once(benchmark, _experiment)
    lines = [f"SLO grid (s): {SLO_GRID}"]
    for metric in ("e2e", "ttft"):
        for label, res in out.items():
            vals = " ".join(f"{slo_attainment(res.records, s, metric):5.2f}"
                            for s in SLO_GRID)
            lines.append(f"{metric:4s} {label:16s} {vals}")
    p90 = {label: (res.percentile_e2e_s(90), res.percentile_ttft_s(90))
           for label, res in out.items()}
    for label, (e2e, ttft) in p90.items():
        lines.append(f"{label:16s} P90 E2E={e2e:7.2f}s  P90 TTFT={ttft:7.2f}s")
    improvement_e2e = (p90["fcfs_skip_only"][0] - p90["with_preemption"][0]) \
        / max(p90["fcfs_skip_only"][0], 1e-9)
    improvement_ttft = (p90["fcfs_skip_only"][1] - p90["with_preemption"][1]) \
        / max(p90["fcfs_skip_only"][1], 1e-9)
    lines.append(f"\nP90 improvement with preemption: "
                 f"E2E {100 * improvement_e2e:+.1f}%  "
                 f"TTFT {100 * improvement_ttft:+.1f}% "
                 f"(paper: +18.8% / +49.0%)")
    save_table("fig19_preemption", lines)

    # preemption must not hurt the tail, and should help TTFT
    assert p90["with_preemption"][1] <= p90["fcfs_skip_only"][1] * 1.05
    assert p90["with_preemption"][0] <= p90["fcfs_skip_only"][0] * 1.10
