"""Online serving through the gateway: closed-loop interactive clients.

Offline traces fix every arrival before the simulation starts; the
``ServingGateway`` instead accepts requests *while the system runs*, which
is what real frontends do.  This example simulates a pool of chat users in
closed loop: each user submits a request, waits for its completion (via the
gateway's completion callback), "thinks" for a moment, then sends a
follow-up to the same variant — arrival times therefore depend on the
system's own latency, something no pre-baked Trace can express.

Run:  python examples/online_gateway.py
"""

import numpy as np

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_13B, ModelManager,
                           SchedulerConfig, ServingGateway, create_engine)

N_VARIANTS = 16
N_USERS = 24
TURNS_PER_USER = 4
THINK_TIME_S = 5.0


def main():
    rng = np.random.default_rng(0)
    node = GPUNode(node_from_name("a800", 4))
    manager = ModelManager(LLAMA_13B)
    manager.register_base("llama-13b")
    for i in range(N_VARIANTS):
        manager.register_delta(f"variant-{i:02d}", "llama-13b", 10.0)

    engine = create_engine(
        "deltazip", manager, node,
        scheduler_config=SchedulerConfig(max_batch_requests=32,
                                         max_concurrent_deltas=8),
        engine_config=EngineConfig(tp_degree=4))

    turns_left = {}        # request_id -> (user's variant, remaining turns)
    followups = []         # completions to turn into next-turn submissions

    gateway = ServingGateway(engine,
                             on_request_complete=followups.append)

    def submit_turn(variant, turns, arrival_s=None):
        prompt = int(rng.integers(16, 256))
        output = int(rng.integers(8, 128))
        rid = gateway.submit(variant, prompt, output, arrival_s=arrival_s)
        turns_left[rid] = (variant, turns)

    # session start: every user opens a conversation with their variant
    for u in range(N_USERS):
        variant = f"variant-{u % N_VARIANTS:02d}"
        submit_turn(variant, TURNS_PER_USER - 1,
                    arrival_s=float(rng.uniform(0.0, 30.0)))

    while gateway.unfinished > 0:
        if not gateway.step():
            break
        # completed turns trigger the user's next message after a pause
        for record in followups:
            variant, turns = turns_left.pop(record.request_id)
            if turns > 0:
                think = float(rng.exponential(THINK_TIME_S))
                submit_turn(variant, turns - 1,
                            arrival_s=record.finish_s + think)
        followups.clear()

    result = gateway.result()
    print(f"served {result.n_requests} chat turns from {N_USERS} users "
          f"({result.makespan_s:.0f}s makespan)")
    print(f"  throughput        {result.throughput_rps():.2f} req/s")
    print(f"  mean TTFT         {result.mean_ttft_s():.2f} s")
    print(f"  mean E2E latency  {result.mean_e2e_latency_s():.2f} s")
    print(f"  P90 E2E latency   {result.percentile_e2e_s(90):.2f} s")
    stats = result.stats
    print(f"  engine: {stats.iterations} iterations, "
          f"{stats.swap_ins} delta swap-ins, "
          f"mean batch {stats.mean_batch_size:.1f}")


if __name__ == "__main__":
    main()
