"""Compression ablation study: the ratio/quality frontier of ΔCompress.

Sweeps the pipeline's design axes on one fine-tuned checkpoint:

* bit width (2/4/8) x structured sparsity (dense vs 2:4),
* OBS calibration vs round-to-nearest (why Algorithm 1's solver matters),
* delta compression vs compressing the fine-tuned weights directly
  (why Fig 3's observation matters),
* quantization group size (metadata overhead vs grid fidelity).

Run:  python examples/compression_study.py
"""

from repro.compression import CompressionConfig, DeltaCompressor
from repro.evaluation import (evaluate_task, make_task, pretrain_base_model,
                              run_fmt)
from repro.nn import TransformerConfig, TransformerModel


def evaluate_config(label, config, fmt, base_state, task, model_config,
                    n_eval=80):
    artifact = DeltaCompressor(config).compress(
        fmt.model, base_state, fmt.calibration_tokens)
    model = TransformerModel(model_config, seed=0)
    model.load_state_dict(artifact.to_state_dict(base_state))
    acc = evaluate_task(model, task, n_eval).percent
    print(f"{label:34s} ratio {artifact.compression_ratio():5.2f}x "
          f"(linear {artifact.linear_compression_ratio():5.2f}x)  "
          f"accuracy {acc:5.1f}%")
    return acc


def main():
    config = TransformerConfig.small(vocab_size=128, max_seq=64)
    base = pretrain_base_model(config, n_sequences=256, epochs=6, seed=0)
    task = make_task("yesno")
    fmt = run_fmt(base, task, n_train=384, epochs=12, lr=1e-3, seed=0)
    base_state = base.state_dict()
    acc_fmt = evaluate_task(fmt.model, task, 80).percent
    print(f"uncompressed FMT accuracy: {acc_fmt:.1f}%\n")

    print("--- bits x sparsity (OBS, delta mode) ---")
    for bits in (8, 4, 2):
        for n, label in ((0, "dense"), (2, "2:4")):
            cfg = CompressionConfig(bits=bits, sparsity_n=n, sparsity_m=4)
            evaluate_config(f"delta {bits}-bit {label}", cfg, fmt,
                            base_state, task, config)

    print("\n--- solver ablation (2-bit + 2:4) ---")
    evaluate_config("OBS (ΔCompress)",
                    CompressionConfig.deltazip_2bit(), fmt, base_state,
                    task, config)
    evaluate_config("round-to-nearest",
                    CompressionConfig(bits=2, algorithm="rtn"), fmt,
                    base_state, task, config)

    print("\n--- delta vs direct weight compression (4-bit + 2:4) ---")
    evaluate_config("delta (ΔCompress)",
                    CompressionConfig.deltazip_4bit(), fmt, base_state,
                    task, config)
    evaluate_config("direct (SparseGPT-style)",
                    CompressionConfig.sparsegpt_4bit(), fmt, base_state,
                    task, config)

    print("\n--- group size (4-bit + 2:4) ---")
    for group in (16, 32, 64, 128):
        cfg = CompressionConfig(bits=4, sparsity_n=2, sparsity_m=4,
                                group_size=group)
        evaluate_config(f"group_size={group}", cfg, fmt, base_state, task,
                        config)


if __name__ == "__main__":
    main()
