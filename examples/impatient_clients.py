"""Impatient clients: abandonment lowers effective goodput.

Every ``submit()`` now returns a ``RequestHandle`` — the client's view of
one request: token streaming, status, ``cancel(at_s=...)``, deadlines.
This example uses handles two ways:

1. an interactive client streams its own tokens and cancels mid-response
   (a disconnect), showing the abort freeing the batch slot;
2. an overloaded replica serves the same trace under increasingly
   impatient client populations (``impatient_cancel_schedule``), showing
   goodput falling and the wasted-token fraction rising as patience
   shrinks — while the surviving requests actually finish *faster*
   because aborted work keeps releasing capacity;
3. a handle-driven closed-loop session schedules each next turn from its
   completion callback — as a fresh arrival event, no clock polling.

Run: ``PYTHONPATH=src python examples/impatient_clients.py``
"""

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_7B, ModelManager,
                           SchedulerConfig, ServingGateway, create_engine)
from repro.workload import (ClosedLoopClient, PatienceModel,
                            impatient_cancel_schedule, synthetic_trace)

N_MODELS = 4


def make_gateway():
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    engine = create_engine(
        "deltazip", mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(tp_degree=1))
    return ServingGateway(engine)


def streaming_disconnect():
    print("=== streaming + mid-response disconnect ===")
    gateway = make_gateway()
    handle = gateway.submit("variant-00", prompt_len=128, output_len=64)
    for clock_s, n_generated in handle.tokens:
        if n_generated == 8:          # the user closed the tab
            handle.cancel()
            break
    record = handle.result()          # drains to the terminal record
    print(f"request {handle.id}: status={handle.status.value}, "
          f"served {record.tokens_served}/{record.output_tokens} tokens, "
          f"finish={record.finish_s:.2f}s\n")


def abandonment_sweep():
    print("=== goodput vs client patience (overloaded replica) ===")
    trace = synthetic_trace(N_MODELS, rate=3.0, duration_s=60.0, seed=7)
    print(f"{'patience':>9s} {'finished':>8s} {'cancelled':>9s} "
          f"{'goodput':>8s} {'wasted':>7s} {'mean_e2e':>9s}")
    for patience_s in (None, 30.0, 10.0, 3.0):
        gateway = make_gateway()
        cancels = None
        if patience_s is not None:
            cancels = impatient_cancel_schedule(
                trace, PatienceModel(mean_s=patience_s), seed=1)
        result = gateway.replay(trace, cancels=cancels)
        label = "inf" if patience_s is None else f"{patience_s:.0f}s"
        print(f"{label:>9s} {result.n_finished:8d} "
              f"{result.status_counts().get('cancelled', 0):9d} "
              f"{result.goodput_rps():8.3f} "
              f"{result.wasted_token_fraction():7.1%} "
              f"{result.finished_only().mean_e2e_latency_s():9.2f}")
    print()


def closed_loop_session():
    print("=== handle-driven closed-loop session ===")
    gateway = make_gateway()
    client = ClosedLoopClient(gateway, "variant-01", n_turns=4,
                              prompt_tokens=96, output_tokens=24,
                              think_time_s=3.0)
    client.start()
    while not client.done and gateway.step():
        pass
    for i, handle in enumerate(client.handles):
        record = handle.record()
        print(f"turn {i}: arrival={record.arrival_s:7.2f}s "
              f"finish={record.finish_s:7.2f}s ({record.status})")
    print("each turn arrived exactly think-time after the previous finish")


if __name__ == "__main__":
    streaming_disconnect()
    abandonment_sweep()
    closed_loop_session()
