"""Operating a multi-base cluster: M base models, M GPU groups (§5.1).

A provider hosts variants of *two* different base models (a Llama-13B
family and a Pythia-2.8B family).  Per the paper, the cluster is divided
into one GPU set per base; the router sends each request to the group that
owns its variant's lineage, with per-model priorities for the premium
tenants (§8's constraint-aware scheduling).

Run:  python examples/multi_base_cluster.py
"""

import numpy as np

from repro.hardware import GPUNode, node_from_name
from repro.serving import (BaseModelGroup, EngineConfig, LLAMA_13B,
                           ModelManager, MultiBaseRouter, PYTHIA_2_8B,
                           SchedulerConfig)
from repro.workload.spec import LengthSampler, Trace, TraceRequest


def build_group(base_id, spec, n_variants, node, priorities=None):
    mgr = ModelManager(spec)
    mgr.register_base(base_id)
    for i in range(n_variants):
        mgr.register_delta(f"{base_id}-ft-{i:02d}", base_id,
                           compression_ratio=10.0)
    return BaseModelGroup(
        base_id=base_id, manager=mgr, node=node,
        scheduler_config=SchedulerConfig(max_batch_requests=32,
                                         max_concurrent_deltas=8,
                                         model_priorities=priorities),
        engine_config=EngineConfig(tp_degree=node.spec.n_gpus))


def mixed_trace(duration_s=180.0, rate=1.0, seed=0):
    """Requests interleaved across both families (70/30 split)."""
    rng = np.random.default_rng(seed)
    sampler = LengthSampler()
    requests = []
    t, rid = 0.0, 0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration_s:
            break
        if rng.random() < 0.7:
            model = f"llama-13b-ft-{int(rng.integers(16)):02d}"
        else:
            model = f"pythia-2.8b-ft-{int(rng.integers(8)):02d}"
        prompt, output = sampler.sample(rng)
        requests.append(TraceRequest(request_id=rid, model_id=model,
                                     arrival_s=t, prompt_tokens=prompt,
                                     output_tokens=output))
        rid += 1
    model_ids = sorted({r.model_id for r in requests})
    return Trace(requests=requests, model_ids=model_ids,
                 duration_s=duration_s)


def main():
    # premium tenant: llama variant 00 gets priority 10
    llama_group = build_group("llama-13b", LLAMA_13B, 16,
                              GPUNode(node_from_name("a800", 4)),
                              priorities={"llama-13b-ft-00": 10})
    pythia_group = build_group("pythia-2.8b", PYTHIA_2_8B, 8,
                               GPUNode(node_from_name("a800", 1)))
    pythia_group.engine_config = EngineConfig(tp_degree=1)
    router = MultiBaseRouter([llama_group, pythia_group])

    trace = mixed_trace()
    print(f"trace: {len(trace)} requests over {trace.duration_s:.0f}s "
          f"across {len(trace.model_ids)} variants of 2 base models")

    results = router.run(trace)
    print(f"\n{'group':14s} {'requests':>9s} {'thr(rps)':>9s} "
          f"{'mean_e2e':>9s} {'mean_ttft':>10s}")
    for name, res in results.items():
        if name == "__cluster__":
            continue
        print(f"{name:14s} {res.n_requests:9d} "
              f"{res.throughput_rps():9.3f} {res.mean_e2e_latency_s():9.2f} "
              f"{res.mean_ttft_s():10.3f}")
    cluster = results["__cluster__"]
    print(f"{'cluster':14s} {cluster.n_requests:9d} "
          f"{cluster.throughput_rps():9.3f} "
          f"{cluster.mean_e2e_latency_s():9.2f} "
          f"{cluster.mean_ttft_s():10.3f}")

    premium = [r for r in results["llama-13b"].records
               if r.model_id == "llama-13b-ft-00"]
    others = [r for r in results["llama-13b"].records
              if r.model_id != "llama-13b-ft-00"]
    if premium and others:
        p_ttft = float(np.mean([r.ttft_s for r in premium]))
        o_ttft = float(np.mean([r.ttft_s for r in others]))
        print(f"\npremium tenant mean TTFT {p_ttft:.3f}s vs "
              f"others {o_ttft:.3f}s (priority scheduling)")


if __name__ == "__main__":
    main()
