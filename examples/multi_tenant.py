"""Multi-tenant admission control walkthrough: buckets, VTC, shedding.

One serving replica, three tenants sharing it:

* ``agg`` — a batch tenant offering ~6 req/s, far beyond capacity;
* ``gold`` — a paying interactive tenant (2x fair-share weight, 10s SLO);
* ``silver`` — a standard tenant.

The script replays the same tenant-tagged trace through three admission
configurations — plain FCFS (the legacy behavior), VTC fair queueing, and
VTC plus SLO-aware shedding — and prints what each tenant experienced.
It then shows the online path: a token-bucket-limited tenant submitting
live requests and reading back its admission decisions.

Run:  python examples/multi_tenant.py
"""

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_7B, ModelManager,
                           SchedulerConfig, ServingGateway, Tenant,
                           TenantGateway, create_engine,
                           jain_fairness_index)
from repro.workload import TenantWorkload, multi_tenant_trace

DURATION_S = 90.0
SEED = 7

TENANTS = (
    Tenant("agg", weight=1.0, slo_class="batch"),
    Tenant("gold", weight=2.0, slo_class="interactive"),
    Tenant("silver", weight=1.0, slo_class="standard"),
)
WORKLOADS = (
    TenantWorkload("agg", rate=6.0, n_models=4),
    TenantWorkload("gold", rate=0.4, n_models=2),
    TenantWorkload("silver", rate=0.4, n_models=2),
)


def build_gateway(trace, policy, shed=False, tenants=TENANTS):
    manager = ModelManager(LLAMA_7B)
    manager.register_base("base")
    for model_id in trace.model_ids:
        manager.register_delta(model_id, "base", 8.0)
    engine = create_engine(
        "deltazip", manager, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(tp_degree=1))
    return TenantGateway(ServingGateway(engine), tenants=tenants,
                         policy=policy, shed=shed)


def replay_study():
    trace = multi_tenant_trace(WORKLOADS, duration_s=DURATION_S, seed=SEED)
    print(f"{len(trace)} requests over {DURATION_S:.0f}s from "
          f"{len(WORKLOADS)} tenants\n")
    for policy, shed in (("fcfs", False), ("vtc", False), ("vtc", True)):
        gateway = build_gateway(trace, policy, shed=shed)
        result = gateway.replay(trace)
        label = f"{policy}{' + shed' if shed else ''}"
        attainment = gateway.slo_attainment(result)
        print(f"=== {label}  ({result.n_requests}/{len(trace)} served) ===")
        print(f"{'tenant':8s} {'offered':>7s} {'done':>6s} {'shed':>5s} "
              f"{'p99_ttft':>9s} {'slo':>5s} {'attain':>7s}")
        for tenant in TENANTS:
            stats = gateway.controller.stats[tenant.tenant_id]
            sliced = result.for_tenant(tenant.tenant_id)
            print(f"{tenant.tenant_id:8s} {stats.offered:7d} "
                  f"{sliced.n_requests:6d} {stats.shed:5d} "
                  f"{sliced.percentile_ttft_s(99):9.2f} "
                  f"{tenant.slo_s:5.0f} "
                  f"{attainment[tenant.tenant_id]:7.1%}")
        print(f"Jain fairness: "
              f"{jain_fairness_index(list(attainment.values())):.3f}\n")


def online_token_bucket():
    """A rate-limited tenant submitting live: admit -> defer -> reject."""
    trace = multi_tenant_trace(WORKLOADS, duration_s=1.0, seed=SEED)
    gateway = build_gateway(
        trace, policy="fcfs",
        tenants=(Tenant("metered", rate_tokens_per_s=100.0,
                        burst_tokens=400.0, max_outstanding=6),))
    print("=== online: tenant 'metered' at 100 tokens/s, burst 400, "
          "quota 6 outstanding ===")
    for i in range(8):
        rid = gateway.submit("agg-variant-00", prompt_len=128, output_len=64,
                             tenant_id="metered")
        print(f"request {rid}: {gateway.decision(rid).value}")
    result = gateway.run_until_drained()
    stats = gateway.controller.stats["metered"]
    print(f"completed {result.n_requests}; admitted {stats.admitted}, "
          f"deferred {stats.deferred} (bucket refill), "
          f"rejected {stats.rejected} (quota)")


if __name__ == "__main__":
    replay_study()
    online_token_bucket()
