"""Queue-driven autoscaling over replicated serving gateways.

A triangular arrival-rate ramp is replayed through a ``ClusterGateway``
whose ``Autoscaler`` watches per-replica backlog: replicas spawn as the
ramp climbs, drain as it falls, and every replica keeps its own simulated
clock while the balancer spreads load.  Compare the controller's replica
trajectory against the offered rate — a well-tuned watermark policy traces
the same triangle a beat late.

Run:  python examples/cluster_autoscaling.py
"""

from repro.hardware import Cluster
from repro.serving import (Autoscaler, ClusterGateway, EngineConfig,
                           LLAMA_13B, ModelManager, SchedulerConfig,
                           create_engine, summarize)
from repro.workload import ramp_trace

N_VARIANTS = 16


def main():
    manager = ModelManager(LLAMA_13B)
    manager.register_base("base")
    for i in range(N_VARIANTS):
        manager.register_delta(f"variant-{i:02d}", "base", 10.0)

    def engine_factory(node):
        return create_engine(
            "deltazip", manager, node,
            scheduler_config=SchedulerConfig(max_batch_requests=32,
                                             max_concurrent_deltas=8),
            engine_config=EngineConfig(tp_degree=4))

    autoscaler = Autoscaler(min_replicas=1, max_replicas=4,
                            high_queue_per_replica=6.0,
                            low_queue_per_replica=1.0,
                            check_interval_s=5.0,
                            scale_up_cooldown_s=10.0,
                            scale_down_cooldown_s=30.0)
    gateway = ClusterGateway(
        engine_factory=engine_factory,
        cluster=Cluster.from_name("a800", n_nodes=4, gpus_per_node=4),
        n_replicas=1, balancer="least-outstanding", autoscaler=autoscaler)

    trace = ramp_trace(N_VARIANTS, peak_rate=3.0, duration_s=600.0,
                       base_rate=0.2, cv=2.0, seed=0)
    print(f"ramp trace: {len(trace)} requests over {trace.duration_s:.0f}s "
          f"(0.2 -> 3.0 -> 0.2 req/s)")

    result = gateway.replay(trace)
    s = summarize(result)
    print(f"served {result.n_requests} requests, makespan "
          f"{s['makespan_s']:.0f}s, p50/p99 e2e "
          f"{s['p50_e2e_s']:.2f}/{s['p99_e2e_s']:.2f}s, peak replicas "
          f"{result.config['max_replicas_seen']}")

    print("\nreplica trajectory (one sample per ~30s):")
    samples = autoscaler.history
    step = max(1, len(samples) // 20)
    for sample in samples[::step]:
        bar = "#" * sample.n_replicas
        print(f"  t={sample.clock_s:6.1f}s {bar:4s} "
              f"({sample.n_replicas} replicas, backlog/replica "
              f"{sample.queue_per_replica:5.1f})")
    actions = [(s_.clock_s, s_.action) for s_ in samples if s_.action]
    print("\ncontroller actions:")
    for t, action in actions:
        print(f"  t={t:6.1f}s {action}")


if __name__ == "__main__":
    main()
