"""Quickstart: compress a fine-tuned model's delta and serve it.

Walks the paper's life-of-a-request (Fig 4) end to end on CPU-scale models:

1. pre-train a small base model (stands in for Llama-2);
2. full-model fine-tune it on a downstream task;
3. register the FMT checkpoint with DeltaZip -> ΔCompress packs the delta
   (2:4 structured sparsity + 4-bit quantization, OBS-calibrated);
4. serve the variant through the decoupled base+delta runner and check the
   compressed model still solves the task.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DeltaZip
from repro.compression import CompressionConfig
from repro.evaluation import (evaluate_task, make_task, pretrain_base_model,
                              run_fmt)
from repro.nn import TransformerConfig, TransformerModel


def main():
    print("=== 1. pre-train a base model ===")
    config = TransformerConfig.tiny(vocab_size=128, max_seq=64)
    base = pretrain_base_model(config, n_sequences=192, epochs=5, seed=0)
    print(f"base model: {base.num_parameters():,} parameters")

    print("\n=== 2. full-model fine-tune on the 'review' task ===")
    task = make_task("review")
    fmt = run_fmt(base, task, n_train=256, epochs=8, seed=0)
    acc_base = evaluate_task(base, task, 80).percent
    acc_fmt = evaluate_task(fmt.model, task, 80).percent
    print(f"accuracy: base {acc_base:.1f}% -> FMT {acc_fmt:.1f}%")

    print("\n=== 3. register with DeltaZip (ΔCompress 4-bit + 2:4) ===")
    dz = DeltaZip(base, compression=CompressionConfig.deltazip_4bit())
    artifact = dz.register_finetuned("review-expert", fmt.model,
                                     fmt.calibration_tokens)
    print(f"delta compressed {artifact.compression_ratio():.2f}x end-to-end "
          f"({artifact.linear_compression_ratio():.2f}x on linear weights)")
    print(f"packed size: {artifact.nbytes():,} B "
          f"(FP16 checkpoint: {artifact.nbytes_uncompressed():,} B)")

    print("\n=== 4. serve through the decoupled base+delta runner ===")
    recon = TransformerModel(config, seed=0)
    recon.load_state_dict(artifact.to_state_dict(dz.base_state))
    acc_compressed = evaluate_task(recon, task, 80).percent
    print(f"compressed-variant accuracy: {acc_compressed:.1f}% "
          f"(FMT was {acc_fmt:.1f}%)")

    example = task.generator(np.random.default_rng(7))
    answer = dz.generate("review-expert", example.prompt, max_new_tokens=2)
    print(f"sample prompt -> generated {answer}, gold {example.answer}")

    # mixed batch: one request to the variant, one to the base, together
    outs = dz.generate_batch(["review-expert", "base"],
                             [example.prompt, example.prompt],
                             max_new_tokens=2)
    print(f"mixed multi-variant batch outputs: {outs}")


if __name__ == "__main__":
    main()
