"""Serving PEFT beyond LoRA: RoSA adapters through the delta path (§8).

The paper's discussion: emerging PEFT methods like RoSA (low-rank + sparse)
produce full-rank-capable updates that LoRA-only serving systems cannot
host — but DeltaZip can, because any per-layer update is just a delta.
This example trains a RoSA adapter, converts it to a per-layer delta, and
serves it through the decoupled multi-variant runner alongside a plain
LoRA variant and the base model.

Run:  python examples/rosa_serving.py
"""

import numpy as np

from repro.compression.artifacts import CompressedDelta, CompressedLayer
from repro.compression.configs import CompressionConfig
from repro.evaluation import (evaluate_task, make_task, pretrain_base_model)
from repro.evaluation.finetune import make_task_dataset
from repro.nn import (RoSAConfig, TrainingConfig, TransformerConfig,
                      TransformerModel, attach_rosa, detach_rosa, merge_rosa,
                      train_lm)
from repro.serving import DecoupledModelRunner


def rosa_delta_artifact(adapter, base_state, model_id="rosa-variant"):
    """Wrap a RoSA adapter as a servable (uncompressed) delta artifact."""
    config = CompressionConfig(bits=16, sparsity_n=0, group_size=32)
    layers = {}
    for name, delta in adapter.delta_state_dict().items():
        layers[name] = CompressedLayer(name=name, shape=delta.shape,
                                       config=config, fp16_values=delta)
    extras = {name: np.zeros_like(arr)
              for name, arr in base_state.items() if name not in layers}
    return CompressedDelta(model_id=model_id, base_model_id="base",
                           config=config, layers=layers, extras=extras)


def main():
    config = TransformerConfig.small(vocab_size=128, max_seq=64)
    base = pretrain_base_model(config, n_sequences=256, epochs=6, seed=0)
    task = make_task("yesno")

    print("=== train a RoSA adapter (rank-2 + 2% sparse support) ===")
    model = TransformerModel(config, seed=0)
    model.load_state_dict(base.state_dict())
    attach_rosa(model, RoSAConfig(rank=2, sparse_density=0.02))
    x, y = make_task_dataset(task, 384, pad_to=min(config.max_seq, 22),
                             seed=0)
    train_lm(model, x, y, TrainingConfig(epochs=12, lr=5e-3))
    adapter = detach_rosa(model)
    merge_rosa(model, adapter)

    acc_base = evaluate_task(base, task, 80).percent
    acc_rosa = evaluate_task(model, task, 80).percent
    print(f"accuracy: base {acc_base:.1f}% -> RoSA {acc_rosa:.1f}%")
    print(f"adapter size: {adapter.nbytes():,} B "
          f"(dense delta would be "
          f"{sum(m[3].size * 2 for m in adapter.matrices.values()):,} B)")

    print("\n=== serve the RoSA variant through the delta path ===")
    artifact = rosa_delta_artifact(adapter, base.state_dict())
    runner = DecoupledModelRunner(base, {"rosa-variant": artifact})
    rng = np.random.default_rng(3)
    examples = [task.generator(rng) for _ in range(3)]
    outs = runner.generate(
        [ex.prompt for ex in examples],
        ["rosa-variant", "__base__", "rosa-variant"], max_new_tokens=2)
    print("mixed batch (rosa, base, rosa) answers:", outs)
    print("gold answers:", [ex.answer for ex in examples])

    # correctness: decoupled serving == merged model
    toks = np.asarray(examples[0].prompt)[None, :]
    decoupled = runner.forward(toks, ["rosa-variant"])
    merged = model(toks)
    print(f"decoupled-vs-merged max |diff|: "
          f"{np.abs(decoupled - merged).max():.2e}")


if __name__ == "__main__":
    main()
