"""Multi-tenant serving study: 32 fine-tuned variants on one 4xA800 node.

The paper's headline serving scenario (§6.3): an LLM provider hosts many
full-model-tuned variants of a 13B base with bursty, skewed traffic.
Compares DeltaZip (compressed-delta serving with SBMM batching) against the
vLLM+SCB baseline (swap whole FP16 models) on the same trace and prints the
Fig 11/12-style metrics.

Run:  python examples/multi_tenant_serving.py
"""

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_13B, ModelManager,
                           SchedulerConfig, create_engine, slo_attainment)
from repro.workload import trace_from_distribution

N_VARIANTS = 32
RATE = 1.0           # system-wide requests/second
DURATION = 300.0     # the paper's 5-minute traces
DELTA_RATIO = 10.0   # ΔCompress 2-bit end-to-end ratio (Table 1)


def build_managers():
    deltas = ModelManager(LLAMA_13B)
    deltas.register_base("llama-13b")
    fulls = ModelManager(LLAMA_13B)
    fulls.register_base("llama-13b")
    for i in range(N_VARIANTS):
        name = f"variant-{i:02d}"
        deltas.register_delta(name, "llama-13b", DELTA_RATIO)
        fulls.register_full(name, "llama-13b")
    return deltas, fulls


def main():
    node = GPUNode(node_from_name("a800", 4))
    deltas, fulls = build_managers()

    for dist in ("azure", "uniform", "zipf:1.5"):
        trace = trace_from_distribution(dist, N_VARIANTS, rate=RATE,
                                        duration_s=DURATION, seed=1)
        dz = create_engine(
            "deltazip", deltas, node,
            scheduler_config=SchedulerConfig(max_batch_requests=32,
                                             max_concurrent_deltas=8),
            engine_config=EngineConfig(tp_degree=4)).run(trace)
        scb = create_engine(
            "vllm-scb", fulls, node,
            engine_config=EngineConfig(tp_degree=4)).run(trace)

        print(f"\n=== distribution: {dist}  ({len(trace)} requests, "
              f"rate {RATE}/s) ===")
        print(f"{'metric':28s} {'vLLM+SCB':>10s} {'DeltaZip':>10s} "
              f"{'gain':>7s}")
        rows = [
            ("throughput (req/s, 5 min)", scb.throughput_within(DURATION),
             dz.throughput_within(DURATION)),
            ("mean E2E latency (s)", scb.mean_e2e_latency_s(),
             dz.mean_e2e_latency_s()),
            ("mean TTFT (s)", scb.mean_ttft_s(), dz.mean_ttft_s()),
            ("P90 E2E latency (s)", scb.percentile_e2e_s(90),
             dz.percentile_e2e_s(90)),
            ("SLO@30s attainment", slo_attainment(scb.records, 30.0),
             slo_attainment(dz.records, 30.0)),
        ]
        for label, baseline, ours in rows:
            if "throughput" in label or "attainment" in label:
                gain = ours / baseline if baseline > 1e-6 else float("inf")
            else:
                gain = baseline / max(ours, 1e-9)
            gain_str = f"{gain:6.1f}x" if gain != float("inf") else "    infx"
            print(f"{label:28s} {baseline:10.3f} {ours:10.3f} {gain_str}")


if __name__ == "__main__":
    main()
