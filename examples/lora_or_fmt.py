"""LoRA or compressed-delta FMT?  The §6.4 decision, reproduced.

Trains both a LoRA adapter and a full-model-tuned checkpoint on an easy
task (review classification) and a hard one (multi-token modular math),
then compares accuracy and serving cost — ending with the paper's guidance:
LoRA when it matches FMT accuracy; ΔCompress-served FMT when accuracy on
hard tasks is the priority.

Run:  python examples/lora_or_fmt.py
"""

from repro.compression import CompressionConfig, DeltaCompressor
from repro.evaluation import (evaluate_task, make_task, pretrain_base_model,
                              run_fmt, run_lora)
from repro.nn import TransformerConfig, TransformerModel


def study_task(name, base, model_config):
    task = make_task(name)
    fmt = run_fmt(base, task, n_train=384, epochs=14, lr=1e-3, seed=0)
    lora = run_lora(base, task, rank=2, n_train=384, epochs=14, lr=5e-3,
                    seed=0)
    artifact = DeltaCompressor(CompressionConfig.deltazip_4bit()).compress(
        fmt.model, base.state_dict(), fmt.calibration_tokens)
    compressed = TransformerModel(model_config, seed=0)
    compressed.load_state_dict(artifact.to_state_dict(base.state_dict()))

    acc = {
        "base": evaluate_task(base, task, 80).percent,
        "lora": evaluate_task(lora.model, task, 80).percent,
        "fmt": evaluate_task(fmt.model, task, 80).percent,
        "Δcompress": evaluate_task(compressed, task, 80).percent,
    }
    sizes = {
        "lora adapter": lora.adapter.nbytes(),
        "compressed delta": artifact.nbytes(),
        "full FP16 checkpoint": artifact.nbytes_uncompressed(),
    }
    print(f"\n=== task: {name} ({'hard' if task.hard else 'easy'}) ===")
    for k, v in acc.items():
        print(f"  accuracy {k:10s} {v:5.1f}%")
    for k, v in sizes.items():
        print(f"  artifact {k:22s} {v:10,d} B")
    return acc, sizes


def main():
    config = TransformerConfig.small(vocab_size=128, max_seq=64)
    base = pretrain_base_model(config, n_sequences=256, epochs=6, seed=0)

    easy_acc, _ = study_task("review", base, config)
    hard_acc, hard_sizes = study_task("math", base, config)

    print("\n=== guidance (paper §6.4) ===")
    if easy_acc["lora"] >= easy_acc["fmt"] - 5:
        print("easy task: LoRA matches FMT -> serve the adapter "
              "(smallest artifact, cheapest to batch).")
    gap = hard_acc["fmt"] - hard_acc["lora"]
    print(f"hard task: LoRA trails FMT by {gap:.1f} points -> "
          f"serve the ΔCompress'd FMT delta "
          f"({hard_acc['Δcompress']:.1f}% accuracy at "
          f"{hard_sizes['compressed delta'] / hard_sizes['full FP16 checkpoint']:.0%} "
          f"of the checkpoint size).")


if __name__ == "__main__":
    main()
