"""Workload generators: arrival statistics, popularity skew, trace shape."""

import numpy as np
import pytest

from repro.workload import (ARENA_MODEL_NAMES, LengthSampler, TenantWorkload,
                            Trace, TraceRequest, arena_trace,
                            as_rng, azure_like_trace, gamma_burst_arrivals,
                            make_model_ids, multi_tenant_trace,
                            piecewise_rate_arrivals, poisson_arrivals,
                            ramp_arrivals, ramp_trace, sample_models,
                            synthetic_trace, trace_from_distribution,
                            uniform_popularity, zipf_popularity)


class TestArrivals:
    def test_poisson_rate(self, rng):
        times = poisson_arrivals(5.0, 2000.0, rng)
        assert len(times) / 2000.0 == pytest.approx(5.0, rel=0.1)

    def test_poisson_sorted_within_duration(self, rng):
        times = poisson_arrivals(1.0, 100.0, rng)
        assert times == sorted(times)
        assert all(0 <= t < 100.0 for t in times)

    def test_zero_rate_empty(self, rng):
        assert poisson_arrivals(0.0, 10.0, rng) == []

    def test_burst_cv_increases_clumping(self, rng):
        """Gamma arrivals with high CV have much higher inter-arrival
        variance than Poisson at the same rate."""
        poisson = np.diff(poisson_arrivals(2.0, 4000.0,
                                           np.random.default_rng(1)))
        bursty = np.diff(gamma_burst_arrivals(2.0, 4000.0,
                                              np.random.default_rng(1),
                                              cv=6.0))
        assert np.std(bursty) > 2 * np.std(poisson)


class TestRampArrivals:
    def test_piecewise_rates_match_segments(self, rng):
        times = piecewise_rate_arrivals([(10.0, 500.0), (0.0, 100.0),
                                         (1.0, 500.0)], rng)
        first = [t for t in times if t < 500.0]
        quiet = [t for t in times if 500.0 <= t < 600.0]
        last = [t for t in times if t >= 600.0]
        assert len(first) / 500.0 == pytest.approx(10.0, rel=0.15)
        assert quiet == []
        assert len(last) / 500.0 == pytest.approx(1.0, rel=0.3)
        assert times == sorted(times)

    def test_negative_duration_rejected(self, rng):
        with pytest.raises(ValueError):
            piecewise_rate_arrivals([(1.0, -5.0)], rng)

    def test_ramp_peaks_in_the_middle(self, rng):
        times = ramp_arrivals(20.0, 900.0, rng, base_rate=1.0, n_steps=9)
        thirds = np.histogram(times, bins=[0, 300, 600, 900])[0]
        assert thirds[1] > thirds[0]
        assert thirds[1] > thirds[2]

    def test_ramp_offers_the_full_peak_rate(self, rng):
        # the middle step must run at peak_rate itself, not just near it
        times = ramp_arrivals(30.0, 900.0, rng, base_rate=0.0, n_steps=9)
        middle = [t for t in times if 400.0 <= t < 500.0]
        assert len(middle) / 100.0 == pytest.approx(30.0, rel=0.15)

    def test_ramp_needs_steps(self, rng):
        for n_steps in (1, 2):
            with pytest.raises(ValueError):
                ramp_arrivals(5.0, 100.0, rng, n_steps=n_steps)

    def test_ramp_trace_shape(self):
        trace = ramp_trace(4, peak_rate=6.0, duration_s=120.0,
                           base_rate=0.5, seed=2)
        assert len(trace) > 0
        assert trace.duration_s == 120.0
        assert set(r.model_id for r in trace) <= set(trace.model_ids)
        ids = [r.request_id for r in trace]
        assert ids == sorted(ids)


class TestPopularity:
    def test_uniform_sums_to_one(self):
        p = uniform_popularity(7)
        assert p.sum() == pytest.approx(1.0)
        assert np.allclose(p, 1 / 7)

    def test_zipf_skew(self):
        p = zipf_popularity(10, alpha=1.5)
        assert p[0] > 5 * p[9]
        assert p.sum() == pytest.approx(1.0)

    def test_zipf_alpha_zero_is_uniform(self):
        np.testing.assert_allclose(zipf_popularity(5, 0.0),
                                   uniform_popularity(5))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_popularity(0)
        with pytest.raises(ValueError):
            zipf_popularity(3, -1.0)

    def test_sample_models_distribution(self, rng):
        p = zipf_popularity(5, 2.0)
        picks = sample_models(p, 20000, rng)
        counts = np.bincount(picks, minlength=5) / 20000
        np.testing.assert_allclose(counts, p, atol=0.02)

    def test_sample_requires_normalized(self, rng):
        with pytest.raises(ValueError):
            sample_models([0.5, 0.2], 10, rng)

    def test_model_ids_stable_width(self):
        ids = make_model_ids(3)
        assert ids == ["variant-00", "variant-01", "variant-02"]


class TestTraces:
    def test_synthetic_trace_fields(self):
        trace = synthetic_trace(8, rate=2.0, duration_s=100.0, seed=0)
        assert len(trace.model_ids) == 8
        assert trace.arrival_rate() == pytest.approx(2.0, rel=0.2)
        for req in trace:
            assert req.model_id in trace.model_ids
            assert req.prompt_tokens >= 4
            assert req.output_tokens >= 4

    def test_requests_sorted_by_arrival(self):
        trace = azure_like_trace(8, rate=2.0, duration_s=60.0, seed=0)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        ids = [r.request_id for r in trace]
        assert ids == sorted(ids)

    def test_zipf_trace_skewed_counts(self):
        trace = synthetic_trace(10, rate=5.0, duration_s=400.0,
                                distribution="zipf", zipf_alpha=2.0, seed=1)
        counts = trace.per_model_counts()
        assert counts["variant-00"] > 5 * max(counts["variant-09"], 1)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            synthetic_trace(4, 1.0, 10.0, distribution="pareto")
        with pytest.raises(ValueError):
            trace_from_distribution("weird", 4, 1.0, 10.0)

    def test_dispatch_helper(self):
        for dist in ("uniform", "zipf:2.0", "azure"):
            trace = trace_from_distribution(dist, 4, 1.0, 30.0, seed=0)
            assert isinstance(trace, Trace)

    def test_windowed_counts_shape(self):
        trace = synthetic_trace(4, rate=2.0, duration_s=100.0, seed=0)
        windows = trace.windowed_counts(10.0)
        assert set(windows) == set(trace.model_ids)
        assert all(len(v) == 10 for v in windows.values())
        total = sum(int(v.sum()) for v in windows.values())
        assert total == len(trace)

    def test_length_sampler_bounds(self, rng):
        sampler = LengthSampler(max_prompt=64, max_output=32)
        for _ in range(200):
            prompt, output = sampler.sample(rng)
            assert 4 <= prompt <= 64
            assert 4 <= output <= 32


class TestArenaTrace:
    def test_week_long_structure(self):
        trace = arena_trace(n_models=10, duration_s=86400.0, mean_rate=0.05,
                            seed=0)
        assert len(trace.model_ids) == 10
        assert trace.model_ids[0] in ARENA_MODEL_NAMES
        assert len(trace) > 100

    def test_sporadic_and_dense_variants_coexist(self):
        """Fig 1's qualitative property: some variants fire continuously,
        others have long quiet stretches."""
        trace = arena_trace(n_models=16, duration_s=3 * 86400.0,
                            mean_rate=0.05, seed=2)
        windows = trace.windowed_counts(6 * 3600.0)
        zero_fracs = {m: float(np.mean(v == 0))
                      for m, v in windows.items() if v.sum() > 0}
        assert max(zero_fracs.values()) > 0.5   # someone is sporadic
        assert min(zero_fracs.values()) < 0.2   # someone is dense

    def test_names_fall_back_past_20(self):
        trace = arena_trace(n_models=25, duration_s=3600.0, mean_rate=0.5,
                            seed=0)
        assert len(trace.model_ids) == 25


class TestSeedPlumbing:
    """Every arrival generator accepts a Generator, an int seed, or None
    (fixed default) — benchmark runs must be reproducible run-to-run."""

    def test_as_rng_coercions(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen
        a, b = as_rng(5), as_rng(5)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_none_defaults_deterministic(self):
        assert poisson_arrivals(2.0, 30.0, None) == \
            poisson_arrivals(2.0, 30.0, None)

    @pytest.mark.parametrize("fn,args", [
        (poisson_arrivals, (2.0, 30.0)),
        (gamma_burst_arrivals, (2.0, 30.0)),
        (ramp_arrivals, (4.0, 60.0)),
    ])
    def test_int_seed_matches_generator(self, fn, args):
        assert fn(*args, 123) == fn(*args, np.random.default_rng(123))

    def test_piecewise_accepts_int_seed(self):
        segments = [(1.0, 10.0), (3.0, 10.0)]
        assert piecewise_rate_arrivals(segments, 9) == \
            piecewise_rate_arrivals(segments, np.random.default_rng(9))


class TestTenantTraces:
    def workloads(self):
        return [TenantWorkload("agg", rate=2.0, n_models=2,
                               distribution="zipf", cv=2.0),
                TenantWorkload("calm", rate=0.3, n_models=1)]

    def test_requests_are_tagged_and_renumbered(self):
        trace = multi_tenant_trace(self.workloads(), duration_s=60.0, seed=1)
        assert [r.request_id for r in trace] == list(range(len(trace)))
        assert trace.tenant_ids == ["agg", "calm"]
        counts = trace.per_tenant_counts()
        assert counts["agg"] > counts["calm"] > 0
        assert set(trace.model_ids) == {"agg-variant-00", "agg-variant-01",
                                        "calm-variant-00"}

    def test_same_seed_reproduces_and_seeds_differ(self):
        a = multi_tenant_trace(self.workloads(), duration_s=60.0, seed=4)
        b = multi_tenant_trace(self.workloads(), duration_s=60.0, seed=4)
        c = multi_tenant_trace(self.workloads(), duration_s=60.0, seed=5)
        key = lambda t: [(r.tenant_id, r.model_id, r.arrival_s,
                          r.prompt_tokens, r.output_tokens) for r in t]
        assert key(a) == key(b)
        assert key(a) != key(c)

    def test_tenant_streams_independent_of_ordering(self):
        """Per-tenant spawn keys: re-ordering tenants never perturbs
        another tenant's stream beyond renumbering."""
        fwd = multi_tenant_trace(self.workloads(), duration_s=60.0, seed=2)
        # same tenants, same per-tenant index: identical streams
        again = multi_tenant_trace(self.workloads(), duration_s=60.0, seed=2)
        arrivals = lambda t, tid: [r.arrival_s for r in t
                                   if r.tenant_id == tid]
        assert arrivals(fwd, "agg") == arrivals(again, "agg")

    def test_shared_model_pool(self):
        shared = ["m-0", "m-1"]
        trace = multi_tenant_trace(
            [TenantWorkload("a", rate=1.0, model_ids=shared),
             TenantWorkload("b", rate=1.0, model_ids=shared)],
            duration_s=30.0, seed=0)
        assert trace.model_ids == shared

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_tenant_trace([], duration_s=10.0)
        with pytest.raises(ValueError, match="duplicate"):
            multi_tenant_trace([TenantWorkload("x", rate=1.0),
                                TenantWorkload("x", rate=2.0)],
                               duration_s=10.0)
        with pytest.raises(ValueError):
            TenantWorkload("", rate=1.0)
        with pytest.raises(ValueError):
            TenantWorkload("t", rate=-1.0)
        with pytest.raises(ValueError):
            TenantWorkload("t", rate=1.0, distribution="pareto")

    def test_untenanted_traces_stay_untenanted(self):
        trace = synthetic_trace(4, rate=1.0, duration_s=20.0, seed=0)
        assert trace.tenant_ids == []
        assert all(r.tenant_id is None for r in trace)
