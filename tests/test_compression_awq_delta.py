"""AWQ baseline and delta extraction/reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.awq import awq_compress
from repro.compression.configs import CompressionConfig
from repro.compression.delta import (apply_delta, delta_statistics,
                                     extract_delta)
from repro.compression.sparsegpt import rtn_compress


class TestAWQ:
    def _skewed_problem(self, rng, rows=16, cols=32):
        """A few input channels carry 10x larger activations."""
        w = rng.normal(0, 0.05, size=(rows, cols)).astype(np.float32)
        x = rng.normal(size=(512, cols)).astype(np.float32)
        x[:, :4] *= 10.0
        return w, x

    def test_improves_over_rtn_on_skewed_activations(self, rng):
        w, x = self._skewed_problem(rng)
        config = CompressionConfig(bits=2, sparsity_n=0, algorithm="awq",
                                   delta_mode=False, group_size=32)
        awq = awq_compress(w, x, config)
        rtn = rtn_compress(w, config)
        ref = x @ w.T
        err_awq = np.mean((ref - x @ awq.dense.T) ** 2)
        err_rtn = np.mean((ref - x @ rtn.dense.T) ** 2)
        assert err_awq <= err_rtn

    def test_mask_all_true(self, rng):
        w, x = self._skewed_problem(rng)
        res = awq_compress(w, x, CompressionConfig.awq_4bit())
        assert res.mask.all()

    def test_no_activation_fallback(self, rng):
        w = rng.normal(size=(4, 16)).astype(np.float32)
        res = awq_compress(w, None, CompressionConfig.awq_4bit(group_size=16))
        assert res.dense.shape == w.shape

    def test_alpha_recorded(self, rng):
        w, x = self._skewed_problem(rng)
        res = awq_compress(w, x, CompressionConfig.awq_4bit())
        assert 0.0 <= res.awq_alpha <= 1.0
        assert res.awq_scales.shape == (w.shape[1],)

    def test_awq_config_rejects_sparsity(self):
        with pytest.raises(ValueError):
            CompressionConfig(algorithm="awq", sparsity_n=2)


class TestDelta:
    def test_extract_apply_roundtrip(self, rng):
        base = {"a": rng.normal(size=(3, 3)).astype(np.float32),
                "b": rng.normal(size=5).astype(np.float32)}
        ft = {k: v + rng.normal(0, 0.01, size=v.shape).astype(np.float32)
              for k, v in base.items()}
        delta = extract_delta(ft, base)
        back = apply_delta(base, delta)
        for k in base:
            np.testing.assert_allclose(back[k], ft[k], atol=1e-6)

    def test_key_mismatch_rejected(self, rng):
        base = {"a": np.zeros(2, dtype=np.float32)}
        with pytest.raises(KeyError):
            extract_delta({"b": np.zeros(2, dtype=np.float32)}, base)
        with pytest.raises(KeyError):
            apply_delta(base, {"b": np.zeros(2, dtype=np.float32)})

    def test_shape_mismatch_rejected(self):
        base = {"a": np.zeros(2, dtype=np.float32)}
        ft = {"a": np.zeros(3, dtype=np.float32)}
        with pytest.raises(ValueError):
            extract_delta(ft, base)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, r, c):
        rng = np.random.default_rng(r * 10 + c)
        base = {"w": rng.normal(size=(r, c)).astype(np.float32)}
        ft = {"w": rng.normal(size=(r, c)).astype(np.float32)}
        back = apply_delta(base, extract_delta(ft, base))
        np.testing.assert_allclose(back["w"], ft["w"], atol=1e-5)

    def test_statistics_on_trained_models(self, base_model, finetuned):
        """Fig 3's claim on real checkpoints: deltas are much smaller in
        magnitude than the weights themselves."""
        stats = delta_statistics(finetuned.model.state_dict(),
                                 base_model.state_dict())
        linear_names = [n for n in stats if "proj" in n]
        assert linear_names
        smaller = sum(stats[n]["delta_absmax"] < stats[n]["base_absmax"]
                      for n in linear_names)
        assert smaller >= 0.8 * len(linear_names)
        smaller_std = sum(stats[n]["delta_std"] < stats[n]["base_std"]
                          for n in linear_names)
        assert smaller_std >= 0.8 * len(linear_names)
