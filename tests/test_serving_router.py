"""Multi-base routing (§5.1's M-GPU-set deployment)."""

import pytest

from repro.hardware import GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_13B, LLAMA_7B, ModelManager,
                           SchedulerConfig)
from repro.serving.router import BaseModelGroup, MultiBaseRouter
from repro.workload.spec import Trace, TraceRequest


def make_group(base_id, spec, variants):
    mgr = ModelManager(spec)
    mgr.register_base(base_id)
    for v in variants:
        mgr.register_delta(v, base_id, 8.0)
    return BaseModelGroup(
        base_id=base_id, manager=mgr,
        node=GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(8, 2),
        engine_config=EngineConfig(tp_degree=1))


def make_trace(assignments):
    requests = [TraceRequest(request_id=i, model_id=m, arrival_s=float(i),
                             prompt_tokens=8, output_tokens=4)
                for i, m in enumerate(assignments)]
    return Trace(requests=requests,
                 model_ids=sorted(set(assignments)),
                 duration_s=len(assignments) + 1.0)


@pytest.fixture()
def router():
    return MultiBaseRouter([
        make_group("llama", LLAMA_7B, ["llama-ft-a", "llama-ft-b"]),
        make_group("pythia", LLAMA_7B, ["pythia-ft-a"]),
    ])


class TestRouting:
    def test_owner_lookup(self, router):
        assert router.owner_of("llama-ft-a") == "llama"
        assert router.owner_of("pythia-ft-a") == "pythia"
        assert router.owner_of("llama") == "llama"
        with pytest.raises(KeyError):
            router.owner_of("mystery")

    def test_partition_by_lineage(self, router):
        trace = make_trace(["llama-ft-a", "pythia-ft-a", "llama-ft-b",
                            "llama-ft-a"])
        parts = router.partition(trace)
        assert len(parts["llama"]) == 3
        assert len(parts["pythia"]) == 1

    def test_run_conserves_requests(self, router):
        trace = make_trace(["llama-ft-a", "pythia-ft-a", "llama-ft-b",
                            "pythia-ft-a", "llama-ft-a"])
        results = router.run(trace)
        cluster = results["__cluster__"]
        assert cluster.n_requests == len(trace)
        assert results["llama"].n_requests == 3
        assert results["pythia"].n_requests == 2
        ids = sorted(r.request_id for r in cluster.records)
        assert ids == list(range(5))

    def test_empty_partition_skipped(self, router):
        trace = make_trace(["llama-ft-a", "llama-ft-b"])
        results = router.run(trace)
        assert "pythia" not in results
        assert results["__cluster__"].n_requests == 2


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s,
            rec.preemptions, rec.skipped_line)


class TestClusterRefactor:
    """Acceptance: run(trace) over the ClusterGateway is record-identical
    to the pre-refactor one-engine-per-partition loop."""

    def test_run_matches_per_partition_engines(self, router):
        trace = make_trace(["llama-ft-a", "pythia-ft-a", "llama-ft-b",
                            "pythia-ft-a", "llama-ft-a", "llama-ft-b"])
        via_cluster = router.run(trace)
        for base_id, sub in router.partition(trace).items():
            if len(sub) == 0:
                continue
            legacy = router.groups[base_id].engine().run(sub)
            assert [record_key(r) for r in legacy.records] == \
                [record_key(r) for r in via_cluster[base_id].records]
            assert legacy.makespan_s == via_cluster[base_id].makespan_s


class TestOnlinePath:
    """The router is an online system too: submissions may arrive in any
    order across base groups."""

    def test_out_of_order_submit_across_groups(self, router):
        gateway = router.gateway()
        # interleaved across groups, with non-monotonic arrival times
        submissions = [("pythia-ft-a", 5.0), ("llama-ft-b", 1.0),
                       ("pythia-ft-a", 0.5), ("llama-ft-a", 3.0)]
        for model_id, arrival in submissions:
            gateway.submit(model_id, 16, 4, arrival_s=arrival)
        merged = gateway.run_until_drained()
        assert merged.n_requests == len(submissions)
        by_group = gateway.results_by_replica()
        assert by_group["llama"].n_requests == 2
        assert by_group["pythia"].n_requests == 2
        # lineage routing held for every record
        for base_id in ("llama", "pythia"):
            assert all(router.owner_of(r.model_id) == base_id
                       for r in by_group[base_id].records)

    def test_per_group_callback_delivery(self, router):
        completions = []
        gateway = router.gateway(
            on_request_complete=lambda rec: completions.append(rec))
        rid_p = gateway.submit("pythia-ft-a", 16, 4)
        rid_l = gateway.submit("llama-ft-a", 16, 4)
        gateway.run_until_drained()
        assert sorted(r.request_id for r in completions) == \
            sorted([rid_p, rid_l])
        owners = {r.request_id: router.owner_of(r.model_id)
                  for r in completions}
        assert owners[rid_p] == "pythia"
        assert owners[rid_l] == "llama"

    def test_unknown_model_rejected_online(self, router):
        gateway = router.gateway()
        with pytest.raises(KeyError):
            gateway.submit("mystery", 8, 4)


class TestValidation:
    def test_requires_groups(self):
        with pytest.raises(ValueError):
            MultiBaseRouter([])

    def test_duplicate_base_rejected(self):
        g1 = make_group("same", LLAMA_7B, ["v1"])
        g2 = make_group("same", LLAMA_7B, ["v2"])
        with pytest.raises(ValueError):
            MultiBaseRouter([g1, g2])

    def test_duplicate_variant_rejected(self):
        g1 = make_group("a", LLAMA_7B, ["shared"])
        g2 = make_group("b", LLAMA_7B, ["shared"])
        with pytest.raises(ValueError):
            MultiBaseRouter([g1, g2])
