"""Sparsity masks: N:M invariants, unstructured thresholds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.sparsity import (mask_density, nm_mask,
                                        nm_mask_with_scores,
                                        unstructured_mask, validate_nm)

matrix_24 = arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 8).map(lambda g: g * 4)),
    elements=st.floats(-100, 100, width=32))


class TestNMMask:
    def test_exact_density(self, rng):
        w = rng.normal(size=(8, 32)).astype(np.float32)
        mask = nm_mask(w, 2, 4)
        assert mask_density(mask) == 0.5

    def test_keeps_largest_magnitudes(self):
        w = np.array([[0.1, -5.0, 0.2, 3.0]], dtype=np.float32)
        mask = nm_mask(w, 2, 4)
        np.testing.assert_array_equal(mask, [[False, True, False, True]])

    def test_n_zero_keeps_everything(self, rng):
        w = rng.normal(size=(2, 8)).astype(np.float32)
        assert nm_mask(w, 0, 4).all()

    def test_indivisible_cols_rejected(self, rng):
        with pytest.raises(ValueError):
            nm_mask(rng.normal(size=(2, 6)).astype(np.float32), 2, 4)

    @given(matrix_24)
    @settings(max_examples=40, deadline=None)
    def test_every_group_has_at_least_n_zeros(self, w):
        mask = nm_mask(w, 2, 4)
        assert validate_nm(mask, 2, 4)

    @given(matrix_24)
    @settings(max_examples=30, deadline=None)
    def test_1_of_4_pattern(self, w):
        mask = nm_mask(w, 1, 4)
        assert validate_nm(mask, 1, 4)
        assert mask_density(mask) == 0.75

    def test_scores_override_magnitude(self):
        """OBS saliency can keep a small-magnitude, high-salience value."""
        w = np.array([[0.1, 1.0, 2.0, 3.0]], dtype=np.float32)
        scores = np.array([[100.0, 0.1, 0.2, 50.0]])
        mask = nm_mask_with_scores(w, scores, 2, 4)
        np.testing.assert_array_equal(mask, [[True, False, False, True]])

    def test_tie_break_stable(self):
        w = np.ones((1, 4), dtype=np.float32)
        mask = nm_mask(w, 2, 4)
        # stable sort prunes the first two on ties
        np.testing.assert_array_equal(mask, [[False, False, True, True]])


class TestUnstructured:
    def test_density_close_to_target(self, rng):
        w = rng.normal(size=(32, 32)).astype(np.float32)
        mask = unstructured_mask(w, 0.75)
        assert mask_density(mask) == pytest.approx(0.25, abs=0.02)

    def test_zero_sparsity_keeps_all(self, rng):
        w = rng.normal(size=(4, 4)).astype(np.float32)
        assert unstructured_mask(w, 0.0).all()

    def test_keeps_largest(self):
        w = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        mask = unstructured_mask(w, 0.5)
        np.testing.assert_array_equal(mask, [[False, False, True, True]])

    def test_invalid_sparsity_rejected(self, rng):
        w = rng.normal(size=(2, 2)).astype(np.float32)
        with pytest.raises(ValueError):
            unstructured_mask(w, 1.0)
        with pytest.raises(ValueError):
            unstructured_mask(w, -0.1)


class TestValidate:
    def test_detects_violation(self):
        mask = np.ones((1, 4), dtype=bool)  # 4 kept of 4
        assert not validate_nm(mask, 2, 4)

    def test_wrong_width(self):
        assert not validate_nm(np.ones((1, 6), dtype=bool), 2, 4)
