"""End-to-end integration: the full life-of-a-model, Fig 4 style.

pretrain → fine-tune two variants → register/compress → quality holds →
functional multi-variant serving is exact → at-scale simulation uses the
measured ratios → artifacts survive a disk round-trip.
"""

import numpy as np
import pytest

from repro.compression import load_compressed_delta, save_compressed_delta
from repro.core import DeltaZip
from repro.evaluation import evaluate_task, make_task, run_fmt
from repro.nn import TransformerModel
from repro.serving import (DecoupledModelRunner, LLAMA_7B, EngineConfig,
                           SchedulerConfig)
from repro.workload import synthetic_trace


@pytest.fixture(scope="module")
def two_variant_system(base_model):
    """A DeltaZip deployment with two fine-tuned variants."""
    dz = DeltaZip(base_model)
    tasks = {}
    for name in ("review", "yesno"):
        task = make_task(name)
        fmt = run_fmt(base_model, task, n_train=192, epochs=8, seed=0)
        dz.register_finetuned(f"{name}-expert", fmt.model,
                              fmt.calibration_tokens)
        tasks[name] = (task, fmt)
    return dz, tasks


class TestLifeOfAModel:
    def test_both_variants_registered(self, two_variant_system):
        dz, _ = two_variant_system
        assert dz.registered_models == ["review-expert", "yesno-expert"]
        for model_id in dz.registered_models:
            assert dz.compression_ratio(model_id) > 2.0

    def test_quality_preserved_per_variant(self, two_variant_system,
                                           base_model):
        dz, tasks = two_variant_system
        for name, (task, fmt) in tasks.items():
            recon = TransformerModel(base_model.config, seed=0)
            recon.load_state_dict(
                dz.artifacts[f"{name}-expert"].to_state_dict(dz.base_state))
            acc_fmt = evaluate_task(fmt.model, task, 40).accuracy
            acc_rec = evaluate_task(recon, task, 40).accuracy
            assert acc_rec >= acc_fmt - 0.12, name

    def test_variants_are_isolated(self, two_variant_system, base_model,
                                   rng):
        """Each variant's rows get its own delta in one batch."""
        dz, _ = two_variant_system
        runner = dz.runner()
        toks = rng.integers(4, 100, size=(2, 10))
        both = runner.forward(toks, ["review-expert", "yesno-expert"])
        review_only = runner.forward(toks, ["review-expert"] * 2)
        yesno_only = runner.forward(toks, ["yesno-expert"] * 2)
        np.testing.assert_allclose(both[0], review_only[0], atol=1e-5)
        np.testing.assert_allclose(both[1], yesno_only[1], atol=1e-5)
        assert not np.allclose(both[0], yesno_only[0], atol=1e-3)

    def test_simulation_with_measured_ratios(self, two_variant_system):
        dz, _ = two_variant_system
        trace = synthetic_trace(2, rate=1.0, duration_s=30.0, seed=3)
        for req in trace.requests:
            req.model_id = ("review-expert" if req.model_id.endswith("0")
                            else "yesno-expert")
        trace.model_ids = ["review-expert", "yesno-expert"]
        result = dz.simulate(trace, served_spec=LLAMA_7B,
                             scheduler=SchedulerConfig(8, 2),
                             engine=EngineConfig(tp_degree=1))
        assert result.n_requests == len(trace)
        assert result.stats is not None
        assert result.stats.iterations > 0

    def test_artifact_disk_roundtrip_serves_identically(
            self, two_variant_system, base_model, tmp_path, rng):
        dz, _ = two_variant_system
        path = str(tmp_path / "review.dzip")
        save_compressed_delta(dz.artifacts["review-expert"], path)
        loaded = load_compressed_delta(path)
        runner = DecoupledModelRunner(base_model, {"v": loaded})
        toks = rng.integers(4, 100, size=(1, 8))
        fresh = dz.runner().forward(toks, ["review-expert"])
        from_disk = runner.forward(toks, ["v"])
        # extras round-trip at FP16, so tolerances are loose but tight
        np.testing.assert_allclose(fresh, from_disk, atol=0.05, rtol=0.05)
