"""CLI workflow, model checkpoints, and trace serialization."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.nn import TransformerConfig, TransformerModel
from repro.nn.checkpoint import load_model, save_model
from repro.workload import synthetic_trace
from repro.workload.io import load_trace, save_trace


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        model = TransformerModel(TransformerConfig.small(), seed=3)
        path = str(tmp_path / "m.ckpt")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.config == model.config
        toks = rng.integers(0, 128, size=(1, 8))
        np.testing.assert_allclose(model(toks), loaded(toks), atol=1e-6)

    def test_gqa_config_preserved(self, tmp_path):
        model = TransformerModel(TransformerConfig.tiny_gqa(), seed=0)
        path = str(tmp_path / "g.ckpt")
        save_model(model, path)
        assert load_model(path).config.n_kv_heads == 2


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = synthetic_trace(4, rate=2.0, duration_s=30.0, seed=5)
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.model_ids == trace.model_ids
        assert loaded.duration_s == trace.duration_s
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.request_id, a.model_id, a.arrival_s,
                    a.prompt_tokens, a.output_tokens) == \
                (b.request_id, b.model_id, b.arrival_s,
                 b.prompt_tokens, b.output_tokens)

    def test_headerless_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as f:
            f.write('{"request_id": 0, "model_id": "m0", "arrival_s": 1.0, '
                    '"prompt_tokens": 8, "output_tokens": 4}\n')
        trace = load_trace(path)
        assert trace.model_ids == ["m0"]
        assert trace.duration_s == 1.0

    def test_tenant_tags_roundtrip(self, tmp_path):
        from repro.workload import TenantWorkload, multi_tenant_trace
        trace = multi_tenant_trace(
            [TenantWorkload("a", rate=1.0), TenantWorkload("b", rate=1.0)],
            duration_s=20.0, seed=3)
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [r.tenant_id for r in loaded] == \
            [r.tenant_id for r in trace]
        assert loaded.tenant_ids == ["a", "b"]

    def test_untenanted_byte_format_unchanged(self, tmp_path):
        """Legacy trace files never mention tenant_id (old readers and
        diff-based fixtures stay valid)."""
        trace = synthetic_trace(2, rate=1.0, duration_s=10.0, seed=0)
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        with open(path) as f:
            assert "tenant_id" not in f.read()


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["trace", "--out", "x.jsonl"])
        assert args.command == "trace"
        with pytest.raises(SystemExit):
            parser.parse_args(["unknown"])

    def test_trace_and_simulate(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(["trace", "--distribution", "uniform", "--models", "4",
                     "--rate", "1.0", "--duration", "20",
                     "--out", trace_path]) == 0
        assert os.path.exists(trace_path)
        assert main(["simulate", "--trace", trace_path,
                     "--model", "llama-7b", "--gpus", "1", "--tp", "1",
                     "--systems", "deltazip", "--verbose"]) == 0

    def test_cluster_mode(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(["trace", "--distribution", "uniform", "--models", "4",
                     "--rate", "2.0", "--duration", "20",
                     "--out", trace_path]) == 0
        assert main(["cluster", "--trace", trace_path,
                     "--model", "llama-7b", "--gpus", "1", "--tp", "1",
                     "--replicas", "1,2", "--balancer", "lineage"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines()
                 if ln.strip() and not ln.startswith("replicas")]
        assert len(lines) >= 2  # one row per swept replica count

    def test_cluster_mode_autoscale(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(["trace", "--distribution", "uniform", "--models", "4",
                     "--rate", "4.0", "--duration", "30",
                     "--out", trace_path]) == 0
        assert main(["cluster", "--trace", trace_path,
                     "--model", "llama-7b", "--gpus", "1", "--tp", "1",
                     "--replicas", "1", "--autoscale",
                     "--max-replicas", "3", "--high-queue", "2",
                     "--verbose"]) == 0
        assert "peak" in capsys.readouterr().out

    def test_pretrain_finetune_compress_evaluate(self, tmp_path):
        base = str(tmp_path / "base.ckpt")
        ft = str(tmp_path / "ft.ckpt")
        calib = str(tmp_path / "calib.npy")
        dzip = str(tmp_path / "ft.dzip")
        assert main(["pretrain", "--size", "tiny", "--sequences", "96",
                     "--epochs", "3", "--out", base]) == 0
        assert main(["finetune", "--base", base, "--task", "review",
                     "--samples", "96", "--epochs", "3",
                     "--calibration-out", calib, "--out", ft]) == 0
        assert main(["compress", "--base", base, "--finetuned", ft,
                     "--preset", "deltazip-2bit", "--calibration", calib,
                     "--out", dzip]) == 0
        assert main(["evaluate", "--model", base, "--delta", dzip,
                     "--task", "review", "--examples", "20"]) == 0
        assert main(["evaluate", "--model", ft, "--task", "review",
                     "--examples", "20"]) == 0

    def test_lora_finetune_path(self, tmp_path):
        base = str(tmp_path / "base.ckpt")
        out = str(tmp_path / "lora.ckpt")
        assert main(["pretrain", "--size", "tiny", "--sequences", "64",
                     "--epochs", "2", "--out", base]) == 0
        assert main(["finetune", "--base", base, "--task", "review",
                     "--method", "lora", "--samples", "64", "--epochs", "2",
                     "--out", out]) == 0
        assert os.path.exists(out)
