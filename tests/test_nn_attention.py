"""Attention: causality, KV-cache equivalence, and gradient checks."""

import numpy as np
import pytest

from repro.nn.attention import KVCache, MultiHeadAttention


@pytest.fixture()
def attn():
    return MultiHeadAttention(dim=16, n_heads=4, max_seq=32,
                              rng=np.random.default_rng(3))


class TestForward:
    def test_output_shape(self, attn, rng):
        x = rng.normal(size=(2, 5, 16)).astype(np.float32)
        assert attn(x).shape == (2, 5, 16)

    def test_causality(self, attn, rng):
        """Perturbing a later position must not change earlier outputs."""
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        y1 = attn(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        y2 = attn(x2)
        np.testing.assert_allclose(y1[0, :5], y2[0, :5], atol=1e-5)
        assert not np.allclose(y1[0, 5], y2[0, 5], atol=1e-3)

    def test_dim_heads_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, 8, np.random.default_rng(0))


class TestKVCache:
    def test_incremental_matches_full(self, attn, rng):
        """Decode one token at a time == full-sequence forward."""
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        full = attn(x)
        cache = KVCache(1, 4, 32, 4)
        outs = []
        for t in range(6):
            outs.append(attn(x[:, t:t + 1], kv_cache=cache))
        inc = np.concatenate(outs, axis=1)
        np.testing.assert_allclose(full, inc, atol=1e-4)

    def test_chunked_prefill_matches_full(self, attn, rng):
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        full = attn(x)
        cache = KVCache(1, 4, 32, 4)
        part1 = attn(x[:, :4], kv_cache=cache)
        part2 = attn(x[:, 4:], kv_cache=cache)
        np.testing.assert_allclose(full, np.concatenate([part1, part2], axis=1),
                                   atol=1e-4)

    def test_overflow_raises(self):
        cache = KVCache(1, 2, 4, 4)
        k = np.zeros((1, 2, 3, 4), dtype=np.float32)
        cache.append(k, k)
        with pytest.raises(ValueError):
            cache.append(k, k)

    def test_length_tracking(self):
        cache = KVCache(1, 2, 8, 4)
        k = np.zeros((1, 2, 3, 4), dtype=np.float32)
        cache.append(k, k)
        assert cache.length == 3
        keys, values = cache.view()
        assert keys.shape == (1, 2, 3, 4)

    def test_training_cache_with_kv_cache_rejected(self, attn):
        cache = KVCache(1, 4, 32, 4)
        with pytest.raises(ValueError):
            attn(np.zeros((1, 2, 16), dtype=np.float32), kv_cache=cache,
                 cache=True)


class TestBackward:
    def test_gradients_match_numeric(self, rng):
        attn = MultiHeadAttention(dim=8, n_heads=2, max_seq=8,
                                  rng=np.random.default_rng(5))
        x = rng.normal(size=(1, 3, 8)).astype(np.float64)
        grad_out = rng.normal(size=(1, 3, 8)).astype(np.float64)

        def loss():
            return float(np.sum(attn(x.astype(np.float32)) * grad_out))

        attn(x.astype(np.float32), cache=True)
        grad_x = attn.backward(grad_out.astype(np.float32))

        eps = 1e-3
        num = np.zeros_like(x)
        flat, nflat = x.reshape(-1), num.reshape(-1)
        for i in range(flat.size):
            old = flat[i]
            flat[i] = old + eps
            hi = loss()
            flat[i] = old - eps
            lo = loss()
            flat[i] = old
            nflat[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(grad_x, num, atol=2e-2, rtol=5e-2)

    def test_backward_without_forward_raises(self, attn):
        with pytest.raises(RuntimeError):
            attn.backward(np.zeros((1, 2, 16), dtype=np.float32))

    def test_weight_grads_populated(self, attn, rng):
        x = rng.normal(size=(1, 4, 16)).astype(np.float32)
        attn(x, cache=True)
        attn.backward(np.ones((1, 4, 16), dtype=np.float32))
        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.o_proj):
            assert proj.weight.grad is not None
            assert np.any(proj.weight.grad != 0)
