"""Prefix/KV-cache reuse: radix index, engine integration, affinity routing.

Covers the PR's three determinism contracts — cache-off replays are
bit-identical to metadata-free ones, cache-on replays are run-to-run
deterministic (including under eviction pressure for every record
policy), and block refcounts conserve through cancellation — plus the
conversation-affinity balancers and patience-based shedding.
"""

from dataclasses import replace

import pytest

from repro.hardware import GPUNode, node_from_name
from repro.hardware.specs import A800, NodeSpec
from repro.serving import (AdmissionController, AdmissionDecision, BALANCERS,
                           ClusterGateway, ConversationAffinityBalancer,
                           EngineConfig, LLAMA_7B, LeastOutstandingBalancer,
                           LineageAffinityBalancer, ModelManager, PrefixCache,
                           RecordPolicy, SchedulerConfig, ServingGateway,
                           StreamingMetrics, Tenant, create_balancer,
                           create_engine, prefix_block_keys)
from repro.serving.request import RequestRecord
from repro.workload import session_trace
from repro.workload.spec import Trace, TraceRequest

N_MODELS = 2
BLOCK = 16


def make_manager(n_models=N_MODELS):
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(n_models):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def make_gateway(mgr=None, prefix_cache=True, node=None, **config):
    engine = create_engine(
        "deltazip", mgr or make_manager(),
        node or GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=2),
        engine_config=EngineConfig(tp_degree=1, prefix_cache=prefix_cache,
                                   prefix_block_tokens=BLOCK, **config))
    return ServingGateway(engine)


def tight_node(memory_gb=17.0):
    """One GPU with barely more memory than the weights, so the KV
    budget is small and the prefix pool is under constant pressure."""
    return GPUNode(NodeSpec(gpu=replace(A800, memory_gb=memory_gb),
                            n_gpus=1))


def conv_req(rid, arrival, prompt, output=8, conv="conv-0", shared=0,
             model="variant-00"):
    return TraceRequest(request_id=rid, model_id=model, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output,
                        conversation_id=conv,
                        shared_prefix_id=f"{model}:sys" if shared else None,
                        shared_prefix_tokens=shared)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s, rec.status)


def full_key(rec):
    return record_key(rec) + (rec.conversation_id, rec.cached_prefix_tokens)


def strip_metadata(trace):
    requests = [TraceRequest(request_id=r.request_id, model_id=r.model_id,
                             arrival_s=r.arrival_s,
                             prompt_tokens=r.prompt_tokens,
                             output_tokens=r.output_tokens)
                for r in trace.requests]
    return Trace(requests=requests, model_ids=list(trace.model_ids),
                 duration_s=trace.duration_s)


def session(duration_s=180.0, seed=3, shared=128, turns=4.0, rate=0.15):
    return session_trace(N_MODELS, rate, duration_s, seed=seed,
                         shared_prefix_tokens=shared, mean_turns=turns)


# --------------------------------------------------------------------------- #
class TestPrefixBlockKeys:
    def trace_req(self, prompt=100, shared=40, conv="c1"):
        return conv_req(0, 0.0, prompt, conv=conv, shared=shared)

    def test_complete_blocks_only(self):
        keys = prefix_block_keys(self.trace_req(prompt=100), 100, 16)
        assert len(keys) == 6          # 96 of 100 tokens form full blocks

    def test_shared_then_mixed_then_private(self):
        keys = prefix_block_keys(self.trace_req(prompt=100, shared=40),
                                 100, 16)
        assert keys[0][0] == "s" and keys[1][0] == "s"   # 0..32 shared
        assert keys[2][0] == "m"                         # 32..48 straddles
        assert all(k[0] == "c" for k in keys[3:])        # rest conversation

    def test_shared_blocks_agree_across_conversations(self):
        a = prefix_block_keys(self.trace_req(conv="c1"), 32, 16)
        b = prefix_block_keys(self.trace_req(conv="c2"), 32, 16)
        assert a == b                  # both fully inside the shared prefix

    def test_private_tail_disagrees_across_conversations(self):
        a = prefix_block_keys(self.trace_req(conv="c1"), 100, 16)
        b = prefix_block_keys(self.trace_req(conv="c2"), 100, 16)
        assert a[:2] == b[:2] and a[2:] != b[2:]

    def test_untagged_request_keys_by_request_id(self):
        r = TraceRequest(request_id=7, model_id="m", arrival_s=0.0,
                         prompt_tokens=64, output_tokens=8)
        keys = prefix_block_keys(r, 64, 16)
        assert all(k[1] == ("req", 7) for k in keys)


class TestPrefixCacheStructure:
    SCOPE = ("llama-7b", "variant-00")

    def keys(self, n, conv="c1"):
        return prefix_block_keys(conv_req(0, 0.0, n * BLOCK + 1, conv=conv),
                                 n * BLOCK, BLOCK)

    def test_insert_lookup_roundtrip(self):
        cache = PrefixCache(BLOCK)
        chain = cache.insert(self.SCOPE, self.keys(4))
        assert len(chain) == 4
        assert cache.lookup(self.SCOPE, self.keys(4)) == chain
        assert cache.n_blocks == 4

    def test_lookup_returns_longest_cached_prefix(self):
        cache = PrefixCache(BLOCK)
        cache.insert(self.SCOPE, self.keys(3))
        assert len(cache.lookup(self.SCOPE, self.keys(6))) == 3
        assert cache.lookup(self.SCOPE, self.keys(6, conv="other")) == []

    def test_scope_separation(self):
        cache = PrefixCache(BLOCK)
        cache.insert(self.SCOPE, self.keys(3))
        other = ("llama-7b", "variant-01")
        assert cache.lookup(other, self.keys(3)) == []

    def test_refcounts_and_underflow(self):
        cache = PrefixCache(BLOCK)
        chain = cache.insert(self.SCOPE, self.keys(2))
        cache.acquire(chain)
        assert cache.total_refcount == 2
        assert cache.n_evictable == 0          # referenced → unevictable
        cache.release(chain)
        assert cache.total_refcount == 0
        assert cache.n_evictable == 1          # only the leaf is evictable
        with pytest.raises(RuntimeError):
            cache.release(chain)

    def test_eviction_is_leaf_first_and_cascades(self):
        cache = PrefixCache(BLOCK)
        cache.insert(self.SCOPE, self.keys(3))
        assert cache.evict(1) == 1             # the depth-3 leaf
        assert cache.n_blocks == 2
        assert cache.lookup(self.SCOPE, self.keys(3)) == \
            cache.lookup(self.SCOPE, self.keys(2))
        assert cache.evict(10) == 2            # cascade drains the chain
        assert cache.n_blocks == 0

    def test_referenced_blocks_survive_eviction(self):
        cache = PrefixCache(BLOCK)
        chain = cache.insert(self.SCOPE, self.keys(2))
        cache.acquire(chain)
        assert cache.evict(10) == 0
        cache.release(chain)
        assert cache.evict_to(0) == 2

    def test_lru_order_is_touch_order(self):
        cache = PrefixCache(BLOCK)
        cache.insert(self.SCOPE, self.keys(1, conv="a"))
        cache.insert(self.SCOPE, self.keys(1, conv="b"))
        cache.lookup(self.SCOPE, self.keys(1, conv="a"))   # touch a
        cache.evict(1)                                      # drops cold b
        assert cache.lookup(self.SCOPE, self.keys(1, conv="a"))
        assert not cache.lookup(self.SCOPE, self.keys(1, conv="b"))


# --------------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_cache_off_ignores_conversation_metadata(self):
        trace = session()
        mgr = make_manager()
        tagged = make_gateway(mgr, prefix_cache=False).replay(trace)
        plain = make_gateway(mgr, prefix_cache=False).replay(
            strip_metadata(trace))
        assert [record_key(r) for r in tagged.records] == \
            [record_key(r) for r in plain.records]
        assert all(r.cached_prefix_tokens == 0 for r in tagged.records)
        assert tagged.stats.prefix_lookups == 0

    def test_cache_on_is_run_to_run_deterministic(self):
        trace = session()
        mgr = make_manager()
        a = make_gateway(mgr, prefix_cache=True).replay(trace)
        b = make_gateway(mgr, prefix_cache=True).replay(trace)
        assert [full_key(r) for r in a.records] == \
            [full_key(r) for r in b.records]
        assert a.stats.prefix_hits == b.stats.prefix_hits > 0

    def test_repeat_turn_reuses_prefix_and_cuts_ttft(self):
        mgr = make_manager()
        turns = [conv_req(0, 0.0, 200, output=50),
                 conv_req(1, 30.0, 290, output=50)]
        trace = Trace(requests=turns, model_ids=["variant-00"],
                      duration_s=60.0)
        off = make_gateway(mgr, prefix_cache=False).replay(trace)
        on = make_gateway(mgr, prefix_cache=True).replay(trace)
        off_t2 = next(r for r in off.records if r.request_id == 1)
        on_t2 = next(r for r in on.records if r.request_id == 1)
        # turn 1's 250-token context = 15 complete 16-token blocks
        assert on_t2.cached_prefix_tokens == 240
        assert on_t2.ttft_s < off_t2.ttft_s

    def test_refcounts_conserve_at_drain(self):
        gateway = make_gateway(prefix_cache=True)
        gateway.replay(session(duration_s=120.0))
        engine = gateway.engine
        assert engine._prefix_cache.total_refcount == 0
        assert engine._prefix_refs == {}
        assert engine._prefix_cache.n_blocks > 0

    def test_mid_flight_cancel_releases_refs_and_commits_nothing(self):
        gateway = make_gateway(prefix_cache=True)
        first = gateway.submit("variant-00", 200, 50,
                               conversation_id="conv-0")
        gateway.run_until_drained()
        assert first.record().finished
        cache = gateway.engine._prefix_cache
        blocks_after_turn1 = cache.n_blocks
        second = gateway.submit("variant-00", 290, 50,
                                conversation_id="conv-0")
        for _ in range(2):              # admitted: holds prefix refs now
            gateway.step()
        assert cache.total_refcount > 0
        second.cancel()
        gateway.run_until_drained()
        assert second.record().status == "cancelled"
        assert cache.total_refcount == 0
        assert gateway.engine._prefix_refs == {}
        assert cache.n_blocks == blocks_after_turn1   # nothing committed

    @pytest.mark.parametrize("policy", [RecordPolicy.KEEP_ALL,
                                        RecordPolicy.SAMPLE_K,
                                        RecordPolicy.DROP])
    def test_eviction_determinism_under_every_record_policy(self, policy):
        trace = session(duration_s=120.0, shared=256, turns=6.0, rate=0.2)
        mgr = make_manager()

        def run():
            gw = make_gateway(mgr, prefix_cache=True, node=tight_node(),
                              record_policy=policy, sample_k=16)
            return gw.replay(trace)

        a, b = run(), run()
        assert a.stats.prefix_evictions == b.stats.prefix_evictions > 0
        assert a.stats.prefix_hits == b.stats.prefix_hits
        assert [full_key(r) for r in a.records] == \
            [full_key(r) for r in b.records]
        assert a.stream.tokens_served == b.stream.tokens_served
        assert a.stream.prefix_saved_tokens == b.stream.prefix_saved_tokens


# --------------------------------------------------------------------------- #
class TestConversationAffinity:
    def replicas(self, n=3):
        mgr = make_manager()

        def factory(node):
            return create_engine(
                "deltazip", mgr, node or GPUNode(node_from_name("a800", 1)),
                scheduler_config=SchedulerConfig(max_batch_requests=8,
                                                 max_concurrent_deltas=2),
                engine_config=EngineConfig(tp_degree=1))
        from repro.hardware import Cluster
        return ClusterGateway(engine_factory=factory,
                              cluster=Cluster.from_name("a800", n, 1),
                              n_replicas=n,
                              balancer="conversation").replicas

    def test_registered(self):
        assert "conversation" in BALANCERS
        assert isinstance(create_balancer("conversation"),
                          ConversationAffinityBalancer)

    def test_pins_conversation_and_falls_back_untagged(self):
        replicas = self.replicas()
        bal = ConversationAffinityBalancer()
        home = bal.choose("m", replicas, conversation_id="conv-1")
        assert all(bal.choose("m", replicas, conversation_id="conv-1")
                   is home for _ in range(5))
        # untagged requests use the fallback, never disturb the pin
        bal.choose("m", replicas)
        assert bal.choose("m", replicas, conversation_id="conv-1") is home

    def test_draining_home_rehomes(self):
        replicas = self.replicas()
        bal = ConversationAffinityBalancer()
        home = bal.choose("m", replicas, conversation_id="conv-1")
        home.draining = True
        rehomed = bal.choose("m", [r for r in replicas if not r.draining],
                             conversation_id="conv-1")
        assert rehomed is not home
        home.draining = False
        # the pin moved: later turns stay on the new home
        assert bal.choose("m", replicas, conversation_id="conv-1") is rehomed

    def test_on_abandoned_and_on_removed_unpin(self):
        replicas = self.replicas()
        bal = ConversationAffinityBalancer(
            fallback=LeastOutstandingBalancer())
        home = bal.choose("m", replicas, conversation_id="conv-1")
        bal.on_abandoned("m", conversation_id="conv-1")
        assert "conv-1" not in bal._home
        again = bal.choose("m", replicas, conversation_id="conv-2")
        bal.on_removed(again)
        assert bal._home == {} or home not in bal._home.values()

    def test_lineage_conversation_pin_outranks_variant_home(self):
        replicas = self.replicas()
        bal = LineageAffinityBalancer()
        variant_home = bal.choose("variant-00", replicas)
        conv_home = bal.choose("variant-00", replicas,
                               conversation_id="conv-9")
        # force the conversation onto a different replica than the
        # variant home, then check the session pin wins
        other = next(r for r in replicas if r is not variant_home)
        bal._conv_home["conv-9"] = other
        assert bal.choose("variant-00", replicas,
                          conversation_id="conv-9") is other
        assert conv_home is not None

    def test_lineage_on_abandoned_unpins_conversation(self):
        replicas = self.replicas()
        bal = LineageAffinityBalancer()
        bal.choose("variant-00", replicas, conversation_id="conv-9")
        assert "conv-9" in bal._conv_home
        bal.on_abandoned("variant-00", conversation_id="conv-9")
        assert "conv-9" not in bal._conv_home

    def test_cluster_replay_with_conversation_balancer_deterministic(self):
        trace = session(duration_s=120.0)
        mgr = make_manager()
        from repro.hardware import Cluster

        def run():
            def factory(node):
                return create_engine(
                    "deltazip", mgr,
                    node or GPUNode(node_from_name("a800", 1)),
                    scheduler_config=SchedulerConfig(
                        max_batch_requests=8, max_concurrent_deltas=2),
                    engine_config=EngineConfig(tp_degree=1,
                                               prefix_cache=True,
                                               prefix_block_tokens=BLOCK))
            gw = ClusterGateway(engine_factory=factory,
                                cluster=Cluster.from_name("a800", 2, 1),
                                n_replicas=2, balancer="conversation")
            return gw.replay(trace)

        a, b = run(), run()
        assert [full_key(r) for r in a.records] == \
            [full_key(r) for r in b.records]


# --------------------------------------------------------------------------- #
class TestPatienceShedding:
    def test_patience_validation_and_threshold(self):
        with pytest.raises(ValueError):
            Tenant("t", patience_s=0.0)
        t = Tenant("t", slo_class="interactive", patience_s=2.0)
        assert t.shed_threshold_s == min(t.slo_s, 2.0)
        assert Tenant("u").shed_threshold_s == Tenant("u").slo_s

    def test_shed_trips_on_patience_before_slo(self):
        controller = AdmissionController(shed=True)
        t = Tenant("p", slo_class="batch", patience_s=3.0)
        controller.register(t)
        assert t.slo_s > 3.0
        r = TraceRequest(request_id=0, model_id="m", arrival_s=0.0,
                         prompt_tokens=32, output_tokens=16, tenant_id="p")
        # within patience → admitted even though it is far from the SLO
        assert controller.offer(r, predicted_ttft_s=2.0) is \
            AdmissionDecision.ADMITTED
        r2 = TraceRequest(request_id=1, model_id="m", arrival_s=0.0,
                          prompt_tokens=32, output_tokens=16, tenant_id="p")
        # would meet the SLO but outlasts the clients' patience → shed
        assert controller.offer(r2, predicted_ttft_s=4.0) is \
            AdmissionDecision.SHED


# --------------------------------------------------------------------------- #
class TestMetricsSurface:
    def rec(self, rid, cached):
        return RequestRecord(
            request_id=rid, model_id="m", arrival_s=0.0, first_token_s=1.0,
            finish_s=2.0, prompt_tokens=64, output_tokens=8,
            queue_wait_s=0.0, loading_s=0.0, inference_s=2.0,
            skipped_line=False, preemptions=0,
            cached_prefix_tokens=cached)

    def test_streaming_metrics_count_prefix_reuse(self):
        m = StreamingMetrics()
        m.observe(self.rec(0, 48))
        m.observe(self.rec(1, 0))
        assert m.prefix_hits == 1
        assert m.prefix_saved_tokens == 48
        view = m.finished_view()
        assert view.prefix_saved_tokens == 48
        other = StreamingMetrics()
        other.observe(self.rec(2, 16))
        m.merge_from(other)
        assert m.prefix_hits == 2 and m.prefix_saved_tokens == 64

    def test_gauge_snapshot_carries_prefix_fields(self):
        from repro.telemetry import GaugeSnapshot
        snap = GaugeSnapshot(time_s=1.0, prefix_hit_rate=0.5,
                             prefix_saved_tokens=320)
        d = snap.as_dict()
        assert d["prefix_hit_rate"] == 0.5
        assert d["prefix_saved_tokens"] == 320
