"""Serving components: model specs, manager, cost model, functional SBMM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.configs import CompressionConfig
from repro.hardware import A800
from repro.serving import (LLAMA_13B, LLAMA_70B, LLAMA_7B, BatchComposition,
                           IterationCostModel, ModelManager,
                           group_requests_by_delta, sbmm_forward,
                           sbmm_reference)
from repro.serving.model_manager import ArtifactKind


class TestModelSpecs:
    def test_7b_parameter_count(self):
        # Llama-2-7B is ~6.7e9 parameters
        assert 6.0e9 < LLAMA_7B.total_params < 7.5e9

    def test_13b_parameter_count(self):
        assert 12.0e9 < LLAMA_13B.total_params < 14.0e9

    def test_70b_uses_gqa(self):
        assert LLAMA_70B.kv_heads == 8
        # GQA shrinks KV bytes far below the MHA equivalent
        mha_like = 2 * LLAMA_70B.n_layers * LLAMA_70B.dim * 2
        assert LLAMA_70B.kv_bytes_per_token() < mha_like / 4

    def test_delta_nbytes(self):
        assert LLAMA_13B.delta_nbytes(10.0) == \
            pytest.approx(LLAMA_13B.fp16_nbytes / 10, rel=1e-6)
        with pytest.raises(ValueError):
            LLAMA_13B.delta_nbytes(0)

    def test_gemm_shapes_cover_seven_projections(self):
        shapes = LLAMA_7B.layer_gemm_shapes()
        assert len(shapes) == 7
        assert shapes[0] == (4096, 4096)
        assert shapes[4] == (4096, 11008)

    def test_bridge_from_transformer_config(self, tiny_config):
        spec = __import__("repro.serving.models",
                          fromlist=["ServedModelSpec"]) \
            .ServedModelSpec.from_transformer_config(tiny_config)
        assert spec.dim == tiny_config.dim
        assert spec.n_layers == tiny_config.n_layers


class TestModelManager:
    def make(self):
        mgr = ModelManager(LLAMA_13B)
        mgr.register_base("base")
        return mgr

    def test_register_and_lookup(self):
        mgr = self.make()
        mgr.register_delta("v1", "base", 10.0,
                           CompressionConfig.deltazip_4bit())
        entry = mgr.get("v1")
        assert entry.kind == ArtifactKind.DELTA
        assert entry.nbytes == LLAMA_13B.delta_nbytes(10.0)
        assert "v1" in mgr

    def test_duplicate_rejected(self):
        mgr = self.make()
        with pytest.raises(ValueError):
            mgr.register_base("base")

    def test_unknown_base_rejected(self):
        mgr = self.make()
        with pytest.raises(KeyError):
            mgr.register_delta("v1", "nope", 10.0)

    def test_delta_on_delta_rejected(self):
        mgr = self.make()
        mgr.register_delta("v1", "base", 10.0)
        with pytest.raises(ValueError):
            mgr.register_delta("v2", "v1", 10.0)

    def test_lineage(self):
        mgr = self.make()
        mgr.register_delta("v1", "base", 10.0)
        assert mgr.lineage("v1") == ["v1", "base"]

    def test_variants_filter(self):
        mgr = self.make()
        mgr.register_delta("v1", "base", 10.0)
        mgr.register_lora("l1", "base", 10_000_000)
        mgr.register_full("f1", "base")
        assert {m.model_id for m in mgr.variants("base")} == \
            {"v1", "l1", "f1"}
        assert [m.model_id for m in mgr.bases()] == ["base"]

    def test_lora_nbytes_small(self):
        mgr = self.make()
        entry = mgr.register_lora("l1", "base", 10_000_000)
        assert entry.nbytes < mgr.get("base").nbytes / 100


class TestIterationCostModel:
    def make(self, **kw):
        return IterationCostModel(LLAMA_13B, A800, tp_degree=4, **kw)

    def batch(self, decode, prefill=None, context=0):
        return BatchComposition(decode_per_delta=decode,
                                prefill_tokens_per_delta=prefill or {},
                                context_tokens=context)

    def test_empty_batch_free(self):
        assert self.make().iteration_time(self.batch({})) == 0.0

    def test_grows_with_batch(self):
        cm = self.make()
        small = cm.iteration_time(self.batch({"a": 1}, context=100))
        large = cm.iteration_time(self.batch({"a": 32}, context=3200))
        assert large > small

    def test_batching_variants_cheaper_than_fullmodel_loop(self):
        """The decoupling payoff: 8 variants x 2 requests in one decoupled
        pass beats 8 separate full-model passes."""
        cm = self.make()
        decode = {f"m{i}": 2 for i in range(8)}
        decoupled = cm.iteration_time(self.batch(decode, context=1600))
        scb = cm.fullmodel_iteration_time({f"m{i}": 2 for i in range(8)},
                                          context_tokens=1600)
        assert decoupled < scb / 2

    def test_single_variant_overhead_modest(self):
        """For one variant the decoupled path costs at most ~2x the plain
        dense pass (base GEMM dominates; delta rides along)."""
        cm = self.make()
        dec = cm.iteration_time(self.batch({"m0": 8}, context=800))
        full = cm.fullmodel_iteration_time({"m0": 8}, context_tokens=800)
        assert dec < 2.0 * full

    def test_lora_variant_cheaper_than_delta(self):
        cm = self.make(lora_rank=16)
        decode = {f"m{i}": 2 for i in range(8)}
        lora = cm.iteration_time(self.batch(decode, context=800), "lora")
        delta = cm.iteration_time(self.batch(decode, context=800), "delta")
        assert lora <= delta * 1.1

    def test_none_variant_is_base_only(self):
        cm = self.make()
        t = cm.iteration_time(self.batch({"m0": 4}, context=400), "none")
        assert t > 0

    def test_unknown_variant_kind_rejected(self):
        cm = self.make()
        with pytest.raises(ValueError):
            cm.iteration_time(self.batch({"m0": 1}), "adapterzzz")

    def test_tp_reduces_iteration_time(self):
        decode = {f"m{i}": 4 for i in range(4)}
        t1 = IterationCostModel(LLAMA_13B, A800, tp_degree=1).iteration_time(
            self.batch(decode, context=1000))
        t4 = IterationCostModel(LLAMA_13B, A800, tp_degree=4).iteration_time(
            self.batch(decode, context=1000))
        assert t4 < t1

    def test_invalid_tp_rejected(self):
        with pytest.raises(ValueError):
            IterationCostModel(LLAMA_13B, A800, tp_degree=0)


class TestFunctionalSBMM:
    def test_matches_reference(self, rng):
        x = rng.normal(size=(7, 8)).astype(np.float32)
        deltas = [rng.normal(size=(5, 8)).astype(np.float32)
                  for _ in range(3)]
        idx = [0, 1, 2, 0, 1, 2, 0]
        np.testing.assert_allclose(sbmm_forward(x, deltas, idx),
                                   sbmm_reference(x, deltas, idx), atol=1e-5)

    @given(st.integers(1, 16), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_property(self, batch, n_deltas):
        rng = np.random.default_rng(batch * 7 + n_deltas)
        x = rng.normal(size=(batch, 6)).astype(np.float32)
        deltas = [rng.normal(size=(4, 6)).astype(np.float32)
                  for _ in range(n_deltas)]
        idx = rng.integers(0, n_deltas, size=batch)
        np.testing.assert_allclose(sbmm_forward(x, deltas, idx),
                                   sbmm_reference(x, deltas, idx), atol=1e-4)

    def test_grouping_contiguous(self):
        order, groups = group_requests_by_delta([2, 0, 2, 1, 0])
        assert set(order.tolist()) == set(range(5))
        np.testing.assert_array_equal(groups[2], [0, 2])
        np.testing.assert_array_equal(groups[0], [1, 4])

    def test_index_validation(self, rng):
        x = rng.normal(size=(2, 4)).astype(np.float32)
        deltas = [rng.normal(size=(3, 4)).astype(np.float32)]
        with pytest.raises(IndexError):
            sbmm_forward(x, deltas, [0, 5])
        with pytest.raises(ValueError):
            sbmm_forward(x, deltas, [0])

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            sbmm_forward(rng.normal(size=(2, 3, 4)).astype(np.float32),
                         [np.zeros((2, 4), dtype=np.float32)], [0, 0])
