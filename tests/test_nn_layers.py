"""Unit tests for Linear / RMSNorm / Embedding forward & backward."""

import numpy as np
import pytest

from repro.nn.layers import Embedding, Linear, RMSNorm
from repro.nn.tensoring import (Module, Parameter, clone_state_dict,
                                load_state_dict, save_state_dict,
                                state_dict_nbytes, state_dicts_allclose)


@pytest.fixture()
def gen():
    return np.random.default_rng(7)


class TestLinear:
    def test_forward_shape_and_value(self, gen):
        layer = Linear(4, 3, gen)
        x = gen.normal(size=(2, 5, 4)).astype(np.float32)
        y = layer(x)
        assert y.shape == (2, 5, 3)
        np.testing.assert_allclose(y, x @ layer.weight.data.T, atol=1e-6)

    def test_backward_weight_grad(self, gen):
        layer = Linear(4, 3, gen)
        x = gen.normal(size=(2, 4)).astype(np.float32)
        y = layer(x, cache=True)
        grad_out = np.ones_like(y)
        grad_in = layer.backward(grad_out)
        np.testing.assert_allclose(layer.weight.grad, grad_out.T @ x,
                                   atol=1e-5)
        np.testing.assert_allclose(grad_in, grad_out @ layer.weight.data,
                                   atol=1e-5)

    def test_backward_without_cache_raises(self, gen):
        layer = Linear(4, 3, gen)
        layer(np.zeros((1, 4), dtype=np.float32))  # no cache
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 3), dtype=np.float32))

    def test_grad_accumulates(self, gen):
        layer = Linear(2, 2, gen)
        x = np.ones((1, 2), dtype=np.float32)
        for _ in range(2):
            layer(x, cache=True)
            layer.backward(np.ones((1, 2), dtype=np.float32))
        np.testing.assert_allclose(layer.weight.grad, 2 * np.ones((2, 2)),
                                   atol=1e-6)


class TestRMSNormLayer:
    def test_forward_matches_functional(self, gen):
        layer = RMSNorm(8)
        layer.weight.data = gen.normal(size=8).astype(np.float32)
        x = gen.normal(size=(3, 8)).astype(np.float32)
        import repro.nn.functional as F
        np.testing.assert_allclose(layer(x),
                                   F.rms_norm(x, layer.weight.data),
                                   atol=1e-6)

    def test_backward_populates_grads(self, gen):
        layer = RMSNorm(8)
        x = gen.normal(size=(3, 8)).astype(np.float32)
        layer(x, cache=True)
        grad_in = layer.backward(np.ones((3, 8), dtype=np.float32))
        assert grad_in.shape == (3, 8)
        assert layer.weight.grad is not None


class TestEmbedding:
    def test_lookup(self, gen):
        emb = Embedding(10, 4, gen)
        idx = np.array([[1, 2], [3, 9]])
        out = emb(idx)
        np.testing.assert_array_equal(out, emb.weight.data[idx])

    def test_backward_scatter_adds(self, gen):
        emb = Embedding(10, 4, gen)
        idx = np.array([[1, 1]])  # repeated index must accumulate
        emb(idx, cache=True)
        emb.backward(np.ones((1, 2, 4), dtype=np.float32))
        np.testing.assert_allclose(emb.weight.grad[1], 2.0, atol=1e-6)
        np.testing.assert_allclose(emb.weight.grad[0], 0.0, atol=1e-6)


class TestModuleInfrastructure:
    def test_named_parameters_nested(self, gen):
        class Inner(Module):
            def __init__(self):
                self.w = Parameter(np.zeros(2))

        class Outer(Module):
            def __init__(self):
                self.inner = Inner()
                self.blocks = [Inner(), Inner()]

        names = dict(Outer().named_parameters())
        assert set(names) == {"inner.w", "blocks.0.w", "blocks.1.w"}

    def test_state_dict_roundtrip(self, gen):
        a = Linear(3, 2, gen)
        b = Linear(3, 2, np.random.default_rng(99))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_load_state_dict_strict_mismatch(self, gen):
        a = Linear(3, 2, gen)
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros((2, 3))})

    def test_load_state_dict_shape_mismatch(self, gen):
        a = Linear(3, 2, gen)
        with pytest.raises(ValueError):
            a.load_state_dict({"weight": np.zeros((5, 5))})

    def test_save_load_file_roundtrip(self, gen, tmp_path):
        state = {"x": gen.normal(size=(3, 4)).astype(np.float32),
                 "y.z": gen.normal(size=7).astype(np.float32)}
        path = str(tmp_path / "ckpt.zip")
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert state_dicts_allclose(state, loaded)

    def test_state_dict_nbytes(self):
        state = {"a": np.zeros((2, 2), dtype=np.float32)}
        assert state_dict_nbytes(state) == 16

    def test_clone_is_deep(self, gen):
        state = {"a": np.ones(3, dtype=np.float32)}
        clone = clone_state_dict(state)
        clone["a"][0] = 5.0
        assert state["a"][0] == 1.0
