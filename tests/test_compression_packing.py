"""Bit-packing and 2:4 sparse encoding: round-trips and byte accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.packing import (pack_codes, pack_nm_sparse,
                                       unpack_codes, unpack_nm_sparse)
from repro.compression.sparsity import nm_mask


class TestPackCodes:
    @pytest.mark.parametrize("bits", [2, 3, 4, 8, 16])
    def test_roundtrip(self, bits, rng):
        codes = rng.integers(0, 1 << bits, size=137).astype(np.uint32)
        words = pack_codes(codes, bits)
        out = unpack_codes(words, bits, 137)
        np.testing.assert_array_equal(out, codes)

    def test_word_count_4bit(self):
        codes = np.zeros(16, dtype=np.uint32)
        assert pack_codes(codes, 4).size == 2  # 8 codes per word

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([4]), 2)

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.zeros(4, dtype=np.uint32), 5)

    @given(st.integers(1, 200), st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_length(self, n, bits):
        rng = np.random.default_rng(n)
        codes = rng.integers(0, 1 << bits, size=n).astype(np.uint32)
        out = unpack_codes(pack_codes(codes, bits), bits, n)
        np.testing.assert_array_equal(out, codes)


class TestPackNMSparse:
    def _make(self, rng, rows=4, cols=16, bits=4):
        w = rng.normal(size=(rows, cols)).astype(np.float32)
        mask = nm_mask(w, 2, 4)
        codes = rng.integers(0, 1 << bits, size=(rows, cols)).astype(np.uint16)
        codes[~mask] = 0
        return codes, mask

    def test_roundtrip_codes_and_mask(self, rng):
        codes, mask = self._make(rng)
        packed = pack_nm_sparse(codes, mask, 4, 2, 4)
        out_codes, out_mask = unpack_nm_sparse(packed)
        np.testing.assert_array_equal(out_mask, mask)
        np.testing.assert_array_equal(out_codes[mask], codes[mask])
        assert np.all(out_codes[~mask] == 0)

    def test_wrong_kept_count_rejected(self, rng):
        codes = np.zeros((1, 4), dtype=np.uint16)
        mask = np.array([[True, True, True, False]])  # 3 kept, need 2
        with pytest.raises(ValueError):
            pack_nm_sparse(codes, mask, 4, 2, 4)

    def test_indivisible_cols_rejected(self):
        with pytest.raises(ValueError):
            pack_nm_sparse(np.zeros((1, 6), dtype=np.uint16),
                           np.ones((1, 6), dtype=bool), 4, 2, 4)

    def test_byte_accounting_fig5(self):
        """Fig 5's 64-value span: 2:4 + 4-bit -> values 16B, indices 4B."""
        rng = np.random.default_rng(0)
        codes, mask = self._make(rng, rows=1, cols=64, bits=4)
        packed = pack_nm_sparse(codes, mask, 4, 2, 4)
        assert packed.nbytes_values() == 32 * 4 // 8   # 32 kept at 4 bits
        assert packed.nbytes_indices() == 32 * 2 // 8  # 2-bit positions
        # FP16 span = 128 B; packed = 24 B -> Fig 5's 5.33x annotation
        assert 128 / packed.nbytes() == pytest.approx(64 / 12, rel=0.01)

    @given(st.integers(1, 6), st.integers(1, 10), st.sampled_from([2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, rows, groups, bits):
        rng = np.random.default_rng(rows * 100 + groups)
        cols = groups * 4
        w = rng.normal(size=(rows, cols)).astype(np.float32)
        mask = nm_mask(w, 2, 4)
        codes = rng.integers(0, 1 << bits, size=(rows, cols)).astype(np.uint16)
        codes[~mask] = 0
        packed = pack_nm_sparse(codes, mask, bits, 2, 4)
        out_codes, out_mask = unpack_nm_sparse(packed)
        np.testing.assert_array_equal(out_mask, mask)
        np.testing.assert_array_equal(out_codes, codes)

    def test_1_of_4_pattern(self, rng):
        w = rng.normal(size=(2, 8)).astype(np.float32)
        mask = nm_mask(w, 1, 4)
        codes = rng.integers(0, 16, size=(2, 8)).astype(np.uint16)
        codes[~mask] = 0
        packed = pack_nm_sparse(codes, mask, 4, 1, 4)
        out_codes, out_mask = unpack_nm_sparse(packed)
        np.testing.assert_array_equal(out_mask, mask)
        np.testing.assert_array_equal(out_codes, codes)
