"""simlint: each SIM rule catches its seeded violation and passes the
clean idiom; pragmas, config, reporters, and the CLI behave."""

import json
from pathlib import Path

import pytest

from repro.analysis import (LintConfig, PARSE_RULE, RULES, check_paths,
                            check_source, parse_pragmas, render_json,
                            render_sarif, render_text, rule_docs)
from repro.analysis.__main__ import main as simlint_main
from repro.analysis.config import FALLBACK_SHARED_EXCLUDE, load_pyproject
from repro.analysis.config import _tiny_toml
from repro.analysis.rules import _EVENT_CLASSES

REPO = Path(__file__).resolve().parent.parent

SIM_PATH = "src/repro/sim/somefile.py"
SERVING_PATH = "src/repro/serving/somefile.py"


def rules_of(source, path=SIM_PATH, **kwargs):
    return [f.rule for f in check_source(source, path=path, **kwargs)]


# --------------------------------------------------------------------- #
# one caught violation + one clean idiom per rule
# --------------------------------------------------------------------- #
class TestSIM001WallClock:
    def test_time_time_is_caught(self):
        assert rules_of("import time\nt = time.time()\n") == ["SIM001"]

    def test_from_import_alias_is_caught(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert rules_of(src) == ["SIM001"]

    def test_datetime_now_is_caught(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rules_of(src) == ["SIM001"]

    def test_sim_clock_usage_is_clean(self):
        src = ("from repro.sim import SimClock\n"
               "def f(clock: SimClock) -> float:\n"
               "    return clock.now\n")
        assert rules_of(src) == []

    def test_locally_defined_time_is_clean(self):
        # `self.time()` is not the time module
        src = "def f(self):\n    return self.time()\n"
        assert rules_of(src) == []


class TestSIM002GlobalRng:
    def test_random_module_call_is_caught(self):
        assert rules_of("import random\nx = random.random()\n") == ["SIM002"]

    def test_np_random_legacy_is_caught(self):
        src = "import numpy as np\nnp.random.shuffle([1, 2])\n"
        assert rules_of(src) == ["SIM002"]

    def test_argless_default_rng_is_caught(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(src) == ["SIM002"]

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert rules_of(src) == []

    def test_generator_method_is_clean(self):
        # drawing from a local Generator is exactly the sanctioned idiom
        src = "def f(rng):\n    return rng.random()\n"
        assert rules_of(src) == []

    def test_rule_only_applies_in_scoped_trees(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(src, path="src/repro/evaluation/x.py") == []


class TestSIM003SetOrder:
    def test_set_iteration_into_push_is_caught(self):
        src = "def f(q, xs):\n    for x in set(xs):\n        q.push(x)\n"
        assert rules_of(src) == ["SIM003"]

    def test_dict_keys_into_emit_is_caught(self):
        src = ("def f(kernel, d):\n"
               "    for k in d.keys():\n"
               "        kernel.emit(k)\n")
        assert rules_of(src) == ["SIM003"]

    def test_sum_over_set_is_caught(self):
        src = "def f(xs):\n    return sum(x * 2.0 for x in set(xs))\n"
        assert rules_of(src) == ["SIM003"]

    def test_sorted_wrapper_is_clean(self):
        src = ("def f(q, xs):\n"
               "    for x in sorted(set(xs)):\n"
               "        q.push(x)\n")
        assert rules_of(src) == []

    def test_set_iteration_without_sink_is_clean(self):
        src = "def f(xs):\n    return {x for x in set(xs)}\n"
        assert rules_of(src) == []


class TestSIM004ClockMutation:
    def test_now_assignment_is_caught(self):
        src = "def f(self, t):\n    self.now = t\n"
        assert rules_of(src, path=SERVING_PATH) == ["SIM004"]

    def test_clock_suffix_augassign_is_caught(self):
        src = "def f(self, dt):\n    self.engine_clock += dt\n"
        assert rules_of(src, path=SERVING_PATH) == ["SIM004"]

    def test_reseat_is_clean(self):
        src = "def f(self, t):\n    self._sim.reseat(t)\n"
        assert rules_of(src, path=SERVING_PATH) == []

    def test_clock_py_is_exempt(self):
        src = "def f(self, t):\n    self.now = t\n"
        assert rules_of(src, path="src/repro/sim/clock.py") == []


class TestSIM005Heapq:
    def test_import_heapq_is_caught(self):
        assert rules_of("import heapq\n") == ["SIM005"]

    def test_from_heapq_import_is_caught(self):
        assert rules_of("from heapq import heappush\n") == ["SIM005"]

    def test_queue_py_is_exempt(self):
        assert rules_of("import heapq\n",
                        path="src/repro/sim/queue.py") == []

    def test_keyed_heap_usage_is_clean(self):
        src = ("from repro.sim import KeyedHeap\n"
               "def f(h: KeyedHeap) -> None:\n"
               "    h.push((0.0, 1), 'item')\n")
        assert rules_of(src) == []


class TestSIM006TimeEquality:
    def test_eq_on_time_values_is_caught(self):
        src = "def f(a_s, b_s):\n    return a_s == b_s\n"
        assert rules_of(src) == ["SIM006"]

    def test_neq_on_time_attribute_is_caught(self):
        src = "def f(self, t):\n    return self.finish_s != t\n"
        assert rules_of(src) == ["SIM006"]

    def test_ordering_comparison_is_clean(self):
        src = "def f(a_s, b_s):\n    return a_s <= b_s\n"
        assert rules_of(src) == []

    def test_none_check_is_clean(self):
        src = "def f(a_s):\n    return a_s == None\n"
        assert rules_of(src) == []

    def test_non_time_names_are_clean(self):
        src = "def f(count, n):\n    return count == n\n"
        assert rules_of(src) == []


class TestSIM007MutableDefault:
    def test_list_default_is_caught(self):
        src = "def f(x, acc=[]):\n    acc.append(x)\n"
        assert rules_of(src) == ["SIM007"]

    def test_kwonly_dict_default_is_caught(self):
        src = "def f(x, *, cache={}):\n    cache[x] = x\n"
        assert rules_of(src) == ["SIM007"]

    def test_dataclass_mutable_field_is_caught(self):
        src = ("from dataclasses import dataclass\n"
               "@dataclass\nclass C:\n    xs: list = []\n")
        assert rules_of(src) == ["SIM007"]

    def test_field_default_factory_is_clean(self):
        src = ("from dataclasses import dataclass, field\n"
               "@dataclass\nclass C:\n"
               "    xs: list = field(default_factory=list)\n")
        assert rules_of(src) == []

    def test_none_default_is_clean(self):
        src = "def f(x, acc=None):\n    acc = acc or []\n"
        assert rules_of(src) == []


class TestSIM008EventRouting:
    def test_unrouted_event_is_caught(self):
        src = ("def f(log):\n"
               "    ev = Cancel(time=1.0, request_id=3)\n"
               "    log.record(ev)\n")
        assert rules_of(src, path=SERVING_PATH) == ["SIM008"]

    def test_direct_emit_is_clean(self):
        src = "def f(kernel):\n    kernel.emit(Cancel(time=1.0, request_id=3))\n"
        assert rules_of(src, path=SERVING_PATH) == []

    def test_named_then_emitted_is_clean(self):
        src = ("def f(kernel):\n"
               "    ev = Cancel(time=1.0, request_id=3)\n"
               "    kernel.emit(ev)\n")
        assert rules_of(src, path=SERVING_PATH) == []

    def test_factory_return_is_clean(self):
        src = "def make(t):\n    return Arrival(time=t)\n"
        assert rules_of(src, path=SERVING_PATH) == []

    def test_rule_scoped_to_sim_and_serving(self):
        src = "def f(log):\n    log.record(Cancel(time=1.0))\n"
        assert rules_of(src, path="src/repro/workload/x.py") == []

    def test_event_class_list_tracks_sim_events(self):
        # the rule's class set must not drift from repro.sim.events
        from repro.sim import events
        actual = {name for name in events.__all__ if name != "Event"}
        assert _EVENT_CLASSES == frozenset(actual)


# --------------------------------------------------------------------- #
# parse failures, pragmas, config
# --------------------------------------------------------------------- #
class TestEngine:
    def test_syntax_error_yields_sim000(self):
        findings = check_source("def f(:\n", path="bad.py")
        assert [f.rule for f in findings] == [PARSE_RULE]

    def test_findings_sorted_by_location(self):
        src = ("import heapq\n"
               "import time\n"
               "t = time.time()\n")
        findings = check_source(src, path=SIM_PATH)
        assert [f.rule for f in findings] == ["SIM005", "SIM001"]
        assert [f.line for f in findings] == [1, 3]

    def test_render_is_clickable(self):
        finding = check_source("import heapq\n", path=SIM_PATH)[0]
        assert finding.render().startswith(f"{SIM_PATH}:1:0: SIM005 ")


class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self):
        src = "import heapq  # simlint: disable=SIM005\n"
        assert rules_of(src) == []

    def test_line_pragma_does_not_suppress_other_rules(self):
        src = "import heapq  # simlint: disable=SIM001\n"
        assert rules_of(src) == ["SIM005"]

    def test_bare_disable_suppresses_all_on_line(self):
        src = "import heapq  # simlint: disable\n"
        assert rules_of(src) == []

    def test_file_pragma(self):
        src = ("# simlint: disable-file=SIM005\n"
               "import heapq\n"
               "import heapq as h2\n")
        assert rules_of(src) == []

    def test_pragma_in_string_literal_is_inert(self):
        src = ('x = "# simlint: disable=SIM005"\n'
               "import heapq\n")
        assert rules_of(src) == ["SIM005"]

    def test_parse_pragmas_shapes(self):
        pragmas = parse_pragmas(
            "# simlint: disable-file=SIM001\n"
            "x = 1  # simlint: disable=SIM005, SIM006\n")
        assert pragmas.suppressed("SIM001", 99)
        assert pragmas.suppressed("SIM005", 2)
        assert pragmas.suppressed("SIM006", 2)
        assert not pragmas.suppressed("SIM005", 1)


class TestConfig:
    def test_select_narrows_rules(self):
        config = LintConfig(select=frozenset({"SIM001"}))
        src = "import heapq\nimport time\nt = time.time()\n"
        assert rules_of(src, config=config) == ["SIM001"]

    def test_ignore_drops_rules(self):
        config = LintConfig(ignore=frozenset({"SIM005"}))
        assert rules_of("import heapq\n", config=config) == []

    def test_per_path_ignore(self):
        config = LintConfig(per_path_ignore=(
            ("src/repro/sim", frozenset({"SIM005"})),))
        assert rules_of("import heapq\n", config=config) == []
        assert rules_of("import heapq\n", config=config,
                        path=SERVING_PATH) == ["SIM005"]

    def test_exclusion_list_is_shared_with_ruff(self):
        # THE contract: simlint's exclusions come from the same
        # [tool.ruff] extend-exclude key ruff reads, so the two linters
        # cannot drift apart
        pyproject = REPO / "pyproject.toml"
        tables = load_pyproject(pyproject)
        ruff_exclude = tables["tool.ruff"]["extend-exclude"]
        config = LintConfig.load(start=REPO / "src")
        assert tuple(ruff_exclude) == config.exclude[:len(ruff_exclude)]
        assert "benchmarks" in config.exclude
        assert "examples" in config.exclude

    def test_tiny_toml_fallback_agrees_with_tomllib(self):
        # Python 3.10 has no tomllib; the subset parser must read the
        # shared exclusion list identically
        text = (REPO / "pyproject.toml").read_text()
        tiny = _tiny_toml(text)
        full = load_pyproject(REPO / "pyproject.toml")
        assert tiny["tool.ruff"]["extend-exclude"] == \
            full["tool.ruff"]["extend-exclude"]

    def test_excluded_paths_are_not_linted(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bad.py").write_text("import heapq\nimport time\n"
                                      "t = time.time()\n")
        config = LintConfig(exclude=FALLBACK_SHARED_EXCLUDE)
        assert check_paths([str(tmp_path)], config=config) == []


# --------------------------------------------------------------------- #
# reporters + CLI
# --------------------------------------------------------------------- #
class TestReporters:
    def _findings(self):
        return check_source("import heapq\n", path=SIM_PATH)

    def test_text_has_line_per_finding_and_summary(self):
        out = render_text(self._findings())
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1] == "simlint: 1 finding"

    def test_json_roundtrips(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "SIM005"
        assert set(payload["rules"]) == {r.id for r in RULES}

    def test_sarif_shape(self):
        doc = json.loads(render_sarif(self._findings()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        result = run["results"][0]
        assert result["ruleId"] == "SIM005"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == SIM_PATH
        assert location["region"]["startLine"] == 1

    def test_rule_docs_cover_all_rules(self):
        docs = dict(rule_docs())
        assert sorted(docs) == [f"SIM00{i}" for i in range(1, 9)]
        assert all(docs.values())


class TestCli:
    def _violation_file(self, tmp_path):
        path = tmp_path / "src" / "repro" / "sim" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("import heapq\n")
        return path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert simlint_main([str(path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = self._violation_file(tmp_path)
        assert simlint_main([str(path)]) == 1
        assert "SIM005" in capsys.readouterr().out

    def test_fail_on_findings_flag(self, tmp_path, capsys):
        path = self._violation_file(tmp_path)
        assert simlint_main([str(path), "--fail-on-findings"]) == 1
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        path = self._violation_file(tmp_path)
        assert simlint_main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_ignore_flag(self, tmp_path, capsys):
        path = self._violation_file(tmp_path)
        assert simlint_main([str(path), "--ignore", "SIM005"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert simlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM008" in out
