"""Discrete-event engines: conservation, orderings, paper-shape checks."""

import numpy as np
import pytest

from repro.hardware import GPUNode, node_from_name
from repro.serving import (DedicatedEngine, DeltaZipEngine, EngineConfig,
                           LLAMA_13B, LLAMA_7B, ModelManager, SchedulerConfig,
                           VLLMSCBEngine, slo_attainment)
from repro.serving.tuning import pick_optimal_n, profile_concurrent_deltas
from repro.workload import synthetic_trace, trace_from_distribution


N_MODELS = 8


def make_node(gpu="a800", n=4):
    return GPUNode(node_from_name(gpu, n))


def delta_manager(spec=LLAMA_13B, n_models=N_MODELS, ratio=10.0):
    mgr = ModelManager(spec)
    mgr.register_base("base")
    for i in range(n_models):
        mgr.register_delta(f"variant-{i:02d}", "base", ratio)
    return mgr


def full_manager(spec=LLAMA_13B, n_models=N_MODELS):
    mgr = ModelManager(spec)
    mgr.register_base("base")
    for i in range(n_models):
        mgr.register_full(f"variant-{i:02d}", "base")
    return mgr


def lora_manager(spec=LLAMA_13B, n_models=N_MODELS):
    mgr = ModelManager(spec)
    mgr.register_base("base")
    for i in range(n_models):
        mgr.register_lora(f"variant-{i:02d}", "base", 50_000_000)
    return mgr


@pytest.fixture(scope="module")
def short_trace():
    return synthetic_trace(N_MODELS, rate=1.0, duration_s=60.0, seed=3)


class TestDeltaZipEngine:
    def test_all_requests_complete(self, short_trace):
        engine = DeltaZipEngine(delta_manager(), make_node(),
                                SchedulerConfig(16, 4), EngineConfig())
        result = engine.run(short_trace)
        assert result.n_requests == len(short_trace)
        ids = sorted(r.request_id for r in result.records)
        assert ids == sorted(t.request_id for t in short_trace)

    def test_timing_sanity(self, short_trace):
        result = DeltaZipEngine(delta_manager(), make_node(),
                                SchedulerConfig(16, 4),
                                EngineConfig()).run(short_trace)
        for rec in result.records:
            assert rec.finish_s >= rec.arrival_s
            assert rec.ttft_s >= 0
            assert rec.e2e_latency_s >= rec.ttft_s - 1e-9
            assert rec.inference_s > 0

    def test_deterministic(self, short_trace):
        def once():
            return DeltaZipEngine(delta_manager(), make_node(),
                                  SchedulerConfig(16, 4),
                                  EngineConfig()).run(short_trace)
        a, b = once(), once()
        assert [r.finish_s for r in a.records] == \
            [r.finish_s for r in b.records]

    def test_base_must_fit(self):
        mgr = delta_manager(LLAMA_13B)
        small_node = make_node("rtx3090", 1)  # 24 GB < 26 GB weights
        with pytest.raises(ValueError):
            DeltaZipEngine(mgr, small_node, SchedulerConfig(8, 2),
                           EngineConfig(tp_degree=1)).run(
                synthetic_trace(2, 0.5, 10.0, seed=0))

    def test_timeline_collection(self, short_trace):
        result = DeltaZipEngine(delta_manager(), make_node(),
                                SchedulerConfig(16, 4),
                                EngineConfig()).run(short_trace,
                                                    collect_timeline=True)
        timeline = result.config["timeline"]
        assert len(timeline) == result.n_requests
        for ev in timeline:
            assert ev.arrival_s <= ev.queue_until_s <= ev.loading_until_s \
                <= ev.finish_s + 1e-9

    def test_lora_variant_kind(self, short_trace):
        engine = DeltaZipEngine(lora_manager(), make_node(),
                                SchedulerConfig(16, 8),
                                EngineConfig(variant_kind="lora"))
        result = engine.run(short_trace)
        assert result.n_requests == len(short_trace)


class TestBaselines:
    def test_scb_completes_everything(self, short_trace):
        result = VLLMSCBEngine(full_manager(), make_node(),
                               EngineConfig()).run(short_trace)
        assert result.n_requests == len(short_trace)

    def test_scb_timeline(self, short_trace):
        result = VLLMSCBEngine(full_manager(), make_node(),
                               EngineConfig()).run(short_trace,
                                                   collect_timeline=True)
        assert len(result.config["timeline"]) == result.n_requests

    def test_dedicated_runs_per_variant(self, short_trace):
        result = DedicatedEngine(full_manager(), make_node(),
                                 EngineConfig()).run(short_trace)
        assert result.n_requests == len(short_trace)


class TestPaperShape:
    """The headline orderings of Figs 11-13 must hold qualitatively."""

    @pytest.fixture(scope="class")
    def results(self):
        trace = trace_from_distribution("azure", 16, rate=0.8,
                                        duration_s=120.0, seed=5)
        dz = DeltaZipEngine(delta_manager(n_models=16), make_node(),
                            SchedulerConfig(32, 8), EngineConfig()).run(trace)
        scb = VLLMSCBEngine(full_manager(n_models=16), make_node(),
                            EngineConfig()).run(trace)
        return dz, scb, trace

    def test_throughput_improvement(self, results):
        dz, scb, trace = results
        h = trace.duration_s
        assert dz.throughput_within(h) > 1.5 * scb.throughput_within(h)

    def test_latency_improvement(self, results):
        dz, scb, _ = results
        assert dz.mean_e2e_latency_s() < scb.mean_e2e_latency_s() / 1.6

    def test_ttft_improvement(self, results):
        dz, scb, _ = results
        assert dz.mean_ttft_s() < scb.mean_ttft_s() / 2

    def test_slo_attainment_higher(self, results):
        dz, scb, _ = results
        slo = 30.0
        assert slo_attainment(dz.records, slo, "e2e") >= \
            slo_attainment(scb.records, slo, "e2e")

    def test_summary_keys(self, results):
        dz, _, _ = results
        s = dz.summary()
        assert s["throughput_rps"] > 0
        assert s["mean_ttft_s"] <= s["mean_e2e_s"]


class TestPreemptionAblation:
    def test_preemption_improves_ttft_tail(self):
        """Fig 19: preemption lowers the TTFT tail on skewed traffic."""
        trace = trace_from_distribution("zipf:2.0", 12, rate=2.0,
                                        duration_s=120.0, seed=7)
        node = make_node("rtx3090", 1)
        mgr = delta_manager(LLAMA_7B, n_models=12, ratio=5.0)
        common = dict(engine_config=EngineConfig(tp_degree=1))
        on = DeltaZipEngine(mgr, node, SchedulerConfig(24, 3,
                                                       preemption=True),
                            **common).run(trace)
        off = DeltaZipEngine(mgr, node, SchedulerConfig(24, 3,
                                                        preemption=False),
                             **common).run(trace)
        p90_on = on.percentile_ttft_s(90)
        p90_off = off.percentile_ttft_s(90)
        assert p90_on <= p90_off * 1.05

    def test_preempted_requests_still_finish(self):
        trace = trace_from_distribution("zipf:2.0", 8, rate=2.0,
                                        duration_s=60.0, seed=9)
        mgr = delta_manager(LLAMA_7B, n_models=8, ratio=5.0)
        result = DeltaZipEngine(mgr, make_node("rtx3090", 1),
                                SchedulerConfig(16, 2, preemption=True),
                                EngineConfig(tp_degree=1)).run(trace)
        assert result.n_requests == len(trace)
        assert any(r.preemptions > 0 for r in result.records) or True


class TestTuning:
    def test_profile_shape_and_pick(self):
        """Fig 10: N=1 is clearly bad; the optimum is an interior point."""
        trace = trace_from_distribution("zipf:4.0", 12, rate=3.0,
                                        duration_s=25.0, seed=3)
        mgr = delta_manager(LLAMA_7B, n_models=12, ratio=5.0)
        points = profile_concurrent_deltas(
            mgr, make_node("rtx3090", 1), trace, candidate_n=[1, 2, 3, 4],
            engine_config=EngineConfig(tp_degree=1))
        assert len(points) == 4
        best = pick_optimal_n(points)
        assert best != 1
        mtpt = {p.n_deltas: p.mean_time_per_token_s for p in points}
        assert mtpt[1] > mtpt[best]

    def test_pick_requires_points(self):
        with pytest.raises(ValueError):
            pick_optimal_n([])
