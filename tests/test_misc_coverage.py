"""Coverage for smaller surfaces: NLL harness, ratio-vs-embedding-fraction,
engine stats, GemmShape, tuning dataclasses."""

import numpy as np
import pytest

from repro.compression import CompressionConfig, DeltaCompressor
from repro.evaluation import answer_nll, evaluate_nll, make_task
from repro.hardware import GemmShape
from repro.nn import TransformerConfig, TransformerModel
from repro.serving.metrics import EngineStats
from repro.serving.tuning import ProfilePoint, pick_optimal_n


class TestAnswerNLL:
    def test_finetuned_lower_than_base(self, base_model, finetuned,
                                       review_task):
        nll_base = evaluate_nll(base_model, review_task, 30)
        nll_fmt = evaluate_nll(finetuned.model, review_task, 30)
        assert nll_fmt < nll_base

    def test_empty_rejected(self, base_model):
        with pytest.raises(ValueError):
            answer_nll(base_model, [])

    def test_nonnegative(self, finetuned, review_task):
        assert evaluate_nll(finetuned.model, review_task, 10) >= 0.0


class TestEmbeddingFractionRatio:
    def test_embedding_heavy_models_compress_less_end_to_end(self, rng):
        """Table 1's Gemma-2 observation: embeddings stay FP16, so models
        with proportionally larger embeddings see lower end-to-end ratios
        (at identical per-matrix compression)."""
        def ratio_for(config):
            base = TransformerModel(config, seed=0)
            ft = TransformerModel(config, seed=0)
            ft.load_state_dict(base.state_dict())
            for p in ft.parameters():
                p.data = p.data + rng.normal(
                    0, 0.01, p.data.shape).astype(np.float32)
            art = DeltaCompressor(
                CompressionConfig(bits=2, sparsity_n=2, sparsity_m=4,
                                  algorithm="rtn")).compress(
                ft, base.state_dict(), None)
            return art.compression_ratio()

        # tiny: ~17% embedding params; small: ~8%
        ratio_tiny = ratio_for(TransformerConfig.tiny())
        ratio_small = ratio_for(TransformerConfig.small())
        assert ratio_small > ratio_tiny


class TestEngineStats:
    def test_mean_properties(self):
        stats = EngineStats(iterations=4, batched_requests=12,
                            batched_deltas=8)
        assert stats.mean_batch_size == 3.0
        assert stats.mean_deltas_per_batch == 2.0

    def test_zero_iterations_safe(self):
        stats = EngineStats()
        assert stats.mean_batch_size == 0.0
        assert stats.mean_deltas_per_batch == 0.0

    def test_populated_by_engine(self):
        from repro.hardware import GPUNode, node_from_name
        from repro.serving import (DeltaZipEngine, EngineConfig, LLAMA_7B,
                                   ModelManager, SchedulerConfig)
        from repro.workload import synthetic_trace
        trace = synthetic_trace(3, rate=1.0, duration_s=20.0, seed=1)
        mgr = ModelManager(LLAMA_7B)
        mgr.register_base("base")
        for m in trace.model_ids:
            mgr.register_delta(m, "base", 8.0)
        result = DeltaZipEngine(
            mgr, GPUNode(node_from_name("a800", 1)),
            SchedulerConfig(8, 2), EngineConfig(tp_degree=1)).run(trace)
        stats = result.stats
        assert stats.iterations > 0
        assert stats.swap_ins >= 1
        assert stats.batched_requests >= stats.iterations
        assert stats.total_load_s >= 0.0


class TestGemmShape:
    def test_flops(self):
        assert GemmShape(2, 3, 4).flops == 2 * 2 * 3 * 4

    def test_frozen(self):
        with pytest.raises(Exception):
            GemmShape(1, 1, 1).m = 5


class TestTuningTypes:
    def test_pick_optimal_is_argmin(self):
        points = [ProfilePoint(n_deltas=n, mean_time_per_token_s=v,
                               mean_e2e_s=0.0, throughput_rps=0.0)
                  for n, v in [(1, 0.3), (2, 0.1), (3, 0.2)]]
        assert pick_optimal_n(points) == 2
