"""On-disk artifact format: save/load round-trips."""

import numpy as np
import pytest

from repro.compression import (CompressionConfig, DeltaCompressor,
                               load_compressed_delta, save_compressed_delta)
from repro.nn import TransformerModel


class TestRoundTrip:
    def test_sparse_artifact_roundtrip(self, artifact_4bit, base_state,
                                       tmp_path):
        path = str(tmp_path / "review.dzip")
        save_compressed_delta(artifact_4bit, path)
        loaded = load_compressed_delta(path)

        assert loaded.model_id == artifact_4bit.model_id
        assert loaded.base_model_id == artifact_4bit.base_model_id
        assert loaded.config == artifact_4bit.config
        assert set(loaded.layers) == set(artifact_4bit.layers)
        # packed layers are bit-exact
        for name in artifact_4bit.layers:
            np.testing.assert_array_equal(
                loaded.layers[name].dense(),
                artifact_4bit.layers[name].dense())
        # extras round-trip at FP16 precision
        for name in artifact_4bit.extras:
            np.testing.assert_allclose(
                loaded.extras[name],
                artifact_4bit.extras[name].astype(np.float16), atol=1e-3)
        assert loaded.nbytes() == artifact_4bit.nbytes()

    def test_reconstructed_model_equivalent(self, artifact_4bit, base_state,
                                            tiny_config, tmp_path):
        path = str(tmp_path / "review.dzip")
        save_compressed_delta(artifact_4bit, path)
        loaded = load_compressed_delta(path)
        a = TransformerModel(tiny_config, seed=0)
        a.load_state_dict(artifact_4bit.to_state_dict(base_state))
        b = TransformerModel(tiny_config, seed=0)
        b.load_state_dict(loaded.to_state_dict(base_state))
        toks = np.arange(8)[None, :] + 4
        np.testing.assert_allclose(a(toks), b(toks), atol=1e-2)

    def test_awq_artifact_roundtrip(self, finetuned, base_state, tmp_path):
        art = DeltaCompressor(CompressionConfig.awq_4bit()).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        path = str(tmp_path / "awq.dzip")
        save_compressed_delta(art, path)
        loaded = load_compressed_delta(path)
        for name in art.layers:
            np.testing.assert_allclose(loaded.layers[name].dense(),
                                       art.layers[name].dense(), atol=1e-6)
            assert loaded.layers[name].awq_scales is not None

    def test_fp16_artifact_roundtrip(self, finetuned, base_state, tmp_path):
        config = CompressionConfig(bits=16, sparsity_n=2, sparsity_m=4)
        art = DeltaCompressor(config).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        path = str(tmp_path / "fp16.dzip")
        save_compressed_delta(art, path)
        loaded = load_compressed_delta(path)
        for name in art.layers:
            np.testing.assert_allclose(loaded.layers[name].dense(),
                                       art.layers[name].dense(), atol=1e-3)

    def test_bad_format_version_rejected(self, artifact_4bit, tmp_path):
        import json
        import zipfile
        path = str(tmp_path / "bad.dzip")
        save_compressed_delta(artifact_4bit, path)
        with zipfile.ZipFile(path) as zf:
            meta = json.loads(zf.read("metadata.json"))
            names = {i.filename: zf.read(i.filename) for i in zf.infolist()}
        meta["format_version"] = 999
        names["metadata.json"] = json.dumps(meta).encode()
        with zipfile.ZipFile(path, "w") as zf:
            for name, payload in names.items():
                zf.writestr(name, payload)
        with pytest.raises(ValueError):
            load_compressed_delta(path)
