"""The DeltaZip facade: registration, generation, simulation."""

import numpy as np
import pytest

from repro.core import DeltaZip
from repro.compression import CompressionConfig
from repro.serving import LLAMA_7B, SchedulerConfig, EngineConfig
from repro.workload import synthetic_trace


@pytest.fixture(scope="module")
def system(base_model, finetuned):
    dz = DeltaZip(base_model)
    dz.register_finetuned("review-ft", finetuned.model,
                          finetuned.calibration_tokens)
    return dz


class TestRegistration:
    def test_artifact_recorded(self, system):
        assert system.registered_models == ["review-ft"]
        assert system.compression_ratio("review-ft") > 2.0

    def test_duplicate_rejected(self, system, finetuned):
        with pytest.raises(ValueError):
            system.register_finetuned("review-ft", finetuned.model, None)

    def test_shape_mismatch_rejected(self, base_model):
        from repro.nn import TransformerConfig, TransformerModel
        dz = DeltaZip(base_model)
        other = TransformerModel(TransformerConfig.small(), seed=0)
        with pytest.raises(ValueError):
            dz.register_finetuned("bad", other, None)

    def test_lora_registration(self, system, base_model, review_task):
        from repro.evaluation import run_lora
        dz = DeltaZip(base_model)
        lora = run_lora(base_model, review_task, rank=2, n_train=16,
                        epochs=1)
        dz.register_lora("lora-ft", lora.adapter)
        assert "lora-ft" in dz.registered_models


class TestGeneration:
    def test_variant_generation_differs_from_base(self, system, base_model,
                                                  review_task, rng):
        example = review_task.generator(np.random.default_rng(5))
        out_ft = system.generate("review-ft", example.prompt,
                                 max_new_tokens=2)
        assert len(out_ft) >= 1
        # the fine-tuned variant answers with a label token
        from repro.evaluation.tasks import ANSWER_BASE
        assert out_ft[0] in (ANSWER_BASE, ANSWER_BASE + 1)

    def test_batched_generation(self, system, review_task):
        rng = np.random.default_rng(9)
        examples = [review_task.generator(rng) for _ in range(3)]
        outs = system.generate_batch(
            ["review-ft", "base", "review-ft"],
            [e.prompt for e in examples], max_new_tokens=2)
        assert len(outs) == 3

    def test_quality_preserved_through_compression(self, system, finetuned,
                                                   review_task):
        """Table 1's property, end to end: the compressed variant scores
        close to the uncompressed FMT checkpoint."""
        from repro.evaluation import evaluate_examples
        rng = np.random.default_rng(77)
        examples = review_task.examples(40, rng)
        acc_fmt = evaluate_examples(finetuned.model, examples).accuracy

        from repro.nn import TransformerModel
        recon = TransformerModel(system.base_model.config, seed=0)
        recon.load_state_dict(
            system.artifacts["review-ft"].to_state_dict(system.base_state))
        acc_compressed = evaluate_examples(recon, examples).accuracy
        assert acc_compressed >= acc_fmt - 0.1


class TestSimulate:
    def test_simulation_with_registered_ratio(self, system):
        trace = synthetic_trace(1, rate=0.5, duration_s=30.0, seed=0,
                                model_prefix="x")
        # rename trace models to the registered variant
        for req in trace.requests:
            req.model_id = "review-ft"
        trace.model_ids = ["review-ft"]
        result = system.simulate(trace, served_spec=LLAMA_7B,
                                 scheduler=SchedulerConfig(8, 2),
                                 engine=EngineConfig(tp_degree=1))
        assert result.n_requests == len(trace)

    def test_simulate_warns_deprecated(self, system):
        """The legacy wrapper must announce its retirement path."""
        trace = synthetic_trace(1, rate=0.5, duration_s=20.0, seed=0)
        with pytest.warns(DeprecationWarning,
                          match=r"DeltaZip\.session"):
            system.simulate(trace, served_spec=LLAMA_7B,
                            default_ratio=8.0,
                            scheduler=SchedulerConfig(8, 2),
                            engine=EngineConfig(tp_degree=1))

    def test_unregistered_model_needs_default(self, system):
        trace = synthetic_trace(2, rate=0.5, duration_s=20.0, seed=0)
        with pytest.raises(KeyError):
            system.simulate(trace, served_spec=LLAMA_7B)
        result = system.simulate(trace, served_spec=LLAMA_7B,
                                 default_ratio=8.0,
                                 scheduler=SchedulerConfig(8, 2),
                                 engine=EngineConfig(tp_degree=1))
        assert result.n_requests == len(trace)
