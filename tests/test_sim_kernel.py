"""The repro.sim kernel: clock/queue/event primitives and the
record-identity contract of idle-skip across every serving layer."""

import pytest

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (ClusterGateway, EngineConfig, LLAMA_7B,
                           ModelManager, SchedulerConfig, ServingGateway,
                           TenantGateway, create_engine)
from repro.sim import (Arrival, AutoscalerTick, BucketRefill, EventQueue,
                       IterationDone, ReplicaSpawn, SimClock, SimKernel)
from repro.workload import synthetic_trace
from repro.workload.spec import TraceRequest

N_MODELS = 4


# --------------------------------------------------------------------------- #
# primitives
# --------------------------------------------------------------------------- #
class TestSimClock:
    def test_advance_is_monotone(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.advance(3.0) == 5.0      # no rewind
        assert clock.now == 5.0

    def test_tick_is_relative(self):
        clock = SimClock(2.0)
        assert clock.tick(0.5) == 2.5

    def test_reset(self):
        clock = SimClock(9.0)
        clock.reset()
        assert clock.now == 0.0


def _req(rid, arrival):
    return TraceRequest(request_id=rid, model_id="m", arrival_s=arrival,
                        prompt_tokens=8, output_tokens=4)


class TestEventQueue:
    def test_orders_by_time_then_request_id(self):
        queue = EventQueue()
        queue.push(Arrival(time=2.0, request=_req(5, 2.0)))
        queue.push(Arrival(time=1.0, request=_req(9, 1.0)))
        queue.push(Arrival(time=1.0, request=_req(3, 1.0)))
        popped = [queue.pop().request.request_id for _ in range(3)]
        assert popped == [3, 9, 5]

    def test_peek_and_pop_due(self):
        queue = EventQueue()
        for rid, t in ((0, 1.0), (1, 2.0), (2, 10.0)):
            queue.push(Arrival(time=t, request=_req(rid, t)))
        assert queue.peek_time() == 1.0
        due = [e.request.request_id for e in queue.pop_due(5.0)]
        assert due == [0, 1]
        assert len(queue) == 1
        assert queue.peek().request.request_id == 2

    def test_count_after_tracks_pops_and_pushes(self):
        queue = EventQueue()
        for rid in range(100):
            queue.push(Arrival(time=float(rid), request=_req(rid, rid)))
        assert queue.count_after(49.5) == 50
        for _ in queue.pop_due(80.0):      # exercises index compaction
            pass
        assert queue.count_after(49.5) == queue.count_after(80.0) == 19
        queue.push(Arrival(time=90.5, request=_req(200, 90.5)))
        assert queue.count_after(90.0) == 10
        assert queue.count_after(1e9) == 0

    def test_in_order_is_non_destructive(self):
        queue = EventQueue()
        queue.push(Arrival(time=3.0, request=_req(1, 3.0)))
        queue.push(Arrival(time=1.0, request=_req(2, 1.0)))
        assert [e.request.request_id for e in queue.in_order()] == [2, 1]
        assert len(queue) == 2

    def test_clear(self):
        queue = EventQueue()
        queue.push(AutoscalerTick(time=1.0))
        queue.clear()
        assert not queue
        assert queue.peek_time() is None


class TestSimKernel:
    def test_journal_records_emitted_events(self):
        kernel = SimKernel(journal=True)
        kernel.emit(ReplicaSpawn(time=0.0, replica_id=0))
        kernel.emit(IterationDone(time=1.0, iter_time_s=0.1))
        assert [type(e) for e in kernel.journal] == \
            [ReplicaSpawn, IterationDone]
        kernel.reset()
        assert kernel.journal == [] and kernel.now == 0.0

    def test_subscribers_filter_by_type(self):
        kernel = SimKernel()
        seen = []
        kernel.subscribe(BucketRefill, seen.append)
        kernel.emit(BucketRefill(time=1.0, tenant_id="t"))
        kernel.emit(ReplicaSpawn(time=2.0, replica_id=1))
        assert len(seen) == 1 and seen[0].tenant_id == "t"

    def test_advance_is_monotone(self):
        kernel = SimKernel()
        kernel.advance(4.0)
        assert kernel.advance(1.0) == 4.0


# --------------------------------------------------------------------------- #
# the record-identity contract
# --------------------------------------------------------------------------- #
def make_manager():
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


#: per-engine constructor kwargs that exercise the interesting shape
#: (sharded across 2 single-GPU nodes; disagg with a 1+1 worker split)
ENGINE_EXTRAS = {"sharded": {"tp_degree": 2},
                 "disagg": {"prefill_workers": 1, "decode_workers": 1}}


def make_factory(mgr, engine_name, idle_quantum_s):
    config = EngineConfig(tp_degree=1, idle_quantum_s=idle_quantum_s)
    extra = ENGINE_EXTRAS.get(engine_name, {})

    def factory(node):
        return create_engine(
            engine_name, mgr, node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=config, **extra)
    return factory


def build_wrapper(wrapper, mgr, engine_name, idle_quantum_s):
    factory = make_factory(mgr, engine_name, idle_quantum_s)
    if wrapper == "gateway":
        return ServingGateway(factory(None))
    kind, _, arg = wrapper.partition(":")
    balancer = arg if kind == "cluster" else "least-outstanding"
    cluster = ClusterGateway(
        engine_factory=factory,
        cluster=Cluster.from_name("a800", 2, 1), n_replicas=2,
        balancer=balancer)
    if kind == "tenant":
        return TenantGateway(cluster, policy=arg or "fcfs")
    return cluster


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s)


WRAPPERS = ["gateway", "cluster:round-robin", "cluster:least-outstanding",
            "cluster:lineage", "tenant:fcfs", "tenant:vtc"]


class TestKernelDeterminism:
    """Property: replay is record-identical across engines x balancers x
    {gateway, cluster, tenant} wrappers, run-to-run and before/after
    idle-skip (event-driven vs dense-quantum stepping)."""

    @pytest.mark.parametrize("engine_name", ["deltazip", "vllm-scb",
                                             "disagg", "sharded"])
    @pytest.mark.parametrize("wrapper", WRAPPERS)
    def test_replay_identical_across_idle_skip_and_reruns(
            self, engine_name, wrapper):
        trace = synthetic_trace(N_MODELS, rate=1.0, duration_s=30.0, seed=13)
        mgr = make_manager()
        skip = build_wrapper(wrapper, mgr, engine_name, None)
        first = [record_key(r) for r in skip.replay(trace).records]
        second = [record_key(r) for r in skip.replay(trace).records]
        assert first == second, "replay must be deterministic run-to-run"
        dense = build_wrapper(wrapper, mgr, engine_name, 0.05)
        quantized = [record_key(r) for r in dense.replay(trace).records]
        assert first == quantized, \
            "idle-skip must not change simulated history"
        assert len(first) == len(trace)

    def test_dedicated_engine_identical_through_gateway(self):
        trace = synthetic_trace(N_MODELS, rate=1.0, duration_s=20.0, seed=5)
        mgr_full = ModelManager(LLAMA_7B)
        mgr_full.register_base("base")
        for i in range(N_MODELS):
            mgr_full.register_full(f"variant-{i:02d}", "base")
        results = []
        for quantum in (None, 0.05):
            engine = create_engine(
                "dedicated", mgr_full, GPUNode(node_from_name("a800", 1)),
                engine_config=EngineConfig(tp_degree=1,
                                           idle_quantum_s=quantum))
            result = ServingGateway(engine).replay(trace)
            results.append([record_key(r) for r in result.records])
        assert results[0] == results[1]

    def test_cluster_journal_identical_across_idle_skip(self):
        """The kernel journal (IterationDone stream) — not just the final
        records — is the same simulated history in both stepping modes."""
        trace = synthetic_trace(N_MODELS, rate=1.5, duration_s=20.0, seed=3)
        mgr = make_manager()
        journals = []
        for quantum in (None, 0.05):
            gateway = ClusterGateway(
                engine_factory=make_factory(mgr, "deltazip", quantum),
                cluster=Cluster.from_name("a800", 2, 1), n_replicas=2,
                journal=True)
            gateway.replay(trace)
            journals.append([e for e in gateway.kernel.journal
                            if isinstance(e, IterationDone)])
        assert journals[0] == journals[1]
        assert len(journals[0]) > 0

    def test_quantum_validation(self):
        with pytest.raises(ValueError, match="idle_quantum_s"):
            EngineConfig(idle_quantum_s=0.0)
