"""Hardware cost models: rooflines, SBMM orderings, memory, transfers."""

import numpy as np
import pytest

from repro.hardware import (A100, A800, GemmShape, GPUNode, MemoryPool,
                            OutOfMemoryError, RTX3090, SBMM_IMPLEMENTATIONS,
                            Tier, TransferModel, achieved_flops_ratio,
                            allreduce_time, dense_gemm_time, node_from_name,
                            quantized_gemm_time, sbmm_time,
                            sparse_quantized_gemm_time)


class TestGemmModels:
    def test_time_positive_and_monotone_in_m(self):
        times = [dense_gemm_time(GemmShape(m, 1024, 1024), A800)
                 for m in (1, 16, 256, 4096)]
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_decode_is_memory_bound(self):
        """At m=1, quantized weights cut time by roughly the byte ratio."""
        fp16 = dense_gemm_time(GemmShape(1, 4096, 4096), A800,
                               include_launch=False)
        int4 = quantized_gemm_time(GemmShape(1, 4096, 4096), A800, 4,
                                   include_launch=False)
        assert 2.5 < fp16 / int4 < 4.5

    def test_sparse_int4_beats_fp16_at_decode(self):
        shape = GemmShape(1, 4096, 4096)
        fp16 = dense_gemm_time(shape, A800, include_launch=False)
        sparse = sparse_quantized_gemm_time(shape, A800, 4,
                                            include_launch=False)
        assert sparse < fp16 / 3

    def test_fig6_sparse_exceeds_dense_peak_at_large_m(self):
        """Fig 6's headline: sparse tensor cores push past dense FP16 peak
        at prefill-scale inputs; quant-only plateaus at dense peak."""
        shape = GemmShape(4096, 4096, 4096)
        dense_peak = achieved_flops_ratio(shape, A800, "fp16")
        quant = achieved_flops_ratio(shape, A800, "quant", 4)
        sparse = achieved_flops_ratio(shape, A800, "sparse_quant", 4)
        assert sparse > 1.4 * dense_peak
        assert quant == pytest.approx(dense_peak, rel=0.05)

    def test_fig6_small_input_order(self):
        """At decode sizes, lower-precision kernels achieve more flops."""
        shape = GemmShape(2, 4096, 4096)
        fp16 = achieved_flops_ratio(shape, A800, "fp16")
        int4 = achieved_flops_ratio(shape, A800, "quant", 4)
        int2 = achieved_flops_ratio(shape, A800, "quant", 2)
        assert int2 > int4 > fp16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            achieved_flops_ratio(GemmShape(1, 8, 8), A800, "int1???")


class TestSBMM:
    COUNTS = [3, 1, 4, 2]

    def test_fig7_ordering(self):
        """Fig 7: SBMM < reorder-only < naive for-loop <= fp16 for-loop."""
        kw = dict(shape_k=2048, shape_n=2048, gpu=A800)
        t = {impl: sbmm_time(self.COUNTS, impl=impl, **kw).total
             for impl in SBMM_IMPLEMENTATIONS}
        assert t["sbmm"] < t["sbmm_reorder"]
        assert t["sbmm_reorder"] < t["naive_forloop"]
        assert t["naive_forloop"] < t["fp16_forloop"]

    def test_bmm_pays_stacking(self):
        kw = dict(shape_k=2048, shape_n=2048, gpu=A800)
        bmm = sbmm_time(self.COUNTS, impl="fp16_bmm", **kw).total
        loop = sbmm_time(self.COUNTS, impl="fp16_forloop", **kw).total
        assert bmm > loop  # stacking weight copies dominates

    def test_empty_batch_is_free(self):
        b = sbmm_time([], 1024, 1024, A800)
        assert b.total == 0.0 and b.compute == 0.0

    def test_zero_count_deltas_skipped(self):
        a = sbmm_time([2, 0, 0, 3], 1024, 1024, A800)
        b = sbmm_time([2, 3], 1024, 1024, A800)
        assert a.total == pytest.approx(b.total)

    def test_overhead_nonnegative(self):
        b = sbmm_time([1, 1, 1], 1024, 1024, A800)
        assert b.overhead >= 0

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            sbmm_time([1], 8, 8, A800, impl="magic")

    def test_fig17_scaling_with_models(self):
        """Fixed total requests, more models: SBMM degrades gently, the
        for-loop degrades linearly."""
        total_requests = 64
        def counts(n_models):
            per = total_requests // n_models
            return [per] * n_models
        sbmm_4 = sbmm_time(counts(4), 2048, 2048, A800, impl="sbmm").total
        sbmm_64 = sbmm_time(counts(64), 2048, 2048, A800, impl="sbmm").total
        loop_4 = sbmm_time(counts(4), 2048, 2048, A800,
                           impl="naive_forloop").total
        loop_64 = sbmm_time(counts(64), 2048, 2048, A800,
                            impl="naive_forloop").total
        # absolute latency growth per added model is several times smaller
        assert (sbmm_64 - sbmm_4) < (loop_64 - loop_4) / 3
        assert sbmm_64 < loop_64 / 3


class TestSpecs:
    def test_registry_lookup(self):
        node = node_from_name("a800", 4)
        assert node.gpu.name == "A800-80G"
        with pytest.raises(KeyError):
            node_from_name("h100")

    def test_memory_bytes(self):
        assert A800.memory_bytes == 80 * (1 << 30)

    def test_3090_has_no_nvlink(self):
        assert RTX3090.nvlink_gbps == 0.0


class TestAllreduce:
    def test_single_gpu_free(self):
        assert allreduce_time(1e9, 1, A800) == 0.0

    def test_grows_with_size(self):
        assert allreduce_time(1e9, 4, A800) > allreduce_time(1e6, 4, A800)

    def test_nvlink_faster_than_pcie(self):
        assert allreduce_time(1e8, 2, A800) < allreduce_time(1e8, 2, RTX3090)


class TestMemoryPool:
    def test_allocate_release(self):
        pool = MemoryPool("t", capacity=100)
        pool.allocate("a", 60)
        assert pool.used == 60 and pool.free == 40
        assert pool.contains("a")
        assert pool.release("a") == 60
        assert pool.used == 0

    def test_oom(self):
        pool = MemoryPool("t", capacity=100)
        pool.allocate("a", 60)
        with pytest.raises(OutOfMemoryError):
            pool.allocate("b", 50)

    def test_double_allocate_rejected(self):
        pool = MemoryPool("t", capacity=100)
        pool.allocate("a", 10)
        with pytest.raises(KeyError):
            pool.allocate("a", 10)

    def test_resize(self):
        pool = MemoryPool("t", capacity=100)
        pool.allocate("kv", 10)
        pool.resize("kv", 80)
        assert pool.used == 80
        with pytest.raises(OutOfMemoryError):
            pool.resize("kv", 101)

    def test_negative_allocation_rejected(self):
        pool = MemoryPool("t", capacity=10)
        with pytest.raises(ValueError):
            pool.allocate("a", -1)


class TestTransfers:
    def test_same_tier_free(self):
        node = node_from_name("a800")
        tm = TransferModel(node)
        assert tm.time(1e9, Tier.GPU, Tier.GPU) == 0.0

    def test_disk_slower_than_pcie(self):
        tm = TransferModel(node_from_name("a800"))
        nbytes = 10e9
        assert tm.time(nbytes, Tier.DISK, Tier.CPU) > \
            tm.time(nbytes, Tier.CPU, Tier.GPU)

    def test_decompression_can_dominate(self):
        tm = TransferModel(node_from_name("a800"))
        fast = tm.time(1e9, Tier.DISK, Tier.CPU, decompress_gbps=100.0)
        slow = tm.time(1e9, Tier.DISK, Tier.CPU, decompress_gbps=0.5)
        assert slow > fast

    def test_node_helpers(self):
        node = GPUNode(node_from_name("a800", 4))
        assert len(node.gpus) == 4
        assert len(node.tp_group(2)) == 2
        with pytest.raises(ValueError):
            node.tp_group(5)
        assert node.allreduce(1e6, 2) > 0
