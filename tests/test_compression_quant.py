"""Quantization grids: round-trips, error bounds, masks (incl. hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.quant import (QuantGrid, dequantize, fit_grid,
                                     quantization_mse, quantize,
                                     quantize_dequantize)

finite_matrix = arrays(
    dtype=np.float32, shape=st.tuples(st.integers(1, 8), st.integers(1, 48)),
    elements=st.floats(-10, 10, width=32, allow_subnormal=False))


class TestFitGrid:
    def test_shapes(self, rng):
        w = rng.normal(size=(4, 64)).astype(np.float32)
        grid = fit_grid(w, bits=4, group_size=16)
        assert grid.scale.shape == (4, 4)
        assert grid.zero.shape == (4, 4)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            fit_grid(rng.normal(size=(2, 2, 2)).astype(np.float32), 4, 2)

    def test_asymmetric_covers_zero(self, rng):
        """0.0 must round-trip with at most half-scale error (needed so
        pruned positions dequantize near zero)."""
        w = rng.uniform(1.0, 2.0, size=(2, 8)).astype(np.float32)  # all > 0
        grid = fit_grid(w, bits=4, group_size=8)
        zeros = dequantize(quantize(np.zeros_like(w), grid), grid)
        assert np.all(np.abs(zeros) <= grid.scale.max() / 2 + 1e-6)

    def test_constant_matrix_scale_positive(self):
        w = np.zeros((2, 8), dtype=np.float32)
        grid = fit_grid(w, bits=4, group_size=4)
        assert np.all(grid.scale > 0)

    def test_mask_excludes_outliers_from_grid(self):
        """With the outlier masked out, survivors quantize much better."""
        w = np.full((1, 8), 0.01, dtype=np.float32)
        w[0, 0] = 100.0
        mask = np.ones_like(w, dtype=bool)
        mask[0, 0] = False
        grid_all = fit_grid(w, bits=4, group_size=8)
        grid_masked = fit_grid(w, bits=4, group_size=8, mask=mask)
        assert grid_masked.scale.max() < grid_all.scale.max() / 10

    def test_metadata_bytes(self):
        grid = QuantGrid(bits=4, group_size=8,
                         scale=np.ones((4, 2), dtype=np.float32),
                         zero=np.zeros((4, 2), dtype=np.float32))
        # 8 groups x (2B scale + 1B zero)
        assert grid.nbytes_metadata() == 8 * 3
        sym = QuantGrid(bits=4, group_size=8,
                        scale=np.ones((4, 2), dtype=np.float32),
                        zero=np.zeros((4, 2), dtype=np.float32),
                        symmetric=True)
        assert sym.nbytes_metadata() == 8 * 2


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_error_bounded_by_half_scale(self, bits, rng):
        w = rng.normal(0, 0.05, size=(8, 32)).astype(np.float32)
        grid = fit_grid(w, bits=bits, group_size=8)
        wq = dequantize(quantize(w, grid), grid)
        bound = grid.scale[..., None].repeat(8, axis=-1).reshape(8, 32)
        assert np.all(np.abs(w - wq) <= bound / 2 + 1e-6)

    def test_codes_within_range(self, rng):
        w = rng.normal(size=(4, 16)).astype(np.float32)
        grid = fit_grid(w, bits=2, group_size=4)
        codes = quantize(w, grid)
        assert codes.max() <= 3

    def test_more_bits_less_error(self, rng):
        w = rng.normal(0, 0.1, size=(8, 64)).astype(np.float32)
        errs = [quantization_mse(w, bits, 16) for bits in (2, 4, 8)]
        assert errs[0] > errs[1] > errs[2]

    def test_narrow_distribution_quantizes_better(self, rng):
        """The paper's core observation (Fig 3): delta-like narrow
        distributions lose less to the same-bit grid than wide ones —
        in relative terms."""
        wide = rng.normal(0, 0.1, size=(8, 64)).astype(np.float32)
        wide[0, 0] = 1.0  # outlier, as real weights have
        narrow = rng.normal(0, 0.01, size=(8, 64)).astype(np.float32)
        rel_wide = quantization_mse(wide, 4, 16) / np.mean(wide ** 2)
        rel_narrow = quantization_mse(narrow, 4, 16) / np.mean(narrow ** 2)
        assert rel_narrow < rel_wide

    @given(finite_matrix)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_never_exceeds_range(self, w):
        """Dequantized values stay within the value envelope plus one grid
        step (zero-point rounding can shift the grid by up to scale/2 on
        each side)."""
        out = quantize_dequantize(w, bits=4, group_size=8)
        assert out.shape == w.shape
        grid = fit_grid(w, bits=4, group_size=8)
        step = float(grid.scale.max())
        assert out.min() >= min(float(w.min()), 0.0) - step
        assert out.max() <= max(float(w.max()), 0.0) + step

    @given(finite_matrix)
    @settings(max_examples=30, deadline=None)
    def test_8bit_identity_like(self, w):
        """8-bit quantization error is at most one grid step."""
        out = quantize_dequantize(w, bits=8, group_size=8)
        span = max(float(w.max() - w.min()), float(np.abs(w).max()), 1e-6)
        assert np.max(np.abs(out - w)) <= 2 * span / 255 + 1e-5

    def test_symmetric_mode(self, rng):
        w = rng.normal(size=(4, 16)).astype(np.float32)
        out = quantize_dequantize(w, bits=8, group_size=8, symmetric=True)
        assert np.max(np.abs(out - w)) < 0.05

    def test_group_padding_when_cols_not_divisible(self, rng):
        w = rng.normal(size=(3, 10)).astype(np.float32)  # 10 % 8 != 0
        out = quantize_dequantize(w, bits=4, group_size=8)
        assert out.shape == (3, 10)
