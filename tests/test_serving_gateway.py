"""Unified engine protocol, registry, online gateway, and session builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import GPUNode, node_from_name
from repro.serving import (ENGINES, ArtifactKind, EngineConfig, LLAMA_7B,
                           ModelManager, SchedulerConfig, ServingGateway,
                           ServingResult, create_engine)
from repro.workload import synthetic_trace
from repro.workload.spec import Trace, TraceRequest


def make_manager(engine_cls, model_ids, spec=LLAMA_7B, ratio=8.0):
    mgr = ModelManager(spec)
    mgr.register_base("base")
    for m in model_ids:
        if engine_cls.variant_artifact == ArtifactKind.DELTA:
            mgr.register_delta(m, "base", ratio)
        else:
            mgr.register_full(m, "base")
    return mgr


def make_engine(name, model_ids, n_deltas=4, k=8):
    cls = ENGINES[name]
    node = GPUNode(node_from_name("a800", 1))
    mgr = make_manager(cls, model_ids)
    return create_engine(
        name, mgr, node,
        scheduler_config=SchedulerConfig(max_batch_requests=k,
                                         max_concurrent_deltas=n_deltas),
        engine_config=EngineConfig(tp_degree=1))


def record_key(rec):
    return (rec.request_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s,
            rec.preemptions, rec.skipped_line)


@pytest.fixture(scope="module")
def short_trace():
    return synthetic_trace(4, rate=1.0, duration_s=30.0, seed=11)


class TestRegistry:
    def test_all_three_engines_registered(self):
        assert {"deltazip", "vllm-scb", "dedicated"} <= set(ENGINES)

    def test_unknown_engine_raises(self):
        node = GPUNode(node_from_name("a800", 1))
        with pytest.raises(KeyError, match="unknown engine"):
            create_engine("nope", ModelManager(LLAMA_7B), node)

    def test_cli_choices_track_registry(self):
        from repro.cli import build_parser
        parser = build_parser()
        sim = next(a for a in parser._subparsers._group_actions[0]
                   .choices["simulate"]._actions
                   if "--systems" in a.option_strings)
        assert set(ENGINES) <= set(sim.choices)

    def test_scheduler_config_maps_to_baseline_kwargs(self, short_trace):
        engine = make_engine("vllm-scb", short_trace.model_ids, k=5)
        assert engine.max_batch_requests == 5


class TestProtocolParity:
    """Acceptance: gateway replay == legacy run for every engine."""

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_gateway_replay_matches_run(self, name, short_trace):
        legacy = make_engine(name, short_trace.model_ids).run(short_trace)
        online = ServingGateway(
            make_engine(name, short_trace.model_ids)).replay(short_trace)
        assert [record_key(r) for r in legacy.records] == \
            [record_key(r) for r in online.records]
        assert legacy.makespan_s == online.makespan_s

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_online_submit_matches_replay(self, name, short_trace):
        replayed = ServingGateway(
            make_engine(name, short_trace.model_ids)).replay(short_trace)
        gw = ServingGateway(make_engine(name, short_trace.model_ids))
        for req in short_trace:  # trace ids are 0..n-1 in arrival order
            rid = gw.submit(req.model_id, req.prompt_tokens,
                            req.output_tokens, arrival_s=req.arrival_s)
            assert rid == req.request_id
        submitted = gw.run_until_drained()
        assert [record_key(r) for r in replayed.records] == \
            [record_key(r) for r in submitted.records]


class TestEngineProperties:
    """Every registered engine conserves requests with sane timestamps."""

    @given(st.integers(1, 10), st.integers(1, 3), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_conservation_and_monotonicity(self, n, n_models, seed):
        rng = np.random.default_rng(seed)
        requests = [
            TraceRequest(request_id=i, model_id=f"m{rng.integers(n_models)}",
                         arrival_s=float(rng.uniform(0, 20)),
                         prompt_tokens=int(rng.integers(4, 64)),
                         output_tokens=int(rng.integers(1, 12)))
            for i in range(n)
        ]
        trace = Trace(requests=requests,
                      model_ids=[f"m{i}" for i in range(n_models)],
                      duration_s=21.0)
        for name in sorted(ENGINES):
            result = make_engine(name, trace.model_ids).run(trace)
            assert sorted(r.request_id for r in result.records) == \
                sorted(t.request_id for t in trace), name
            for rec in result.records:
                ttft_abs = rec.arrival_s + rec.ttft_s
                assert rec.arrival_s <= ttft_abs <= rec.finish_s + 1e-9, name


class TestGatewayOnline:
    def test_submit_defaults_to_current_clock(self):
        gw = ServingGateway(make_engine("deltazip", ["m0"]))
        gw.submit("m0", 8, 2)
        gw.run_until_drained()
        assert gw.clock > 0.0
        gw.submit("m0", 8, 2)  # arrives "now", mid-timeline
        result = gw.run_until_drained()
        assert result.n_requests == 2
        assert result.records[1].arrival_s >= result.records[0].finish_s

    def test_closed_loop_submission(self):
        """A client that reacts to completions — impossible with Trace."""
        gw = ServingGateway(make_engine("deltazip", ["m0", "m1"]))
        gw.submit("m0", 16, 4)
        served = []
        while gw.unfinished or len(served) < 4:
            if not gw.step():
                break
            done = gw.result().records
            if len(done) > len(served) and len(done) < 4:
                served = done
                gw.submit(f"m{len(done) % 2}", 16, 4)  # follow-up request
        result = gw.result()
        assert result.n_requests == 4
        arrivals = [r.arrival_s for r in result.records]
        assert arrivals == sorted(arrivals)

    def test_callbacks_fire(self):
        tokens, completions = [], []
        gw = ServingGateway(
            make_engine("deltazip", ["m0"]),
            on_token=lambda rid, mid, n, t: tokens.append((rid, n, t)),
            on_request_complete=completions.append)
        gw.submit("m0", 8, 3)
        gw.submit("m0", 8, 2)
        gw.run_until_drained()
        assert len(completions) == 2
        assert {c.request_id for c in completions} == {0, 1}
        assert len(tokens) == 3 + 2   # one callback per generated token
        clocks = [t for _, _, t in tokens]
        assert clocks == sorted(clocks)

    def test_out_of_order_submissions_served_fcfs(self):
        """Explicit arrival times that invert id order must still be
        admitted in arrival order (online FCFS, not id order)."""
        from repro.serving import ContinuousBatchScheduler, ServingRequest

        sched = ContinuousBatchScheduler(SchedulerConfig(4, 4))
        late = ServingRequest(trace=TraceRequest(
            request_id=0, model_id="m0", arrival_s=50.0,
            prompt_tokens=8, output_tokens=2))   # lower id, arrives last
        early = ServingRequest(trace=TraceRequest(
            request_id=1, model_id="m1", arrival_s=5.0,
            prompt_tokens=8, output_tokens=2))
        sched.add(late)
        sched.add(early)
        decision = sched.schedule([], [])
        assert [r.request_id for r in decision.admitted] == [1, 0]

    def test_invalid_submit_rejected(self):
        gw = ServingGateway(make_engine("deltazip", ["m0"]))
        with pytest.raises(ValueError):
            gw.submit("m0", 0, 4)

    def test_result_mid_flight(self):
        gw = ServingGateway(make_engine("deltazip", ["m0"]))
        for _ in range(3):
            gw.submit("m0", 8, 6)
        gw.step()
        partial = gw.result()
        assert partial.n_requests <= 3
        total = gw.run_until_drained()
        assert total.n_requests == 3


class TestServingResultMerge:
    def test_merge_spans_all_records(self):
        def rec(rid, arrival, finish):
            from repro.serving import RequestRecord
            return RequestRecord(request_id=rid, model_id="m",
                                 arrival_s=arrival, first_token_s=arrival,
                                 finish_s=finish, prompt_tokens=8,
                                 output_tokens=4, queue_wait_s=0.0,
                                 loading_s=0.0, inference_s=1.0,
                                 skipped_line=False, preemptions=0)
        a = ServingResult("e", [rec(0, 1.0, 5.0)], 4.0)
        b = ServingResult("e", [rec(1, 3.0, 11.0)], 8.0)
        merged = ServingResult.merge([a, b], engine="cluster",
                                     config={"groups": ["a", "b"]})
        assert merged.n_requests == 2
        assert merged.makespan_s == pytest.approx(10.0)
        assert merged.engine == "cluster"
        assert merged.config["groups"] == ["a", "b"]

    def test_merge_empty(self):
        # regression: empty merges must be well-defined all the way down
        # the percentile/throughput/summary math, not just constructible
        from repro.serving import summarize
        for results in ([], [ServingResult.merge([])],
                        [ServingResult("e", [], 1.0)]):
            merged = ServingResult.merge(results)
            assert merged.n_requests == 0
            assert merged.makespan_s == 0.0
            assert merged.throughput_rps() == 0.0
            assert merged.percentile_e2e_s(99) == 0.0
            assert merged.percentile_ttft_s(50) == 0.0
            summary = summarize(merged)
            assert summary["p99_e2e_s"] == 0.0
            assert summary["p50_ttft_s"] == 0.0


class TestSessionBuilder:
    @pytest.fixture(scope="class")
    def system(self, base_model, finetuned):
        from repro.core import DeltaZip
        dz = DeltaZip(base_model)
        dz.register_finetuned("review-ft", finetuned.model,
                              finetuned.calibration_tokens)
        return dz

    def test_session_replay_matches_simulate(self, system):
        trace = synthetic_trace(2, rate=0.5, duration_s=30.0, seed=4)
        kwargs = dict(scheduler=SchedulerConfig(8, 2),
                      engine=EngineConfig(tp_degree=1), default_ratio=8.0)
        with pytest.deprecated_call():
            legacy = system.simulate(trace, served_spec=LLAMA_7B, **kwargs)
        fluent = (system.session("deltazip", served_spec=LLAMA_7B)
                  .with_scheduler(SchedulerConfig(8, 2))
                  .with_engine_config(tp_degree=1)
                  .with_default_ratio(8.0)
                  .replay(trace))
        assert [record_key(r) for r in legacy.records] == \
            [record_key(r) for r in fluent.records]

    def test_session_online_submit(self, system):
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_scheduler(max_batch_requests=8,
                                   max_concurrent_deltas=2)
                   .with_engine_config(tp_degree=1)
                   .build())
        session.submit("review-ft", 32, 4)
        result = session.run_until_drained()
        assert result.n_requests == 1
        assert result.records[0].model_id == "review-ft"

    def test_session_unregistered_model_needs_ratio(self, system):
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .with_engine_config(tp_degree=1)
                   .build())
        with pytest.raises(KeyError):
            session.submit("mystery", 8, 4)

    def test_session_any_registered_engine(self, system):
        trace = synthetic_trace(2, rate=0.5, duration_s=20.0, seed=4)
        for name in sorted(ENGINES):
            result = (system.session(name, served_spec=LLAMA_7B)
                      .on_node("a800", gpus=1)
                      .with_engine_config(tp_degree=1)
                      .with_default_ratio(8.0)
                      .replay(trace))
            assert result.n_requests == len(trace), name

    def test_unknown_engine_name_rejected_early(self, system):
        with pytest.raises(KeyError):
            system.session("warp-drive", served_spec=LLAMA_7B)

    def test_spec_required(self, system):
        with pytest.raises(ValueError, match="served model spec"):
            system.session("deltazip").build()
