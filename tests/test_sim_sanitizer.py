"""The runtime sim-sanitizer: every dynamic check fires on a seeded
violation and stays silent on clean runs (REPRO_SIM_SANITIZE=1)."""

import pytest

from repro.serving import LLAMA_7B, ModelManager, ServingGateway
from repro.serving.tenancy import TokenBucket
from repro.sim import (Arrival, AutoscalerTick, Cancel, SimClock, SimKernel,
                       SimSanitizerError, new_clock)
from repro.sim import sanitizer
from repro.sim.sanitizer import SanitizedClock, install, sanitized
from repro.workload import synthetic_trace
from test_serving_gateway import make_engine


# --------------------------------------------------------------------- #
# enable/installation plumbing
# --------------------------------------------------------------------- #
class TestActivation:
    def test_context_manager_toggles(self):
        base = sanitizer.enabled()
        with sanitized(True):
            assert sanitizer.enabled()
            with sanitized(False):
                assert not sanitizer.enabled()
            assert sanitizer.enabled()
        assert sanitizer.enabled() == base

    def test_new_clock_is_sanitized_only_when_active(self):
        with sanitized(True):
            assert isinstance(new_clock(), SanitizedClock)
        with sanitized(False):
            clock = new_clock(3.0)
            assert isinstance(clock, SimClock)
            assert not isinstance(clock, SanitizedClock)
            assert clock.now == 3.0

    def test_kernel_self_installs_when_active(self):
        with sanitized(True):
            kernel = SimKernel()
            assert kernel._sanitizer_installed
            assert isinstance(kernel.clock, SanitizedClock)
        with sanitized(False):
            assert not SimKernel()._sanitizer_installed

    def test_install_is_idempotent(self):
        kernel = SimKernel(journal=True)
        install(kernel)
        emit = kernel.emit
        install(kernel)
        assert kernel.emit is emit

    def test_env_var_spelling(self):
        assert sanitizer.ENV_VAR == "REPRO_SIM_SANITIZE"


# --------------------------------------------------------------------- #
# clock checks
# --------------------------------------------------------------------- #
class TestSanitizedClock:
    def test_negative_tick_raises(self):
        clock = SanitizedClock(5.0)
        with pytest.raises(SimSanitizerError, match="backward"):
            clock.tick(-0.1)

    def test_nan_tick_raises(self):
        with pytest.raises(SimSanitizerError):
            SanitizedClock().tick(float("nan"))

    def test_forward_tick_and_reseat_pass(self):
        clock = SanitizedClock(1.0)
        assert clock.tick(0.5) == pytest.approx(1.5)
        assert clock.reseat(0.0) == 0.0


# --------------------------------------------------------------------- #
# kernel event checks
# --------------------------------------------------------------------- #
class TestKernelChecks:
    def _kernel(self):
        kernel = SimKernel(journal=True)
        return install(kernel)

    def test_past_kernel_timeline_event_raises(self):
        kernel = self._kernel()
        kernel.advance(10.0)
        with pytest.raises(SimSanitizerError, match="in the past"):
            kernel.emit(AutoscalerTick(time=9.0))

    def test_future_kernel_timeline_event_passes(self):
        kernel = self._kernel()
        kernel.advance(10.0)
        kernel.emit(AutoscalerTick(time=10.0))
        assert len(kernel.journal) == 1

    def test_replica_timeline_event_may_lag(self):
        # a late-routed arrival lands on an idle replica whose own clock
        # trails the ratcheted kernel frontier — legal by design
        from repro.sim import IterationDone
        kernel = self._kernel()
        kernel.advance(10.0)
        kernel.emit(IterationDone(time=9.0))
        assert len(kernel.journal) == 1

    def test_non_finite_event_time_raises(self):
        kernel = self._kernel()
        with pytest.raises(SimSanitizerError, match="non-finite"):
            kernel.emit(Cancel(time=float("nan"), request_id=1))
        with pytest.raises(SimSanitizerError, match="non-finite"):
            kernel.emit(AutoscalerTick(time=float("inf")))

    def test_double_terminal_transition_raises(self):
        kernel = self._kernel()
        kernel.emit(Cancel(time=1.0, request_id=7))
        with pytest.raises(SimSanitizerError, match="second terminal"):
            kernel.emit(Cancel(time=2.0, request_id=7, reason="deadline"))

    def test_reset_clears_terminal_memory(self):
        kernel = self._kernel()
        kernel.emit(Cancel(time=1.0, request_id=7))
        kernel.reset()
        kernel.emit(Cancel(time=1.0, request_id=7))
        assert len(kernel.journal) == 1

    def test_violation_names_the_call_site(self):
        kernel = self._kernel()
        kernel.advance(5.0)
        with pytest.raises(SimSanitizerError,
                           match="test_sim_sanitizer"):
            kernel.emit(AutoscalerTick(time=1.0))

    def test_arrival_passthrough(self):
        kernel = self._kernel()
        kernel.emit(Arrival(time=0.5))
        assert len(kernel.journal) == 1


# --------------------------------------------------------------------- #
# token-bucket checks
# --------------------------------------------------------------------- #
class TestBucketChecks:
    def test_negative_charge_raises(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        with sanitized(True):
            with pytest.raises(SimSanitizerError, match="charge"):
                bucket.charge(-1.0, now=0.0)

    def test_negative_refund_raises(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        with sanitized(True):
            bucket.charge(5.0, now=0.0)
            with pytest.raises(SimSanitizerError, match="refund"):
                bucket.refund(-1.0)

    def test_refund_asymmetry_check_raises(self):
        # via the bucket API the burst cap absorbs over-refunds (only
        # effectively-restored tokens are metered), so seed the meter
        # directly: restoring more than was ever charged must raise
        with sanitized(True):
            with pytest.raises(SimSanitizerError, match="asymmetry"):
                sanitizer.check_bucket_refund(
                    cost=10.0, tokens=15.0, burst=20.0,
                    charged_total=5.0, refunded_total=10.0)

    def test_overfull_bucket_check_raises(self):
        with sanitized(True):
            with pytest.raises(SimSanitizerError, match="exceeds burst"):
                sanitizer.check_bucket_refund(
                    cost=1.0, tokens=25.0, burst=20.0,
                    charged_total=5.0, refunded_total=1.0)

    def test_burst_cap_absorption_is_legal(self):
        # refunding more than the bucket can hold is absorbed by the
        # burst cap (documented contract) — only *effectively restored*
        # tokens count toward the symmetry meter
        bucket = TokenBucket(rate=10.0, burst=20.0)
        with sanitized(True):
            bucket.charge(6.0, now=0.0)
            bucket.refund(6.0)
            assert bucket.tokens <= bucket.burst + 1e-9

    def test_borrow_ahead_stays_legal(self):
        # the bucket lends below zero by design; that must not trip
        bucket = TokenBucket(rate=1.0, burst=4.0)
        with sanitized(True):
            eligible = bucket.charge(10.0, now=0.0)
            assert bucket.tokens < 0.0
            assert eligible > 0.0

    def test_meter_check_raises_when_negative(self):
        with sanitized(True):
            with pytest.raises(SimSanitizerError, match="meter"):
                sanitizer.check_meter(-1.0, "acme")
            sanitizer.check_meter(0.0, "acme")

    def test_handle_finish_check(self):
        with sanitized(True):
            sanitizer.check_handle_finish(3, already_terminal=False)
            with pytest.raises(SimSanitizerError, match="finished twice"):
                sanitizer.check_handle_finish(3, already_terminal=True)


# --------------------------------------------------------------------- #
# end-to-end: a clean run under the sanitizer is silent and identical
# --------------------------------------------------------------------- #
class TestEndToEnd:
    def test_gateway_run_identical_under_sanitizer(self):
        trace = synthetic_trace(3, rate=2.0, duration_s=10.0, seed=5)

        def run():
            gateway = ServingGateway(
                make_engine("deltazip", sorted({r.model_id for r in trace})))
            handles = [gateway.submit(r.model_id, r.prompt_tokens,
                                      r.output_tokens, arrival_s=r.arrival_s)
                       for r in trace]
            result = gateway.run_until_drained()
            assert all(h.done for h in handles)
            return [(r.request_id, r.finish_s, r.served_tokens)
                    for r in result.records]

        plain = run()
        with sanitized(True):
            checked = run()
        assert plain == checked

    def test_handle_double_finish_raises_under_sanitizer(self):
        from repro.serving.handle import RequestHandle
        from repro.serving.request import RequestRecord

        class _Gateway:
            def step(self):
                return False

            def cancel(self, request_id, at_s=None):
                pass

            def _status_of(self, request_id):
                raise AssertionError("unused")

        record = RequestRecord(
            request_id=1, model_id="m", arrival_s=0.0, first_token_s=0.1,
            finish_s=0.2, prompt_tokens=1, output_tokens=1,
            queue_wait_s=0.0, loading_s=0.0, inference_s=0.2,
            skipped_line=False, preemptions=0)
        handle = RequestHandle(1, _Gateway(), "m")
        handle._finish(record)
        with sanitized(True):
            with pytest.raises(SimSanitizerError, match="finished twice"):
                handle._finish(record)
