"""Live ops plane: spans, gauges, scenario drills, and the
pure-observation guarantee (telemetry cannot change replay records)."""

import json
import tracemalloc

import pytest

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (Autoscaler, ClusterGateway, EngineConfig,
                           ENGINES, LLAMA_7B, ModelManager, RecordPolicy,
                           SchedulerConfig, ServingGateway, Tenant,
                           TenantGateway, create_engine)
from repro.sim import (AdmissionDecision, PhaseTransition, SimKernel,
                       TelemetryTick)
from repro.sim.events import Arrival, Cancel
from repro.telemetry import GaugeBoard, GaugeSnapshot, SpanRecorder, Telemetry
from repro.telemetry.scenarios import SCENARIO_NAMES, run_scenario
from repro.workload import TenantWorkload, multi_tenant_trace, synthetic_trace

N_MODELS = 4


def make_engine(name="deltazip", policy=RecordPolicy.KEEP_ALL, k=8):
    from repro.serving import ArtifactKind
    cls = ENGINES[name]
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        m = f"variant-{i:02d}"
        if cls.variant_artifact == ArtifactKind.DELTA:
            mgr.register_delta(m, "base", 8.0)
        else:
            mgr.register_full(m, "base")
    return create_engine(
        name, mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=k,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(tp_degree=1, record_policy=policy))


def make_cluster(telemetry=None, policy=RecordPolicy.KEEP_ALL,
                 n_replicas=2, autoscaler=None):
    ceiling = autoscaler.config.max_replicas if autoscaler else n_replicas

    def factory(node):
        return create_engine(
            "deltazip", _shared_manager(), node,
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=EngineConfig(tp_degree=1,
                                       record_policy=policy))

    return ClusterGateway(engine_factory=factory,
                          cluster=Cluster.from_name("a800", ceiling, 1),
                          n_replicas=n_replicas, autoscaler=autoscaler,
                          telemetry=telemetry)


def _shared_manager():
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s,
            rec.preemptions, rec.skipped_line)


@pytest.fixture(scope="module")
def short_trace():
    return synthetic_trace(N_MODELS, rate=1.5, duration_s=30.0, seed=11)


@pytest.fixture(scope="module")
def tenant_trace():
    return multi_tenant_trace(
        (TenantWorkload("gold", rate=0.5,
                        model_ids=("variant-00", "variant-01")),
         TenantWorkload("silver", rate=1.0,
                        model_ids=("variant-02", "variant-03"))),
        duration_s=30.0, seed=5)


def build_stack(wrapper, telemetry, policy=RecordPolicy.KEEP_ALL):
    """One serving stack per wrapper kind, telemetry optionally wired."""
    if wrapper == "serving":
        return ServingGateway(make_engine(policy=policy),
                              telemetry=telemetry)
    if wrapper == "cluster":
        return make_cluster(telemetry=telemetry, policy=policy)
    if wrapper == "tenancy":
        tenants = (Tenant("gold", weight=2.0, slo_class="interactive"),
                   Tenant("silver", weight=1.0, slo_class="standard"))
        return TenantGateway(ServingGateway(make_engine(policy=policy)),
                             tenants=tenants, policy="vtc",
                             telemetry=telemetry)
    raise AssertionError(wrapper)


def trace_for(wrapper, short_trace, tenant_trace):
    return tenant_trace if wrapper == "tenancy" else short_trace


# --------------------------------------------------------------------------- #
# kernel plumbing
# --------------------------------------------------------------------------- #
class TestKernelWants:
    def test_no_subscribers_no_journal_wants_nothing(self):
        kernel = SimKernel()
        assert not kernel.wants(PhaseTransition)

    def test_journal_wants_everything(self):
        kernel = SimKernel(journal=True)
        assert kernel.wants(PhaseTransition)
        assert kernel.wants(TelemetryTick)

    def test_subscription_is_per_type_and_respects_subclassing(self):
        kernel = SimKernel()
        kernel.subscribe(PhaseTransition, lambda e: None)
        assert kernel.wants(PhaseTransition)
        assert not kernel.wants(AdmissionDecision)

    def test_base_class_subscription_covers_new_events(self):
        from repro.sim.events import Event
        kernel = SimKernel()
        kernel.subscribe(Event, lambda e: None)
        assert kernel.wants(PhaseTransition)
        assert kernel.wants(AdmissionDecision)
        assert kernel.wants(TelemetryTick)


class TestSpanRecorder:
    def k(self, policy=RecordPolicy.KEEP_ALL, **kw):
        kernel = SimKernel()
        rec = SpanRecorder(policy=policy, **kw)
        rec.subscribe(kernel)
        return kernel, rec

    def emit_lifecycle(self, kernel, rid, t0=0.0, tenant=None):
        kernel.emit(PhaseTransition(time=t0, request_id=rid,
                                    phase="queue", model_id="m",
                                    tenant_id=tenant))
        kernel.emit(PhaseTransition(time=t0 + 1, request_id=rid,
                                    phase="prefill", model_id="m"))
        kernel.emit(PhaseTransition(time=t0 + 2, request_id=rid,
                                    phase="decode", model_id="m"))
        kernel.emit(PhaseTransition(time=t0 + 5, request_id=rid,
                                    phase="retire", model_id="m",
                                    status="finished"))

    def test_span_assembles_phases_and_closes(self):
        kernel, rec = self.k()
        self.emit_lifecycle(kernel, 7, tenant="gold")
        assert rec.active_count == 0 and rec.n_closed == 1
        (span,) = rec.completed()
        assert span.tenant_id == "gold" and span.status == "finished"
        assert span.phase_bounds() == [("queue", 0.0, 1.0),
                                       ("prefill", 1.0, 2.0),
                                       ("decode", 2.0, 5.0)]
        assert span.duration_s() == pytest.approx(5.0)

    def test_shed_decision_is_immediately_terminal(self):
        kernel, rec = self.k()
        kernel.emit(AdmissionDecision(time=3.0, request_id=1,
                                      tenant_id="agg", decision="shed",
                                      model_id="m"))
        assert rec.n_closed == 1 and rec.active_count == 0
        (span,) = rec.completed()
        assert span.status == "shed" and span.duration_s() == 0.0

    def test_cancel_reason_annotated_on_open_span(self):
        kernel, rec = self.k()
        kernel.emit(PhaseTransition(time=0.0, request_id=2, phase="queue",
                                    model_id="m"))
        kernel.emit(Cancel(time=1.0, request_id=2, reason="deadline"))
        kernel.emit(PhaseTransition(time=1.0, request_id=2, phase="retire",
                                    model_id="m", status="expired"))
        (span,) = rec.completed()
        assert span.cancel_reason == "deadline"
        assert span.status == "expired"

    def test_drop_policy_keeps_no_closed_spans_but_sketches_fill(self):
        kernel, rec = self.k(policy=RecordPolicy.DROP)
        for rid in range(20):
            self.emit_lifecycle(kernel, rid, t0=float(rid))
        assert rec.completed() == []
        assert rec.n_closed == 20
        assert rec.sketches["e2e"].count == 20

    def test_sample_k_reservoir_is_bounded_and_deterministic(self):
        def run():
            kernel, rec = self.k(policy=RecordPolicy.SAMPLE_K, sample_k=8)
            for rid in range(100):
                self.emit_lifecycle(kernel, rid, t0=float(rid))
            return [s.request_id for s in rec.completed()]
        first, second = run(), run()
        assert len(first) == 8 and first == second

    def test_clear_resets_for_identical_resample(self):
        kernel, rec = self.k(policy=RecordPolicy.SAMPLE_K, sample_k=4)
        for rid in range(50):
            self.emit_lifecycle(kernel, rid, t0=float(rid))
        first = [s.request_id for s in rec.completed()]
        rec.clear()             # still subscribed; fresh timeline
        for rid in range(50):
            self.emit_lifecycle(kernel, rid, t0=float(rid))
        assert [s.request_id for s in rec.completed()] == first


class TestGaugeBoard:
    def test_ring_is_bounded(self):
        board = GaugeBoard(capacity=4)
        for i in range(10):
            board.record(GaugeSnapshot(time_s=float(i), backlog=i))
        assert len(board) == 4 and board.n_recorded == 10
        assert board.series("time_s") == [6.0, 7.0, 8.0, 9.0]
        assert board.latest().backlog == 9

    def test_empty_board(self):
        board = GaugeBoard()
        assert board.latest() is None and board.series() == []


# --------------------------------------------------------------------------- #
# pure observation: telemetry cannot change what the stack computes
# --------------------------------------------------------------------------- #
WRAPPERS = ("serving", "cluster", "tenancy")


class TestPureObservation:
    @pytest.mark.parametrize("wrapper", WRAPPERS)
    def test_records_identical_with_and_without_telemetry(
            self, wrapper, short_trace, tenant_trace):
        trace = trace_for(wrapper, short_trace, tenant_trace)
        bare = build_stack(wrapper, telemetry=None).replay(trace)
        wired = build_stack(
            wrapper, telemetry=Telemetry(interval_s=1.0)).replay(trace)
        assert [record_key(r) for r in bare.records] == \
            [record_key(r) for r in wired.records]

    def test_telemetry_off_leaves_engine_hooks_untouched(self):
        gw = ServingGateway(make_engine())
        assert gw.engine.on_event is None
        assert gw.engine.emit_phases is False

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_all_engines_unaffected_by_telemetry(self, name, short_trace):
        bare = ServingGateway(make_engine(name)).replay(short_trace)
        wired = ServingGateway(make_engine(name),
                               telemetry=Telemetry(interval_s=2.0)) \
            .replay(short_trace)
        assert [record_key(r) for r in bare.records] == \
            [record_key(r) for r in wired.records]


# --------------------------------------------------------------------------- #
# determinism: same run twice -> identical spans and gauges
# --------------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize("wrapper", WRAPPERS)
    @pytest.mark.parametrize("policy", list(RecordPolicy))
    def test_spans_and_gauges_reproduce(self, wrapper, policy,
                                        short_trace, tenant_trace):
        trace = trace_for(wrapper, short_trace, tenant_trace)

        def run():
            telemetry = Telemetry(interval_s=1.0)
            build_stack(wrapper, telemetry, policy=policy).replay(trace)
            spans = [s.as_dict() for s in telemetry.spans.completed()]
            gauges = [g.as_dict() for g in telemetry.gauges.series()]
            return telemetry.spans.summary(), spans, gauges

        first, second = run(), run()
        assert first == second
        summary, spans, gauges = first
        assert summary["n_closed"] == len(trace)
        assert gauges, "gauge board never ticked"
        if policy is RecordPolicy.DROP:
            assert spans == []
        elif policy is RecordPolicy.KEEP_ALL:
            assert len(spans) == len(trace)

    def test_reset_replay_reproduces(self, short_trace):
        telemetry = Telemetry(interval_s=1.0)
        gw = ServingGateway(make_engine(), telemetry=telemetry)
        gw.replay(short_trace)
        first = (telemetry.spans.summary(),
                 [g.as_dict() for g in telemetry.gauges.series()])
        gw.replay(short_trace)        # replay() resets the stack
        second = (telemetry.spans.summary(),
                  [g.as_dict() for g in telemetry.gauges.series()])
        assert first == second


# --------------------------------------------------------------------------- #
# gauge semantics
# --------------------------------------------------------------------------- #
class TestGauges:
    def test_consumable_mid_run(self, short_trace):
        telemetry = Telemetry(interval_s=1.0)
        gw = ServingGateway(make_engine(), telemetry=telemetry)
        gw.reset()
        for req in short_trace:
            gw.ingest(req)
        seen = []
        while gw.step():
            latest = telemetry.latest()
            if latest is not None and (not seen or
                                       latest.time_s > seen[-1]):
                seen.append(latest.time_s)
        assert len(seen) >= 10, "gauges must be readable mid-run"
        assert seen == sorted(seen)

    def test_tick_cadence_and_monotone_time(self, short_trace):
        telemetry = Telemetry(interval_s=2.0)
        ServingGateway(make_engine(),
                       telemetry=telemetry).replay(short_trace)
        times = telemetry.series("time_s")
        assert times == [2.0 * (i + 1) for i in range(len(times))]

    def test_cluster_gauges_see_replicas_and_occupancy(self, short_trace):
        telemetry = Telemetry(interval_s=1.0)
        make_cluster(telemetry=telemetry).replay(short_trace)
        latest = telemetry.latest()
        assert latest is not None
        assert latest.n_replicas == 2
        assert any(g.batch_occupancy > 0
                   for g in telemetry.gauges.series())
        assert any(g.kv_occupancy > 0
                   for g in telemetry.gauges.series())

    def test_tenancy_gauges_track_attainment_and_spans(self, tenant_trace):
        telemetry = Telemetry(interval_s=1.0)
        tenants = (Tenant("gold", weight=2.0, slo_class="interactive"),
                   Tenant("silver", weight=1.0, slo_class="standard"))
        gw = TenantGateway(ServingGateway(make_engine()), tenants=tenants,
                           policy="vtc", telemetry=telemetry)
        gw.replay(tenant_trace)
        latest = telemetry.latest()
        assert set(latest.attainment) == {"gold", "silver"}
        assert all(0.0 <= v <= 1.0 for v in latest.attainment.values())
        # every request span was assembled with its tenant attribution
        assert telemetry.spans.n_closed == len(tenant_trace)
        tenants_seen = {s.tenant_id for s in telemetry.spans.completed()}
        assert tenants_seen == {"gold", "silver"}

    def test_interval_none_disables_gauges_but_spans_record(
            self, short_trace):
        telemetry = Telemetry(interval_s=None)
        ServingGateway(make_engine(), telemetry=telemetry) \
            .replay(short_trace)
        assert telemetry.latest() is None
        assert telemetry.spans.n_closed == len(short_trace)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(interval_s=0.0)


# --------------------------------------------------------------------------- #
# memory: open spans are O(active) under DROP
# --------------------------------------------------------------------------- #
class TestSpanMemory:
    def test_drop_policy_span_memory_stays_flat(self):
        """10x more requests must not grow span-recorder memory under
        DROP — retained state is open spans + fixed-size sketches."""
        def peak_span_bytes(n_requests):
            kernel = SimKernel()
            rec = SpanRecorder(policy=RecordPolicy.DROP)
            rec.subscribe(kernel)
            tracemalloc.start()
            for rid in range(n_requests):
                t = float(rid)
                kernel.emit(PhaseTransition(time=t, request_id=rid,
                                            phase="queue", model_id="m"))
                kernel.emit(PhaseTransition(time=t + 0.5, request_id=rid,
                                            phase="retire", model_id="m",
                                            status="finished"))
            current, _peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert rec.active_count == 0
            return current

        small, large = peak_span_bytes(500), peak_span_bytes(5000)
        assert large < max(small * 3, small + 64 * 1024), \
            f"span memory grew with request count: {small} -> {large}"


# --------------------------------------------------------------------------- #
# scenario drills
# --------------------------------------------------------------------------- #
class TestScenarios:
    def test_registry_names(self):
        assert SCENARIO_NAMES == ("noisy-neighbor",
                                  "replica-failure-mid-burst",
                                  "scale-from-zero", "thundering-herd")

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("nope")

    def test_thundering_herd_invariants_hold(self):
        report = run_scenario("thundering-herd", quick=True)
        assert report.ok, [i.detail for i in report.invariants
                           if not i.passed]
        assert len(report.invariants) >= 1
        assert report.gauges, "drill must produce a gauge series"

    def test_scenario_reports_are_deterministic(self):
        a = run_scenario("thundering-herd", quick=True).as_dict()
        b = run_scenario("thundering-herd", quick=True).as_dict()
        assert a == b

    def test_report_round_trips_through_json(self):
        report = run_scenario("thundering-herd", quick=True)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["gauge_series"]

    def test_cli_scenarios_smoke(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "gauges.json"
        rc = main(["scenarios", "thundering-herd", "--quick",
                   "--gauges-out", str(out)])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert "thundering-herd" in payload


# --------------------------------------------------------------------------- #
# trace export integration
# --------------------------------------------------------------------------- #
class TestTraceExportSpans:
    def test_nested_request_slices_with_tenant_args(self, tenant_trace):
        from repro.sim.trace_export import chrome_trace_events
        telemetry = Telemetry(interval_s=5.0, journal=True)
        tenants = (Tenant("gold", weight=2.0, slo_class="interactive"),
                   Tenant("silver", weight=1.0, slo_class="standard"))
        TenantGateway(ServingGateway(make_engine()), tenants=tenants,
                      policy="vtc", telemetry=telemetry) \
            .replay(tenant_trace)
        events = chrome_trace_events(telemetry.kernel.journal)
        req_slices = [e for e in events if e["tid"].startswith("req:")]
        outers = [e for e in req_slices if "tenant" in e["args"]]
        assert len(outers) == len(tenant_trace)
        assert {e["args"]["tenant"] for e in outers} == {"gold", "silver"}
        # each outer slice nests its phase sub-slices inside its bounds
        by_tid = {}
        for e in req_slices:
            by_tid.setdefault(e["tid"], []).append(e)
        for tid, slices in by_tid.items():
            outer = next(e for e in slices if "tenant" in e["args"])
            for phase in (e for e in slices if e is not outer):
                assert phase["ts"] >= outer["ts"] - 1e-6
                assert phase["ts"] + phase["dur"] <= \
                    outer["ts"] + outer["dur"] + 1e-6
        ticks = [e for e in events if e["name"] == "telemetry-tick"]
        assert ticks and all(e["tid"] == "telemetry" for e in ticks)
        verdicts = [e for e in events if e["name"].startswith("admission:")]
        assert len(verdicts) == len(tenant_trace)
