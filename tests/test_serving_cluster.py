"""Cluster serving layer: balancers, replica sets, autoscaling, sessions."""

import numpy as np
import pytest

from repro.hardware import (Cluster, ClusterCapacityError, GPUNode,
                            node_from_name)
from repro.serving import (Autoscaler, AutoscalerConfig, BALANCERS,
                           ClusterGateway, EngineConfig,
                           LeastOutstandingBalancer, LineageAffinityBalancer,
                           LLAMA_7B, ModelManager, RoundRobinBalancer,
                           SchedulerConfig, ServingGateway, create_balancer,
                           create_engine)
from repro.workload import ramp_trace, synthetic_trace
from repro.workload.spec import Trace, TraceRequest

N_MODELS = 8


def make_manager(n_models=N_MODELS, ratio=8.0):
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(n_models):
        mgr.register_delta(f"variant-{i:02d}", "base", ratio)
    return mgr


def make_factory(mgr=None, n_deltas=4, k=8):
    mgr = mgr or make_manager()

    def factory(node):
        return create_engine(
            "deltazip", mgr, node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=k,
                                             max_concurrent_deltas=n_deltas),
            engine_config=EngineConfig(tp_degree=1))
    return factory


def make_gateway(n_replicas=2, balancer="least-outstanding",
                 autoscaler=None, max_nodes=None, **kwargs):
    ceiling = max_nodes or (autoscaler.config.max_replicas
                            if autoscaler else n_replicas)
    return ClusterGateway(engine_factory=make_factory(**kwargs),
                          cluster=Cluster.from_name("a800", ceiling, 1),
                          n_replicas=n_replicas, balancer=balancer,
                          autoscaler=autoscaler)


def bursty_trace(rate=8.0, duration_s=60.0, seed=7):
    """Overload a single replica so extra replicas visibly help."""
    rng = np.random.default_rng(seed)
    from repro.workload import gamma_burst_arrivals
    times = gamma_burst_arrivals(rate, duration_s, rng, cv=4.0)
    requests = [
        TraceRequest(request_id=i, model_id=f"variant-{i % N_MODELS:02d}",
                     arrival_s=t, prompt_tokens=64, output_tokens=16)
        for i, t in enumerate(times)
    ]
    return Trace(requests=requests,
                 model_ids=[f"variant-{i:02d}" for i in range(N_MODELS)],
                 duration_s=duration_s)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s)


# --------------------------------------------------------------------------- #
class TestHardwareCluster:
    def test_acquire_release_capacity(self):
        cluster = Cluster.from_name("a800", n_nodes=2, gpus_per_node=1)
        a = cluster.acquire()
        b = cluster.acquire()
        assert a is not b
        assert cluster.n_free == 0
        with pytest.raises(ClusterCapacityError):
            cluster.acquire()
        cluster.release(a)
        assert cluster.n_free == 1
        assert cluster.acquire() is a  # released nodes are reused

    def test_release_is_identity_based(self):
        # two same-spec nodes compare equal as dataclasses; release must
        # not be fooled by a foreign but equal node
        cluster = Cluster.from_name("a800", n_nodes=1, gpus_per_node=1)
        cluster.acquire()
        foreign = GPUNode(node_from_name("a800", 1))
        with pytest.raises(ValueError):
            cluster.release(foreign)

    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            Cluster.from_name("a800", n_nodes=0)


class TestBalancers:
    def replicas(self, gateway=None, n=3):
        return make_gateway(n_replicas=n).replicas

    def test_registry(self):
        assert {"round-robin", "least-outstanding", "lineage"} <= \
            set(BALANCERS)
        assert isinstance(create_balancer("round-robin"), RoundRobinBalancer)
        passthrough = LeastOutstandingBalancer()
        assert create_balancer(passthrough) is passthrough
        with pytest.raises(KeyError, match="unknown balancer"):
            create_balancer("coin-flip")

    def test_round_robin_rotates(self):
        replicas = self.replicas()
        rr = RoundRobinBalancer()
        picks = [rr.choose("m", replicas).id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_tracks_queue(self):
        gateway = make_gateway(n_replicas=2)
        # load replica 0 with work through the gateway
        gateway.submit("variant-00", 32, 8)
        balancer = LeastOutstandingBalancer()
        assert balancer.choose("m", gateway.replicas).id == 1

    def test_lineage_sticks_and_unpins_on_removal(self):
        replicas = self.replicas()
        balancer = LineageAffinityBalancer()
        first = balancer.choose("variant-00", replicas)
        assert all(balancer.choose("variant-00", replicas) is first
                   for _ in range(5))
        balancer.on_removed(first)
        rehomed = balancer.choose("variant-00", replicas[1:])
        assert rehomed is not first

    def test_lineage_pin_and_owner_fn(self):
        replicas = self.replicas()
        balancer = LineageAffinityBalancer(owner_of=lambda m: m.split("-")[0])
        balancer.pin("variant", replicas[2])
        assert balancer.choose("variant-05", replicas) is replicas[2]
        assert balancer.choose("variant-00", replicas) is replicas[2]


class TestClusterGateway:
    def test_single_replica_replay_matches_plain_gateway(self):
        trace = synthetic_trace(4, rate=1.0, duration_s=30.0, seed=11)
        mgr = make_manager()
        plain = ServingGateway(make_factory(mgr)(None)).replay(trace)
        clustered = ClusterGateway(engine_factory=make_factory(mgr),
                                   cluster=Cluster.from_name("a800", 1, 1),
                                   n_replicas=1).replay(trace)
        assert [record_key(r) for r in plain.records] == \
            [record_key(r) for r in clustered.records]
        assert plain.makespan_s == clustered.makespan_s

    def test_request_ids_unique_across_replicas(self):
        gateway = make_gateway(n_replicas=3, balancer="round-robin")
        ids = [gateway.submit(f"variant-{i % N_MODELS:02d}", 32, 4)
               for i in range(9)]
        assert ids == list(range(9))
        result = gateway.run_until_drained()
        assert sorted(r.request_id for r in result.records) == list(range(9))

    def test_submit_validates_lengths(self):
        gateway = make_gateway(n_replicas=1)
        with pytest.raises(ValueError):
            gateway.submit("variant-00", 0, 4)

    def test_step_false_when_drained(self):
        gateway = make_gateway(n_replicas=2)
        assert gateway.step() is False
        gateway.submit("variant-00", 16, 2)
        assert gateway.step() is True
        gateway.run_until_drained()
        assert gateway.step() is False

    def test_four_replicas_beat_one_on_bursty_makespan(self):
        """Acceptance: least-outstanding x4 wins on a gamma-burst trace."""
        trace = bursty_trace()
        mgr = make_manager()
        makespans = {}
        for n in (1, 4):
            gateway = ClusterGateway(
                engine_factory=make_factory(mgr),
                cluster=Cluster.from_name("a800", n, 1), n_replicas=n,
                balancer="least-outstanding")
            res = gateway.replay(trace)
            assert res.n_requests == len(trace)
            makespans[n] = res.makespan_s
        assert makespans[4] < makespans[1]

    def test_per_replica_results_conserve_requests(self):
        trace = bursty_trace(rate=3.0, duration_s=30.0)
        gateway = make_gateway(n_replicas=2)
        merged = gateway.replay(trace)
        by_replica = gateway.results_by_replica()
        assert sum(r.n_requests for r in by_replica.values()) == \
            merged.n_requests == len(trace)

    def test_lineage_balancer_partitions_by_variant(self):
        trace = bursty_trace(rate=2.0, duration_s=30.0)
        gateway = make_gateway(n_replicas=2, balancer="lineage")
        gateway.replay(trace)
        seen = {}  # model -> replica name, stable across the whole run
        for name, res in gateway.results_by_replica().items():
            for rec in res.records:
                assert seen.setdefault(rec.model_id, name) == name

    @pytest.mark.parametrize("policy", ["round-robin", "least-outstanding",
                                        "lineage"])
    def test_repeated_replay_is_deterministic(self, policy):
        """Regression: replay resets balancer state (rotation position,
        learned affinities), so the same trace yields identical records
        run after run."""
        trace = bursty_trace(rate=2.0, duration_s=30.0)
        gateway = make_gateway(n_replicas=2, balancer=policy)
        first = gateway.replay(trace)
        second = gateway.replay(trace)
        assert [record_key(r) for r in first.records] == \
            [record_key(r) for r in second.records]

    def test_drain_replica_guards_last_active(self):
        gateway = make_gateway(n_replicas=2)
        gateway.submit("variant-00", 16, 2)
        gateway.submit("variant-01", 16, 2)
        drained = gateway.drain_replica()
        with pytest.raises(RuntimeError, match="last active"):
            gateway.drain_replica()
        # re-draining an already-draining replica is an idempotent no-op
        assert gateway.drain_replica(drained) is drained

    def test_fixed_set_cannot_spawn(self):
        engines = [make_factory()(None)]
        gateway = ClusterGateway.from_engines(engines)
        with pytest.raises(RuntimeError, match="fixed replica set"):
            gateway.spawn_replica()

    def test_from_engines_validation(self):
        with pytest.raises(ValueError):
            ClusterGateway.from_engines([])
        with pytest.raises(ValueError):
            ClusterGateway.from_engines([make_factory()(None)],
                                        names=["a", "b"])


class TestAutoscaler:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(high_queue_per_replica=1.0,
                             low_queue_per_replica=2.0)

    def test_replicas_rise_and_fall_with_offered_load(self):
        """Acceptance: replica count traces a rate ramp up and back down."""
        trace = ramp_trace(N_MODELS, peak_rate=8.0, duration_s=240.0,
                           base_rate=0.2, cv=2.0, seed=3)
        autoscaler = Autoscaler(
            min_replicas=1, max_replicas=4, high_queue_per_replica=4.0,
            low_queue_per_replica=1.0, check_interval_s=2.0,
            scale_up_cooldown_s=4.0, scale_down_cooldown_s=15.0)
        gateway = make_gateway(n_replicas=1, autoscaler=autoscaler)
        result = gateway.replay(trace)
        assert result.n_requests == len(trace)
        counts = [s.n_replicas for s in autoscaler.history]
        assert max(counts) > 1                     # scaled up under load
        assert counts[-1] < max(counts)            # ... and back down
        assert any(s.action == "scale_up" for s in autoscaler.history)
        assert any(s.action == "scale_down" for s in autoscaler.history)
        assert result.config["max_replicas_seen"] == max(counts)

    def test_scaled_up_replicas_actually_serve_replayed_load(self):
        """Regression: replay must route at the simulation frontier, not
        up front — otherwise replicas spawned mid-run never get work and
        autoscaling is a performance no-op."""
        trace = ramp_trace(N_MODELS, peak_rate=8.0, duration_s=240.0,
                           base_rate=0.2, cv=2.0, seed=3)
        autoscaler = Autoscaler(
            min_replicas=1, max_replicas=4, high_queue_per_replica=4.0,
            low_queue_per_replica=1.0, check_interval_s=2.0,
            scale_up_cooldown_s=4.0, scale_down_cooldown_s=15.0)
        mgr = make_manager()
        scaled = make_gateway(n_replicas=1, autoscaler=autoscaler, mgr=mgr)
        auto_res = scaled.replay(trace)
        per_replica = [r.n_requests
                       for r in scaled.results_by_replica().values()]
        assert sum(1 for n in per_replica if n > 0) >= 2
        fixed = make_gateway(n_replicas=1, mgr=mgr)
        fixed_res = fixed.replay(trace)
        assert auto_res.makespan_s < fixed_res.makespan_s
        assert auto_res.percentile_ttft_s(99) < \
            fixed_res.percentile_ttft_s(99)

    def test_retired_replicas_keep_their_records(self):
        trace = ramp_trace(N_MODELS, peak_rate=8.0, duration_s=240.0,
                           base_rate=0.2, cv=2.0, seed=3)
        autoscaler = Autoscaler(
            min_replicas=1, max_replicas=4, high_queue_per_replica=4.0,
            low_queue_per_replica=1.0, check_interval_s=2.0,
            scale_up_cooldown_s=4.0, scale_down_cooldown_s=15.0)
        gateway = make_gateway(n_replicas=1, autoscaler=autoscaler)
        result = gateway.replay(trace)
        # every request completes exactly once even across retirements
        assert sorted(r.request_id for r in result.records) == \
            list(range(len(trace)))

    def test_draining_replica_gets_no_new_requests(self):
        gateway = make_gateway(n_replicas=2, balancer="round-robin")
        drained = gateway.drain_replica(gateway.replicas[0])
        # idle when drained -> retired from the live set immediately
        assert gateway.retired == [drained]
        survivor = gateway.active_replicas()[0]
        for i in range(4):
            gateway.submit(f"variant-{i:02d}", 16, 2)
        assert drained.unfinished == 0
        assert survivor.unfinished == 4

    def test_scale_up_revives_draining_replica(self):
        """Regression: a draining replica still holds its cluster node, so
        scale-up at the node ceiling must revive it rather than acquire a
        node that does not exist (previously ClusterCapacityError)."""
        autoscaler = Autoscaler(min_replicas=1, max_replicas=2,
                                high_queue_per_replica=1.0,
                                low_queue_per_replica=0.5)
        gateway = make_gateway(n_replicas=2, autoscaler=autoscaler)
        for i in range(8):
            gateway.submit(f"variant-{i % N_MODELS:02d}", 32, 8)
        drained = gateway.drain_replica()
        assert drained.draining and drained in gateway.replicas
        action = autoscaler.control(gateway)
        assert action == "scale_up"
        assert not drained.draining
        assert len(gateway.replicas) == 2

    def test_undersized_cluster_rejected_at_construction(self):
        with pytest.raises(ValueError, match="cluster has 1 nodes"):
            ClusterGateway(engine_factory=make_factory(),
                           cluster=Cluster.from_name("a800", 1, 1),
                           n_replicas=1,
                           autoscaler=Autoscaler(max_replicas=4))

    def test_lineage_rebalances_when_autoscaler_drains_pinned_replica(self):
        """Regression coverage for the Autoscaler x lineage interaction:
        when the controller drains the replica a variant is pinned to,
        ``drain_replica`` must notify the balancer (dropping the pin and
        the learned homes) so later requests for that variant rehome to a
        surviving replica instead of chasing the drained one."""
        balancer = LineageAffinityBalancer()
        autoscaler = Autoscaler(min_replicas=1, max_replicas=2,
                                high_queue_per_replica=1000.0,
                                low_queue_per_replica=999.0,
                                check_interval_s=0.0,
                                scale_down_cooldown_s=0.0,
                                scale_up_cooldown_s=0.0)
        gateway = make_gateway(n_replicas=2, balancer=balancer,
                               autoscaler=autoscaler)
        pinned = gateway.replicas[0]
        balancer.pin("variant-00", pinned)
        balancer.choose("variant-01", gateway.replicas)   # learned home
        # both replicas idle -> the idle watermark triggers a scale-down;
        # the controller retires the pinned replica's peerless queue first
        action = autoscaler.control(gateway)
        assert action == "scale_down"
        drained = next(r for r in gateway.replicas + gateway.retired
                       if r.draining or r in gateway.retired)
        # whichever replica drained, no pin or home may reference it
        assert all(r is not drained
                   for r in balancer._pinned.values())
        assert all(r is not drained
                   for r in balancer._home.values())
        survivor = gateway.active_replicas()[0]
        for i in range(4):
            gateway.submit("variant-00", 32, 4)
            gateway.submit("variant-01", 32, 4)
        assert drained.unfinished == 0
        assert survivor.unfinished == 8
        result = gateway.run_until_drained()
        assert sorted(r.request_id for r in result.records) == \
            list(range(8))

    def test_lineage_pin_to_drained_replica_rehomes_under_load(self):
        """End-to-end: a replayed burst for a pinned variant keeps
        completing after its home replica drains mid-run."""
        mgr = make_manager()
        balancer = LineageAffinityBalancer()
        gateway = make_gateway(n_replicas=2, balancer=balancer, mgr=mgr)
        balancer.pin("variant-00", gateway.replicas[0])
        for i in range(6):
            gateway.submit("variant-00", 32, 4, arrival_s=float(i))
        gateway.step()
        gateway.drain_replica(gateway.replicas[0])
        for i in range(6, 12):
            gateway.submit("variant-00", 32, 4)
        result = gateway.run_until_drained()
        assert result.n_requests == 12
        # post-drain requests all served by the survivor
        by_replica = gateway.results_by_replica()
        survivor_records = [r for name, res in by_replica.items()
                            for r in res.records
                            if name == gateway.active_replicas()[0].name]
        assert {r.request_id for r in survivor_records} >= set(range(6, 12))

    def test_observes_frontier_not_max_replica_clock(self):
        """Regression: the controller observes at the kernel clock (the
        min-busy frontier).  Previously it read ``gateway.clock`` — the
        *most-advanced* replica — so one replica racing ahead would
        fast-forward the check-interval/cooldown clock: the controller
        stamped its sample at the runaway clock and then debounced every
        later check (frontier time minus that stamp stays negative),
        starving the watermark while real backlog piled up."""
        autoscaler = Autoscaler(min_replicas=1, max_replicas=4,
                                high_queue_per_replica=2.0,
                                low_queue_per_replica=0.5,
                                check_interval_s=2.0)
        gateway = make_gateway(n_replicas=2, autoscaler=autoscaler,
                               max_nodes=4)
        for i in range(12):
            gateway.submit(f"variant-{i % N_MODELS:02d}", 32, 8,
                           arrival_s=0.0)
        # replica 1 raced 5000 simulated seconds ahead (still busy); the
        # cluster frontier — the kernel clock — is still at 0
        gateway.replicas[1].engine.clock = 5000.0
        assert gateway.frontier == 0.0
        assert gateway.clock == 5000.0
        assert autoscaler.control(gateway) == "scale_up"
        assert autoscaler.history[-1].clock_s == 0.0   # frontier, not max
        # frontier advances past the check interval -> the controller
        # samples again instead of staying debounced behind the runaway
        gateway.replicas[0].engine.clock = 3.0
        autoscaler.control(gateway)
        assert len(autoscaler.history) == 2
        assert autoscaler.history[-1].clock_s == 3.0

    def test_autoscaler_attached_after_construction_still_ticks(self):
        """Regression: the tick schedule is seeded at construction/reset,
        so an autoscaler assigned to the public attribute afterwards must
        still get its first (immediately due) tick."""
        gateway = make_gateway(n_replicas=1, max_nodes=4)
        gateway.autoscaler = Autoscaler(
            min_replicas=1, max_replicas=4, high_queue_per_replica=2.0,
            low_queue_per_replica=0.5, check_interval_s=1.0,
            scale_up_cooldown_s=0.0)
        for i in range(16):
            gateway.submit(f"variant-{i % N_MODELS:02d}", 32, 8)
        gateway.run_until_drained()
        assert len(gateway.autoscaler.history) > 0
        assert any(s.action == "scale_up"
                   for s in gateway.autoscaler.history)

    def test_cooldown_limits_flapping(self):
        config = AutoscalerConfig(max_replicas=8, check_interval_s=1.0,
                                  scale_up_cooldown_s=1000.0)
        autoscaler = Autoscaler(config)
        gateway = make_gateway(n_replicas=1, autoscaler=autoscaler,
                               max_nodes=8)
        for i in range(64):
            gateway.submit(f"variant-{i % N_MODELS:02d}", 64, 16)
        gateway.run_until_drained()
        ups = sum(1 for s in autoscaler.history if s.action == "scale_up")
        assert ups <= 1  # cooldown blocks the second spawn


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def system(self, base_model, finetuned):
        from repro.core import DeltaZip
        dz = DeltaZip(base_model)
        dz.register_finetuned("review-ft", finetuned.model,
                              finetuned.calibration_tokens)
        return dz

    def test_with_replicas_builds_cluster_session(self, system):
        trace = synthetic_trace(3, rate=1.0, duration_s=20.0, seed=5)
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_engine_config(tp_degree=1)
                   .with_scheduler(max_batch_requests=8,
                                   max_concurrent_deltas=2)
                   .with_default_ratio(8.0)
                   .with_replicas(2, balancer="lineage")
                   .build())
        assert session.engine is None
        assert len(session.replicas) == 2
        result = session.replay(trace)
        assert result.n_requests == len(trace)
        assert result.config["balancer"] == "lineage"

    def test_with_autoscaler_builds_controller(self, system):
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_engine_config(tp_degree=1)
                   .with_default_ratio(8.0)
                   .with_autoscaler(max_replicas=3,
                                    high_queue_per_replica=2.0)
                   .build())
        gateway = session.gateway
        assert isinstance(gateway, ClusterGateway)
        assert gateway.autoscaler.config.max_replicas == 3
        session.submit("review-ft", 32, 4)
        result = session.run_until_drained()
        assert result.n_requests == 1

    def test_undersized_cluster_rejected(self, system):
        builder = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_cluster("a800", nodes=2, gpus=1)
                   .with_replicas(4))
        with pytest.raises(ValueError, match="cluster has 2 nodes"):
            builder.build()
