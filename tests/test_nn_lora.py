"""LoRA adapters: attach/detach/merge semantics and training behaviour."""

import numpy as np
import pytest

from repro.nn import (LoRAConfig, TrainingConfig, TransformerConfig,
                      TransformerModel, attach_lora, detach_lora, lora_nbytes,
                      merge_lora, train_lm)
from repro.nn.layers import Linear
from repro.nn.lora import LoRALinear


@pytest.fixture()
def model():
    return TransformerModel(TransformerConfig.tiny(), seed=0)


class TestAttachDetach:
    def test_attach_wraps_targets(self, model):
        wrapped = attach_lora(model, LoRAConfig(rank=2))
        assert len(wrapped) == 2 * model.config.n_layers  # q_proj, v_proj
        for block in model.layers:
            assert isinstance(block.self_attn.q_proj, LoRALinear)
            assert isinstance(block.self_attn.v_proj, LoRALinear)
            assert isinstance(block.self_attn.k_proj, Linear)

    def test_attach_freezes_base(self, model):
        attach_lora(model, LoRAConfig(rank=2))
        for name, param in model.named_parameters():
            if "lora_" in name:
                assert param.trainable
            else:
                assert not param.trainable

    def test_initial_adapter_is_identity(self, model, rng):
        toks = rng.integers(0, 128, size=(1, 6))
        before = model(toks)
        attach_lora(model, LoRAConfig(rank=4))
        after = model(toks)
        np.testing.assert_allclose(before, after, atol=1e-6)

    def test_double_attach_rejected(self, model):
        attach_lora(model, LoRAConfig(rank=2))
        with pytest.raises(ValueError):
            attach_lora(model, LoRAConfig(rank=2))

    def test_detach_restores_plain_linears(self, model, rng):
        toks = rng.integers(0, 128, size=(1, 6))
        before = model(toks)
        attach_lora(model, LoRAConfig(rank=2))
        adapter = detach_lora(model)
        after = model(toks)
        np.testing.assert_allclose(before, after, atol=1e-6)
        assert len(adapter.matrices) == 2 * model.config.n_layers
        assert all(p.trainable for p in model.parameters())

    def test_detach_without_attach_raises(self, model):
        with pytest.raises(ValueError):
            detach_lora(model)


class TestMerge:
    def test_merge_equals_adapter_forward(self, model, rng):
        attach_lora(model, LoRAConfig(rank=2), seed=1)
        # give the adapter a non-trivial B so it changes outputs
        for block in model.layers:
            block.self_attn.q_proj.lora_b.data[:] = \
                rng.normal(0, 0.05, size=block.self_attn.q_proj.lora_b.shape)
        toks = rng.integers(0, 128, size=(1, 6))
        with_adapter = model(toks)
        adapter = detach_lora(model)
        merged = TransformerModel(model.config, seed=0)
        merged.load_state_dict(model.state_dict())
        merge_lora(merged, adapter)
        np.testing.assert_allclose(with_adapter, merged(toks), atol=1e-5)

    def test_delta_weight_shape(self, model):
        attach_lora(model, LoRAConfig(rank=3))
        layer = model.layers[0].self_attn.q_proj
        assert layer.delta_weight().shape == (16 * 4, 16 * 4)


class TestTrainingBehaviour:
    def test_only_adapters_move(self, model):
        attach_lora(model, LoRAConfig(rank=2))
        base_before = model.layers[0].self_attn.q_proj.base.weight.data.copy()
        rng = np.random.default_rng(0)
        x = rng.integers(2, 30, size=(16, 8)).astype(np.int64)
        y = np.concatenate([x[:, 1:], np.full((16, 1), -100)], axis=1)
        train_lm(model, x, y, TrainingConfig(epochs=2, lr=1e-2))
        base_after = model.layers[0].self_attn.q_proj.base.weight.data
        np.testing.assert_array_equal(base_before, base_after)
        assert np.any(model.layers[0].self_attn.q_proj.lora_b.data != 0)

    def test_loss_decreases(self, model):
        attach_lora(model, LoRAConfig(rank=4))
        rng = np.random.default_rng(0)
        start = rng.integers(0, 8, size=(32, 1))
        x = ((start + np.arange(10)[None, :]) % 20 + 2).astype(np.int64)
        y = np.concatenate([x[:, 1:], np.full((32, 1), -100)], axis=1)
        hist = train_lm(model, x, y, TrainingConfig(epochs=6, lr=1e-2))
        assert hist[-1] < hist[0]


class TestAdapterArtifacts:
    def test_adapter_nbytes(self, model):
        attach_lora(model, LoRAConfig(rank=2))
        adapter = detach_lora(model)
        # per wrapped layer: A (2x64) + B (64x2) at 2 bytes
        expected = (2 * 64 + 64 * 2) * 2 * len(adapter.matrices)
        assert adapter.nbytes() == expected

    def test_lora_nbytes_analytic_matches(self, model):
        config = LoRAConfig(rank=2)
        attach_lora(model, config)
        adapter = detach_lora(model)
        analytic = lora_nbytes(model.config.dim, model.config.n_layers,
                               config, mlp_hidden=model.config.mlp_hidden)
        assert analytic == adapter.nbytes()

    def test_scaling_property(self):
        assert LoRAConfig(rank=8, alpha=16.0).scaling == 2.0
