"""Grouped-query attention: shapes, equivalence, training, serving."""

import numpy as np
import pytest

from repro.nn import (KVCache, MultiHeadAttention, TrainingConfig,
                      TransformerConfig, TransformerModel, train_lm)


@pytest.fixture()
def gqa_attn():
    return MultiHeadAttention(dim=16, n_heads=4, max_seq=32,
                              rng=np.random.default_rng(3), n_kv_heads=2)


class TestGQAAttention:
    def test_kv_projection_shapes(self, gqa_attn):
        assert gqa_attn.k_proj.out_features == 8   # 2 kv heads x head_dim 4
        assert gqa_attn.q_proj.out_features == 16
        assert gqa_attn.group_size == 2

    def test_forward_shape(self, gqa_attn, rng):
        x = rng.normal(size=(2, 5, 16)).astype(np.float32)
        assert gqa_attn(x).shape == (2, 5, 16)

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(16, 4, 8, np.random.default_rng(0),
                               n_kv_heads=3)

    def test_kv_equals_heads_matches_mha(self, rng):
        """n_kv_heads == n_heads must behave exactly like plain MHA."""
        a = MultiHeadAttention(16, 4, 32, np.random.default_rng(3))
        b = MultiHeadAttention(16, 4, 32, np.random.default_rng(3),
                               n_kv_heads=4)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        np.testing.assert_allclose(a(x), b(x), atol=1e-6)

    def test_gqa_equals_mha_with_duplicated_kv_weights(self, rng):
        """GQA with KV weights duplicated across groups == full MHA."""
        gqa = MultiHeadAttention(16, 4, 32, np.random.default_rng(7),
                                 n_kv_heads=2)
        mha = MultiHeadAttention(16, 4, 32, np.random.default_rng(7))
        mha.q_proj.weight.data = gqa.q_proj.weight.data.copy()
        mha.o_proj.weight.data = gqa.o_proj.weight.data.copy()
        # duplicate each kv head's rows for both query heads in its group
        for proj in ("k_proj", "v_proj"):
            w = getattr(gqa, proj).weight.data  # (8, 16): 2 heads x 4 dims
            per_head = w.reshape(2, 4, 16)
            dup = np.repeat(per_head, 2, axis=0).reshape(16, 16)
            getattr(mha, proj).weight.data = dup
        x = rng.normal(size=(1, 5, 16)).astype(np.float32)
        np.testing.assert_allclose(gqa(x), mha(x), atol=1e-5)

    def test_incremental_matches_full(self, gqa_attn, rng):
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        full = gqa_attn(x)
        cache = KVCache(1, 2, 32, 4)  # kv heads, not query heads
        outs = [gqa_attn(x[:, t:t + 1], kv_cache=cache) for t in range(6)]
        np.testing.assert_allclose(full, np.concatenate(outs, axis=1),
                                   atol=1e-4)

    def test_backward_matches_numeric(self, rng):
        attn = MultiHeadAttention(8, 4, 8, np.random.default_rng(5),
                                  n_kv_heads=2)
        x = rng.normal(size=(1, 3, 8)).astype(np.float64)
        grad_out = rng.normal(size=(1, 3, 8)).astype(np.float64)

        def loss():
            return float(np.sum(attn(x.astype(np.float32)) * grad_out))

        attn(x.astype(np.float32), cache=True)
        grad_x = attn.backward(grad_out.astype(np.float32))
        eps = 1e-3
        num = np.zeros_like(x)
        flat, nflat = x.reshape(-1), num.reshape(-1)
        for i in range(flat.size):
            old = flat[i]
            flat[i] = old + eps
            hi = loss()
            flat[i] = old - eps
            lo = loss()
            flat[i] = old
            nflat[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(grad_x, num, atol=2e-2, rtol=5e-2)


class TestGQAModel:
    def test_model_trains(self):
        config = TransformerConfig.tiny_gqa()
        model = TransformerModel(config, seed=0)
        rng = np.random.default_rng(0)
        start = rng.integers(0, 8, size=(48, 1))
        x = ((start + np.arange(12)[None, :]) % 20 + 2).astype(np.int64)
        y = np.concatenate([x[:, 1:], np.full((48, 1), -100)], axis=1)
        hist = train_lm(model, x, y, TrainingConfig(epochs=6, lr=3e-3))
        assert hist[-1] < hist[0] * 0.6

    def test_kv_cache_decode_matches_full(self, rng):
        model = TransformerModel(TransformerConfig.tiny_gqa(), seed=0)
        toks = rng.integers(0, 128, size=(1, 6))
        full = model(toks)
        caches = model.new_kv_caches(1)
        assert caches[0].keys.shape[1] == 2  # kv heads
        prefill = model(toks[:, :5], kv_caches=caches)
        step = model(toks[:, 5:6], kv_caches=caches)
        np.testing.assert_allclose(full[:, :5], prefill, atol=1e-4)
        np.testing.assert_allclose(full[:, 5:6], step, atol=1e-4)

    def test_compression_pipeline_handles_gqa(self, rng):
        """K/V projections are rectangular under GQA; the pipeline must
        compress them like any other linear."""
        from repro.compression import CompressionConfig, DeltaCompressor
        config = TransformerConfig.tiny_gqa()
        base = TransformerModel(config, seed=0)
        ft = TransformerModel(config, seed=0)
        ft.load_state_dict(base.state_dict())
        for param in ft.parameters():
            param.data = param.data + \
                rng.normal(0, 0.01, param.data.shape).astype(np.float32)
        calib = rng.integers(4, 100, size=(8, 12))
        art = DeltaCompressor(CompressionConfig.deltazip_4bit()).compress(
            ft, base.state_dict(), calib)
        k_layer = art.layers["layers.0.self_attn.k_proj.weight"]
        assert k_layer.shape == (32, 64)  # kv_dim x dim
        assert art.compression_ratio() > 2.0

    def test_decoupled_runner_serves_gqa(self, rng):
        from repro.compression import CompressionConfig, DeltaCompressor
        from repro.serving import DecoupledModelRunner
        config = TransformerConfig.tiny_gqa()
        base = TransformerModel(config, seed=0)
        ft = TransformerModel(config, seed=0)
        ft.load_state_dict(base.state_dict())
        for param in ft.parameters():
            param.data = param.data + \
                rng.normal(0, 0.01, param.data.shape).astype(np.float32)
        calib = rng.integers(4, 100, size=(8, 12))
        art = DeltaCompressor(CompressionConfig.deltazip_4bit()).compress(
            ft, base.state_dict(), calib)
        runner = DecoupledModelRunner(base, {"v": art})
        recon = TransformerModel(config, seed=0)
        recon.load_state_dict(art.to_state_dict(base.state_dict()))
        toks = rng.integers(4, 100, size=(2, 8))
        np.testing.assert_allclose(runner.forward(toks, ["v", "v"]),
                                   recon(toks), atol=1e-4)