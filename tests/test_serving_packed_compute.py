"""Packed-storage matmul: exact agreement with the dense reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import CompressionConfig, DeltaCompressor
from repro.serving.packed_compute import PackedDeltaLinear, packed_matmul


@pytest.fixture(scope="module")
def artifacts(finetuned, base_state):
    out = {"sparse4": DeltaCompressor(
        CompressionConfig.deltazip_4bit()).compress(
        finetuned.model, base_state, finetuned.calibration_tokens)}
    out["dense4"] = DeltaCompressor(
        CompressionConfig(bits=4, sparsity_n=0, group_size=32)).compress(
        finetuned.model, base_state, finetuned.calibration_tokens)
    out["awq"] = DeltaCompressor(CompressionConfig.awq_4bit()).compress(
        finetuned.model, base_state, finetuned.calibration_tokens)
    out["fp16"] = DeltaCompressor(
        CompressionConfig(bits=16, sparsity_n=2, sparsity_m=4)).compress(
        finetuned.model, base_state, finetuned.calibration_tokens)
    return out


LAYER = "layers.0.self_attn.q_proj.weight"
MLP_LAYER = "layers.1.mlp.down_proj.weight"


class TestPackedMatmul:
    @pytest.mark.parametrize("kind", ["sparse4", "dense4", "awq", "fp16"])
    @pytest.mark.parametrize("layer_name", [LAYER, MLP_LAYER])
    def test_matches_dense_path(self, artifacts, kind, layer_name, rng):
        layer = artifacts[kind].layers[layer_name]
        x = rng.normal(size=(5, layer.shape[1])).astype(np.float32)
        expected = x @ layer.dense().T
        np.testing.assert_allclose(packed_matmul(x, layer), expected,
                                   atol=1e-4)

    def test_shape_validation(self, artifacts, rng):
        layer = artifacts["sparse4"].layers[LAYER]
        with pytest.raises(ValueError):
            packed_matmul(rng.normal(size=(2, 3)).astype(np.float32), layer)

    @given(st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_batch_size_property(self, batch):
        """Any batch size agrees with the dense path (cached via module
        fixtures is not possible inside hypothesis, so build once)."""
        # small synthetic layer
        from repro.compression.packing import pack_nm_sparse
        from repro.compression.quant import fit_grid, quantize
        from repro.compression.sparsity import nm_mask
        from repro.compression.artifacts import CompressedLayer
        rng = np.random.default_rng(batch)
        w = rng.normal(0, 0.05, size=(6, 16)).astype(np.float32)
        mask = nm_mask(w, 2, 4)
        grid = fit_grid(w, 4, 8, mask=mask)
        codes = quantize(w, grid)
        codes[~mask] = 0
        config = CompressionConfig(bits=4, group_size=8)
        layer = CompressedLayer(
            name="w", shape=w.shape, config=config,
            packed_sparse=pack_nm_sparse(codes, mask, 4, 2, 4), grid=grid)
        x = rng.normal(size=(batch, 16)).astype(np.float32)
        np.testing.assert_allclose(packed_matmul(x, layer),
                                   x @ layer.dense().T, atol=1e-4)


class TestPackedDeltaLinear:
    def test_base_plus_delta(self, artifacts, base_state, rng):
        layer = artifacts["sparse4"].layers[LAYER]
        base_w = base_state[LAYER]
        op = PackedDeltaLinear(base_w, layer)
        x = rng.normal(size=(3, base_w.shape[1])).astype(np.float32)
        expected = x @ (base_w + layer.dense()).T
        np.testing.assert_allclose(op(x), expected, atol=1e-4)

    def test_no_delta_is_base_only(self, base_state, rng):
        base_w = base_state[LAYER]
        op = PackedDeltaLinear(base_w)
        x = rng.normal(size=(2, base_w.shape[1])).astype(np.float32)
        np.testing.assert_allclose(op(x), x @ base_w.T, atol=1e-5)

    def test_shape_mismatch_rejected(self, artifacts, base_state):
        layer = artifacts["sparse4"].layers[LAYER]
        with pytest.raises(ValueError):
            PackedDeltaLinear(np.zeros((2, 2), dtype=np.float32), layer)
