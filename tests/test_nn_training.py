"""Optimizers and the training loop."""

import numpy as np
import pytest

from repro.nn.tensoring import Parameter
from repro.nn.training import (Adam, SGD, TrainingConfig, iterate_minibatches,
                               train_lm)
from repro.nn.transformer import TransformerConfig, TransformerModel


class TestSGD:
    def test_step_direction(self):
        p = Parameter(np.array([1.0, 2.0], dtype=np.float32))
        p.grad = np.array([0.5, -0.5], dtype=np.float32)
        SGD([p], lr=0.1, clip_norm=None).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05], atol=1e-6)

    def test_skips_frozen(self):
        p = Parameter(np.ones(2, dtype=np.float32), trainable=False)
        p.grad = np.ones(2, dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.step()
        np.testing.assert_array_equal(p.data, 1.0)

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        SGD([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, 1.0)

    def test_clipping_bounds_update(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 100.0, dtype=np.float32)
        SGD([p], lr=1.0, clip_norm=1.0).step()
        assert np.linalg.norm(p.data) <= 1.0 + 1e-5


class TestAdam:
    def test_converges_on_quadratic(self):
        """Minimize ||x - target||^2 — Adam should get close quickly."""
        target = np.array([3.0, -2.0], dtype=np.float32)
        p = Parameter(np.zeros(2, dtype=np.float32))
        opt = Adam([p], lr=0.1, clip_norm=None)
        for _ in range(300):
            opt.zero_grad()
            p.grad = 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        p.grad = np.array([1.0], dtype=np.float32)
        Adam([p], lr=0.1, clip_norm=None).step()
        # with bias correction the first step magnitude is ~lr
        assert abs(p.data[0] + 0.1) < 1e-4

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([10.0], dtype=np.float32))
        opt = Adam([p], lr=0.05, weight_decay=0.5, clip_norm=None)
        for _ in range(600):
            opt.zero_grad()
            p.grad = np.zeros(1, dtype=np.float32)
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_zero_grad(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.ones(2, dtype=np.float32)
        opt = Adam([p])
        opt.zero_grad()
        assert p.grad is None


class TestMinibatches:
    def test_partitions_all_examples(self, rng):
        x = np.arange(10)[:, None]
        y = np.arange(10)[:, None]
        seen = []
        for bx, _ in iterate_minibatches(x, y, 3, rng):
            seen.extend(bx[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_size_respected(self, rng):
        x = np.arange(10)[:, None]
        sizes = [bx.shape[0]
                 for bx, _ in iterate_minibatches(x, x, 4, rng)]
        assert sizes == [4, 4, 2]

    def test_inputs_targets_aligned(self, rng):
        x = np.arange(8)[:, None]
        y = x * 10
        for bx, by in iterate_minibatches(x, y, 3, rng):
            np.testing.assert_array_equal(by, bx * 10)


class TestTrainLM:
    def test_unknown_optimizer_rejected(self):
        model = TransformerModel(TransformerConfig.tiny(), seed=0)
        x = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(ValueError):
            train_lm(model, x, x, TrainingConfig(optimizer="rmsprop"))

    def test_callback_invoked_per_epoch(self):
        model = TransformerModel(TransformerConfig.tiny(), seed=0)
        x = np.ones((8, 4), dtype=np.int64)
        calls = []
        train_lm(model, x, x, TrainingConfig(epochs=3, batch_size=4),
                 callback=lambda e, l: calls.append(e))
        assert calls == [0, 1, 2]

    def test_history_length(self):
        model = TransformerModel(TransformerConfig.tiny(), seed=0)
        x = np.ones((8, 4), dtype=np.int64)
        hist = train_lm(model, x, x, TrainingConfig(epochs=4, batch_size=4))
        assert len(hist) == 4
