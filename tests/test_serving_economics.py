"""Deployment economics: pricing math and the shared-vs-dedicated frontier."""

import pytest

from repro.hardware import A800, RTX3090
from repro.serving.economics import (GPU_HOURLY_USD, compare_deployments,
                                     cost_per_tenant, deployment_cost)
from repro.serving.metrics import ServingResult
from repro.serving.tenancy import TenantAdmissionStats
from tests.test_serving_metrics import record


def make_result(n=10, makespan=3600.0):
    records = [record(rid=i, arrival=0.0, first=1.0, finish=5.0)
               for i in range(n)]
    return ServingResult(engine="deltazip", records=records,
                         makespan_s=makespan)


class TestDeploymentCost:
    def test_hourly_pricing(self):
        res = make_result(n=1000, makespan=3600.0)
        cost = deployment_cost(res, A800, n_gpus=4)
        assert cost.gpu_hours == pytest.approx(4.0)
        assert cost.total_usd == pytest.approx(4 * GPU_HOURLY_USD["A800-80G"])
        assert cost.usd_per_1k_requests == pytest.approx(cost.total_usd)

    def test_wall_seconds_override(self):
        res = make_result(n=10, makespan=100.0)
        cost = deployment_cost(res, A800, n_gpus=2, wall_seconds=7200.0)
        assert cost.gpu_hours == pytest.approx(4.0)

    def test_unknown_gpu_rejected(self):
        from dataclasses import replace
        res = make_result()
        exotic = replace(A800, name="H200-141G")
        with pytest.raises(KeyError):
            deployment_cost(res, exotic, n_gpus=1)

    def test_3090_cheaper_than_a800(self):
        res = make_result(n=100, makespan=3600.0)
        a = deployment_cost(res, A800, n_gpus=1)
        b = deployment_cost(res, RTX3090, n_gpus=1)
        assert b.total_usd < a.total_usd

    def test_row_renders(self):
        res = make_result()
        row = deployment_cost(res, A800, n_gpus=4, system="x").row()
        assert "x" in row and "GPU-h" in row


class TestCostPerTenant:
    def cost(self, total_hours=1.0):
        res = make_result(n=100, makespan=3600.0 * total_hours)
        return deployment_cost(res, A800, n_gpus=1)

    def test_splits_proportionally_to_tokens(self):
        cost = self.cost()
        bill = cost_per_tenant(cost, {"a": 300.0, "b": 100.0})
        assert bill["a"] == pytest.approx(0.75 * cost.total_usd)
        assert bill["b"] == pytest.approx(0.25 * cost.total_usd)
        assert sum(bill.values()) == pytest.approx(cost.total_usd)

    def test_accepts_admission_stats_objects(self):
        cost = self.cost()
        stats = {"gold": TenantAdmissionStats("gold", tokens_charged=900.0),
                 "free": TenantAdmissionStats("free", tokens_charged=100.0)}
        bill = cost_per_tenant(cost, stats)
        assert bill["gold"] == pytest.approx(0.9 * cost.total_usd)
        assert bill["free"] == pytest.approx(0.1 * cost.total_usd)

    def test_zero_usage_splits_evenly(self):
        cost = self.cost()
        bill = cost_per_tenant(cost, {"a": 0.0, "b": 0.0})
        assert bill["a"] == bill["b"] == pytest.approx(cost.total_usd / 2)

    def test_empty_tenants(self):
        assert cost_per_tenant(self.cost(), {}) == {}

    def test_unmetered_tenant_owes_nothing(self):
        cost = self.cost()
        bill = cost_per_tenant(cost, {"busy": 500.0, "idle": 0.0})
        assert bill["idle"] == 0.0
        assert bill["busy"] == pytest.approx(cost.total_usd)


class TestComparison:
    def test_factors(self):
        res_shared = make_result(n=100, makespan=3600.0)
        res_dedicated = make_result(n=100, makespan=3600.0)
        shared = deployment_cost(res_shared, A800, n_gpus=4,
                                 system="deltazip")
        dedicated = deployment_cost(res_dedicated, A800, n_gpus=64,
                                    system="dedicated")
        cmp = compare_deployments(shared, dedicated)
        assert cmp["gpu_reduction_factor"] == pytest.approx(16.0)
        assert cmp["cost_saving_factor"] == pytest.approx(16.0)
        assert cmp["latency_penalty_factor"] == pytest.approx(1.0)
