"""Deployment economics: pricing math and the shared-vs-dedicated frontier."""

import pytest

from repro.hardware import A800, RTX3090
from repro.serving.economics import (GPU_HOURLY_USD, compare_deployments,
                                     deployment_cost)
from repro.serving.metrics import ServingResult
from tests.test_serving_metrics import record


def make_result(n=10, makespan=3600.0):
    records = [record(rid=i, arrival=0.0, first=1.0, finish=5.0)
               for i in range(n)]
    return ServingResult(engine="deltazip", records=records,
                         makespan_s=makespan)


class TestDeploymentCost:
    def test_hourly_pricing(self):
        res = make_result(n=1000, makespan=3600.0)
        cost = deployment_cost(res, A800, n_gpus=4)
        assert cost.gpu_hours == pytest.approx(4.0)
        assert cost.total_usd == pytest.approx(4 * GPU_HOURLY_USD["A800-80G"])
        assert cost.usd_per_1k_requests == pytest.approx(cost.total_usd)

    def test_wall_seconds_override(self):
        res = make_result(n=10, makespan=100.0)
        cost = deployment_cost(res, A800, n_gpus=2, wall_seconds=7200.0)
        assert cost.gpu_hours == pytest.approx(4.0)

    def test_unknown_gpu_rejected(self):
        from dataclasses import replace
        res = make_result()
        exotic = replace(A800, name="H200-141G")
        with pytest.raises(KeyError):
            deployment_cost(res, exotic, n_gpus=1)

    def test_3090_cheaper_than_a800(self):
        res = make_result(n=100, makespan=3600.0)
        a = deployment_cost(res, A800, n_gpus=1)
        b = deployment_cost(res, RTX3090, n_gpus=1)
        assert b.total_usd < a.total_usd

    def test_row_renders(self):
        res = make_result()
        row = deployment_cost(res, A800, n_gpus=4, system="x").row()
        assert "x" in row and "GPU-h" in row


class TestComparison:
    def test_factors(self):
        res_shared = make_result(n=100, makespan=3600.0)
        res_dedicated = make_result(n=100, makespan=3600.0)
        shared = deployment_cost(res_shared, A800, n_gpus=4,
                                 system="deltazip")
        dedicated = deployment_cost(res_dedicated, A800, n_gpus=64,
                                    system="dedicated")
        cmp = compare_deployments(shared, dedicated)
        assert cmp["gpu_reduction_factor"] == pytest.approx(16.0)
        assert cmp["cost_saving_factor"] == pytest.approx(16.0)
        assert cmp["latency_penalty_factor"] == pytest.approx(1.0)
