"""Multi-tenant admission control: buckets, VTC fair queueing, shedding."""

import numpy as np
import pytest

from repro.cli import main
from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (AdmissionController, AdmissionDecision,
                           ClusterGateway, DEFAULT_TENANT, EngineConfig,
                           LLAMA_7B, ModelManager, SchedulerConfig,
                           ServingGateway, SLO_CLASSES, Tenant,
                           TenantGateway, TokenBucket, create_engine)
from repro.workload import TenantWorkload, multi_tenant_trace, synthetic_trace
from repro.workload.spec import TraceRequest

N_MODELS = 6


def make_manager(model_ids=None, ratio=8.0):
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for m in model_ids or [f"variant-{i:02d}" for i in range(N_MODELS)]:
        mgr.register_delta(m, "base", ratio)
    return mgr


def make_gateway(mgr=None, k=8, n_deltas=4):
    mgr = mgr or make_manager()
    engine = create_engine(
        "deltazip", mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=k,
                                         max_concurrent_deltas=n_deltas),
        engine_config=EngineConfig(tp_degree=1))
    return ServingGateway(engine)


def make_cluster_gateway(mgr=None, n_replicas=2, **kwargs):
    mgr = mgr or make_manager()

    def factory(node):
        engine_mgr = mgr
        return create_engine(
            "deltazip", engine_mgr,
            node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=EngineConfig(tp_degree=1))

    return ClusterGateway(engine_factory=factory,
                          cluster=Cluster.from_name("a800", n_replicas, 1),
                          n_replicas=n_replicas, **kwargs)


def overload_trace(duration_s=60.0, seed=11):
    """One aggressive tenant drowning two light ones."""
    return multi_tenant_trace(
        [TenantWorkload("agg", rate=5.0, n_models=2),
         TenantWorkload("gold", rate=0.3, n_models=2),
         TenantWorkload("silver", rate=0.3, n_models=2)],
        duration_s=duration_s, seed=seed)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s)


# --------------------------------------------------------------------------- #
class TestTenant:
    def test_defaults_are_unthrottled(self):
        t = Tenant("t")
        assert t.unthrottled
        assert t.weight == 1.0
        assert t.slo_s == SLO_CLASSES["standard"]

    def test_slo_resolution(self):
        assert Tenant("t", slo_class="interactive").slo_s == \
            SLO_CLASSES["interactive"]
        assert Tenant("t", slo_class="batch", ttft_slo_s=7.5).slo_s == 7.5

    def test_burst_defaults_to_four_seconds_of_rate(self):
        assert Tenant("t", rate_tokens_per_s=50.0).resolved_burst() == 200.0
        assert Tenant("t").resolved_burst() is None

    def test_renamed_keeps_contract(self):
        t = Tenant("a", weight=3.0, rate_tokens_per_s=10.0,
                   max_outstanding=4)
        r = t.renamed("b")
        assert r.tenant_id == "b"
        assert (r.weight, r.rate_tokens_per_s, r.max_outstanding) == \
            (3.0, 10.0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tenant("")
        with pytest.raises(ValueError):
            Tenant("t", weight=0.0)
        with pytest.raises(ValueError):
            Tenant("t", slo_class="platinum")
        with pytest.raises(ValueError):
            Tenant("t", rate_tokens_per_s=0.0)
        with pytest.raises(ValueError):
            Tenant("t", burst_tokens=10.0)   # burst without rate
        with pytest.raises(ValueError):
            Tenant("t", max_outstanding=0)


class TestTokenBucket:
    def test_starts_full_and_charges(self):
        bucket = TokenBucket(rate=10.0, burst=100.0)
        assert bucket.charge(60.0, now=0.0) == 0.0
        assert bucket.tokens == pytest.approx(40.0)

    def test_refills_with_time_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=100.0)
        bucket.charge(100.0, now=0.0)
        assert bucket.eligible_at(50.0, now=2.0) == pytest.approx(5.0)
        bucket.charge(50.0, now=1000.0)   # long idle: capped at burst
        assert bucket.tokens == pytest.approx(50.0)

    def test_borrow_ahead_serializes_deferrals(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        first = bucket.charge(30.0, now=0.0)    # needs 20 more tokens
        second = bucket.charge(30.0, now=0.0)   # queues behind the first
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(5.0)

    def test_clock_never_rewinds(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        bucket.charge(10.0, now=5.0)
        assert bucket.charge(5.0, now=1.0) == pytest.approx(5.5)

    def test_refund_restores_up_to_burst(self):
        bucket = TokenBucket(rate=1.0, burst=10.0)
        bucket.charge(6.0, now=0.0)
        bucket.refund(100.0)
        assert bucket.tokens == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


def req(rid, tenant=None, arrival=0.0, prompt=32, output=16, model="m"):
    return TraceRequest(request_id=rid, model_id=model, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output,
                        tenant_id=tenant)


class TestAdmissionController:
    def test_passthrough_detection(self):
        assert AdmissionController().passthrough
        assert not AdmissionController(policy="vtc").passthrough
        assert not AdmissionController(shed=True).passthrough
        assert not AdmissionController(engine_queue_depth=4).passthrough
        assert not AdmissionController(
            tenants=[Tenant("t", max_outstanding=1)]).passthrough
        assert not AdmissionController(
            default_tenant=Tenant("d", rate_tokens_per_s=1.0)).passthrough

    def test_unknown_tenants_autoregister_from_template(self):
        controller = AdmissionController(
            default_tenant=Tenant("d", max_outstanding=3))
        tenant = controller.tenant("newcomer")
        assert tenant.tenant_id == "newcomer"
        assert tenant.max_outstanding == 3
        assert controller.tenant(None).tenant_id == DEFAULT_TENANT

    def test_duplicate_registration_rejected(self):
        controller = AdmissionController(tenants=[Tenant("a")])
        with pytest.raises(ValueError, match="duplicate"):
            controller.register(Tenant("a"))

    def test_quota_rejects_when_loaded(self):
        controller = AdmissionController(
            tenants=[Tenant("q", max_outstanding=1)])
        assert controller.offer(req(0, "q")) is AdmissionDecision.ADMITTED
        assert controller.offer(req(1, "q")) is AdmissionDecision.REJECTED
        assert controller.stats["q"].rejected == 1

    def test_bucket_defers_and_bounded_defer_rejects(self):
        tenants = [Tenant("m", rate_tokens_per_s=10.0, burst_tokens=50.0)]
        controller = AdmissionController(tenants=tenants)
        # 48 tokens fits the burst; the next 48 must wait on refill
        assert controller.offer(req(0, "m")) is AdmissionDecision.ADMITTED
        assert controller.offer(req(1, "m")) is AdmissionDecision.DEFERRED
        bounded = AdmissionController(tenants=tenants, max_defer_s=1.0)
        assert bounded.offer(req(0, "m")) is AdmissionDecision.ADMITTED
        assert bounded.offer(req(1, "m")) is AdmissionDecision.REJECTED

    def test_shed_compares_prediction_to_tenant_slo(self):
        controller = AdmissionController(shed=True)
        t = Tenant("s", slo_class="interactive")
        controller.register(t)
        ok = controller.offer(req(0, "s"), predicted_ttft_s=5.0)
        dropped = controller.offer(req(1, "s"),
                                   predicted_ttft_s=t.slo_s + 1.0)
        assert ok is AdmissionDecision.ADMITTED
        assert dropped is AdmissionDecision.SHED
        # without a prediction (cold start) nothing is shed
        assert controller.offer(req(2, "s")) is AdmissionDecision.ADMITTED

    def test_fcfs_releases_in_arrival_order(self):
        controller = AdmissionController()
        controller.offer(req(1, arrival=2.0))
        controller.offer(req(0, arrival=1.0))
        assert controller.pop(10.0).request_id == 0
        assert controller.pop(10.0).request_id == 1
        assert controller.pop(10.0) is None

    def test_fcfs_respects_eligibility(self):
        controller = AdmissionController(
            tenants=[Tenant("m", rate_tokens_per_s=10.0, burst_tokens=48.0)])
        controller.offer(req(0, "m", arrival=0.0))   # eligible at 0
        controller.offer(req(1, "m", arrival=0.0))   # deferred to 4.8
        assert controller.pop(0.0).request_id == 0
        assert controller.pop(0.0) is None
        assert controller.next_eligible_s() == pytest.approx(4.8)
        assert controller.pop(5.0).request_id == 1

    def test_vtc_picks_min_counter_and_charges_by_weight(self):
        controller = AdmissionController(policy="vtc",
                                         tenants=[Tenant("a"),
                                                  Tenant("b", weight=2.0)])
        for i in range(4):
            controller.offer(req(2 * i, "a", arrival=0.0))
            controller.offer(req(2 * i + 1, "b", arrival=0.0))
        order = [controller.pop(0.0) for _ in range(8)]
        tenants = [r.tenant_id for r in order]
        # b is double-weighted: after both serve once (counters 48 vs 24),
        # b runs ahead — strictly more b than a in the first half
        assert tenants[0] == "a"                  # ties break by id
        assert tenants[1] == "b"
        first_half = tenants[:4]
        assert first_half.count("b") >= first_half.count("a")
        counters = controller.counters()
        assert counters["a"] == pytest.approx(4 * 48.0)
        assert counters["b"] == pytest.approx(4 * 48.0 / 2.0)

    def test_vtc_counter_lift_prevents_banked_idle_credit(self):
        """Regression: the lift must use the *active* tenants' counter
        floor (the returning tenant's own zero counter excluded) — a
        long-idle tenant re-enters at parity, alternating with the busy
        tenant, instead of cashing its banked credit to monopolize."""
        controller = AdmissionController(policy="vtc",
                                         tenants=[Tenant("busy"),
                                                  Tenant("idle")])
        for i in range(10):
            controller.offer(req(i, "busy"))
            controller.pop(0.0)
        assert controller.counters()["busy"] == pytest.approx(480.0)
        for i in range(4):
            controller.offer(req(100 + i, "idle"))
            controller.offer(req(200 + i, "busy"))
        assert controller.counters()["idle"] == pytest.approx(480.0)
        order = [controller.pop(0.0).tenant_id for _ in range(8)]
        assert order == ["busy", "idle"] * 4   # parity, not capture

    def test_vtc_counter_lift_noop_without_active_tenants(self):
        controller = AdmissionController(policy="vtc",
                                         tenants=[Tenant("only")])
        controller.offer(req(0, "only"))
        assert controller.counters()["only"] == 0.0

    def test_on_complete_frees_inflight(self):
        controller = AdmissionController(
            tenants=[Tenant("q", max_outstanding=1)])
        controller.offer(req(0, "q"))
        request = controller.pop(0.0)
        assert controller.load_of("q") == 1
        record = type("R", (), {"tenant_id": "q"})()
        controller.on_complete(record)
        assert controller.load_of("q") == 0
        assert controller.offer(req(1, "q")) is AdmissionDecision.ADMITTED
        assert request.request_id == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(policy="lifo")
        with pytest.raises(ValueError):
            AdmissionController(engine_queue_depth=0)


# --------------------------------------------------------------------------- #
class TestTenantGatewayPassthrough:
    def test_untenanted_replay_identical_to_plain_gateway(self):
        """Acceptance: default tenant + FCFS admission replays any
        existing trace bit-identically to ServingGateway.replay."""
        trace = synthetic_trace(N_MODELS, rate=1.5, duration_s=40.0, seed=3)
        mgr = make_manager()
        plain = make_gateway(mgr).replay(trace)
        admitted = TenantGateway(make_gateway(mgr)).replay(trace)
        assert [record_key(r) for r in plain.records] == \
            [record_key(r) for r in admitted.records]
        assert plain.makespan_s == admitted.makespan_s

    def test_untenanted_replay_identical_through_cluster(self):
        trace = synthetic_trace(N_MODELS, rate=3.0, duration_s=40.0, seed=9)
        mgr = make_manager()
        plain = make_cluster_gateway(mgr).replay(trace)
        admitted = TenantGateway(make_cluster_gateway(mgr)).replay(trace)
        assert [record_key(r) for r in plain.records] == \
            [record_key(r) for r in admitted.records]

    def test_repeated_replay_is_deterministic(self):
        trace = overload_trace(duration_s=20.0)
        gateway = TenantGateway(make_gateway(make_manager(trace.model_ids)),
                                policy="vtc", shed=True)
        first = gateway.replay(trace)
        second = gateway.replay(trace)
        assert [record_key(r) for r in first.records] == \
            [record_key(r) for r in second.records]


class TestTenantGatewayPolicies:
    def test_records_carry_tenant_ids(self):
        trace = overload_trace(duration_s=15.0)
        gateway = TenantGateway(make_gateway(make_manager(trace.model_ids)))
        result = gateway.replay(trace)
        assert result.n_requests == len(trace)
        assert {r.tenant_id for r in result.records} == \
            {"agg", "gold", "silver"}

    def test_vtc_protects_light_tenants_under_overload(self):
        """Acceptance: light-tenant latency improves under VTC vs FCFS
        while the same number of requests completes."""
        trace = overload_trace()
        results = {}
        for policy in ("fcfs", "vtc"):
            gateway = TenantGateway(
                make_gateway(make_manager(trace.model_ids)), policy=policy)
            results[policy] = gateway.replay(trace)
            assert results[policy].n_requests == len(trace)
        for light in ("gold", "silver"):
            fcfs_p90 = results["fcfs"].for_tenant(light).percentile_ttft_s(90)
            vtc_p90 = results["vtc"].for_tenant(light).percentile_ttft_s(90)
            assert vtc_p90 < fcfs_p90

    def test_shed_drops_aggressor_not_light_tenants(self):
        trace = overload_trace()
        gateway = TenantGateway(
            make_gateway(make_manager(trace.model_ids)),
            tenants=[Tenant("agg", slo_class="batch", ttft_slo_s=40.0),
                     Tenant("gold", slo_class="interactive"),
                     Tenant("silver", slo_class="standard")],
            policy="vtc", shed=True)
        result = gateway.replay(trace)
        stats = gateway.controller.stats
        assert stats["agg"].shed > 0
        assert stats["gold"].shed == 0
        assert stats["silver"].shed == 0
        assert result.n_requests == len(trace) - stats["agg"].shed
        assert result.config["admission"]["shed_requests"] == \
            stats["agg"].shed

    def test_token_bucket_defers_excess_arrival_rate(self):
        """A metered tenant's admissions are paced at the bucket rate, so
        its e2e latency inflates by admission wait."""
        trace = synthetic_trace(2, rate=2.0, duration_s=20.0, seed=1)
        for r in trace.requests:
            r.tenant_id = "metered"
        model_ids = trace.model_ids
        free = TenantGateway(make_gateway(make_manager(model_ids)))
        free_result = free.replay(trace)
        metered = TenantGateway(
            make_gateway(make_manager(model_ids)),
            tenants=[Tenant("metered", rate_tokens_per_s=40.0,
                            burst_tokens=300.0)])
        metered_result = metered.replay(trace)
        stats = metered.controller.stats["metered"]
        assert stats.deferred > 0
        assert metered_result.n_requests == len(trace)
        assert metered_result.mean_e2e_latency_s() > \
            free_result.mean_e2e_latency_s()

    def test_online_quota_and_decisions(self):
        gateway = TenantGateway(make_gateway(),
                                tenants=[Tenant("q", max_outstanding=2)])
        ids = [gateway.submit("variant-00", 32, 8, tenant_id="q")
               for _ in range(4)]
        decisions = [gateway.decision(i) for i in ids]
        assert decisions[:2] == [AdmissionDecision.ADMITTED] * 2
        assert decisions[2:] == [AdmissionDecision.REJECTED] * 2
        result = gateway.run_until_drained()
        assert result.n_requests == 2
        assert gateway.unfinished == 0

    def test_deferred_online_requests_complete_after_refill(self):
        gateway = TenantGateway(
            make_gateway(),
            tenants=[Tenant("m", rate_tokens_per_s=20.0,
                            burst_tokens=50.0)])
        for _ in range(3):
            gateway.submit("variant-00", 32, 16, tenant_id="m")
        stats = gateway.controller.stats["m"]
        assert stats.deferred >= 1
        result = gateway.run_until_drained()
        assert result.n_requests == 3     # deferral delays, never drops

    def test_submit_validates_lengths(self):
        gateway = TenantGateway(make_gateway())
        with pytest.raises(ValueError):
            gateway.submit("variant-00", 0, 8)

    def test_controller_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError):
            TenantGateway(make_gateway(),
                          controller=AdmissionController(),
                          policy="vtc")

    def test_cluster_inner_with_vtc_serves_everything(self):
        trace = overload_trace(duration_s=30.0)
        gateway = TenantGateway(
            make_cluster_gateway(make_manager(trace.model_ids)),
            policy="vtc")
        result = gateway.replay(trace)
        assert result.n_requests == len(trace)
        assert sorted(r.request_id for r in result.records) == \
            list(range(len(trace)))


class TestAdmissionAwareAutoscaling:
    def make_autoscaled_cluster(self, autoscaler):
        from repro.serving import create_engine as mk

        mgr = make_manager()

        def factory(node):
            return mk("deltazip", mgr,
                      node or GPUNode(node_from_name("a800", 1)),
                      scheduler_config=SchedulerConfig(
                          max_batch_requests=8, max_concurrent_deltas=4),
                      engine_config=EngineConfig(tp_degree=1))

        return ClusterGateway(engine_factory=factory,
                              cluster=Cluster.from_name("a800", 2, 1),
                              n_replicas=1, autoscaler=autoscaler)

    def test_frontier_held_load_drives_scale_up(self):
        """ROADMAP follow-on: requests held at the admission frontier
        count as offered load, so the cluster scales *before* shedding
        kicks in — previously the autoscaler saw only engine backlog and
        a tight engine_queue_depth made overload invisible to it."""
        from repro.serving import Autoscaler

        autoscaler = Autoscaler(min_replicas=1, max_replicas=2,
                                high_queue_per_replica=4.0,
                                low_queue_per_replica=1.0)
        inner = self.make_autoscaled_cluster(autoscaler)
        gateway = TenantGateway(inner, engine_queue_depth=1)
        for _ in range(32):
            gateway.submit("variant-00", 32, 8, tenant_id="t",
                           arrival_s=0.0)
        # the frontier holds everything beyond the shallow engine queue
        assert inner.admission_queued == gateway.controller.total_queued
        assert inner.admission_queued >= 30
        assert inner.backlog <= 1                 # engines can't see it
        assert autoscaler.control(inner) == "scale_up"
        result = gateway.run_until_drained()
        assert result.n_requests == 32

    def test_engine_only_backlog_does_not_scale(self):
        """Control case: same offered load with no admission layer held
        at the engines is already visible — but with the shallow frontier
        queue and *no* probe, the old signal would have seen backlog 1."""
        from repro.serving import Autoscaler

        autoscaler = Autoscaler(min_replicas=1, max_replicas=2,
                                high_queue_per_replica=4.0,
                                low_queue_per_replica=1.0)
        inner = self.make_autoscaled_cluster(autoscaler)
        assert inner.admission_queued == 0        # no probe attached
        for _ in range(2):
            inner.submit("variant-00", 32, 8, arrival_s=0.0)
        assert autoscaler.control(inner) is None  # under the watermark


class TestPerTenantBilling:
    def test_tokens_charged_meters_every_accepted_request(self):
        controller = AdmissionController()
        controller.offer(req(0, "a", prompt=100, output=50))
        controller.offer(req(1, "b", prompt=10, output=5))
        assert controller.stats["a"].tokens_charged == 150.0
        assert controller.stats["b"].tokens_charged == 15.0

    def test_billing_splits_deployment_cost_by_tokens(self):
        from repro.hardware import A800
        from repro.serving import cost_per_tenant, deployment_cost

        trace = overload_trace(duration_s=20.0)
        gateway = TenantGateway(make_gateway(make_manager(trace.model_ids)))
        result = gateway.replay(trace)
        bill = gateway.billing(A800, n_gpus=1)
        stats = gateway.controller.stats
        assert set(bill) == {"agg", "gold", "silver"}
        total = deployment_cost(result, A800, 1).total_usd
        assert sum(bill.values()) == pytest.approx(total)
        # proportionality: agg pushed the most tokens, pays the most
        tokens = {t: s.tokens_charged for t, s in stats.items()}
        assert bill["agg"] > bill["gold"] and bill["agg"] > bill["silver"]
        for t in bill:
            assert bill[t] == pytest.approx(
                total * tokens[t] / sum(tokens.values()))


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def system(self, base_model, finetuned):
        from repro.core import DeltaZip
        dz = DeltaZip(base_model)
        dz.register_finetuned("review-ft", finetuned.model,
                              finetuned.calibration_tokens)
        return dz

    def test_with_tenants_and_admission_builds_tenant_gateway(self, system):
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_engine_config(tp_degree=1)
                   .with_default_ratio(8.0)
                   .with_tenants(Tenant("gold", weight=2.0),
                                 Tenant("free", max_outstanding=2))
                   .with_admission(policy="vtc")
                   .build())
        assert isinstance(session.gateway, TenantGateway)
        assert session.admission is not None
        assert set(session.admission.tenants) == {"gold", "free"}
        assert session.engine is not None   # unwraps to the inner gateway
        rid = session.submit("review-ft", 32, 8, tenant_id="gold")
        result = session.run_until_drained()
        assert result.n_requests == 1
        assert result.records[0].tenant_id == "gold"
        assert session.gateway.decision(rid) is AdmissionDecision.ADMITTED

    def test_repeated_build_with_explicit_controller(self, system):
        """Regression: build() must not re-register the builder's tenants
        into a user-supplied controller a second time."""
        builder = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_engine_config(tp_degree=1)
                   .with_default_ratio(8.0)
                   .with_tenants(Tenant("a"))
                   .with_admission(AdmissionController(policy="vtc")))
        first = builder.build()
        second = builder.build()
        assert first.admission is second.admission
        assert set(second.admission.tenants) == {"a"}

    def test_tenants_imply_admission_layer(self, system):
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_engine_config(tp_degree=1)
                   .with_default_ratio(8.0)
                   .with_tenants(Tenant("only"))
                   .build())
        assert isinstance(session.gateway, TenantGateway)
        assert session.admission.policy == "fcfs"

    def test_admission_over_replicas(self, system):
        trace = synthetic_trace(3, rate=1.0, duration_s=15.0, seed=5)
        session = (system.session("deltazip", served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .with_engine_config(tp_degree=1)
                   .with_default_ratio(8.0)
                   .with_replicas(2)
                   .with_admission(policy="vtc")
                   .build())
        assert isinstance(session.gateway, TenantGateway)
        assert len(session.replicas) == 2
        result = session.replay(trace)
        assert result.n_requests == len(trace)


class TestTenancyCLI:
    def test_tenancy_mode_runs_and_reports(self, capsys):
        assert main(["tenancy", "--duration", "20",
                     "--tenants", "agg:3.0:1.0:batch,vip:0.3:2.0:interactive",
                     "--model", "llama-7b", "--gpus", "1", "--tp", "1",
                     "--batch", "8", "--deltas", "4",
                     "--policy", "both", "--shed"]) == 0
        out = capsys.readouterr().out
        assert "policy: fcfs + shed" in out
        assert "policy: vtc + shed" in out
        assert "Jain fairness" in out
        assert "vip" in out

    def test_bad_tenant_spec_raises(self):
        with pytest.raises(ValueError, match="bad tenant spec"):
            main(["tenancy", "--tenants", "justaname"])
        with pytest.raises(ValueError, match="slo class"):
            main(["tenancy", "--tenants", "a:1.0:1.0:diamond"])
