"""Property-based engine checks on randomized small traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import GPUNode, node_from_name
from repro.serving import (DeltaZipEngine, EngineConfig, LLAMA_7B,
                           ModelManager, SchedulerConfig, VLLMSCBEngine)
from repro.workload.spec import Trace, TraceRequest


def make_trace(arrivals, n_models):
    requests = [
        TraceRequest(request_id=i, model_id=f"m{pick % n_models}",
                     arrival_s=float(t), prompt_tokens=8 + pick,
                     output_tokens=4 + (pick % 5))
        for i, (t, pick) in enumerate(arrivals)
    ]
    model_ids = sorted({r.model_id for r in requests} |
                       {f"m{i}" for i in range(n_models)})
    duration = max((t for t, _ in arrivals), default=0.0) + 1.0
    return Trace(requests=requests, model_ids=model_ids,
                 duration_s=duration)


@st.composite
def trace_strategy(draw):
    n = draw(st.integers(1, 12))
    n_models = draw(st.integers(1, 4))
    arrivals = [(draw(st.floats(0, 30, allow_nan=False)),
                 draw(st.integers(0, 10))) for _ in range(n)]
    return make_trace(arrivals, n_models)


class TestEngineProperties:
    @given(trace_strategy(), st.integers(1, 3), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_deltazip_conservation_and_monotonicity(self, trace, n_deltas,
                                                    preemption):
        node = GPUNode(node_from_name("a800", 1))
        mgr = ModelManager(LLAMA_7B)
        mgr.register_base("base")
        for m in trace.model_ids:
            mgr.register_delta(m, "base", 8.0)
        engine = DeltaZipEngine(
            mgr, node,
            SchedulerConfig(max_batch_requests=4,
                            max_concurrent_deltas=n_deltas,
                            preemption=preemption),
            EngineConfig(tp_degree=1))
        result = engine.run(trace)
        # every request completes exactly once
        assert sorted(r.request_id for r in result.records) == \
            sorted(t.request_id for t in trace)
        for rec in result.records:
            assert rec.finish_s > rec.arrival_s
            assert rec.ttft_s >= 0.0
            assert rec.e2e_latency_s >= rec.ttft_s - 1e-9
            assert rec.output_tokens > 0

    @given(trace_strategy())
    @settings(max_examples=15, deadline=None)
    def test_scb_conservation(self, trace):
        node = GPUNode(node_from_name("a800", 1))
        mgr = ModelManager(LLAMA_7B)
        mgr.register_base("base")
        for m in trace.model_ids:
            mgr.register_full(m, "base")
        engine = VLLMSCBEngine(mgr, node, EngineConfig(tp_degree=1),
                               max_batch_requests=4)
        result = engine.run(trace)
        assert sorted(r.request_id for r in result.records) == \
            sorted(t.request_id for t in trace)

    @given(trace_strategy())
    @settings(max_examples=10, deadline=None)
    def test_recompute_mode_also_conserves(self, trace):
        node = GPUNode(node_from_name("a800", 1))
        mgr = ModelManager(LLAMA_7B)
        mgr.register_base("base")
        for m in trace.model_ids:
            mgr.register_delta(m, "base", 8.0)
        engine = DeltaZipEngine(
            mgr, node,
            SchedulerConfig(max_batch_requests=4, max_concurrent_deltas=2),
            EngineConfig(tp_degree=1, preempt_mode="recompute"))
        result = engine.run(trace)
        assert result.n_requests == len(trace)
