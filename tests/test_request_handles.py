"""First-class request handles: streaming, cancellation, deadlines.

Covers the PR-5 contract: ``submit()`` returns a ``RequestHandle`` at
every gateway layer; aborted requests free batch slots, refund admission
charge, and surface as distinct terminal states; cancellation is
deterministic (same seed + same cancel schedule → record-identical
across engines × wrappers × idle-skip modes); zero-cancel replay stays
bit-identical to the pre-handle behavior.
"""

import pytest

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (ClusterGateway, EngineConfig, HandleStatus,
                           LLAMA_7B, LineageAffinityBalancer, ModelManager,
                           RequestHandle, SchedulerConfig, ServingGateway,
                           Tenant, TenantGateway, create_engine)
from repro.sim import Arrival, Cancel, EventQueue, SimKernel, \
    chrome_trace_events
from repro.workload import (ClosedLoopClient, PatienceModel,
                            impatient_cancel_schedule, synthetic_trace)
from repro.workload.spec import TraceRequest

N_MODELS = 4


def make_manager():
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def make_engine(mgr=None, engine_name="deltazip", batch=8, deltas=4,
                idle_quantum_s=None):
    mgr = mgr or make_manager()
    return create_engine(
        engine_name, mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=batch,
                                         max_concurrent_deltas=deltas),
        engine_config=EngineConfig(tp_degree=1,
                                   idle_quantum_s=idle_quantum_s))


def make_factory(mgr, engine_name, idle_quantum_s=None):
    def factory(node):
        return create_engine(
            engine_name, mgr, node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=EngineConfig(tp_degree=1,
                                       idle_quantum_s=idle_quantum_s))
    return factory


def build_wrapper(wrapper, mgr, engine_name, idle_quantum_s=None):
    factory = make_factory(mgr, engine_name, idle_quantum_s)
    if wrapper == "gateway":
        return ServingGateway(factory(None))
    kind, _, arg = wrapper.partition(":")
    balancer = arg if kind == "cluster" else "least-outstanding"
    cluster = ClusterGateway(
        engine_factory=factory,
        cluster=Cluster.from_name("a800", 2, 1), n_replicas=2,
        balancer=balancer)
    if kind == "tenant":
        return TenantGateway(cluster, policy=arg or "fcfs")
    return cluster


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s, rec.status,
            rec.served_tokens)


WRAPPERS = ["gateway", "cluster:round-robin", "cluster:least-outstanding",
            "cluster:lineage", "tenant:fcfs", "tenant:vtc"]


# --------------------------------------------------------------------------- #
# kernel primitives
# --------------------------------------------------------------------------- #
class TestCancelEvent:
    def test_orders_by_time_then_request_id(self):
        queue = EventQueue()
        queue.push(Cancel(time=2.0, request_id=7))
        queue.push(Cancel(time=1.0, request_id=9))
        queue.push(Cancel(time=1.0, request_id=3))
        assert [queue.pop().request_id for _ in range(3)] == [3, 9, 7]

    def test_remove_request(self):
        queue = EventQueue()

        def req(rid, t):
            return TraceRequest(request_id=rid, model_id="m", arrival_s=t,
                                prompt_tokens=8, output_tokens=4)
        for rid, t in ((0, 1.0), (1, 2.0), (2, 3.0)):
            queue.push(Arrival(time=t, request=req(rid, t)))
        removed = queue.remove_request(1)
        assert removed.request.request_id == 1
        assert queue.remove_request(99) is None
        assert len(queue) == 2
        assert queue.count_after(0.0) == 2
        assert [e.request.request_id for e in queue.in_order()] == [0, 2]

    def test_chrome_trace_export(self, tmp_path):
        from repro.sim import export_chrome_trace, IterationDone, ReplicaSpawn
        journal = [ReplicaSpawn(time=0.0, replica_id=0),
                   IterationDone(time=1.0, iter_time_s=0.2, load_time_s=0.1,
                                 source="deltazip"),
                   Cancel(time=1.5, request_id=3, reason="deadline")]
        events = chrome_trace_events(journal)
        assert [e["ph"] for e in events] == ["i", "X", "i"]
        span = events[1]
        assert span["ts"] == pytest.approx((1.0 - 0.3) * 1e6)
        assert span["dur"] == pytest.approx(0.3 * 1e6)
        assert events[2]["name"] == "cancel:deadline"
        path = tmp_path / "trace.json"
        n = export_chrome_trace(journal, str(path))
        assert n == 3
        import json
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 3


# --------------------------------------------------------------------------- #
# the handle surface (engine-backed gateway)
# --------------------------------------------------------------------------- #
class TestHandleBasics:
    def test_submit_returns_handle_with_int_shim(self):
        gw = ServingGateway(make_engine())
        h0 = gw.submit("variant-00", 32, 4)
        h1 = gw.submit("variant-01", 32, 4)
        assert isinstance(h0, RequestHandle)
        # pre-handle call sites treated the return value as an int
        assert h0 == 0 and int(h1) == 1 and h1.shim_int() == 1
        assert {h0: "a"}[0] == "a"          # dict key interop
        assert sorted([h1, h0]) == [h0, h1]
        assert list(range(3))[h1] == 1       # __index__

    def test_token_stream_drives_the_simulation(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 6)
        events = list(h.tokens)
        assert len(events) == 6
        clocks = [t for t, _ in events]
        assert clocks == sorted(clocks)
        assert [n for _, n in events] == [1, 2, 3, 4, 5, 6]
        assert h.status is HandleStatus.FINISHED
        assert h.record().tokens_served == 6
        # a second iterator replays from the first token
        assert list(h.tokens) == events

    def test_record_raises_until_terminal(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4)
        with pytest.raises(ValueError, match="not terminal"):
            h.record()
        gw.run_until_drained()
        assert h.record().finished

    def test_result_drains_to_completion(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4)
        assert h.result().status == "finished"

    def test_done_callback_fires_on_completion_and_immediately(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4)
        seen = []
        h.add_done_callback(lambda handle: seen.append(handle.id))
        gw.run_until_drained()
        assert seen == [0]
        h.add_done_callback(lambda handle: seen.append(handle.id))
        assert seen == [0, 0]               # already terminal: fires now

    def test_status_progression(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4, arrival_s=5.0)
        assert h.status is HandleStatus.QUEUED          # future arrival
        gw.step()                                       # clock jumps to 5.0
        gw.step()
        assert h.status in (HandleStatus.RUNNING, HandleStatus.FINISHED)

    def test_cancel_mid_flight_charges_only_generated_tokens(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 50)
        stream = iter(h.tokens)
        for _ in range(10):
            next(stream)
        h.cancel()                           # "now", mid-decode
        res = gw.run_until_drained()
        rec = h.record()
        assert h.status is HandleStatus.CANCELLED
        assert rec.status == "cancelled"
        assert 10 <= rec.tokens_served < 50
        assert res.status_counts() == {"cancelled": 1}
        assert res.wasted_token_fraction() == 1.0
        assert gw.engine.stats.aborts == 1

    def test_cancel_before_arrival(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4, arrival_s=100.0)
        h.cancel(at_s=1.0)
        gw.run_until_drained()
        rec = h.record()
        assert rec.status == "cancelled" and rec.tokens_served == 0
        assert rec.finish_s == 100.0         # never negative latency

    def test_deadline_expires_running_request(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 500, deadline_s=0.5)
        gw.run_until_drained()
        rec = h.record()
        assert h.status is HandleStatus.EXPIRED
        assert rec.status == "expired"
        assert 0 < rec.tokens_served < 500
        assert rec.finish_s >= 0.5

    def test_deadline_met_is_not_expired(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4, deadline_s=1000.0)
        gw.run_until_drained()
        assert h.status is HandleStatus.FINISHED

    def test_deadline_validation(self):
        gw = ServingGateway(make_engine())
        with pytest.raises(ValueError, match="deadline_s"):
            gw.submit("variant-00", 32, 4, deadline_s=0.0)

    def test_abort_frees_batch_slot(self):
        """The freed slot admits waiting work before the long requests
        would have finished — the mechanism bench_cancellation prices."""
        gw = ServingGateway(make_engine(batch=2, deltas=2))
        long_a = gw.submit("variant-00", 32, 400)
        long_b = gw.submit("variant-00", 32, 400)
        waiter = gw.submit("variant-00", 32, 4)
        for _ in range(4):
            gw.step()                       # both long requests running
        assert waiter.status is HandleStatus.ADMITTED   # no free slot
        long_a.cancel()
        gw.run_until_drained()
        assert long_a.record().status == "cancelled"
        assert waiter.record().finished
        # the waiter finished long before the surviving long request
        assert waiter.record().finish_s < long_b.record().finish_s

    def test_handle_lookup_and_reset_drops_handles(self):
        gw = ServingGateway(make_engine())
        h = gw.submit("variant-00", 32, 4)
        assert gw.handle(0) is h
        gw.reset()
        assert gw.handle(0) is None


class TestTokenListeners:
    def test_add_token_listener_parity(self):
        """Satellite fix: token listeners register like completion
        listeners, without a constructor callback."""
        gw = ServingGateway(make_engine())
        tokens, completions = [], []
        gw.add_token_listener(
            lambda rid, mid, n, t: tokens.append((rid, n)))
        gw.add_completion_listener(lambda rec: completions.append(rec))
        gw.submit("variant-00", 32, 3)
        gw.run_until_drained()
        assert tokens == [(0, 1), (0, 2), (0, 3)]
        assert len(completions) == 1

    def test_listeners_survive_reset(self):
        gw = ServingGateway(make_engine())
        tokens, completions = [], []
        gw.add_token_listener(lambda rid, mid, n, t: tokens.append(n))
        gw.add_completion_listener(lambda rec: completions.append(rec))
        gw.submit("variant-00", 32, 2)
        gw.run_until_drained()
        gw.reset()
        gw.submit("variant-00", 32, 2)
        gw.run_until_drained()
        assert tokens == [1, 2, 1, 2]
        assert len(completions) == 2

    def test_no_listener_no_engine_hook(self):
        engine = make_engine()
        ServingGateway(engine)
        assert engine.on_token is None       # replay paths stay hook-free

    def test_cluster_token_listener_spans_replicas(self):
        mgr = make_manager()
        cluster = ClusterGateway(
            engine_factory=make_factory(mgr, "deltazip"),
            cluster=Cluster.from_name("a800", 2, 1), n_replicas=2)
        seen = []
        cluster.add_token_listener(lambda rid, mid, n, t: seen.append(rid))
        cluster.submit("variant-00", 32, 2)
        cluster.submit("variant-01", 32, 2)
        cluster.run_until_drained()
        assert sorted(set(seen)) == [0, 1]


# --------------------------------------------------------------------------- #
# cluster layer
# --------------------------------------------------------------------------- #
class TestClusterHandles:
    def make_cluster(self, balancer="least-outstanding"):
        return ClusterGateway(
            engine_factory=make_factory(make_manager(), "deltazip"),
            cluster=Cluster.from_name("a800", 2, 1), n_replicas=2,
            balancer=balancer)

    def test_streaming_and_cancel_on_routed_request(self):
        cluster = self.make_cluster()
        h = cluster.submit("variant-00", 32, 50)
        stream = iter(h.tokens)
        for _ in range(5):
            next(stream)
        h.cancel()
        res = cluster.run_until_drained()
        assert h.record().status == "cancelled"
        assert 5 <= h.record().tokens_served < 50
        assert res.status_counts()["cancelled"] == 1

    def test_replay_cancel_before_routing_makes_orphan_record(self):
        cluster = self.make_cluster()
        trace = synthetic_trace(N_MODELS, rate=0.5, duration_s=30.0, seed=3)
        # cancel a far-future request before it ever arrives
        victim = trace.requests[-1].request_id
        at = trace.requests[-1].arrival_s - 1.0
        res = cluster.replay(trace, cancels=[(victim, at)])
        assert res.n_requests == len(trace)
        rec = next(r for r in res.records if r.request_id == victim)
        assert rec.status == "cancelled" and rec.tokens_served == 0
        assert res.n_finished == len(trace) - 1

    def test_deadline_through_cluster(self):
        cluster = self.make_cluster()
        h = cluster.submit("variant-00", 32, 500, deadline_s=0.5)
        cluster.run_until_drained()
        assert h.status is HandleStatus.EXPIRED

    def test_lineage_unpins_abandoned_work(self):
        balancer = LineageAffinityBalancer()
        cluster = self.make_cluster(balancer=balancer)
        h = cluster.submit("variant-00", 32, 40)
        cluster.step()
        assert "variant-00" in balancer._home
        h.cancel()
        cluster.run_until_drained()
        assert "variant-00" not in balancer._home


# --------------------------------------------------------------------------- #
# tenancy layer: refunds, quota lifts, deadline-vs-shed
# --------------------------------------------------------------------------- #
class TestTenancyCancellation:
    def make_tenant_gateway(self, **kwargs):
        return TenantGateway(ServingGateway(make_engine()), **kwargs)

    def test_frontier_cancel_refunds_bucket_and_billing(self):
        tenant = Tenant("t", rate_tokens_per_s=10.0, burst_tokens=40.0)
        tg = self.make_tenant_gateway(tenants=[tenant])
        controller = tg.controller
        # first request drains the bucket; the second defers behind it
        tg.submit("variant-00", 32, 8, tenant_id="t")
        h2 = tg.submit("variant-00", 32, 8, tenant_id="t")
        assert tg.decision(h2).value == "deferred"
        bucket = controller._buckets["t"]
        before = bucket.tokens
        charged_before = controller.stats["t"].tokens_charged
        h2.cancel()
        tg.run_until_drained()
        assert h2.record().status == "cancelled"
        assert bucket.tokens == pytest.approx(before + 40.0)
        assert controller.stats["t"].tokens_charged == \
            pytest.approx(charged_before - 40.0)
        assert controller.stats["t"].cancelled == 1
        # the quota slot freed: nothing left queued for the tenant
        assert controller.queued_for("t") == 0

    def test_dispatched_abort_refunds_unserved_and_lifts_vtc_counter(self):
        tenant = Tenant("t", rate_tokens_per_s=1000.0)
        tg = self.make_tenant_gateway(tenants=[tenant], policy="vtc")
        controller = tg.controller
        h = tg.submit("variant-00", 32, 100, tenant_id="t")
        for _ in range(6):
            tg.step()                       # dispatched and decoding
        counter_at_dispatch = controller.counters()["t"]
        assert counter_at_dispatch == pytest.approx(132.0)
        h.cancel()
        tg.run_until_drained()
        rec = h.record()
        assert rec.status == "cancelled" and 0 < rec.tokens_served < 100
        unserved = 100 - rec.tokens_served
        # counter lifted back down by the weighted un-served decode work
        assert controller.counters()["t"] == \
            pytest.approx(counter_at_dispatch - unserved)
        # billing meters only served work (prompt ran: prefill happened)
        assert controller.stats["t"].tokens_charged == \
            pytest.approx(32 + rec.tokens_served)
        assert controller.stats["t"].cancelled == 1
        # inflight slot released
        assert controller.inflight_for("t") == 0

    def test_weighted_stage_vtc_charge_and_lift(self):
        """Satellite: prefill/decode weights scale both the dispatch
        charge and the cancellation lift."""
        tenant = Tenant("t")
        tg = self.make_tenant_gateway(tenants=[tenant], policy="vtc",
                                      prefill_weight=0.5, decode_weight=2.0)
        controller = tg.controller
        h = tg.submit("variant-00", 32, 100, tenant_id="t")
        for _ in range(6):
            tg.step()
        assert controller.counters()["t"] == \
            pytest.approx(0.5 * 32 + 2.0 * 100)
        h.cancel()
        tg.run_until_drained()
        unserved = 100 - h.record().tokens_served
        assert controller.counters()["t"] == \
            pytest.approx(0.5 * 32 + 2.0 * 100 - 2.0 * unserved)
        summary = tg.result().config["admission"]
        assert summary["prefill_weight"] == 0.5
        assert summary["decode_weight"] == 2.0
        assert summary["cancelled"] == 1

    def test_deadline_expiry_at_frontier_vs_slo_shed(self):
        """A deferred request whose deadline passes at the frontier
        expires (EXPIRED, refunded); an SLO-shed request is SHED.  The
        two terminal states stay distinct in stats and handles."""
        tenant = Tenant("t", rate_tokens_per_s=10.0, burst_tokens=40.0,
                        slo_class="interactive")
        tg = self.make_tenant_gateway(tenants=[tenant])
        controller = tg.controller
        tg.submit("variant-00", 32, 8, tenant_id="t")      # drains bucket
        # deferred ~4s for refill, but the deadline hits at 2s: expires
        # at the frontier without ever reaching an engine
        h = tg.submit("variant-00", 32, 8, tenant_id="t", deadline_s=2.0)
        assert tg.decision(h).value == "deferred"
        bucket = controller._buckets["t"]
        res = tg.run_until_drained()
        assert h.status is HandleStatus.EXPIRED
        rec = h.record()
        assert rec.status == "expired" and rec.tokens_served == 0
        assert rec.finish_s == pytest.approx(h.deadline_s)
        assert controller.stats["t"].expired == 1
        assert controller.stats["t"].cancelled == 0
        # full refund: the bucket recovered the whole 40-token charge
        assert bucket.eligible_at(0.0, tg.clock) == tg.clock
        # the expired record is a distinct terminal state in the result
        assert res.status_counts().get("expired") == 1
        # shed stays a *different* terminal state
        assert "shed" not in res.status_counts()

    def test_shed_request_handle_is_terminal_shed(self):
        tenant = Tenant("t", max_outstanding=1)
        tg = self.make_tenant_gateway(tenants=[tenant])
        tg.submit("variant-00", 32, 8, tenant_id="t")
        h = tg.submit("variant-00", 32, 8, tenant_id="t")
        assert h.status is HandleStatus.SHED
        assert h.record().status == "shed"
        # rejected requests do not pollute the served-side result
        res = tg.run_until_drained()
        assert res.n_requests == 1 and res.records[0].finished

    def test_token_streaming_through_tenant_gateway(self):
        """Handles stream at the tenancy layer too — the disconnect
        pattern must work identically behind admission control."""
        tg = self.make_tenant_gateway()
        h = tg.submit("variant-00", 32, 8)
        events = list(h.tokens)
        assert [n for _, n in events] == list(range(1, 9))
        assert h.record().finished
        seen = []
        tg.add_token_listener(lambda rid, mid, n, t: seen.append((rid, n)))
        tg.submit("variant-01", 32, 3)
        tg.run_until_drained()
        assert seen == [(1, 1), (1, 2), (1, 3)]

    def test_explicit_deadline_cancel_survives_dispatch(self):
        """A reason="deadline" cancel() on a frontier-held request must
        still bound it after it dispatches (forwarded like any explicit
        cancel), independent of dispatch timing."""
        tenant = Tenant("t", rate_tokens_per_s=100.0, burst_tokens=100.0)
        tg = self.make_tenant_gateway(tenants=[tenant])
        # deferred briefly behind the bucket, dispatches well before 5s
        tg.submit("variant-00", 80, 8, tenant_id="t")
        h = tg.submit("variant-00", 80, 2000, tenant_id="t")
        tg.cancel(h, at_s=5.0, reason="deadline")
        tg.run_until_drained()
        rec = h.record()
        assert rec.status == "expired" and rec.tokens_served < 2000
        assert rec.finish_s >= 5.0
        assert tg.controller.stats["t"].expired == 1

    def test_unfinished_accounting_after_cancels(self):
        tg = self.make_tenant_gateway()
        h1 = tg.submit("variant-00", 32, 8)
        h2 = tg.submit("variant-00", 32, 8, arrival_s=100.0)
        h2.cancel(at_s=1.0)
        tg.run_until_drained()
        assert tg.unfinished == 0
        assert h1.record().finished and h2.record().status == "cancelled"


# --------------------------------------------------------------------------- #
# determinism: the PR's acceptance property
# --------------------------------------------------------------------------- #
class TestCancellationDeterminism:
    """Same seed + same cancel schedule → record-identical, across
    engines × wrappers, run-to-run, and idle-skip on/off; an empty
    schedule is bit-identical to a no-schedule replay."""

    @pytest.mark.parametrize("engine_name", ["deltazip", "vllm-scb"])
    @pytest.mark.parametrize("wrapper", WRAPPERS)
    def test_cancel_schedule_replay_is_deterministic(self, engine_name,
                                                     wrapper):
        trace = synthetic_trace(N_MODELS, rate=1.0, duration_s=30.0, seed=13)
        schedule = impatient_cancel_schedule(
            trace, PatienceModel(mean_s=6.0), seed=5)
        mgr = make_manager()
        skip = build_wrapper(wrapper, mgr, engine_name, None)
        first = [record_key(r) for r in
                 skip.replay(trace, cancels=schedule).records]
        second = [record_key(r) for r in
                  skip.replay(trace, cancels=schedule).records]
        assert first == second, "cancel replay must be deterministic"
        dense = build_wrapper(wrapper, mgr, engine_name, 0.05)
        quantized = [record_key(r) for r in
                     dense.replay(trace, cancels=schedule).records]
        assert first == quantized, \
            "idle-skip must not change cancellation history"
        statuses = {k[7] for k in first}
        assert "cancelled" in statuses, "the schedule must actually bite"
        assert len(first) == len(trace)

    @pytest.mark.parametrize("wrapper", ["gateway", "cluster:lineage",
                                         "tenant:vtc"])
    def test_empty_schedule_bit_identical_to_no_schedule(self, wrapper):
        trace = synthetic_trace(N_MODELS, rate=1.0, duration_s=20.0, seed=7)
        mgr = make_manager()
        gw = build_wrapper(wrapper, mgr, "deltazip", None)
        plain = [record_key(r) for r in gw.replay(trace).records]
        empty = [record_key(r) for r in
                 gw.replay(trace, cancels=[]).records]
        assert plain == empty
        assert all(k[7] == "finished" for k in plain)

    def test_dedicated_engine_cancellation_roundtrip(self):
        mgr = ModelManager(LLAMA_7B)
        mgr.register_base("base")
        for i in range(N_MODELS):
            mgr.register_full(f"variant-{i:02d}", "base")
        engine = create_engine("dedicated", mgr,
                               GPUNode(node_from_name("a800", 1)),
                               engine_config=EngineConfig(tp_degree=1))
        gw = ServingGateway(engine)
        h = gw.submit("variant-00", 32, 50)
        other = gw.submit("variant-01", 32, 4)
        for _ in range(4):
            gw.step()
        h.cancel()
        gw.run_until_drained()
        assert h.record().status == "cancelled"
        assert other.record().finished


# --------------------------------------------------------------------------- #
# workload models: impatience and closed loops
# --------------------------------------------------------------------------- #
class TestImpatientClients:
    def test_schedule_is_deterministic_and_after_arrival(self):
        trace = synthetic_trace(N_MODELS, rate=2.0, duration_s=20.0, seed=1)
        one = impatient_cancel_schedule(trace, PatienceModel(5.0), seed=3)
        two = impatient_cancel_schedule(trace, PatienceModel(5.0), seed=3)
        assert one == two
        assert len(one) == len(trace)
        arrivals = {r.request_id: r.arrival_s for r in trace}
        assert all(at > arrivals[rid] for rid, at in one)

    def test_per_tenant_isolation(self):
        from repro.workload import TenantWorkload, multi_tenant_trace
        trace = multi_tenant_trace(
            [TenantWorkload("a", rate=1.0), TenantWorkload("b", rate=1.0)],
            duration_s=20.0, seed=0)
        both = impatient_cancel_schedule(
            trace, {"a": PatienceModel(3.0), "b": PatienceModel(3.0)}, seed=2)
        only_a = impatient_cancel_schedule(
            trace, {"a": PatienceModel(3.0)}, seed=2)
        a_ids = {r.request_id for r in trace if r.tenant_id == "a"}
        assert dict(only_a) == {rid: at for rid, at in both if rid in a_ids}

    def test_patience_model_validation(self):
        with pytest.raises(ValueError, match="mean_s"):
            PatienceModel(0.0)
        with pytest.raises(ValueError, match="distribution"):
            PatienceModel(1.0, distribution="weird")

    def test_fixed_patience_sample(self):
        import numpy as np
        model = PatienceModel(2.5, distribution="fixed")
        assert model.sample(np.random.default_rng(0)) == 2.5


class TestClosedLoopClient:
    def test_turns_scheduled_as_arrivals_on_completion(self):
        gw = ServingGateway(make_engine())
        client = ClosedLoopClient(gw, "variant-00", n_turns=3,
                                  prompt_tokens=32, output_tokens=4,
                                  think_time_s=2.0)
        client.start()
        while not client.done and gw.step():
            pass
        assert client.turns_submitted == 3 and client.done
        records = [h.record() for h in client.handles]
        assert all(r.finished for r in records)
        for prev, nxt in zip(records, records[1:]):
            # the next turn arrives exactly think-time after the finish
            assert nxt.arrival_s == pytest.approx(prev.finish_s + 2.0)

    def test_impatient_session_abandons(self):
        gw = ServingGateway(make_engine())
        client = ClosedLoopClient(gw, "variant-00", n_turns=5,
                                  prompt_tokens=32, output_tokens=400,
                                  patience_s=0.5)
        client.start()
        while not client.done and gw.step():
            pass
        assert client.abandoned
        assert client.turns_submitted == 1    # gave up, no follow-up turn
        assert client.handles[0].record().status == "cancelled"

    def test_deadline_turns_through_tenant_gateway(self):
        tg = TenantGateway(ServingGateway(make_engine()))
        client = ClosedLoopClient(tg, "variant-00", n_turns=2,
                                  prompt_tokens=32, output_tokens=4,
                                  think_time_s=1.0, deadline_s=60.0)
        client.start()
        while not client.done and tg.step():
            pass
        assert client.done and not client.abandoned
        assert all(h.record().finished for h in client.handles)
