"""ServingResult metrics, per-tenant slicing, and SLO attainment math."""

import numpy as np
import pytest

from repro.serving.metrics import (ServingResult, UNTENANTED,
                                   jain_fairness_index, slo_attainment,
                                   slo_attainment_by_tenant, summarize,
                                   summarize_by_tenant)
from repro.serving.request import RequestRecord


def record(rid=0, arrival=0.0, first=1.0, finish=5.0, prompt=10, output=20,
           tenant=None, **kw):
    return RequestRecord(request_id=rid, model_id="m", arrival_s=arrival,
                         first_token_s=first, finish_s=finish,
                         prompt_tokens=prompt, output_tokens=output,
                         queue_wait_s=kw.get("queue_wait_s", 0.5),
                         loading_s=kw.get("loading_s", 0.2),
                         inference_s=kw.get("inference_s", 4.0),
                         skipped_line=False, preemptions=0,
                         tenant_id=tenant)


class TestRequestRecord:
    def test_latency_math(self):
        r = record(arrival=1.0, first=3.0, finish=11.0)
        assert r.e2e_latency_s == 10.0
        assert r.ttft_s == 2.0
        assert r.time_per_token_s == 0.5

    def test_ttft_falls_back_to_e2e(self):
        r = RequestRecord(request_id=0, model_id="m", arrival_s=0.0,
                          first_token_s=None, finish_s=4.0, prompt_tokens=1,
                          output_tokens=1, queue_wait_s=0, loading_s=0,
                          inference_s=4, skipped_line=False, preemptions=0)
        assert r.ttft_s == 4.0


class TestServingResult:
    def make(self):
        records = [record(rid=i, arrival=float(i), first=i + 1.0,
                          finish=i + 3.0) for i in range(10)]
        return ServingResult(engine="t", records=records, makespan_s=12.0)

    def test_throughput(self):
        res = self.make()
        assert res.throughput_rps() == pytest.approx(10 / 12.0)

    def test_throughput_within_horizon(self):
        res = self.make()
        # finishes at 3..12; horizon 5 catches finishes at 3,4,5
        assert res.throughput_within(5.0) == pytest.approx(3 / 5.0)
        assert res.throughput_within(0.0) == 0.0

    def test_token_throughput(self):
        res = self.make()
        assert res.token_throughput() == pytest.approx(200 / 12.0)

    def test_means_and_percentiles(self):
        res = self.make()
        assert res.mean_e2e_latency_s() == pytest.approx(3.0)
        assert res.mean_ttft_s() == pytest.approx(1.0)
        assert res.percentile_e2e_s(90) == pytest.approx(3.0)
        assert res.mean_time_per_token_s() == pytest.approx(3.0 / 20)

    def test_empty_records(self):
        res = ServingResult(engine="t", records=[], makespan_s=1.0)
        assert res.mean_e2e_latency_s() == 0.0
        assert res.throughput_rps() == 0.0

    def test_summary_consistent(self):
        res = self.make()
        s = summarize(res)
        assert s["n_requests"] == 10
        assert s["mean_e2e_s"] == res.mean_e2e_latency_s()


class TestSLO:
    def test_attainment_fractions(self):
        records = [record(rid=i, arrival=0.0, first=0.5,
                          finish=float(i + 1)) for i in range(4)]
        # e2e latencies: 1, 2, 3, 4
        assert slo_attainment(records, 2.0, "e2e") == 0.5
        assert slo_attainment(records, 4.0, "e2e") == 1.0
        assert slo_attainment(records, 0.5, "ttft") == 1.0

    def test_empty_zero(self):
        assert slo_attainment([], 1.0) == 0.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            slo_attainment([record()], 1.0, "p99")


class TestEmptyAndDegenerateGuards:
    """Regression: every latency/throughput helper must be total on
    empty or degenerate record lists, so per-tenant slices of idle
    tenants can never raise."""

    @pytest.mark.parametrize("makespan", [0.0, -1.0, 1.0])
    def test_all_helpers_zero_on_empty(self, makespan):
        empty = ServingResult(engine="t", records=[], makespan_s=makespan)
        assert empty.throughput_rps() == 0.0
        assert empty.token_throughput() == 0.0
        assert empty.throughput_within(10.0) == 0.0
        assert empty.mean_e2e_latency_s() == 0.0
        assert empty.mean_ttft_s() == 0.0
        assert empty.mean_time_per_token_s() == 0.0
        for q in (0, 50, 90, 99, 100):
            assert empty.percentile_e2e_s(q) == 0.0
            assert empty.percentile_ttft_s(q) == 0.0
        assert all(np.isfinite(v) for v in summarize(empty).values())

    def test_merge_of_nothing_is_safe(self):
        merged = ServingResult.merge([])
        assert merged.n_requests == 0
        assert summarize(merged)["p99_e2e_s"] == 0.0

    def test_idle_tenant_slice_is_empty_and_safe(self):
        res = ServingResult(engine="t", records=[record(tenant="busy")],
                            makespan_s=5.0)
        idle = res.for_tenant("sleeper")
        assert idle.n_requests == 0
        assert idle.percentile_ttft_s(99) == 0.0
        assert idle.mean_e2e_latency_s() == 0.0
        assert idle.config["tenant_id"] == "sleeper"

    def test_zero_output_tokens_record(self):
        degenerate = ServingResult(
            engine="t", records=[record(output=0)], makespan_s=1.0)
        assert np.isfinite(degenerate.mean_time_per_token_s())


class TestPerTenantMetrics:
    def make(self):
        records = [record(rid=i, arrival=float(i), first=i + 1.0,
                          finish=i + 3.0, tenant="a") for i in range(4)]
        records += [record(rid=10 + i, arrival=float(i), first=i + 2.0,
                           finish=i + 6.0, tenant="b") for i in range(2)]
        records += [record(rid=20, arrival=0.0, first=1.0, finish=2.0)]
        return ServingResult(engine="t", records=records, makespan_s=9.0)

    def test_tenant_ids_include_untenanted_bucket(self):
        assert self.make().tenant_ids == ["a", "b", UNTENANTED]

    def test_for_tenant_slices_and_recomputes_makespan(self):
        res = self.make()
        a = res.for_tenant("a")
        assert a.n_requests == 4
        assert all(r.tenant_id == "a" for r in a.records)
        # slice makespan spans the slice's own arrivals/finishes
        assert a.makespan_s == pytest.approx(6.0)
        assert res.for_tenant(None).n_requests == 1

    def test_by_tenant_partitions_all_records(self):
        res = self.make()
        parts = res.by_tenant()
        assert sum(p.n_requests for p in parts.values()) == res.n_requests

    def test_summarize_by_tenant(self):
        rows = summarize_by_tenant(self.make())
        assert rows["a"]["n_requests"] == 4
        assert rows["b"]["mean_ttft_s"] == pytest.approx(2.0)

    def test_slo_attainment_by_tenant(self):
        per = slo_attainment_by_tenant(self.make().records, 1.5,
                                       metric="ttft")
        assert per["a"] == 1.0     # a's ttft is 1.0 everywhere
        assert per["b"] == 0.0     # b's ttft is 2.0 everywhere
        assert per[UNTENANTED] == 1.0


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_total_capture_is_one_over_n(self):
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == \
            pytest.approx(0.25)

    def test_empty_and_all_zero_default_fair(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([1.0, -0.5])
