"""ServingResult metrics and SLO attainment math."""

import numpy as np
import pytest

from repro.serving.metrics import ServingResult, slo_attainment, summarize
from repro.serving.request import RequestRecord


def record(rid=0, arrival=0.0, first=1.0, finish=5.0, prompt=10, output=20,
           **kw):
    return RequestRecord(request_id=rid, model_id="m", arrival_s=arrival,
                         first_token_s=first, finish_s=finish,
                         prompt_tokens=prompt, output_tokens=output,
                         queue_wait_s=kw.get("queue_wait_s", 0.5),
                         loading_s=kw.get("loading_s", 0.2),
                         inference_s=kw.get("inference_s", 4.0),
                         skipped_line=False, preemptions=0)


class TestRequestRecord:
    def test_latency_math(self):
        r = record(arrival=1.0, first=3.0, finish=11.0)
        assert r.e2e_latency_s == 10.0
        assert r.ttft_s == 2.0
        assert r.time_per_token_s == 0.5

    def test_ttft_falls_back_to_e2e(self):
        r = RequestRecord(request_id=0, model_id="m", arrival_s=0.0,
                          first_token_s=None, finish_s=4.0, prompt_tokens=1,
                          output_tokens=1, queue_wait_s=0, loading_s=0,
                          inference_s=4, skipped_line=False, preemptions=0)
        assert r.ttft_s == 4.0


class TestServingResult:
    def make(self):
        records = [record(rid=i, arrival=float(i), first=i + 1.0,
                          finish=i + 3.0) for i in range(10)]
        return ServingResult(engine="t", records=records, makespan_s=12.0)

    def test_throughput(self):
        res = self.make()
        assert res.throughput_rps() == pytest.approx(10 / 12.0)

    def test_throughput_within_horizon(self):
        res = self.make()
        # finishes at 3..12; horizon 5 catches finishes at 3,4,5
        assert res.throughput_within(5.0) == pytest.approx(3 / 5.0)
        assert res.throughput_within(0.0) == 0.0

    def test_token_throughput(self):
        res = self.make()
        assert res.token_throughput() == pytest.approx(200 / 12.0)

    def test_means_and_percentiles(self):
        res = self.make()
        assert res.mean_e2e_latency_s() == pytest.approx(3.0)
        assert res.mean_ttft_s() == pytest.approx(1.0)
        assert res.percentile_e2e_s(90) == pytest.approx(3.0)
        assert res.mean_time_per_token_s() == pytest.approx(3.0 / 20)

    def test_empty_records(self):
        res = ServingResult(engine="t", records=[], makespan_s=1.0)
        assert res.mean_e2e_latency_s() == 0.0
        assert res.throughput_rps() == 0.0

    def test_summary_consistent(self):
        res = self.make()
        s = summarize(res)
        assert s["n_requests"] == 10
        assert s["mean_e2e_s"] == res.mean_e2e_latency_s()


class TestSLO:
    def test_attainment_fractions(self):
        records = [record(rid=i, arrival=0.0, first=0.5,
                          finish=float(i + 1)) for i in range(4)]
        # e2e latencies: 1, 2, 3, 4
        assert slo_attainment(records, 2.0, "e2e") == 0.5
        assert slo_attainment(records, 4.0, "e2e") == 1.0
        assert slo_attainment(records, 0.5, "ttft") == 1.0

    def test_empty_zero(self):
        assert slo_attainment([], 1.0) == 0.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            slo_attainment([record()], 1.0, "p99")
