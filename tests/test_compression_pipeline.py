"""End-to-end ΔCompress pipeline tests on real trained checkpoints."""

import numpy as np
import pytest

from repro.compression import (CompressionConfig, DeltaCompressor, FP16_BYTES,
                               ZlibCodec, analytic_ratio, artifact_summary,
                               pipeline_stage_bytes)
from repro.compression.sparsity import validate_nm
from repro.nn import TransformerModel


class TestArtifactStructure:
    def test_layers_cover_all_linears(self, artifact_4bit, finetuned):
        expected = set(finetuned.model.linear_layer_names())
        assert set(artifact_4bit.layers) == expected

    def test_masks_are_24(self, artifact_4bit):
        for layer in artifact_4bit.layers.values():
            codes, mask = __import__(
                "repro.compression.packing", fromlist=["unpack_nm_sparse"]
            ).unpack_nm_sparse(layer.packed_sparse)
            assert validate_nm(mask, 2, 4)

    def test_extras_hold_uncompressed_remainder(self, artifact_4bit,
                                                base_state):
        assert "embed_tokens.weight" in artifact_4bit.extras
        assert "lm_head.weight" in artifact_4bit.extras
        assert "final_norm.weight" in artifact_4bit.extras

    def test_compression_ratio_sensible(self, artifact_4bit):
        # tiny models are embedding-heavy (like Gemma in Table 1):
        # end-to-end ratio lands between 2x and the 5.33x analytic bound
        assert 2.0 < artifact_4bit.compression_ratio() < 5.33
        assert artifact_4bit.linear_compression_ratio() > 3.5

    def test_summary_keys(self, artifact_4bit):
        s = artifact_summary(artifact_4bit)
        assert s["nbytes"] < s["nbytes_uncompressed"]
        assert s["index_bytes"] > 0
        assert s["metadata_bytes"] > 0


class TestReconstruction:
    def test_reconstructed_close_to_finetuned(self, artifact_4bit, base_state,
                                              finetuned, tiny_config):
        approx = artifact_4bit.to_state_dict(base_state)
        model = TransformerModel(tiny_config, seed=0)
        model.load_state_dict(approx)
        toks = finetuned.calibration_tokens[:4]
        ft_logits = finetuned.model(toks)
        ap_logits = model(toks)
        base_model = TransformerModel(tiny_config, seed=0)
        base_model.load_state_dict(base_state)
        base_logits = base_model(toks)
        err_approx = np.mean((ft_logits - ap_logits) ** 2)
        err_base = np.mean((ft_logits - base_logits) ** 2)
        assert err_approx < err_base / 10  # much closer than the base

    def test_delta_state_dict_covers_everything(self, artifact_4bit,
                                                base_state):
        dense = artifact_4bit.delta_state_dict()
        assert set(dense) == set(base_state)


class TestConfigVariants:
    @pytest.fixture(scope="class")
    def small_setup(self, finetuned, base_state):
        return finetuned, base_state

    def test_2bit_smaller_than_4bit(self, finetuned, base_state,
                                    artifact_4bit):
        compressor = DeltaCompressor(CompressionConfig.deltazip_2bit())
        art2 = compressor.compress(finetuned.model, base_state,
                                   finetuned.calibration_tokens)
        assert art2.nbytes() < artifact_4bit.nbytes()
        assert art2.compression_ratio() > artifact_4bit.compression_ratio()

    def test_direct_mode_replaces_weights(self, finetuned, base_state,
                                          tiny_config):
        compressor = DeltaCompressor(CompressionConfig.sparsegpt_4bit())
        art = compressor.compress(finetuned.model, base_state,
                                  finetuned.calibration_tokens)
        state = art.to_state_dict(base_state)
        model = TransformerModel(tiny_config, seed=0)
        model.load_state_dict(state)  # shape-compatible and loadable
        assert not art.config.delta_mode

    def test_awq_pipeline(self, finetuned, base_state):
        compressor = DeltaCompressor(CompressionConfig.awq_4bit())
        art = compressor.compress(finetuned.model, base_state,
                                  finetuned.calibration_tokens)
        for layer in art.layers.values():
            assert layer.packed_dense is not None
            assert layer.awq_scales is not None

    def test_rtn_pipeline(self, finetuned, base_state):
        config = CompressionConfig(algorithm="rtn")
        art = DeltaCompressor(config).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        assert art.compression_ratio() > 2.0

    def test_lossless_stage_reduces_bytes(self, finetuned, base_state):
        config = CompressionConfig(bits=4, sparsity_n=2, sparsity_m=4,
                                   lossless=True)
        art = DeltaCompressor(config, codec=ZlibCodec(level=9)).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        for layer in art.layers.values():
            assert layer.lossless_nbytes is not None

    def test_no_calibration_still_works(self, finetuned, base_state):
        compressor = DeltaCompressor(CompressionConfig.deltazip_4bit())
        art = compressor.compress(finetuned.model, base_state, None)
        assert art.compression_ratio() > 2.0

    def test_mismatched_base_rejected(self, finetuned):
        compressor = DeltaCompressor(CompressionConfig.deltazip_4bit())
        with pytest.raises(KeyError):
            compressor.compress(finetuned.model, {"wrong": np.zeros(1)},
                                None)

    def test_report_populated(self, finetuned, base_state):
        compressor = DeltaCompressor(CompressionConfig.deltazip_4bit())
        compressor.compress(finetuned.model, base_state,
                            finetuned.calibration_tokens, model_id="m1")
        report = compressor.last_report
        assert report.model_id == "m1"
        assert report.seconds > 0
        assert len(report.layer_errors) > 0


class TestAnalyticRatios:
    def test_fig5_ratios(self):
        """The annotated ratios of Fig 5: 5.33x (4-bit) and 8x (2-bit)."""
        assert analytic_ratio(CompressionConfig.deltazip_4bit()) == \
            pytest.approx(64 / 12)
        assert analytic_ratio(CompressionConfig.deltazip_2bit()) == \
            pytest.approx(8.0)

    def test_quant_only_ratio(self):
        config = CompressionConfig(bits=4, sparsity_n=0)
        assert analytic_ratio(config) == 4.0

    def test_stage_walk(self):
        stages = pipeline_stage_bytes(CompressionConfig.deltazip_4bit(),
                                      n_weights=64)
        names = [s.stage for s in stages]
        assert names == ["fp16", "2:4 pruned", "int4 packed"]
        assert stages[0].nbytes == 128
        assert stages[1].cumulative_ratio == pytest.approx(128 / 72)
        assert stages[2].cumulative_ratio == pytest.approx(128 / 24)

    def test_calibration_improves_quality(self, finetuned, base_state):
        """ΔCompress with calibration beats the RTN ablation on the
        layer-output reconstruction error."""
        cfg = CompressionConfig.deltazip_2bit()
        with_calib = DeltaCompressor(cfg).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        rtn = DeltaCompressor(
            CompressionConfig(bits=2, sparsity_n=2, sparsity_m=4,
                              algorithm="rtn")).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        # compare end-model logits against the true fine-tuned model
        from repro.nn import TransformerModel
        toks = finetuned.calibration_tokens[:8]
        ref = finetuned.model(toks)

        def logit_err(art):
            m = TransformerModel(finetuned.model.config, seed=0)
            m.load_state_dict(art.to_state_dict(base_state))
            return float(np.mean((ref - m(toks)) ** 2))

        assert logit_err(with_calib) < logit_err(rtn)
