"""Unit tests for repro.nn.functional: ops and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn.functional as F


def _finite_diff(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7)).astype(np.float32)
        s = F.softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-5)

    def test_large_values_stable(self):
        x = np.array([[1e4, 1e4 + 1.0]], dtype=np.float32)
        s = F.softmax(x)
        assert np.all(np.isfinite(s))
        assert s[0, 1] > s[0, 0]

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float64)
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0),
                                   atol=1e-10)

    def test_log_softmax_consistency(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float64)
        np.testing.assert_allclose(np.exp(F.log_softmax(x)), F.softmax(x),
                                   atol=1e-10)


class TestActivations:
    def test_silu_values(self):
        assert F.silu(np.array([0.0]))[0] == 0.0
        assert F.silu(np.array([10.0]))[0] == pytest.approx(10.0, abs=1e-3)

    def test_silu_grad_matches_numeric(self, rng):
        x = rng.normal(size=(5,)).astype(np.float64)
        g = F.silu_backward(x, np.ones_like(x))
        num = _finite_diff(lambda: float(np.sum(F.silu(x))), x)
        np.testing.assert_allclose(g, num, atol=1e-5)

    def test_gelu_monotone_near_origin(self):
        x = np.linspace(-0.5, 0.5, 11)
        y = F.gelu(x)
        assert np.all(np.diff(y) > 0)


class TestRMSNorm:
    def test_unit_scale_output_norm(self, rng):
        x = rng.normal(size=(2, 3, 8)).astype(np.float32)
        w = np.ones(8, dtype=np.float32)
        y = F.rms_norm(x, w)
        rms = np.sqrt(np.mean(y * y, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_grad_matches_numeric(self, rng):
        x = rng.normal(size=(2, 6)).astype(np.float64)
        w = rng.normal(size=(6,)).astype(np.float64) + 1.0
        grad_out = rng.normal(size=(2, 6)).astype(np.float64)

        gx, gw = F.rms_norm_backward(x, w, grad_out)
        num_x = _finite_diff(lambda: float(np.sum(F.rms_norm(x, w) * grad_out)), x)
        num_w = _finite_diff(lambda: float(np.sum(F.rms_norm(x, w) * grad_out)), w)
        np.testing.assert_allclose(gx, num_x, atol=1e-5)
        np.testing.assert_allclose(gw, num_w, atol=1e-5)


class TestRoPE:
    def test_requires_even_head_dim(self):
        with pytest.raises(ValueError):
            F.rope_frequencies(5, 16)

    def test_rotation_preserves_norm(self, rng):
        cos, sin = F.rope_frequencies(8, 32)
        x = rng.normal(size=(1, 2, 16, 8)).astype(np.float32)
        y = F.apply_rope(x, cos, sin)
        np.testing.assert_allclose(np.linalg.norm(y, axis=-1),
                                   np.linalg.norm(x, axis=-1), rtol=1e-4)

    def test_inverse_rotation(self, rng):
        cos, sin = F.rope_frequencies(8, 32)
        x = rng.normal(size=(1, 1, 4, 8)).astype(np.float32)
        y = F.apply_rope(x, cos, sin)
        back = F.apply_rope(y, cos, -sin)
        np.testing.assert_allclose(back, x, atol=1e-5)

    def test_offset_matches_slice(self, rng):
        cos, sin = F.rope_frequencies(8, 32)
        x = rng.normal(size=(1, 1, 6, 8)).astype(np.float32)
        full = F.apply_rope(x, cos, sin)
        tail = F.apply_rope(x[:, :, 4:], cos, sin, position_offset=4)
        np.testing.assert_allclose(full[:, :, 4:], tail, atol=1e-6)

    def test_position_zero_identity(self, rng):
        cos, sin = F.rope_frequencies(8, 32)
        x = rng.normal(size=(1, 1, 1, 8)).astype(np.float32)
        np.testing.assert_allclose(F.apply_rope(x, cos, sin), x, atol=1e-6)


class TestCausalMask:
    def test_lower_triangle_zero(self):
        m = F.causal_mask(4)
        assert np.all(m[np.tril_indices(4)] == 0)

    def test_upper_triangle_minus_inf(self):
        m = F.causal_mask(4)
        assert np.all(np.isneginf(m[np.triu_indices(4, k=1)]))


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.zeros((1, 2, 4), dtype=np.float32)
        logits[0, :, 1] = 50.0
        targets = np.array([[1, 1]])
        assert F.cross_entropy(logits, targets) < 1e-6

    def test_uniform_equals_log_vocab(self):
        logits = np.zeros((1, 3, 8), dtype=np.float32)
        targets = np.array([[0, 1, 2]])
        assert F.cross_entropy(logits, targets) == pytest.approx(np.log(8),
                                                                 rel=1e-5)

    def test_ignore_index_masks_positions(self):
        logits = np.zeros((1, 2, 4), dtype=np.float32)
        logits[0, 0, 1] = 50.0
        targets = np.array([[1, -100]])
        assert F.cross_entropy(logits, targets) < 1e-6

    def test_all_ignored_returns_zero(self):
        logits = np.zeros((1, 2, 4), dtype=np.float32)
        targets = np.full((1, 2), -100)
        assert F.cross_entropy(logits, targets) == 0.0
        grad = F.cross_entropy_backward(logits, targets)
        np.testing.assert_array_equal(grad, 0.0)

    def test_grad_matches_numeric(self, rng):
        logits = rng.normal(size=(1, 3, 5)).astype(np.float64)
        targets = np.array([[1, -100, 4]])
        grad = F.cross_entropy_backward(logits, targets)
        num = _finite_diff(lambda: F.cross_entropy(logits, targets), logits)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_grad_rows_sum_zero_on_valid(self, rng):
        logits = rng.normal(size=(1, 2, 6)).astype(np.float32)
        targets = np.array([[2, 3]])
        grad = F.cross_entropy_backward(logits, targets)
        np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-6)


class TestOneHot:
    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_rows_one_hot(self, n_classes):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, n_classes, size=(3, 4))
        oh = F.one_hot(idx, n_classes)
        assert oh.shape == (3, 4, n_classes)
        np.testing.assert_array_equal(oh.sum(axis=-1), 1.0)
        np.testing.assert_array_equal(np.argmax(oh, axis=-1), idx)
