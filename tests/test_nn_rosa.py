"""RoSA adapters: attach/detach/merge, sparse support, training."""

import numpy as np
import pytest

from repro.nn import (RoSAConfig, TrainingConfig, TransformerConfig,
                      TransformerModel, attach_rosa, detach_rosa, merge_rosa,
                      train_lm)
from repro.nn.rosa import RoSALinear


@pytest.fixture()
def model():
    return TransformerModel(TransformerConfig.tiny(), seed=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RoSAConfig(sparse_density=0.0)
        with pytest.raises(ValueError):
            RoSAConfig(sparse_density=1.5)
        with pytest.raises(ValueError):
            RoSAConfig(rank=0)


class TestAttachDetach:
    def test_attach_wraps_and_freezes(self, model):
        wrapped = attach_rosa(model, RoSAConfig(rank=2))
        assert len(wrapped) == 2 * model.config.n_layers
        assert isinstance(model.layers[0].self_attn.q_proj, RoSALinear)
        for name, param in model.named_parameters():
            trainable_names = ("lora_a", "lora_b", "sparse_values")
            assert param.trainable == any(t in name for t in trainable_names)

    def test_initial_identity(self, model, rng):
        toks = rng.integers(0, 128, size=(1, 6))
        before = model(toks)
        attach_rosa(model, RoSAConfig(rank=2))
        np.testing.assert_allclose(before, model(toks), atol=1e-6)

    def test_sparse_support_size(self, model):
        attach_rosa(model, RoSAConfig(rank=2, sparse_density=0.05))
        layer = model.layers[0].self_attn.q_proj
        expected = int(0.05 * layer.base.weight.data.size)
        assert abs(int(layer.sparse_mask.sum()) - expected) <= \
            0.2 * expected + 8

    def test_detach_restores(self, model, rng):
        toks = rng.integers(0, 128, size=(1, 6))
        before = model(toks)
        attach_rosa(model, RoSAConfig(rank=2))
        adapter = detach_rosa(model)
        np.testing.assert_allclose(before, model(toks), atol=1e-6)
        assert len(adapter.matrices) == 2 * model.config.n_layers

    def test_double_attach_rejected(self, model):
        attach_rosa(model, RoSAConfig(rank=2))
        with pytest.raises(ValueError):
            attach_rosa(model, RoSAConfig(rank=2))

    def test_detach_without_attach(self, model):
        with pytest.raises(ValueError):
            detach_rosa(model)


class TestMergeAndDelta:
    def test_merge_equals_adapter_forward(self, model, rng):
        attach_rosa(model, RoSAConfig(rank=2), seed=1)
        layer = model.layers[0].self_attn.q_proj
        layer.lora_b.data[:] = rng.normal(0, 0.05, layer.lora_b.shape)
        layer.sparse_values.data[layer.sparse_mask] = 0.01
        toks = rng.integers(0, 128, size=(1, 6))
        with_adapter = model(toks)
        adapter = detach_rosa(model)
        merged = TransformerModel(model.config, seed=0)
        merged.load_state_dict(model.state_dict())
        merge_rosa(merged, adapter)
        np.testing.assert_allclose(with_adapter, merged(toks), atol=1e-5)

    def test_delta_state_dict_servable(self, model):
        """The RoSA update is a plain per-layer delta — exactly what the
        decoupled delta-serving path consumes (the §8 claim)."""
        attach_rosa(model, RoSAConfig(rank=2))
        layer = model.layers[0].self_attn.q_proj
        layer.sparse_values.data[layer.sparse_mask] = 0.02
        adapter = detach_rosa(model)
        deltas = adapter.delta_state_dict()
        assert "layers.0.self_attn.q_proj.weight" in deltas
        d = deltas["layers.0.self_attn.q_proj.weight"]
        assert d.shape == layer.base.weight.data.shape
        assert np.any(d != 0)

    def test_nbytes_accounts_sparse_entries(self, model):
        attach_rosa(model, RoSAConfig(rank=2, sparse_density=0.02))
        adapter = detach_rosa(model)
        assert adapter.nbytes() > 0
        dense_bytes = sum(m[3].size * 2 for m in adapter.matrices.values())
        assert adapter.nbytes() < dense_bytes  # far below a dense delta


class TestTraining:
    def test_loss_decreases_and_base_frozen(self, model):
        attach_rosa(model, RoSAConfig(rank=4, sparse_density=0.02))
        base_before = model.layers[0].self_attn.q_proj.base.weight.data.copy()
        rng = np.random.default_rng(0)
        start = rng.integers(0, 8, size=(32, 1))
        x = ((start + np.arange(10)[None, :]) % 20 + 2).astype(np.int64)
        y = np.concatenate([x[:, 1:], np.full((32, 1), -100)], axis=1)
        hist = train_lm(model, x, y, TrainingConfig(epochs=6, lr=1e-2))
        assert hist[-1] < hist[0]
        np.testing.assert_array_equal(
            base_before, model.layers[0].self_attn.q_proj.base.weight.data)

    def test_sparse_values_only_move_on_support(self, model):
        attach_rosa(model, RoSAConfig(rank=2, sparse_density=0.02))
        rng = np.random.default_rng(0)
        x = rng.integers(2, 30, size=(16, 8)).astype(np.int64)
        y = np.concatenate([x[:, 1:], np.full((16, 1), -100)], axis=1)
        train_lm(model, x, y, TrainingConfig(epochs=2, lr=1e-2))
        layer = model.layers[0].self_attn.q_proj
        off_support = layer.sparse_values.data[~layer.sparse_mask]
        np.testing.assert_array_equal(off_support, 0.0)
