"""Decoding: greedy/sampled generation, EOS handling, logprob scoring."""

import numpy as np
import pytest

from repro.nn import (GenerationResult, TransformerConfig, TransformerModel,
                      generate, generate_batch, sequence_logprob)


@pytest.fixture(scope="module")
def trained():
    """Model trained to continue arithmetic successor sequences."""
    from repro.nn import TrainingConfig, train_lm
    model = TransformerModel(TransformerConfig.tiny(), seed=0)
    rng = np.random.default_rng(0)
    start = rng.integers(0, 8, size=(64, 1))
    x = ((start + np.arange(12)[None, :]) % 24 + 2).astype(np.int64)
    y = np.concatenate([x[:, 1:], np.full((64, 1), -100)], axis=1)
    train_lm(model, x, y, TrainingConfig(epochs=12, lr=3e-3))
    return model


class TestGenerate:
    def test_learned_pattern(self, trained):
        out = generate(trained, [5, 6, 7, 8], max_new_tokens=3)
        assert out.tokens == [9, 10, 11]

    def test_greedy_deterministic(self, trained):
        a = generate(trained, [3, 4, 5], max_new_tokens=4)
        b = generate(trained, [3, 4, 5], max_new_tokens=4)
        assert a.tokens == b.tokens

    def test_max_tokens_respected(self, trained):
        out = generate(trained, [3, 4], max_new_tokens=2)
        assert len(out.tokens) <= 2

    def test_eos_stops(self):
        """A model rigged to always emit EOS stops after one token."""
        model = TransformerModel(TransformerConfig.tiny(), seed=0)
        model.lm_head.weight.data[:] = 0.0
        model.lm_head.weight.data[model.config.eos_token] = 10.0
        out = generate(model, [5, 6], max_new_tokens=8)
        assert out.finished_by_eos
        assert out.tokens[-1] == model.config.eos_token
        assert len(out.tokens) == 1

    def test_full_sequence_property(self, trained):
        out = generate(trained, [3, 4], max_new_tokens=2)
        assert out.full_sequence[:2] == [3, 4]
        assert out.full_sequence[2:] == out.tokens

    def test_sampling_reproducible_with_seed(self, trained):
        rng1 = np.random.default_rng(11)
        rng2 = np.random.default_rng(11)
        a = generate(trained, [3, 4, 5], max_new_tokens=5, temperature=1.0,
                     rng=rng1)
        b = generate(trained, [3, 4, 5], max_new_tokens=5, temperature=1.0,
                     rng=rng2)
        assert a.tokens == b.tokens

    def test_prompt_budget_respects_max_seq(self, trained):
        max_seq = trained.config.max_seq
        prompt = list(np.arange(2, max_seq - 2).astype(int) % 20 + 2)
        out = generate(trained, prompt, max_new_tokens=100)
        assert len(out.prompt) + len(out.tokens) <= max_seq


class TestGenerateBatch:
    def test_matches_individual(self, trained):
        prompts = [[3, 4, 5], [7, 8, 9]]
        batch = generate_batch(trained, prompts, max_new_tokens=3)
        singles = [generate(trained, p, max_new_tokens=3) for p in prompts]
        assert [r.tokens for r in batch] == [r.tokens for r in singles]


class TestSequenceLogprob:
    def test_learned_continuation_preferred(self, trained):
        right = sequence_logprob(trained, [5, 6, 7], [8])
        wrong = sequence_logprob(trained, [5, 6, 7], [19])
        assert right > wrong

    def test_additivity(self, trained):
        both = sequence_logprob(trained, [5, 6], [7, 8])
        first = sequence_logprob(trained, [5, 6], [7])
        second = sequence_logprob(trained, [5, 6, 7], [8])
        assert both == pytest.approx(first + second, abs=1e-4)

    def test_empty_continuation_raises(self, trained):
        with pytest.raises(ValueError):
            sequence_logprob(trained, [5, 6], [])

    def test_always_nonpositive(self, trained):
        assert sequence_logprob(trained, [5, 6, 7], [8]) <= 0.0
