"""Edge cases for EventQueue.remove_request, KeyedHeap, and the Chrome
trace exporter (empty journals, cancel-before-arrival orphan records)."""

import io
import json

import pytest

from repro.sim import (Arrival, Cancel, EventQueue, IterationDone, KeyedHeap,
                       ReplicaSpawn)
from repro.sim.trace_export import chrome_trace_events, export_chrome_trace
from repro.workload.spec import TraceRequest


def _arrival(request_id, at_s):
    request = TraceRequest(request_id=request_id, model_id=f"m{request_id}",
                           arrival_s=at_s, prompt_tokens=4, output_tokens=4)
    return Arrival(time=at_s, request=request)


# --------------------------------------------------------------------- #
# EventQueue.remove_request
# --------------------------------------------------------------------- #
class TestRemoveRequest:
    def test_remove_from_empty_queue_returns_none(self):
        assert EventQueue().remove_request(1) is None

    def test_remove_missing_id_returns_none_and_keeps_queue(self):
        queue = EventQueue()
        queue.push(_arrival(1, 1.0))
        assert queue.remove_request(99) is None
        assert len(queue) == 1

    def test_remove_middle_event_keeps_pop_order(self):
        queue = EventQueue()
        for rid, t in ((1, 1.0), (2, 2.0), (3, 3.0)):
            queue.push(_arrival(rid, t))
        removed = queue.remove_request(2)
        assert removed.request_id == 2
        assert [e.request_id for e in queue.pop_due(10.0)] == [1, 3]

    def test_remove_last_event_empties_queue(self):
        queue = EventQueue()
        queue.push(_arrival(7, 1.0))
        assert queue.remove_request(7).request_id == 7
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_remove_keeps_count_after_consistent(self):
        # the sorted-times index must shrink with the heap, or the
        # autoscaler's backlog signal drifts after a cancellation
        queue = EventQueue()
        for rid, t in ((1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)):
            queue.push(_arrival(rid, t))
        queue.remove_request(3)
        assert queue.count_after(0.0) == 3
        assert queue.count_after(2.0) == 1
        assert queue.count_after(4.0) == 0

    def test_remove_after_pops_with_lazy_head(self):
        # pops advance a lazy head into the times index; a removal must
        # respect it rather than deleting an already-dead slot
        queue = EventQueue()
        for rid in range(1, 6):
            queue.push(_arrival(rid, float(rid)))
        assert queue.pop().request_id == 1
        assert queue.pop().request_id == 2
        assert queue.remove_request(4).request_id == 4
        assert queue.count_after(0.0) == 2
        assert [e.request_id for e in queue.pop_due(10.0)] == [3, 5]

    def test_remove_matches_cancel_events_too(self):
        queue = EventQueue()
        queue.push(Cancel(time=5.0, request_id=11))
        assert queue.remove_request(11).time == 5.0


class TestKeyedHeap:
    def test_orders_by_key_with_insertion_tiebreak(self):
        heap = KeyedHeap()
        heap.push((2.0, 1), "b")
        heap.push((1.0, 9), "a")
        heap.push((2.0, 1), "c")  # same key: insertion order wins
        assert heap.peek_key() == (1.0, 9)
        assert [heap.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_items_are_never_compared(self):
        heap = KeyedHeap()
        heap.push((1.0,), object())
        heap.push((1.0,), object())  # unorderable payloads are fine
        assert len(heap) == 2
        heap.pop()
        assert heap.peek() is not None

    def test_remove_where(self):
        heap = KeyedHeap()
        for i in range(4):
            heap.push((float(i),), f"item{i}")
        assert heap.remove_where(lambda s: s == "item2") == "item2"
        assert heap.remove_where(lambda s: s == "nope") is None
        assert [heap.pop() for _ in range(3)] == ["item0", "item1", "item3"]

    def test_clear_and_bool(self):
        heap = KeyedHeap()
        assert not heap
        heap.push((0.0,), "x")
        assert heap
        heap.clear()
        assert not heap and heap.peek() is None


# --------------------------------------------------------------------- #
# trace export
# --------------------------------------------------------------------- #
class TestTraceExport:
    def test_empty_journal_exports_valid_trace(self):
        buffer = io.StringIO()
        assert export_chrome_trace([], buffer) == 0
        payload = json.loads(buffer.getvalue())
        assert payload["traceEvents"] == []

    def test_cancel_before_arrival_orphan_records(self):
        # a cancel journaled for a request that never arrived (the
        # client withdrew before the arrival frontier) must still render
        journal = [Cancel(time=0.5, request_id=42, reason="cancel")]
        events = chrome_trace_events(journal)
        assert len(events) == 1
        assert events[0]["name"] == "cancel:cancel"
        assert events[0]["args"]["request_id"] == 42
        assert events[0]["ts"] == pytest.approx(0.5e6)

    def test_iteration_span_and_instant_mix(self):
        journal = [
            _arrival(1, 0.0),
            IterationDone(time=1.0, iter_time_s=0.25, load_time_s=0.05,
                          n_running=1, source="replica-0"),
            ReplicaSpawn(time=2.0, replica_id=1),
        ]
        events = chrome_trace_events(journal)
        phases = [e["ph"] for e in events]
        assert phases == ["i", "X", "i"]
        span = events[1]
        assert span["tid"] == "replica-0"
        assert span["dur"] == pytest.approx(0.3e6)
        assert span["ts"] == pytest.approx((1.0 - 0.3) * 1e6)

    def test_unknown_event_lands_on_generic_track(self):
        from dataclasses import dataclass
        from repro.sim.events import Event

        @dataclass(frozen=True)
        class Weird(Event):
            pass

        events = chrome_trace_events([Weird(time=1.0)])
        assert events[0]["tid"] == "events"
        assert events[0]["name"] == "Weird"

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        journal = [_arrival(1, 0.0), Cancel(time=1.0, request_id=1)]
        assert export_chrome_trace(journal, str(path)) == 2
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 2
        assert payload["displayTimeUnit"] == "ms"
