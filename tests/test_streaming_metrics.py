"""Streaming metrics: sketches, reservoirs, record policies, hot paths.

Covers the million-request-scale machinery:

* ``QuantileSketch`` keeps every quantile within the documented
  ``SKETCH_RELATIVE_ERROR`` of the exact order statistics, and merges
  losslessly (bin addition);
* ``ReservoirSampler`` is spawn-key seeded — run-to-run deterministic;
* KEEP_ALL runs carry both exact records and sketches, so the sketch
  answers are checkable against ground truth across every engine and
  every gateway wrapper (the acceptance property);
* releasing policies (SAMPLE_K / DROP) keep engine and wrapper memory
  O(active) while ``summarize()`` stays total and within error bounds;
* the ``ServingResult`` sorted-latency cache and one-pass percentile
  batches agree with the scalar accessors;
* the vectorized ``IterationCostModel`` passes reproduce the scalar
  kernel compositions bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.hardware.kernels import GemmShape, dense_gemm_time, sbmm_time
from repro.hardware.specs import A100, RTX3090
from repro.serving import (BatchComposition, ClusterGateway, EngineConfig,
                           IterationCostModel, LLAMA_13B, LLAMA_7B,
                           ModelManager, QuantileSketch, RecordPolicy,
                           ReservoirSampler, SchedulerConfig, ServingGateway,
                           SKETCH_RELATIVE_ERROR, StreamingMetrics, Tenant,
                           TenantGateway, create_engine, summarize)
from repro.serving.metrics import ServingResult
from repro.serving.request import RequestRecord
from repro.workload.spec import Trace, TraceRequest

ALPHA = SKETCH_RELATIVE_ERROR
N_MODELS = 4


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def bracket(sorted_vals: np.ndarray, q: float):
    """Exact order-statistic bracket [lo, hi] for percentile ``q``."""
    rank = q / 100.0 * (len(sorted_vals) - 1)
    return (float(sorted_vals[int(np.floor(rank))]),
            float(sorted_vals[int(np.ceil(rank))]))


def assert_within_bound(estimate: float, sorted_vals: np.ndarray, q: float):
    lo, hi = bracket(sorted_vals, q)
    assert lo * (1 - ALPHA) - 1e-12 <= estimate <= hi * (1 + ALPHA) + 1e-12, \
        f"q={q}: {estimate} outside [{lo * (1 - ALPHA)}, {hi * (1 + ALPHA)}]"


def make_manager() -> ModelManager:
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"v{i}", "base", 8.0)
    return mgr


def make_trace(n: int = 160, seed: int = 11) -> Trace:
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(0.05, size=n))
    requests = [
        TraceRequest(request_id=i, model_id=f"v{i % N_MODELS}",
                     arrival_s=float(times[i]), prompt_tokens=32,
                     output_tokens=int(4 + (i * 5) % 12),
                     tenant_id=f"t{i % 2}")
        for i in range(n)
    ]
    return Trace(requests=requests,
                 model_ids=[f"v{i}" for i in range(N_MODELS)],
                 duration_s=float(times[-1]) + 1.0)


def build_gateway(engine_name: str, wrapper: str, policy: RecordPolicy,
                  sample_k: int = 64):
    mgr = make_manager()
    config = EngineConfig(tp_degree=1, record_policy=policy,
                          sample_k=sample_k)

    def factory(node=None):
        return create_engine(
            engine_name, mgr, node or GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=config)

    if wrapper == "plain":
        return ServingGateway(factory())
    if wrapper == "cluster":
        return ClusterGateway(engine_factory=factory,
                              cluster=Cluster.from_name("a800", 2, 1),
                              n_replicas=2)
    if wrapper == "tenant":
        return TenantGateway(ServingGateway(factory()),
                             tenants=[Tenant("t0"), Tenant("t1")])
    raise AssertionError(wrapper)


ENGINE_NAMES = ("deltazip", "vllm-scb", "dedicated")
WRAPPERS = ("plain", "cluster", "tenant")


# --------------------------------------------------------------------- #
# sketch unit properties
# --------------------------------------------------------------------- #
class TestQuantileSketch:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "heavy",
                                      "duplicates"])
    def test_quantiles_within_relative_error(self, dist):
        rng = np.random.default_rng(3)
        if dist == "uniform":
            vals = rng.uniform(0.01, 10.0, size=4000)
        elif dist == "lognormal":
            vals = rng.lognormal(mean=-1.0, sigma=1.5, size=4000)
        elif dist == "heavy":
            vals = rng.pareto(1.5, size=4000) + 1e-3
        else:
            vals = np.repeat(rng.uniform(0.1, 5.0, size=40), 100)
        sketch = QuantileSketch()
        for v in vals:
            sketch.add(float(v))
        ordered = np.sort(vals)
        for q in (0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0):
            assert_within_bound(sketch.quantile(q), ordered, q)

    def test_exact_moments(self):
        vals = [0.5, 1.25, 3.0, 0.125, 9.0]
        sketch = QuantileSketch()
        for v in vals:
            sketch.add(v)
        assert sketch.count == len(vals)
        assert sketch.total == pytest.approx(sum(vals), rel=1e-12)
        assert sketch.min_value == min(vals)
        assert sketch.max_value == max(vals)
        assert sketch.mean == pytest.approx(np.mean(vals), rel=1e-12)

    def test_merge_equals_union(self):
        rng = np.random.default_rng(7)
        a_vals = rng.lognormal(size=800)
        b_vals = rng.uniform(0.001, 50.0, size=1200)
        a, b = QuantileSketch(), QuantileSketch()
        for v in a_vals:
            a.add(float(v))
        for v in b_vals:
            b.add(float(v))
        merged = a.copy()
        merged.merge(b)
        ordered = np.sort(np.concatenate([a_vals, b_vals]))
        assert merged.count == 2000
        assert merged.total == pytest.approx(a.total + b.total, rel=1e-12)
        for q in (1.0, 50.0, 95.0, 99.0):
            assert_within_bound(merged.quantile(q), ordered, q)

    def test_count_leq(self):
        sketch = QuantileSketch()
        vals = [0.1, 0.2, 0.5, 1.0, 2.0, 4.0]
        for v in vals:
            sketch.add(v)
        # thresholds far from bin edges: the count must be exact
        assert sketch.count_leq(0.05) == 0
        assert sketch.count_leq(0.3) == 2
        assert sketch.count_leq(100.0) == 6

    def test_zero_and_tiny_values(self):
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(1e-12)
        sketch.add(1.0)
        assert sketch.count == 3
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(100.0) == pytest.approx(1.0, rel=ALPHA)

    def test_copy_is_independent(self):
        a = QuantileSketch()
        a.add(1.0)
        b = a.copy()
        b.add(100.0)
        assert a.count == 1 and b.count == 2
        assert a.max_value == 1.0

    def test_empty_sketch_is_total(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(50.0) == 0.0
        assert sketch.mean == 0.0


class TestReservoirSampler:
    def test_run_to_run_deterministic(self):
        def fill(seed):
            sampler = ReservoirSampler(16, sample_seed=seed)
            for i in range(500):
                sampler.offer(i)
            return sampler.samples

        assert fill(0) == fill(0)
        assert fill(1) == fill(1)
        assert fill(0) != fill(1)

    def test_keeps_everything_below_k(self):
        sampler = ReservoirSampler(32, sample_seed=0)
        for i in range(20):
            sampler.offer(i)
        assert sampler.samples == list(range(20))
        assert sampler.n_offered == 20

    def test_sample_is_subset(self):
        sampler = ReservoirSampler(8, sample_seed=2)
        for i in range(300):
            sampler.offer(i)
        samples = sampler.samples
        assert len(samples) == 8
        assert all(0 <= s < 300 for s in samples)


# --------------------------------------------------------------------- #
# the acceptance property: sketches vs exact, engines x wrappers
# --------------------------------------------------------------------- #
class TestSketchMatchesExact:
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    @pytest.mark.parametrize("wrapper", WRAPPERS)
    def test_keepall_sketch_within_error(self, engine_name, wrapper):
        """On KEEP_ALL runs both the exact records and the sketches
        exist; every sketch percentile must sit inside the documented
        bracket of the exact order statistics."""
        gateway = build_gateway(engine_name, wrapper, RecordPolicy.KEEP_ALL)
        result = gateway.replay(make_trace())
        stream = result.stream
        assert stream is not None and stream.complete
        finished = [r for r in result.records if r.finished]
        assert len(finished) == 160
        e2e = np.sort(np.array([r.e2e_latency_s for r in finished]))
        ttft = np.sort(np.array([r.ttft_s for r in finished]))
        for q in (50.0, 90.0, 99.0):
            assert_within_bound(stream.percentile_e2e_s(q), e2e, q)
            assert_within_bound(stream.percentile_ttft_s(q), ttft, q)
        # exact moments agree exactly (sum/count are not sketched)
        assert stream.n_finished == len(finished)
        assert stream.mean_e2e_s() == pytest.approx(float(np.mean(e2e)),
                                                    rel=1e-9)

    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_summarize_equivalent_across_policies(self, engine_name):
        """DROP answers ``summarize()`` from sketches alone; counts and
        means must match KEEP_ALL exactly, percentiles within bound."""
        trace = make_trace()
        keep = build_gateway(engine_name, "plain",
                             RecordPolicy.KEEP_ALL).replay(trace)
        drop = build_gateway(engine_name, "plain",
                             RecordPolicy.DROP).replay(trace)
        s_keep, s_drop = summarize(keep), summarize(drop)
        assert s_drop["n_requests"] == s_keep["n_requests"] == 160
        assert s_drop["n_finished"] == s_keep["n_finished"]
        assert s_drop["makespan_s"] == pytest.approx(s_keep["makespan_s"])
        assert s_drop["mean_e2e_s"] == pytest.approx(s_keep["mean_e2e_s"],
                                                     rel=1e-9)
        e2e = np.sort(np.array([r.e2e_latency_s for r in keep.records
                                if r.finished]))
        ttft = np.sort(np.array([r.ttft_s for r in keep.records
                                 if r.finished]))
        for q in (50, 90, 99):
            assert_within_bound(s_drop[f"p{q}_e2e_s"], e2e, float(q))
            assert_within_bound(s_drop[f"p{q}_ttft_s"], ttft, float(q))

    def test_per_tenant_slices_from_sketches(self):
        trace = make_trace()
        keep = build_gateway("deltazip", "plain",
                             RecordPolicy.KEEP_ALL).replay(trace)
        drop = build_gateway("deltazip", "plain",
                             RecordPolicy.DROP).replay(trace)
        assert set(drop.tenant_ids) == set(keep.tenant_ids) == {"t0", "t1"}
        for tenant in keep.tenant_ids:
            sliced_keep = keep.for_tenant(tenant)
            sliced_drop = drop.for_tenant(tenant)
            assert sliced_drop.n_finished == sliced_keep.n_finished
            e2e = np.sort(np.array([r.e2e_latency_s
                                    for r in sliced_keep.records
                                    if r.finished]))
            assert_within_bound(sliced_drop.percentile_e2e_s(99), e2e, 99.0)

    def test_slo_attainment_from_sketches(self):
        trace = make_trace()
        keep = build_gateway("deltazip", "plain",
                             RecordPolicy.KEEP_ALL).replay(trace)
        drop = build_gateway("deltazip", "plain",
                             RecordPolicy.DROP).replay(trace)
        finished = [r for r in keep.records if r.finished]
        for slo_s in (0.05, 0.2, 1.0, 5.0):
            exact = keep.slo_attainment(slo_s, metric="e2e")
            est = drop.slo_attainment(slo_s, metric="e2e")
            # a sketched threshold count can only misplace samples whose
            # latency lies within +-alpha of the threshold itself
            near = sum(1 for r in finished
                       if slo_s * (1 - 2 * ALPHA) <= r.e2e_latency_s
                       <= slo_s * (1 + 2 * ALPHA))
            assert abs(est - exact) <= (near + 1e-9) / len(finished)


# --------------------------------------------------------------------- #
# releasing policies: determinism and O(active) memory
# --------------------------------------------------------------------- #
class TestRecordPolicies:
    def test_sample_k_runs_are_identical(self):
        trace = make_trace()

        def run():
            gateway = build_gateway("deltazip", "plain",
                                    RecordPolicy.SAMPLE_K, sample_k=32)
            result = gateway.replay(trace)
            return [(r.request_id, r.finish_s, r.first_token_s)
                    for r in result.records]

        first, second = run(), run()
        assert first == second
        assert len(first) == 32

    def test_sampled_records_are_real_completions(self):
        trace = make_trace()
        keep = build_gateway("deltazip", "plain",
                             RecordPolicy.KEEP_ALL).replay(trace)
        sampled = build_gateway("deltazip", "plain", RecordPolicy.SAMPLE_K,
                                sample_k=32).replay(trace)
        exact = {(r.request_id, r.finish_s, r.first_token_s)
                 for r in keep.records}
        assert all((r.request_id, r.finish_s, r.first_token_s) in exact
                   for r in sampled.records)

    def test_drop_keeps_engine_memory_o_active(self):
        gateway = build_gateway("deltazip", "plain", RecordPolicy.DROP)
        gateway.replay(make_trace())
        engine = gateway.engine
        assert engine.finished == []
        assert engine.lookup(0) is None  # _live released at retire
        assert gateway.result().n_requests == 160

    def test_keepall_retains_requests(self):
        gateway = build_gateway("deltazip", "plain", RecordPolicy.KEEP_ALL)
        gateway.replay(make_trace())
        assert len(gateway.engine.finished) == 160
        assert gateway.engine.lookup(0) is not None

    def test_drop_releases_gateway_handles(self):
        gateway = build_gateway("deltazip", "plain", RecordPolicy.DROP)
        handle = gateway.submit("v0", 16, 4)
        gateway.run_until_drained()
        assert gateway._handles == {}
        # the handle itself still answers from its terminal record
        assert handle.record() is not None
        assert handle.record().finished

    def test_drop_releases_cluster_maps(self):
        gateway = build_gateway("deltazip", "cluster", RecordPolicy.DROP)
        result = gateway.replay(make_trace())
        assert result.n_requests == 160
        assert gateway._handles == {}
        assert gateway._owner == {}

    def test_drop_releases_tenant_handles(self):
        gateway = build_gateway("deltazip", "tenant", RecordPolicy.DROP)
        result = gateway.replay(make_trace())
        assert result.n_requests == 160
        assert gateway._handles == {}

    def test_merge_composes_streams(self):
        trace = make_trace()
        half_a = Trace(requests=trace.requests[:80],
                       model_ids=trace.model_ids, duration_s=trace.duration_s)
        half_b = Trace(requests=[
            TraceRequest(request_id=r.request_id - 80, model_id=r.model_id,
                         arrival_s=r.arrival_s, prompt_tokens=r.prompt_tokens,
                         output_tokens=r.output_tokens, tenant_id=r.tenant_id)
            for r in trace.requests[80:]], model_ids=trace.model_ids,
            duration_s=trace.duration_s)
        res_a = build_gateway("deltazip", "plain",
                              RecordPolicy.DROP).replay(half_a)
        res_b = build_gateway("deltazip", "plain",
                              RecordPolicy.DROP).replay(half_b)
        merged = ServingResult.merge([res_a, res_b])
        assert merged.n_requests == 160
        assert merged.stream is not None
        assert merged.stream.n_finished == \
            res_a.stream.n_finished + res_b.stream.n_finished
        assert merged.mean_e2e_latency_s() > 0.0


# --------------------------------------------------------------------- #
# ServingResult hot paths: latency cache and one-pass percentiles
# --------------------------------------------------------------------- #
def synthetic_result(n=200, seed=5) -> ServingResult:
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        arrival = float(i) * 0.01
        first = arrival + float(rng.uniform(0.01, 0.5))
        finish = first + float(rng.uniform(0.05, 3.0))
        records.append(RequestRecord(
            request_id=i, model_id="m", arrival_s=arrival,
            first_token_s=first, finish_s=finish, prompt_tokens=8,
            output_tokens=4, queue_wait_s=0.0, loading_s=0.0,
            inference_s=finish - first, skipped_line=False, preemptions=0))
    return ServingResult(engine="t", records=records, makespan_s=10.0)


class TestLatencyCache:
    def test_cached_percentiles_match_numpy(self):
        res = synthetic_result()
        e2e = np.array([r.e2e_latency_s for r in res.records])
        for q in (0, 25, 50, 90, 99, 100):
            expected = float(np.percentile(e2e, q))
            assert res.percentile_e2e_s(q) == pytest.approx(expected,
                                                            rel=1e-12)
            # second call answers from the cache — identical
            assert res.percentile_e2e_s(q) == res.percentile_e2e_s(q)

    def test_one_pass_batch_equals_scalar_calls(self):
        res = synthetic_result()
        qs = (50.0, 90.0, 99.0)
        batch_e2e = res.percentiles_e2e_s(qs)
        batch_ttft = res.percentiles_ttft_s(qs)
        for q, be, bt in zip(qs, batch_e2e, batch_ttft):
            assert be == res.percentile_e2e_s(q)
            assert bt == res.percentile_ttft_s(q)

    def test_merge_does_not_reuse_stale_cache(self):
        res_a, res_b = synthetic_result(seed=5), synthetic_result(seed=6)
        # warm both caches first
        res_a.percentile_e2e_s(50)
        res_b.percentile_e2e_s(50)
        merged = ServingResult.merge([res_a, res_b])
        combined = np.array([r.e2e_latency_s for r in res_a.records]
                            + [r.e2e_latency_s for r in res_b.records])
        assert merged.percentile_e2e_s(90) == pytest.approx(
            float(np.percentile(combined, 90)), rel=1e-12)

    def test_summary_uses_batch_percentiles(self):
        res = synthetic_result()
        s = summarize(res)
        assert s["p50_e2e_s"] == res.percentile_e2e_s(50)
        assert s["p99_ttft_s"] == res.percentile_ttft_s(99)


# --------------------------------------------------------------------- #
# StreamingMetrics sink unit behavior
# --------------------------------------------------------------------- #
class TestStreamingMetricsSink:
    def record(self, rid, finish, tenant=None):
        return RequestRecord(request_id=rid, model_id="m", arrival_s=0.0,
                             first_token_s=finish / 2.0, finish_s=finish,
                             prompt_tokens=4, output_tokens=4,
                             queue_wait_s=0.0, loading_s=0.0,
                             inference_s=finish, skipped_line=False,
                             preemptions=0, tenant_id=tenant)

    def test_drop_retains_no_records(self):
        sink = StreamingMetrics(policy=RecordPolicy.DROP)
        for i in range(100):
            sink.observe(self.record(i, float(i + 1)))
        assert sink.records == []
        assert sink.n_observed == 100
        assert not sink.complete

    def test_keepall_is_complete(self):
        sink = StreamingMetrics(policy=RecordPolicy.KEEP_ALL)
        sink.observe(self.record(0, 1.0))
        assert sink.complete
        assert len(sink.records) == 1

    def test_tenant_counters(self):
        sink = StreamingMetrics(policy=RecordPolicy.DROP)
        for i in range(10):
            sink.observe(self.record(i, float(i + 1),
                                     tenant="a" if i % 2 else "b"))
        assert sink.tenant_counters("a").finished == 5
        assert sink.tenant_counters("b").finished == 5
        assert sink.for_tenant("a").n_finished == 5

    def test_merge_keeps_exact_counts(self):
        a = StreamingMetrics(policy=RecordPolicy.DROP)
        b = StreamingMetrics(policy=RecordPolicy.DROP)
        for i in range(30):
            (a if i % 2 else b).observe(self.record(i, float(i + 1)))
        a.merge_from(b)
        assert a.n_finished == 30
        assert a.max_finish_s == 30.0


# --------------------------------------------------------------------- #
# vectorized cost model == scalar kernel composition, bit for bit
# --------------------------------------------------------------------- #
def ref_base_pass(model, m):
    """The pre-vectorization scalar loop, verbatim."""
    if m == 0:
        return 0.0
    total = 0.0
    for k, n in model.spec.layer_gemm_shapes():
        total += dense_gemm_time(GemmShape(m, k, n // model.tp), model.gpu)
    return total * model.spec.n_layers + model._lm_head(m)


def ref_delta_pass(model, rows):
    counts = [c for c in rows if c > 0]
    if not counts:
        return 0.0
    total = 0.0
    for k, n in model.spec.layer_gemm_shapes():
        total += sbmm_time(counts, k, n // model.tp, model.gpu,
                           impl=model.sbmm_impl,
                           weight_bits=model.delta_bits,
                           density=model.delta_density).total
    return total * model.spec.n_layers


def ref_lora_pass(model, rows):
    counts = [c for c in rows if c > 0]
    if not counts or model.lora_rank <= 0:
        return 0.0
    r = model.lora_rank
    total = 0.0
    for k, n in model.spec.layer_gemm_shapes():
        down = sbmm_time(counts, k, r, model.gpu, impl="sbmm",
                         weight_bits=16, density=1.0)
        up = sbmm_time(counts, r, n // model.tp, model.gpu, impl="sbmm",
                       weight_bits=16, density=1.0)
        total += (down.total + up.compute) / 0.5 * 0.5
    return total * model.spec.n_layers


ROW_SETS = ([1], [3, 0, 5], [8, 8, 8, 8], [1, 2, 3, 4, 5, 6, 7, 8],
            [100, 1], [0, 0, 7])
M_VALUES = (1, 3, 17, 64, 100, 4096)


class TestCostModelBitExact:
    @pytest.mark.parametrize("spec", [LLAMA_7B, LLAMA_13B],
                             ids=["7b", "13b"])
    @pytest.mark.parametrize("gpu", [A100, RTX3090], ids=["a100", "3090"])
    @pytest.mark.parametrize("tp", [1, 4])
    def test_base_pass(self, spec, gpu, tp):
        model = IterationCostModel(spec, gpu, tp_degree=tp)
        for m in M_VALUES:
            assert model._base_pass(m) == ref_base_pass(model, m)

    @pytest.mark.parametrize("impl", ["sbmm", "sbmm_reorder", "fp16_bmm",
                                      "fp16_forloop", "naive_forloop"])
    def test_delta_pass_all_impls(self, impl):
        model = IterationCostModel(LLAMA_7B, A100, sbmm_impl=impl)
        for rows in ROW_SETS:
            assert model._delta_pass(rows) == ref_delta_pass(model, rows)

    @pytest.mark.parametrize("tp", [1, 4])
    def test_lora_pass(self, tp):
        model = IterationCostModel(LLAMA_7B, A100, tp_degree=tp,
                                   lora_rank=16)
        for rows in ROW_SETS:
            assert model._lora_pass(rows) == ref_lora_pass(model, rows)

    def test_iteration_time_end_to_end(self):
        model = IterationCostModel(LLAMA_7B, A100, tp_degree=2)
        batch = BatchComposition(
            decode_per_delta={"a": 3, "b": 5},
            prefill_tokens_per_delta={"a": 64, "c": 32},
            context_tokens=2048)
        expected_rows = [3 + 64, 5, 32]
        base = ref_base_pass(model, 8 + 96)
        variant = ref_delta_pass(model, expected_rows)
        attn = model._attention(2048, 104)
        ar = model._allreduce(104)
        assert model.iteration_time(batch) == \
            max(base, variant) + attn + ar + 2e-3

    def test_memo_does_not_change_answers(self):
        model = IterationCostModel(LLAMA_7B, A100)
        first = model._base_pass(17)
        assert model._base_pass(17) == first  # memo hit
        assert model._delta_pass([3, 5]) == model._delta_pass([3, 5])
