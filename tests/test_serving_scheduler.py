"""Scheduler: FCFS, (K, N) limits, skip-the-line semantics, preemption."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.request import RequestState, ServingRequest
from repro.serving.scheduler import ContinuousBatchScheduler, SchedulerConfig
from repro.workload.spec import TraceRequest


def make_request(rid, model, arrival=0.0, prompt=8, output=4):
    return ServingRequest(trace=TraceRequest(
        request_id=rid, model_id=model, arrival_s=arrival,
        prompt_tokens=prompt, output_tokens=output))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_requests=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_concurrent_deltas=0)


class TestAdmission:
    def test_fcfs_order(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(4, 4))
        for rid in (2, 0, 1):
            sched.add(make_request(rid, f"m{rid}"))
        decision = sched.schedule([], [])
        assert [r.request_id for r in decision.admitted] == [0, 1, 2]

    def test_k_limit(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(2, 8))
        for rid in range(5):
            sched.add(make_request(rid, "m0"))
        decision = sched.schedule([], [])
        assert len(decision.admitted) == 2
        assert len(sched) == 3

    def test_n_limit_bounds_distinct_deltas(self):
        sched = ContinuousBatchScheduler(
            SchedulerConfig(max_batch_requests=8, max_concurrent_deltas=2))
        for rid in range(6):
            sched.add(make_request(rid, f"m{rid % 3}"))
        decision = sched.schedule([], [])
        assert len(decision.selected_deltas) <= 2
        # m2's requests stay queued
        assert all(r.model_id != "m2" for r in decision.admitted)
        assert any(r.model_id == "m2" for r in sched.queued)

    def test_running_deltas_count_toward_n(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 2))
        running = [make_request(100, "a"), make_request(101, "b")]
        sched.add(make_request(0, "c"))
        decision = sched.schedule(running, ["a", "b"])
        assert decision.admitted == []

    def test_running_capacity_counts_toward_k(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(2, 8))
        running = [make_request(100, "a"), make_request(101, "a")]
        sched.add(make_request(0, "a"))
        decision = sched.schedule(running, ["a"])
        assert decision.admitted == []

    def test_new_deltas_reported(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 8))
        sched.add(make_request(0, "x"))
        sched.add(make_request(1, "y"))
        decision = sched.schedule([], ["x"])  # x already resident
        assert decision.new_deltas == ["y"]


class TestSkipTheLine:
    def test_skip_marks_and_parents(self):
        """Queue: m0, m1, m2, m0 with N=2 -> the last m0 request skips over
        m2 and records the first m0 request as parent."""
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 2))
        for rid, model in [(0, "m0"), (1, "m1"), (2, "m2"), (3, "m0")]:
            sched.add(make_request(rid, model))
        decision = sched.schedule([], [])
        admitted = {r.request_id: r for r in decision.admitted}
        assert set(admitted) == {0, 1, 3}
        assert admitted[3].skipped_line
        assert admitted[3].parent_id == 0
        assert not admitted[0].skipped_line

    def test_no_skip_flag_without_blocked_predecessor(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 4))
        for rid in range(3):
            sched.add(make_request(rid, "m0"))
        decision = sched.schedule([], [])
        assert not any(r.skipped_line for r in decision.admitted)

    def test_parent_can_be_running_request(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 2))
        parent = make_request(0, "m0")
        running = [parent, make_request(1, "m1")]
        sched.add(make_request(2, "m2"))  # blocked (N=2 used)
        sched.add(make_request(3, "m0"))  # skips, drafts behind running m0
        decision = sched.schedule(running, ["m0", "m1"])
        admitted = {r.request_id: r for r in decision.admitted}
        assert set(admitted) == {3}
        assert admitted[3].parent_id == 0

    def test_preemption_disabled_no_parent(self):
        sched = ContinuousBatchScheduler(
            SchedulerConfig(8, 2, preemption=False))
        for rid, model in [(0, "m0"), (1, "m1"), (2, "m2"), (3, "m0")]:
            sched.add(make_request(rid, model))
        decision = sched.schedule([], [])
        admitted = {r.request_id: r for r in decision.admitted}
        assert admitted[3].skipped_line
        assert admitted[3].parent_id is None


class TestPreemption:
    def test_children_identified(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 2))
        parent = make_request(0, "m0")
        parent.finish_s = 1.0
        child = make_request(3, "m0")
        child.parent_id = 0
        running = [child, make_request(4, "m1")]
        children = sched.children_to_preempt(parent, running)
        assert children == [child]

    def test_done_children_not_preempted(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 2))
        parent = make_request(0, "m0")
        child = make_request(3, "m0", output=2)
        child.parent_id = 0
        child.generated_tokens = 2  # done
        assert sched.children_to_preempt(parent, [child]) == []

    def test_reinsert_restores_fcfs_position(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(8, 8))
        late = make_request(5, "m0")
        sched.add(make_request(7, "m1"))
        sched.reinsert(late)
        assert [r.request_id for r in sched.queued] == [5, 7]
        assert late.state == RequestState.PREEMPTED
        assert late.parent_id is None


class TestConservation:
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30),
           st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_no_request_lost_or_duplicated(self, model_picks, k, n):
        """Property: admitted + still-queued == everything added."""
        sched = ContinuousBatchScheduler(SchedulerConfig(k, n))
        for rid, pick in enumerate(model_picks):
            sched.add(make_request(rid, f"m{pick}"))
        decision = sched.schedule([], [])
        admitted_ids = {r.request_id for r in decision.admitted}
        queued_ids = {r.request_id for r in sched.queued}
        assert admitted_ids | queued_ids == set(range(len(model_picks)))
        assert admitted_ids & queued_ids == set()
        assert len(decision.admitted) <= k
        assert len({r.model_id for r in decision.admitted}) <= n
