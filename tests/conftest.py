"""Shared fixtures: small trained models reused across the test session.

Training even the tiny substrate costs ~1 s per model, so the expensive
artifacts (pre-trained base, fine-tuned variant, compressed delta) are
built once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CompressionConfig, DeltaCompressor
from repro.evaluation import make_task, pretrain_base_model, run_fmt
from repro.nn import TransformerConfig, TransformerModel


@pytest.fixture(scope="session")
def tiny_config() -> TransformerConfig:
    return TransformerConfig.tiny(vocab_size=128, max_seq=64)


@pytest.fixture(scope="session")
def base_model(tiny_config) -> TransformerModel:
    return pretrain_base_model(tiny_config, n_sequences=128, epochs=4, seed=0)


@pytest.fixture(scope="session")
def review_task():
    return make_task("review")


@pytest.fixture(scope="session")
def finetuned(base_model, review_task):
    """FMT checkpoint + calibration tokens for the review task."""
    return run_fmt(base_model, review_task, n_train=128, epochs=5, seed=0)


@pytest.fixture(scope="session")
def base_state(base_model):
    return base_model.state_dict()


@pytest.fixture(scope="session")
def artifact_4bit(finetuned, base_state):
    compressor = DeltaCompressor(CompressionConfig.deltazip_4bit())
    return compressor.compress(finetuned.model, base_state,
                               finetuned.calibration_tokens,
                               model_id="review-ft")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
