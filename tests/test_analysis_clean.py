"""The repo's self-cleanliness contract: simlint runs clean over src/.

Every SIM-rule violation in the tree is either fixed or carries an
inline ``# simlint: disable=...`` pragma with a justification comment.
This test is the local twin of CI's lint-analysis job.
"""

from pathlib import Path

from repro.analysis import check_paths
from repro.analysis.config import LintConfig

REPO = Path(__file__).resolve().parent.parent


def test_src_tree_is_simlint_clean():
    config = LintConfig.load(start=REPO / "src")
    findings = check_paths([str(REPO / "src")], config=config)
    assert findings == [], "\n".join(f.render() for f in findings)
