"""The OBS solver: correctness, calibration benefit, edge cases."""

import numpy as np
import pytest

from repro.compression.configs import CompressionConfig
from repro.compression.sparsegpt import (hessian_from_inputs, obs_compress,
                                         rtn_compress)
from repro.compression.sparsity import validate_nm


def _problem(rng, rows=32, cols=64, n_samples=256, correlated=True):
    w = rng.normal(0, 0.02, size=(rows, cols)).astype(np.float32)
    if correlated:
        mix = rng.normal(size=(cols, cols)).astype(np.float32)
        x = rng.normal(size=(n_samples, cols)).astype(np.float32) @ mix * 0.1
    else:
        x = rng.normal(size=(n_samples, cols)).astype(np.float32)
    return w, x


def _output_mse(w, w_hat, x):
    d = x @ (w - w_hat).T
    return float(np.mean(d ** 2))


class TestHessian:
    def test_shape_and_symmetry(self, rng):
        x = rng.normal(size=(64, 16)).astype(np.float32)
        h = hessian_from_inputs(x, 16)
        assert h.shape == (16, 16)
        np.testing.assert_allclose(h, h.T, atol=1e-8)

    def test_empty_input_gives_identity(self):
        h = hessian_from_inputs(None, 8)
        np.testing.assert_array_equal(h, np.eye(8))

    def test_positive_semidefinite(self, rng):
        x = rng.normal(size=(100, 12)).astype(np.float32)
        h = hessian_from_inputs(x, 12)
        assert np.all(np.linalg.eigvalsh(h) >= -1e-6)


class TestOBS:
    def test_mask_is_valid_24(self, rng):
        w, x = _problem(rng)
        res = obs_compress(w, x, CompressionConfig.deltazip_4bit())
        assert validate_nm(res.mask, 2, 4)
        # pruned positions are exactly zero in the dense output
        assert np.all(res.dense[~res.mask] == 0.0)

    def test_beats_rtn_on_correlated_inputs(self, rng):
        """The OBS error propagation is the whole point: with correlated
        calibration inputs it must beat round-to-nearest."""
        w, x = _problem(rng, correlated=True)
        config = CompressionConfig.deltazip_2bit()
        obs = obs_compress(w, x, config)
        rtn = rtn_compress(w, config)
        assert _output_mse(w, obs.dense, x) < _output_mse(w, rtn.dense, x)

    def test_quantization_only_config(self, rng):
        w, x = _problem(rng)
        config = CompressionConfig(bits=4, sparsity_n=0, group_size=16)
        res = obs_compress(w, x, config)
        assert res.mask.all()
        assert res.codes is not None

    def test_pruning_only_config(self, rng):
        w, x = _problem(rng)
        config = CompressionConfig(bits=16, sparsity_n=2, sparsity_m=4)
        res = obs_compress(w, x, config)
        assert res.codes is None
        assert validate_nm(res.mask, 2, 4)

    def test_no_calibration_fallback(self, rng):
        w, _ = _problem(rng)
        res = obs_compress(w, None, CompressionConfig.deltazip_4bit())
        assert validate_nm(res.mask, 2, 4)
        assert res.reconstruction_error == 0.0

    def test_dead_columns_zeroed(self, rng):
        w, x = _problem(rng, cols=32)
        x[:, 5] = 0.0  # dead input channel
        x[:, 6] = 0.0
        res = obs_compress(w, x, CompressionConfig.deltazip_4bit())
        assert np.all(res.dense[:, 5] == 0.0)
        assert np.all(res.dense[:, 6] == 0.0)

    def test_higher_bits_lower_error(self, rng):
        w, x = _problem(rng)
        errs = []
        for bits in (2, 4, 8):
            config = CompressionConfig(bits=bits, sparsity_n=2, sparsity_m=4,
                                       group_size=16)
            res = obs_compress(w, x, config)
            errs.append(_output_mse(w, res.dense, x))
        assert errs[0] > errs[2]

    def test_reconstruction_error_reported(self, rng):
        w, x = _problem(rng)
        res = obs_compress(w, x, CompressionConfig.deltazip_4bit())
        np.testing.assert_allclose(res.reconstruction_error,
                                   _output_mse(w, res.dense, x), rtol=1e-4)

    def test_indivisible_cols_rejected(self, rng):
        w = rng.normal(size=(4, 6)).astype(np.float32)
        with pytest.raises(ValueError):
            obs_compress(w, None, CompressionConfig.deltazip_4bit())

    def test_blocksize_independence(self, rng):
        """Different block sizes give comparable (not wildly different)
        output error — the blocked algorithm is an implementation detail."""
        w, x = _problem(rng, cols=64)
        e = []
        for blocksize in (16, 32, 64):
            config = CompressionConfig(bits=4, sparsity_n=2, sparsity_m=4,
                                       group_size=16, blocksize=blocksize)
            res = obs_compress(w, x, config)
            e.append(_output_mse(w, res.dense, x))
        assert max(e) < min(e) * 3 + 1e-12


class TestRTN:
    def test_mask_valid(self, rng):
        w, _ = _problem(rng)
        res = rtn_compress(w, CompressionConfig.deltazip_4bit())
        assert validate_nm(res.mask, 2, 4)

    def test_no_quant_path(self, rng):
        w, _ = _problem(rng)
        res = rtn_compress(w, CompressionConfig(bits=16, sparsity_n=2,
                                                sparsity_m=4))
        kept = res.mask
        np.testing.assert_allclose(res.dense[kept], w[kept], atol=1e-6)
