"""Disaggregated prefill/decode serving: pool accounting, priced KV
transfers, prefix-aware transfer skipping, mid-transfer cancellation,
pool autoscaling determinism, and the multi-node sharded engine.

The transfer-cost tests check the engine against the analytic ground
truth in :mod:`repro.serving.kv_transfer` — every finished request that
crossed the prefill/decode boundary must carry exactly the wire time
``plan_kv_transfer`` prices for its uncached KV suffix, and the
engine-level byte/second counters must be the sum of the per-request
plans.  The determinism tests extend the kernel record-identity
contract to runs where the pool autoscaler is actively reshaping both
pools mid-flight.
"""

import pytest

from repro.hardware import Cluster, GPUNode, node_from_name
from repro.serving import (EngineConfig, LLAMA_7B, ModelManager,
                           SchedulerConfig, ServingGateway, create_engine)
from repro.serving.disagg import (PoolAutoscaler, PoolScalingPolicy,
                                  ShardedEngine)
from repro.serving.kv_transfer import (InterconnectModel, KvTransferPlan,
                                       plan_kv_transfer)
from repro.sim import KvTransfer, PhaseTransition
from repro.workload import session_trace, synthetic_trace

N_MODELS = 4


def make_manager():
    mgr = ModelManager(LLAMA_7B)
    mgr.register_base("base")
    for i in range(N_MODELS):
        mgr.register_delta(f"variant-{i:02d}", "base", 8.0)
    return mgr


def make_disagg(mgr=None, prefill=1, decode=1, idle_quantum_s=None,
                **kwargs):
    mgr = mgr or make_manager()
    return create_engine(
        "disagg", mgr, GPUNode(node_from_name("a800", 1)),
        scheduler_config=SchedulerConfig(max_batch_requests=8,
                                         max_concurrent_deltas=4),
        engine_config=EngineConfig(tp_degree=1,
                                   idle_quantum_s=idle_quantum_s),
        prefill_workers=prefill, decode_workers=decode, **kwargs)


def record_key(rec):
    return (rec.request_id, rec.model_id, rec.finish_s, rec.first_token_s,
            rec.queue_wait_s, rec.loading_s, rec.inference_s, rec.status,
            rec.transfer_s)


# --------------------------------------------------------------------------- #
# the priced link
# --------------------------------------------------------------------------- #
class TestInterconnectModel:
    def test_point_to_point_is_latency_plus_bandwidth(self):
        link = InterconnectModel(gbps=25.0, latency_s=10e-6)
        assert link.transfer_time(25e9) == pytest.approx(1.0 + 10e-6)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(-5) == 0.0

    def test_allreduce_is_a_ring(self):
        link = InterconnectModel(gbps=25.0, latency_s=10e-6)
        assert link.allreduce_time(1e9, 1) == 0.0
        assert link.allreduce_time(0, 4) == 0.0
        # 2(n-1) steps, each node streams 2(n-1)/n of the payload
        n, nbytes = 4, 1e9
        steps = 2 * (n - 1)
        expect = steps * 10e-6 + (steps / n * nbytes) / 25e9
        assert link.allreduce_time(nbytes, n) == pytest.approx(expect)

    def test_plan_prices_only_the_uncached_suffix(self):
        spec = make_manager().spec
        link = InterconnectModel()
        full = plan_kv_transfer(spec, link, context_tokens=100)
        half = plan_kv_transfer(spec, link, context_tokens=100,
                                cached_prefix_tokens=50)
        assert full.tokens == 100 and full.cached_tokens == 0
        assert half.tokens == 50 and half.cached_tokens == 50
        assert full.nbytes == 100 * spec.kv_bytes_per_token()
        assert half.nbytes == full.nbytes // 2
        assert half.transfer_s < full.transfer_s
        assert full.transfer_s == pytest.approx(
            link.transfer_time(full.nbytes))

    def test_plan_fully_cached_is_skipped_and_free(self):
        spec = make_manager().spec
        plan = plan_kv_transfer(spec, InterconnectModel(),
                                context_tokens=64,
                                cached_prefix_tokens=999)  # clamped
        assert plan.skipped
        assert plan == KvTransferPlan(tokens=0, cached_tokens=64,
                                      nbytes=0, transfer_s=0.0)

    def test_plan_rejects_negative_context(self):
        with pytest.raises(ValueError, match="context_tokens"):
            plan_kv_transfer(make_manager().spec, InterconnectModel(),
                             context_tokens=-1)


# --------------------------------------------------------------------------- #
# pool accounting
# --------------------------------------------------------------------------- #
class TestPoolAccounting:
    def test_constructor_validation(self):
        mgr = make_manager()
        with pytest.raises(ValueError, match="at least one worker"):
            make_disagg(mgr, prefill=0)
        with pytest.raises(ValueError, match="prefill_chunk_tokens"):
            make_disagg(mgr, prefill_chunk_tokens=0)

    def test_workers_conserve_cluster_nodes_across_reset(self):
        spec = node_from_name("a800", 1)
        cluster = Cluster(spec, n_nodes=3)
        engine = make_disagg(prefill=2, decode=1, cluster=cluster)
        assert cluster.n_free == 0
        engine.reset()          # release + reacquire, never leaks a node
        assert cluster.n_free == 0
        assert len(engine.active_workers("prefill")) == 2
        assert len(engine.active_workers("decode")) == 1

    def test_pool_gauges_and_result_config(self):
        engine = make_disagg(prefill=2, decode=3)
        gauges = engine.pool_gauges()
        assert gauges["prefill_workers"] == 2.0
        assert gauges["decode_workers"] == 3.0
        assert gauges["prefill_backlog"] == gauges["decode_backlog"] == 0.0
        cfg = engine.result_config()
        assert cfg["prefill_workers"] == 2
        assert cfg["decode_workers"] == 3
        assert cfg["kv_link_gbps"] == InterconnectModel().gbps

    def test_every_request_completes_through_both_pools(self):
        trace = synthetic_trace(N_MODELS, rate=2.0, duration_s=20.0, seed=9)
        gw = ServingGateway(make_disagg(prefill=2, decode=2))
        res = gw.replay(trace)
        assert len(res.records) == len(trace)
        assert all(r.finished for r in res.records)
        engine = gw.engine
        assert engine.unfinished == 0
        assert not engine._in_transfer and not engine._owner_of


# --------------------------------------------------------------------------- #
# transfer cost: engine vs analytic ground truth
# --------------------------------------------------------------------------- #
class TestTransferCostGroundTruth:
    def test_records_carry_exactly_the_planned_wire_time(self):
        """Without a prefix cache the handoff moves prompt+1 KV rows
        (the prefill worker generates exactly the first token); the
        record's transfer_s must equal the plan's to the float."""
        mgr = make_manager()
        link = InterconnectModel()
        gw = ServingGateway(make_disagg(mgr))
        handles = [gw.submit("variant-00", 128, 16),
                   gw.submit("variant-01", 512, 8, arrival_s=0.5),
                   gw.submit("variant-02", 64, 1, arrival_s=1.0)]
        gw.run_until_drained()
        spec = mgr.spec
        for h, prompt, out in zip(handles, (128, 512, 64), (16, 8, 1)):
            rec = h.record()
            assert rec.status == "finished"
            if out <= 1:        # finishes on the prefill worker: no move
                assert rec.transfer_s == 0.0
                continue
            plan = plan_kv_transfer(spec, link, context_tokens=prompt + 1)
            assert rec.transfer_s == pytest.approx(plan.transfer_s)

    def test_engine_counters_sum_the_per_request_plans(self):
        mgr = make_manager()
        trace = synthetic_trace(N_MODELS, rate=2.0, duration_s=15.0, seed=4)
        gw = ServingGateway(make_disagg(mgr, prefill=1, decode=1))
        res = gw.replay(trace)
        spec, link = mgr.spec, InterconnectModel()
        moved = [r for r in res.records if r.output_tokens > 1]
        plans = [plan_kv_transfer(spec, link,
                                  context_tokens=r.prompt_tokens + 1)
                 for r in moved]
        stats = gw.engine.stats
        assert stats.kv_transfers == len(moved) > 0
        assert stats.kv_transfer_bytes == sum(p.nbytes for p in plans)
        assert stats.kv_transfer_s == pytest.approx(
            sum(p.transfer_s for p in plans))
        assert all(r.transfer_s == 0.0 for r in res.records
                   if r.output_tokens <= 1)

    def test_kv_transfer_events_match_the_counters(self):
        engine = make_disagg()
        engine.emit_phases = True
        events = []
        engine.on_event = events.append
        gw = ServingGateway(engine)
        gw.replay(synthetic_trace(N_MODELS, rate=1.0, duration_s=10.0,
                                  seed=2))
        moves = [e for e in events if isinstance(e, KvTransfer)]
        phases = [e for e in events if isinstance(e, PhaseTransition)
                  and e.phase == "transfer"]
        assert len(moves) == engine.stats.kv_transfers > 0
        assert len(phases) == len(moves)
        assert sum(m.nbytes for m in moves) == engine.stats.kv_transfer_bytes
        for m in moves:
            assert m.src.startswith("disagg.prefill")
            assert m.dst.startswith("disagg.decode")
            assert m.transfer_s > 0.0


# --------------------------------------------------------------------------- #
# prefix cache x disaggregation
# --------------------------------------------------------------------------- #
class TestPrefixCacheSkipsTransferBytes:
    def test_cached_prefixes_shrink_the_wire(self):
        """Session traffic re-sends its accumulated context every turn;
        with the radix prefix cache on, only the uncached suffix crosses
        the prefill→decode link, so total transferred bytes must drop
        while every request still completes."""
        trace = session_trace(N_MODELS, rate=0.15, duration_s=60.0, seed=7)
        totals = {}
        for cached in (False, True):
            mgr = make_manager()
            engine = create_engine(
                "disagg", mgr, GPUNode(node_from_name("a800", 1)),
                scheduler_config=SchedulerConfig(max_batch_requests=8,
                                                 max_concurrent_deltas=4),
                engine_config=EngineConfig(tp_degree=1,
                                           prefix_cache=cached),
                prefill_workers=1, decode_workers=1)
            res = ServingGateway(engine).replay(trace)
            assert all(r.finished for r in res.records)
            totals[cached] = engine.stats.kv_transfer_bytes
        assert totals[True] < totals[False]

    def test_cached_records_price_only_the_suffix(self):
        trace = session_trace(N_MODELS, rate=0.15, duration_s=60.0, seed=7)
        mgr = make_manager()
        engine = create_engine(
            "disagg", mgr, GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(max_batch_requests=8,
                                             max_concurrent_deltas=4),
            engine_config=EngineConfig(tp_degree=1, prefix_cache=True),
            prefill_workers=1, decode_workers=1)
        res = ServingGateway(engine).replay(trace)
        hits = [r for r in res.records
                if r.output_tokens > 1 and r.cached_prefix_tokens > 0]
        assert hits, "session trace must produce prefix hits"
        spec, link = mgr.spec, InterconnectModel()
        for rec in hits:
            full = plan_kv_transfer(spec, link,
                                    context_tokens=rec.prompt_tokens + 1)
            assert rec.transfer_s < full.transfer_s


# --------------------------------------------------------------------------- #
# cancellation across the pool boundary
# --------------------------------------------------------------------------- #
class TestCancelAcrossPools:
    def test_cancel_mid_transfer_conserves_accounting(self):
        """A cancel landing inside the KV-transfer window (after prefill
        finished, before the decode copy arrives) must still retire the
        request exactly once and leave no transfer bookkeeping behind."""
        probe = ServingGateway(make_disagg())
        ph = probe.submit("variant-00", 256, 32)
        probe.run_until_drained()
        rec = ph.record()
        assert rec.transfer_s > 0.0
        mid_transfer = rec.first_token_s + rec.transfer_s / 2.0

        gw = ServingGateway(make_disagg())
        h = gw.submit("variant-00", 256, 32)
        h.cancel(at_s=mid_transfer)
        res = gw.run_until_drained()
        assert h.record().status == "cancelled"
        assert res.status_counts() == {"cancelled": 1}
        engine = gw.engine
        assert engine.unfinished == 0
        assert not engine._in_transfer
        assert not engine._owner_of and not engine._cancel_log
        assert engine.stats.aborts == 1

    def test_bulk_cancels_retire_every_request_exactly_once(self):
        gw = ServingGateway(make_disagg(prefill=2, decode=2))
        handles = [gw.submit(f"variant-{i % N_MODELS:02d}", 128, 400,
                             arrival_s=0.2 * i) for i in range(12)]
        cancelled = [(i, h) for i, h in enumerate(handles) if i % 3 == 0]
        for j, (i, h) in enumerate(cancelled):
            # shortly after each victim's own arrival, staggered so the
            # cancels land across queueing, prefill, and decode
            h.cancel(at_s=0.2 * i + 0.1 + 0.4 * j)
        res = gw.run_until_drained()
        assert len(res.records) == 12
        counts = res.status_counts()
        assert counts.get("cancelled", 0) == len(cancelled)
        assert counts.get("finished", 0) == 12 - len(cancelled)
        assert gw.engine.stats.aborts == len(cancelled)
        assert gw.engine.unfinished == 0
        assert not gw.engine._in_transfer


# --------------------------------------------------------------------------- #
# pool autoscaling
# --------------------------------------------------------------------------- #
def eager_scaler():
    policy = PoolScalingPolicy(min_workers=1, max_workers=3,
                               high_backlog_per_worker=2.0,
                               low_backlog_per_worker=0.5,
                               scale_up_cooldown_s=1.0,
                               scale_down_cooldown_s=5.0)
    return PoolAutoscaler(prefill=policy, decode=policy,
                          check_interval_s=1.0)


class TestPoolAutoscaler:
    def test_check_interval_validation(self):
        with pytest.raises(ValueError, match="check_interval_s"):
            PoolAutoscaler(check_interval_s=0.0)

    def test_burst_scales_up_then_drains_back_to_the_cluster(self):
        scaler = eager_scaler()
        engine = make_disagg(pool_autoscaler=scaler)
        gw = ServingGateway(engine)
        res = gw.replay(synthetic_trace(N_MODELS, rate=6.0, duration_s=20.0,
                                        seed=11))
        assert all(r.finished for r in res.records)
        assert any(s.action == "scale-up" for s in scaler.history)
        cfg = engine.result_config()
        assert max(cfg["max_prefill_workers_seen"],
                   cfg["max_decode_workers_seen"]) > 1
        # drained workers are reaped: their nodes return to the cluster
        held = len(engine._prefill_pool) + len(engine._decode_pool)
        assert engine._cluster.n_free == engine._cluster.n_nodes - held

    def test_autoscaled_replay_is_deterministic_across_idle_skip(self):
        trace = synthetic_trace(N_MODELS, rate=6.0, duration_s=20.0, seed=11)
        runs = []
        for quantum in (None, None, 0.05):
            gw = ServingGateway(make_disagg(idle_quantum_s=quantum,
                                            pool_autoscaler=eager_scaler()))
            runs.append([record_key(r) for r in gw.replay(trace).records])
        assert runs[0] == runs[1], "run-to-run"
        assert runs[0] == runs[2], "idle-skip vs dense-quantum"


# --------------------------------------------------------------------------- #
# sharded multi-node tensor parallelism
# --------------------------------------------------------------------------- #
class TestShardedEngine:
    def test_uneven_shard_is_rejected(self):
        mgr = make_manager()
        with pytest.raises(ValueError, match="does not shard evenly"):
            create_engine("sharded", mgr,
                          GPUNode(node_from_name("a800", 2)),
                          scheduler_config=SchedulerConfig(),
                          tp_degree=3, n_nodes=2)

    def test_cross_node_allreduce_costs_more_than_nvlink(self):
        """Equal GPU count, equal tp degree: splitting the group across
        two nodes adds the per-layer RDMA all-reduce surcharge, so the
        same trace must finish strictly slower than the single-node
        NVLink ring."""
        trace = synthetic_trace(N_MODELS, rate=1.0, duration_s=15.0, seed=3)
        lat = {}
        for name, node_gpus, extra in (
                ("deltazip", 2, {}),
                ("sharded", 1, {"tp_degree": 2})):
            mgr = make_manager()
            engine = create_engine(
                name, mgr, GPUNode(node_from_name("a800", node_gpus)),
                scheduler_config=SchedulerConfig(max_batch_requests=8,
                                                 max_concurrent_deltas=4),
                engine_config=EngineConfig(tp_degree=2), **extra)
            res = ServingGateway(engine).replay(trace)
            assert all(r.finished for r in res.records)
            lat[name] = sum(r.e2e_latency_s for r in res.records)
        assert lat["sharded"] > lat["deltazip"]

    def test_result_config_reports_the_shard_topology(self):
        engine = create_engine(
            "sharded", make_manager(), GPUNode(node_from_name("a800", 1)),
            scheduler_config=SchedulerConfig(), tp_degree=4)
        assert isinstance(engine, ShardedEngine)
        cfg = engine.result_config()
        assert cfg["n_nodes"] == 4 and cfg["per_node_tp"] == 1
        assert cfg["interconnect_gbps"] == InterconnectModel().gbps

    def test_single_node_shard_matches_deltazip_exactly(self):
        """n_nodes=1 must be a pure DeltaZipEngine: no surcharge, records
        bit-identical to the colocated baseline."""
        trace = synthetic_trace(N_MODELS, rate=1.0, duration_s=10.0, seed=6)
        results = []
        for name in ("deltazip", "sharded"):
            engine = create_engine(
                name, make_manager(), GPUNode(node_from_name("a800", 1)),
                scheduler_config=SchedulerConfig(max_batch_requests=8,
                                                 max_concurrent_deltas=4),
                engine_config=EngineConfig(tp_degree=1),
                **({"tp_degree": 1, "n_nodes": 1}
                   if name == "sharded" else {}))
            res = ServingGateway(engine).replay(trace)
            results.append([record_key(r) for r in res.records])
        assert results[0] == results[1]


# --------------------------------------------------------------------------- #
# session-builder entry points (the facade documented in the README)
# --------------------------------------------------------------------------- #
class TestSessionBuilder:
    @staticmethod
    def _facade():
        from repro.core import DeltaZip
        from repro.nn import TransformerConfig, TransformerModel

        cfg = TransformerConfig(vocab_size=64, dim=16, n_layers=1,
                                n_heads=2, mlp_hidden=32, max_seq=32)
        return DeltaZip(TransformerModel(cfg))

    def test_disaggregated_builder_serves_through_pools(self):
        trace = synthetic_trace(2, rate=2.0, duration_s=10.0, seed=3)
        session = (self._facade().session(served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .disaggregated(prefill=2, decode=2)
                   .with_default_ratio(8.0)
                   .build())
        res = session.replay(trace)
        assert res.n_requests == len(trace)
        assert all(r.finished for r in res.records)
        # multi-token requests crossed the prefill/decode boundary
        assert res.stats.kv_transfers > 0
        assert any(r.transfer_s > 0 for r in res.records)

    def test_sharded_builder_sets_the_tp_degree(self):
        trace = synthetic_trace(2, rate=2.0, duration_s=10.0, seed=3)
        session = (self._facade().session(served_spec=LLAMA_7B)
                   .on_node("a800", gpus=1)
                   .sharded(tp=2)
                   .with_default_ratio(8.0)
                   .build())
        res = session.replay(trace)
        assert all(r.finished for r in res.records)
        assert res.config["n_nodes"] == 2 and res.config["per_node_tp"] == 1
