"""Priority-aware admission (§8's model-constraint prioritization)."""

import pytest

from repro.serving.scheduler import ContinuousBatchScheduler, SchedulerConfig
from tests.test_serving_scheduler import make_request


class TestPriorityAdmission:
    def test_high_priority_served_first(self):
        config = SchedulerConfig(max_batch_requests=2,
                                 max_concurrent_deltas=8,
                                 model_priorities={"gold": 10, "bronze": 0})
        sched = ContinuousBatchScheduler(config)
        sched.add(make_request(0, "bronze"))
        sched.add(make_request(1, "bronze"))
        sched.add(make_request(2, "gold"))
        decision = sched.schedule([], [])
        admitted = [r.request_id for r in decision.admitted]
        assert 2 in admitted  # gold jumped the two earlier bronze requests
        assert len(admitted) == 2

    def test_equal_priority_falls_back_to_fcfs(self):
        config = SchedulerConfig(max_batch_requests=2,
                                 max_concurrent_deltas=8,
                                 model_priorities={"a": 1, "b": 1})
        sched = ContinuousBatchScheduler(config)
        for rid, model in [(0, "a"), (1, "b"), (2, "a")]:
            sched.add(make_request(rid, model))
        decision = sched.schedule([], [])
        assert [r.request_id for r in decision.admitted] == [0, 1]

    def test_unlisted_models_default_zero(self):
        config = SchedulerConfig(max_batch_requests=1,
                                 max_concurrent_deltas=8,
                                 model_priorities={"vip": 5})
        sched = ContinuousBatchScheduler(config)
        sched.add(make_request(0, "unknown"))
        sched.add(make_request(1, "vip"))
        decision = sched.schedule([], [])
        assert [r.request_id for r in decision.admitted] == [1]

    def test_priority_respects_n_limit(self):
        config = SchedulerConfig(max_batch_requests=8,
                                 max_concurrent_deltas=1,
                                 model_priorities={"gold": 10})
        sched = ContinuousBatchScheduler(config)
        sched.add(make_request(0, "bronze"))
        sched.add(make_request(1, "gold"))
        sched.add(make_request(2, "gold"))
        decision = sched.schedule([], [])
        # only the gold variant is selected under N=1
        assert {r.model_id for r in decision.admitted} == {"gold"}
        assert len(sched.queued) == 1

    def test_queue_remains_fcfs_after_priority_pass(self):
        config = SchedulerConfig(max_batch_requests=1,
                                 max_concurrent_deltas=8,
                                 model_priorities={"vip": 5})
        sched = ContinuousBatchScheduler(config)
        for rid, model in [(0, "x"), (1, "vip"), (2, "y")]:
            sched.add(make_request(rid, model))
        sched.schedule([], [])
        assert [r.request_id for r in sched.queued] == [0, 2]

    def test_no_priorities_is_pure_fcfs(self):
        sched = ContinuousBatchScheduler(SchedulerConfig(2, 8))
        for rid in (0, 1, 2):
            sched.add(make_request(rid, f"m{rid}"))
        decision = sched.schedule([], [])
        assert [r.request_id for r in decision.admitted] == [0, 1]

    def test_engine_runs_with_priorities(self):
        from repro.hardware import GPUNode, node_from_name
        from repro.serving import (DeltaZipEngine, EngineConfig, LLAMA_7B,
                                   ModelManager)
        from repro.workload import synthetic_trace
        trace = synthetic_trace(4, rate=2.0, duration_s=30.0, seed=2)
        mgr = ModelManager(LLAMA_7B)
        mgr.register_base("base")
        for m in trace.model_ids:
            mgr.register_delta(m, "base", 8.0)
        config = SchedulerConfig(
            max_batch_requests=8, max_concurrent_deltas=2,
            model_priorities={trace.model_ids[0]: 10})
        result = DeltaZipEngine(mgr, GPUNode(node_from_name("a800", 1)),
                                config, EngineConfig(tp_degree=1)).run(trace)
        assert result.n_requests == len(trace)