"""Synthetic tasks, pre-training, fine-tuning drivers, accuracy harness."""

import numpy as np
import pytest

from repro.evaluation import (TASK_REGISTRY, build_training_arrays,
                              evaluate_examples, evaluate_task,
                              generic_corpus, make_task, make_task_dataset,
                              pretrain_base_model, run_fmt, run_lora)
from repro.evaluation.tasks import ANSWER_BASE, EOS, PAD, QUERY


class TestTaskGenerators:
    @pytest.mark.parametrize("name", sorted(TASK_REGISTRY))
    def test_examples_well_formed(self, name, rng):
        task = make_task(name)
        for ex in task.examples(50, rng):
            assert ex.answer in ex.choices
            assert ex.prompt[-1] == QUERY
            assert 0 <= ex.gold_index < len(ex.choices)
            assert all(t < 128 for t in ex.prompt)

    @pytest.mark.parametrize("name", sorted(TASK_REGISTRY))
    def test_labels_roughly_balanced(self, name, rng):
        task = make_task(name)
        examples = task.examples(300, rng)
        golds = [ex.gold_index for ex in examples]
        counts = np.bincount(golds, minlength=len(examples[0].choices))
        nonzero = counts[counts > 0]
        assert len(nonzero) >= min(2, task.n_classes)

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            make_task("stackoverflow")

    def test_math_task_multi_token_answers(self, rng):
        task = make_task("math")
        ex = task.generator(rng)
        assert len(ex.answer) == 2
        assert len(ex.choices) == 16


class TestTrainingArrays:
    def test_shapes_and_masking(self, rng):
        task = make_task("review")
        examples = task.examples(4, rng)
        inputs, targets = build_training_arrays(examples, pad_to=24)
        assert inputs.shape == targets.shape == (4, 24)
        for i, ex in enumerate(examples):
            # prompt span (up to position len-2) contributes no loss
            assert np.all(targets[i, :len(ex.prompt) - 1] == -100)
            # answer token is predicted from the QUERY position
            assert targets[i, len(ex.prompt) - 1] == ex.answer[0]
            # padding is ignored
            seq_len = len(ex.prompt) + len(ex.answer) + 1
            assert np.all(targets[i, seq_len:] == -100)
            assert np.all(inputs[i, seq_len:] == PAD)
            assert inputs[i, seq_len - 1] == EOS

    def test_too_long_rejected(self, rng):
        task = make_task("review")
        examples = task.examples(1, rng)
        with pytest.raises(ValueError):
            build_training_arrays(examples, pad_to=4)

    def test_make_task_dataset_deterministic(self):
        task = make_task("review")
        a = make_task_dataset(task, 8, 24, seed=5)
        b = make_task_dataset(task, 8, 24, seed=5)
        np.testing.assert_array_equal(a[0], b[0])


class TestCorpusAndPretrain:
    def test_corpus_shapes(self, rng):
        x, y = generic_corpus(8, 16, 128, rng)
        assert x.shape == (8, 16)
        assert y.shape == (8, 16)
        assert np.all(y[:, -1] == -100)
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])

    def test_pretrained_model_beats_random_on_lm(self, tiny_config,
                                                 base_model, rng):
        from repro.nn import TransformerModel
        import repro.nn.functional as F
        x, y = generic_corpus(16, 16, tiny_config.vocab_size,
                              np.random.default_rng(123))
        random_model = TransformerModel(tiny_config, seed=99)
        loss_random = F.cross_entropy(random_model(x), y)
        loss_base = F.cross_entropy(base_model(x), y)
        assert loss_base < loss_random


class TestHarness:
    def test_finetuned_beats_base(self, base_model, finetuned, review_task):
        acc_base = evaluate_task(base_model, review_task, 40).accuracy
        acc_fmt = evaluate_task(finetuned.model, review_task, 40).accuracy
        assert acc_fmt > acc_base + 0.2

    def test_eval_deterministic_given_seed(self, finetuned, review_task):
        a = evaluate_task(finetuned.model, review_task, 20, seed=7)
        b = evaluate_task(finetuned.model, review_task, 20, seed=7)
        assert a.accuracy == b.accuracy

    def test_percent_property(self, finetuned, review_task):
        res = evaluate_task(finetuned.model, review_task, 10)
        assert res.percent == pytest.approx(res.accuracy * 100)

    def test_empty_examples_rejected(self, base_model):
        with pytest.raises(ValueError):
            evaluate_examples(base_model, [])


class TestFinetuneDrivers:
    def test_fmt_moves_all_weights(self, base_model, review_task):
        result = run_fmt(base_model, review_task, n_train=32, epochs=1)
        base_state = base_model.state_dict()
        moved = sum(not np.allclose(v, base_state[k], atol=1e-7)
                    for k, v in result.model.state_dict().items())
        assert moved > len(base_state) * 0.9
        assert result.calibration_tokens.shape[0] == 32

    def test_lora_returns_adapter(self, base_model, review_task):
        result = run_lora(base_model, review_task, rank=2, n_train=32,
                          epochs=1)
        assert result.adapter is not None
        assert result.adapter.config.rank == 2
        assert len(result.adapter.matrices) == \
            2 * base_model.config.n_layers

    def test_lora_merge_false_leaves_base(self, base_model, review_task,
                                          rng):
        result = run_lora(base_model, review_task, rank=2, n_train=32,
                          epochs=1, merge=False)
        toks = rng.integers(4, 100, size=(1, 8))
        np.testing.assert_allclose(result.model(toks), base_model(toks),
                                   atol=1e-5)

    def test_fmt_does_not_mutate_base(self, base_model, review_task):
        before = base_model.state_dict()
        run_fmt(base_model, review_task, n_train=16, epochs=1)
        after = base_model.state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])
