"""CompressedLayer/CompressedDelta storage semantics and lossless codec."""

import numpy as np
import pytest

from repro.compression import (CompressionConfig, LosslessCodec, ZlibCodec,
                               compress_array, decompress_array)
from repro.compression.artifacts import FP16_BYTES, CompressedLayer
from repro.compression.packing import pack_codes, pack_nm_sparse
from repro.compression.quant import QuantGrid, fit_grid, quantize
from repro.compression.sparsity import nm_mask


def _sparse_layer(rng, rows=4, cols=16, bits=4):
    w = rng.normal(0, 0.05, size=(rows, cols)).astype(np.float32)
    mask = nm_mask(w, 2, 4)
    grid = fit_grid(w, bits, cols, mask=mask)
    codes = quantize(w, grid)
    codes[~mask] = 0
    packed = pack_nm_sparse(codes, mask, bits, 2, 4)
    config = CompressionConfig(bits=bits, sparsity_n=2, sparsity_m=4,
                               group_size=cols)
    return CompressedLayer(name="w", shape=(rows, cols), config=config,
                           packed_sparse=packed, grid=grid), w, mask


class TestCompressedLayer:
    def test_dense_zeros_at_pruned(self, rng):
        layer, w, mask = _sparse_layer(rng)
        dense = layer.dense()
        assert np.all(dense[~mask] == 0.0)
        # kept positions reconstruct within one grid step
        step = layer.grid.scale.max()
        assert np.max(np.abs(dense[mask] - w[mask])) <= step + 1e-6

    def test_nbytes_breakdown_sums(self, rng):
        layer, _, _ = _sparse_layer(rng)
        b = layer.nbytes_breakdown()
        assert layer.nbytes() == b["values"] + b["indices"] + b["metadata"]
        assert layer.nbytes_uncompressed() == 4 * 16 * FP16_BYTES
        assert layer.compression_ratio() > 1.0

    def test_fp16_path(self, rng):
        w = rng.normal(size=(3, 8)).astype(np.float32)
        config = CompressionConfig(bits=16, sparsity_n=0)
        layer = CompressedLayer(name="w", shape=w.shape, config=config,
                                fp16_values=w)
        np.testing.assert_allclose(layer.dense(), w, atol=1e-6)
        assert layer.nbytes() == w.size * FP16_BYTES

    def test_dense_quant_only_path(self, rng):
        w = rng.normal(0, 0.05, size=(4, 16)).astype(np.float32)
        grid = fit_grid(w, 4, 16)
        codes = quantize(w, grid)
        config = CompressionConfig(bits=4, sparsity_n=0, group_size=16)
        layer = CompressedLayer(name="w", shape=w.shape, config=config,
                                packed_dense=pack_codes(codes, 4), grid=grid)
        dense = layer.dense()
        assert np.max(np.abs(dense - w)) <= grid.scale.max() + 1e-6

    def test_awq_descale_applied(self, rng):
        w = rng.normal(0, 0.05, size=(4, 16)).astype(np.float32)
        scales = rng.uniform(0.5, 2.0, size=16).astype(np.float32)
        scaled = w * scales[None, :]
        grid = fit_grid(scaled, 8, 16)
        codes = quantize(scaled, grid)
        config = CompressionConfig(bits=8, sparsity_n=0, group_size=16,
                                   delta_mode=False, algorithm="awq")
        layer = CompressedLayer(name="w", shape=w.shape, config=config,
                                packed_dense=pack_codes(codes, 8), grid=grid,
                                awq_scales=scales)
        np.testing.assert_allclose(layer.dense(), w, atol=0.01)


class TestLosslessCodec:
    def test_identity_codec(self):
        codec = LosslessCodec()
        data = b"hello world" * 10
        assert codec.decompress(codec.compress(data)) == data

    def test_zlib_roundtrip(self, rng):
        codec = ZlibCodec(level=6)
        arr = rng.integers(0, 4, size=256).astype(np.uint8)  # compressible
        blob = compress_array(arr, codec)
        assert len(blob) < arr.nbytes
        back = decompress_array(blob, codec, np.uint8, arr.shape)
        np.testing.assert_array_equal(arr, back)

    def test_zlib_on_float_matrix(self, rng):
        codec = ZlibCodec()
        arr = rng.normal(size=(32, 32)).astype(np.float32)
        back = decompress_array(compress_array(arr, codec), codec,
                                np.float32, arr.shape)
        np.testing.assert_array_equal(arr, back)

    def test_decompress_throughput_attribute(self):
        assert ZlibCodec().decompress_gbps == 50.0
        assert LosslessCodec().decompress_gbps == float("inf")
