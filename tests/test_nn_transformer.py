"""TransformerModel: shapes, training dynamics, state-dict plumbing."""

import numpy as np
import pytest

from repro.nn import (TrainingConfig, TransformerConfig, TransformerModel,
                      train_lm)
from repro.nn.layers import Linear


@pytest.fixture(scope="module")
def model():
    return TransformerModel(TransformerConfig.tiny(), seed=0)


class TestForward:
    def test_logit_shape(self, model, rng):
        toks = rng.integers(0, 128, size=(2, 7))
        assert model(toks).shape == (2, 7, 128)

    def test_1d_input_promoted(self, model):
        toks = np.arange(5)
        assert model(toks).shape == (1, 5, 128)

    def test_deterministic(self, model, rng):
        toks = rng.integers(0, 128, size=(1, 6))
        np.testing.assert_array_equal(model(toks), model(toks))

    def test_kv_cache_decode_matches_full(self, model, rng):
        toks = rng.integers(0, 128, size=(1, 6))
        full = model(toks)
        caches = model.new_kv_caches(1)
        out_prefill = model(toks[:, :5], kv_caches=caches)
        out_step = model(toks[:, 5:6], kv_caches=caches)
        np.testing.assert_allclose(full[:, :5], out_prefill, atol=1e-4)
        np.testing.assert_allclose(full[:, 5:6], out_step, atol=1e-4)


class TestTraining:
    def test_loss_decreases_on_copy_task(self):
        config = TransformerConfig.tiny()
        model = TransformerModel(config, seed=1)
        rng = np.random.default_rng(0)
        start = rng.integers(0, 8, size=(48, 1))
        x = ((start + np.arange(12)[None, :]) % 20 + 2).astype(np.int64)
        y = np.concatenate([x[:, 1:], np.full((48, 1), -100)], axis=1)
        hist = train_lm(model, x, y, TrainingConfig(epochs=6, lr=3e-3))
        assert hist[-1] < hist[0] * 0.5

    def test_zero_grad_clears(self, model, rng):
        toks = rng.integers(0, 128, size=(2, 6))
        targets = toks.copy()
        model.loss(toks, targets, cache=True)
        model.loss_backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, model):
        state = model.state_dict()
        other = TransformerModel(model.config, seed=42)
        other.load_state_dict(state)
        toks = np.arange(6)[None, :]
        np.testing.assert_allclose(model(toks), other(toks), atol=1e-6)

    def test_num_parameters_matches_state(self, model):
        state = model.state_dict()
        assert model.num_parameters() == sum(v.size for v in state.values())


class TestLinearViews:
    def test_linear_layer_names_count(self, model):
        names = model.linear_layer_names()
        assert len(names) == 7 * model.config.n_layers
        state = model.state_dict()
        for name in names:
            assert name in state

    def test_get_linear_resolves(self, model):
        for name in model.linear_layer_names():
            layer = model.get_linear(name)
            assert isinstance(layer, Linear)
            np.testing.assert_array_equal(layer.weight.data,
                                          model.state_dict()[name])

    def test_get_linear_rejects_non_linear(self, model):
        with pytest.raises((TypeError, AttributeError)):
            model.get_linear("final_norm.weight")

    def test_lm_head_resolvable(self, model):
        assert isinstance(model.get_linear("lm_head.weight"), Linear)


class TestConfigPresets:
    @pytest.mark.parametrize("factory", [TransformerConfig.tiny,
                                         TransformerConfig.small,
                                         TransformerConfig.medium])
    def test_presets_construct(self, factory):
        config = factory()
        model = TransformerModel(config, seed=0)
        toks = np.arange(4)[None, :]
        assert model(toks).shape == (1, 4, config.vocab_size)

    def test_config_frozen(self):
        config = TransformerConfig.tiny()
        with pytest.raises(Exception):
            config.dim = 1
