"""Functional decoupled serving: exactness of Eq. 2 on real artifacts."""

import numpy as np
import pytest

from repro.compression import CompressionConfig, DeltaCompressor
from repro.nn import TransformerModel
from repro.serving.runner import DecoupledModelRunner


@pytest.fixture(scope="module")
def runner_setup(base_model, finetuned, base_state, artifact_4bit):
    runner = DecoupledModelRunner(base_model,
                                  {"ft": artifact_4bit})
    recon = TransformerModel(base_model.config, seed=0)
    recon.load_state_dict(artifact_4bit.to_state_dict(base_state))
    return runner, recon


class TestExactness:
    def test_matches_reconstructed_model(self, runner_setup, rng):
        runner, recon = runner_setup
        toks = rng.integers(4, 100, size=(4, 12))
        out = runner.forward(toks, ["ft"] * 4)
        np.testing.assert_allclose(out, recon(toks), atol=1e-4)

    def test_base_rows_match_base_model(self, runner_setup, base_model, rng):
        runner, _ = runner_setup
        toks = rng.integers(4, 100, size=(2, 8))
        out = runner.forward(toks, ["__base__"] * 2)
        np.testing.assert_allclose(out, base_model(toks), atol=1e-5)

    def test_mixed_batch_rows_independent(self, runner_setup, base_model, rng):
        """The core multi-variant property: each row gets its own weights
        even inside one batched forward."""
        runner, recon = runner_setup
        toks = rng.integers(4, 100, size=(3, 10))
        mixed = runner.forward(toks, ["ft", "__base__", "ft"])
        np.testing.assert_allclose(mixed[0], recon(toks)[0], atol=1e-4)
        np.testing.assert_allclose(mixed[1], base_model(toks)[1], atol=1e-5)
        np.testing.assert_allclose(mixed[2], recon(toks)[2], atol=1e-4)

    def test_kv_cache_decode_matches_full(self, runner_setup, rng):
        runner, _ = runner_setup
        toks = rng.integers(4, 100, size=(1, 8))
        full = runner.forward(toks, ["ft"])
        caches = runner.base.new_kv_caches(1)
        prefill = runner.forward(toks[:, :7], ["ft"], kv_caches=caches)
        step = runner.forward(toks[:, 7:8], ["ft"], kv_caches=caches)
        np.testing.assert_allclose(full[:, :7], prefill, atol=1e-4)
        np.testing.assert_allclose(full[:, 7:8], step, atol=1e-4)

    def test_generate_matches_reconstructed_greedy(self, runner_setup):
        from repro.nn import generate
        runner, recon = runner_setup
        prompt = [30, 31, 32, 33]
        ours = runner.generate([prompt], ["ft"], max_new_tokens=5)[0]
        theirs = generate(recon, prompt, max_new_tokens=5).tokens
        assert ours == theirs


class TestVariantManagement:
    def test_unknown_variant_rejected(self, runner_setup, rng):
        runner, _ = runner_setup
        toks = rng.integers(4, 100, size=(1, 4))
        with pytest.raises(KeyError):
            runner.forward(toks, ["missing"])

    def test_variant_count_must_match_batch(self, runner_setup, rng):
        runner, _ = runner_setup
        toks = rng.integers(4, 100, size=(2, 4))
        with pytest.raises(ValueError):
            runner.forward(toks, ["ft"])

    def test_load_unload(self, base_model, artifact_4bit):
        runner = DecoupledModelRunner(base_model)
        assert runner.loaded_variants == []
        runner.load_variant("v", artifact_4bit)
        assert runner.loaded_variants == ["v"]
        with pytest.raises(ValueError):
            runner.load_variant("v", artifact_4bit)
        runner.unload_variant("v")
        assert runner.loaded_variants == []

    def test_direct_mode_artifact_rejected(self, base_model, finetuned,
                                           base_state):
        direct = DeltaCompressor(CompressionConfig.sparsegpt_4bit()).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        runner = DecoupledModelRunner(base_model)
        with pytest.raises(ValueError):
            runner.load_variant("v", direct)

    def test_multiple_variants_coexist(self, base_model, base_state,
                                       finetuned, artifact_4bit, rng):
        art2 = DeltaCompressor(CompressionConfig.deltazip_2bit()).compress(
            finetuned.model, base_state, finetuned.calibration_tokens)
        runner = DecoupledModelRunner(base_model, {"a": artifact_4bit,
                                                   "b": art2})
        toks = rng.integers(4, 100, size=(2, 6))
        out = runner.forward(toks, ["a", "b"])
        # different quantization -> different outputs, same shapes
        assert out.shape == (2, 6, base_model.config.vocab_size)
        assert not np.allclose(out[0], out[1])
