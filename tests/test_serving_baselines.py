"""vLLM-SCB baseline specifics: swapping, preload, KV admission."""

import numpy as np
import pytest

from repro.hardware import GPUNode, node_from_name
from repro.serving import (DedicatedEngine, EngineConfig, LLAMA_13B,
                           LLAMA_7B, ModelManager, VLLMSCBEngine)
from repro.workload.spec import Trace, TraceRequest


def full_manager(spec, models):
    mgr = ModelManager(spec)
    mgr.register_base("base")
    for m in models:
        mgr.register_full(m, "base")
    return mgr


def make_trace(assignments, gap=5.0):
    requests = [TraceRequest(request_id=i, model_id=m,
                             arrival_s=i * gap, prompt_tokens=8,
                             output_tokens=4)
                for i, m in enumerate(assignments)]
    return Trace(requests=requests, model_ids=sorted(set(assignments)),
                 duration_s=len(assignments) * gap + 1.0)


class TestSwapBehaviour:
    def test_model_switch_pays_load(self):
        """Alternating between two models on a one-slot GPU forces a swap
        per switch; a single-model trace does not."""
        node = GPUNode(node_from_name("rtx3090", 1))
        models = ["m0", "m1"]
        mgr = full_manager(LLAMA_7B, models)
        engine = VLLMSCBEngine(mgr, node, EngineConfig(tp_degree=1))
        alternating = engine.run(make_trace(["m0", "m1"] * 3))
        mgr2 = full_manager(LLAMA_7B, models)
        engine2 = VLLMSCBEngine(mgr2, node, EngineConfig(tp_degree=1))
        single = engine2.run(make_trace(["m0"] * 6))
        assert alternating.mean_e2e_latency_s() > \
            2 * single.mean_e2e_latency_s()

    def test_preload_removes_first_load(self):
        node = GPUNode(node_from_name("a800", 1))
        trace = make_trace(["m0"] * 4)
        cold = VLLMSCBEngine(full_manager(LLAMA_7B, ["m0"]), node,
                             EngineConfig(tp_degree=1)).run(trace)
        warm = VLLMSCBEngine(full_manager(LLAMA_7B, ["m0"]), node,
                             EngineConfig(tp_degree=1),
                             preload=True).run(trace)
        assert warm.records[0].ttft_s < cold.records[0].ttft_s

    def test_loader_factor_scales_load_time(self):
        node = GPUNode(node_from_name("a800", 1))
        trace = make_trace(["m0"])
        slow = VLLMSCBEngine(full_manager(LLAMA_7B, ["m0"]), node,
                             EngineConfig(tp_degree=1),
                             loader_factor=8.0).run(trace)
        fast = VLLMSCBEngine(full_manager(LLAMA_7B, ["m0"]), node,
                             EngineConfig(tp_degree=1),
                             loader_factor=1.0).run(trace)
        assert slow.records[0].ttft_s > fast.records[0].ttft_s

    def test_second_visit_loads_from_cpu_cache(self):
        """m0 evicted then revisited: the revisit load is cheaper (CPU
        cache) than the initial disk load."""
        node = GPUNode(node_from_name("rtx3090", 1))
        mgr = full_manager(LLAMA_7B, ["m0", "m1"])
        engine = VLLMSCBEngine(mgr, node, EngineConfig(tp_degree=1))
        result = engine.run(make_trace(["m0", "m1", "m0"], gap=30.0))
        by_id = {r.request_id: r for r in result.records}
        assert by_id[2].loading_s < by_id[0].loading_s


class TestDedicated:
    def test_dedicated_faster_than_shared_scb(self):
        """Per-variant dedicated groups avoid cross-model interference."""
        node = GPUNode(node_from_name("a800", 1))
        models = [f"m{i}" for i in range(4)]
        trace = make_trace(models * 2, gap=2.0)
        scb = VLLMSCBEngine(full_manager(LLAMA_7B, models), node,
                            EngineConfig(tp_degree=1)).run(trace)
        ded = DedicatedEngine(full_manager(LLAMA_7B, models), node,
                              EngineConfig(tp_degree=1)).run(trace)
        assert ded.mean_e2e_latency_s() < scb.mean_e2e_latency_s()
