"""Trace generators: synthetic (uniform/Zipf) and Azure-like bursty traces.

The paper evaluates three model-popularity regimes (§6.1): uniform, Zipf-1.5
skewed, and the Azure serverless function trace as a proxy for real
multi-tenant traffic — highly bursty arrivals with heavily skewed per-model
volume.  ``azure_like_trace`` reproduces those two characteristics following
the published Azure Functions characterization (Shahrad et al., ATC '20):
per-function rates are heavy-tailed (log-normal over orders of magnitude)
and arrivals clump in bursts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .arrival import gamma_burst_arrivals, poisson_arrivals, ramp_arrivals
from .popularity import (make_model_ids, sample_models, uniform_popularity,
                         zipf_popularity)
from .spec import LengthSampler, Trace, TraceRequest

__all__ = ["synthetic_trace", "azure_like_trace", "ramp_trace",
           "session_trace", "trace_from_distribution"]


def synthetic_trace(
    n_models: int,
    rate: float,
    duration_s: float,
    distribution: str = "uniform",
    zipf_alpha: float = 1.5,
    seed: int = 0,
    length_sampler: Optional[LengthSampler] = None,
    model_prefix: str = "variant",
) -> Trace:
    """Poisson-arrival trace with the requested popularity distribution."""
    rng = np.random.default_rng(seed)
    model_ids = make_model_ids(n_models, prefix=model_prefix)
    if distribution == "uniform":
        pop = uniform_popularity(n_models)
    elif distribution.startswith("zipf"):
        pop = zipf_popularity(n_models, alpha=zipf_alpha)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    sampler = length_sampler or LengthSampler()

    times = poisson_arrivals(rate, duration_s, rng)
    picks = sample_models(pop, len(times), rng)
    requests = []
    for i, (t, model_idx) in enumerate(zip(times, picks)):
        prompt, output = sampler.sample(rng)
        requests.append(TraceRequest(request_id=i, model_id=model_ids[model_idx],
                                     arrival_s=t, prompt_tokens=prompt,
                                     output_tokens=output))
    return Trace(requests=requests, model_ids=model_ids, duration_s=duration_s)


def azure_like_trace(
    n_models: int,
    rate: float,
    duration_s: float,
    seed: int = 0,
    burst_cv: float = 4.0,
    rate_log_sigma: float = 1.5,
    length_sampler: Optional[LengthSampler] = None,
    model_prefix: str = "variant",
) -> Trace:
    """Bursty, heavily-skewed trace in the style of the Azure function trace.

    Each model gets its own bursty arrival process whose mean rate is drawn
    from a log-normal, then all rates are normalized so the system-wide mean
    equals ``rate``.
    """
    rng = np.random.default_rng(seed)
    model_ids = make_model_ids(n_models, prefix=model_prefix)
    sampler = length_sampler or LengthSampler()

    raw_rates = rng.lognormal(mean=0.0, sigma=rate_log_sigma, size=n_models)
    per_model_rate = raw_rates / raw_rates.sum() * rate

    requests = []
    rid = 0
    for model_id, model_rate in zip(model_ids, per_model_rate):
        for t in gamma_burst_arrivals(model_rate, duration_s, rng, cv=burst_cv):
            prompt, output = sampler.sample(rng)
            requests.append(TraceRequest(request_id=rid, model_id=model_id,
                                         arrival_s=t, prompt_tokens=prompt,
                                         output_tokens=output))
            rid += 1
    trace = Trace(requests=requests, model_ids=model_ids, duration_s=duration_s)
    # re-number in arrival order for stable FCFS identity
    for i, req in enumerate(trace.requests):
        req.request_id = i
    return trace


def ramp_trace(
    n_models: int,
    peak_rate: float,
    duration_s: float,
    base_rate: float = 0.0,
    n_steps: int = 8,
    cv: float = 1.0,
    seed: int = 0,
    length_sampler: Optional[LengthSampler] = None,
    model_prefix: str = "variant",
) -> Trace:
    """Uniform-popularity trace whose arrival rate ramps up then down.

    The stimulus the cluster autoscaler is scored against: offered load
    climbs from ``base_rate`` to ``peak_rate`` over the first half of the
    window and falls back over the second (``cv > 1`` makes each step
    bursty as well).
    """
    rng = np.random.default_rng(seed)
    model_ids = make_model_ids(n_models, prefix=model_prefix)
    sampler = length_sampler or LengthSampler()

    times = ramp_arrivals(peak_rate, duration_s, rng, base_rate=base_rate,
                          n_steps=n_steps, cv=cv)
    picks = sample_models(uniform_popularity(n_models), len(times), rng)
    requests = []
    for i, (t, model_idx) in enumerate(zip(times, picks)):
        prompt, output = sampler.sample(rng)
        requests.append(TraceRequest(request_id=i,
                                     model_id=model_ids[model_idx],
                                     arrival_s=t, prompt_tokens=prompt,
                                     output_tokens=output))
    return Trace(requests=requests, model_ids=model_ids,
                 duration_s=duration_s)


def session_trace(
    n_models: int,
    rate: float,
    duration_s: float,
    seed: int = 0,
    mean_turns: float = 4.0,
    shared_prefix_tokens: int = 128,
    think_time_s: float = 20.0,
    max_context_tokens: int = 4096,
    distribution: str = "uniform",
    zipf_alpha: float = 1.5,
    length_sampler: Optional[LengthSampler] = None,
    model_prefix: str = "variant",
) -> Trace:
    """Multi-turn conversation trace with a shared per-model system prompt.

    ``rate`` is the *conversation* start rate (Poisson); each conversation
    runs a geometric number of turns (mean ``mean_turns``) against one
    model.  Every turn's prompt replays the full accumulated context —
    the model's ``shared_prefix_tokens``-token system prompt plus all
    prior turns — followed by freshly sampled user tokens, so a
    prefix-aware engine can skip re-prefilling everything but the new
    suffix.  Turns are spaced by exponential think times (mean
    ``think_time_s``); a conversation ends when its turn budget runs
    out, the next turn would overflow ``max_context_tokens``, or the
    trace window closes.

    Requests carry ``conversation_id`` (one per conversation),
    ``shared_prefix_id`` (``"<model>:sys"``, shared by every conversation
    on that model), and ``shared_prefix_tokens``.
    """
    rng = np.random.default_rng(seed)
    model_ids = make_model_ids(n_models, prefix=model_prefix)
    if distribution == "uniform":
        pop = uniform_popularity(n_models)
    elif distribution.startswith("zipf"):
        pop = zipf_popularity(n_models, alpha=zipf_alpha)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    sampler = length_sampler or LengthSampler()

    starts = poisson_arrivals(rate, duration_s, rng)
    picks = sample_models(pop, len(starts), rng)
    requests: List[TraceRequest] = []
    for conv_idx, (t0, model_idx) in enumerate(zip(starts, picks)):
        model_id = model_ids[model_idx]
        shared_id = f"{model_id}:sys" if shared_prefix_tokens > 0 else None
        n_turns = int(rng.geometric(1.0 / max(float(mean_turns), 1.0)))
        context = int(shared_prefix_tokens)
        t = float(t0)
        for _ in range(n_turns):
            user, output = sampler.sample(rng)
            prompt = context + user
            if prompt + output > max_context_tokens:
                break
            requests.append(TraceRequest(
                request_id=0, model_id=model_id, arrival_s=t,
                prompt_tokens=prompt, output_tokens=output,
                conversation_id=f"conv-{conv_idx:05d}",
                shared_prefix_id=shared_id,
                shared_prefix_tokens=int(shared_prefix_tokens)))
            context = prompt + output
            t += float(rng.exponential(think_time_s))
            if t > duration_s:
                break
    trace = Trace(requests=requests, model_ids=model_ids,
                  duration_s=duration_s)
    # re-number in arrival order for stable FCFS identity
    for i, req in enumerate(trace.requests):
        req.request_id = i
    return trace


def trace_from_distribution(distribution: str, n_models: int, rate: float,
                            duration_s: float, seed: int = 0,
                            **kwargs) -> Trace:
    """Dispatch helper used by the benchmark harness.

    ``distribution`` ∈ {"uniform", "zipf:<alpha>", "azure", "session"}.
    """
    if distribution == "azure":
        return azure_like_trace(n_models, rate, duration_s, seed=seed, **kwargs)
    if distribution == "session":
        return session_trace(n_models, rate, duration_s, seed=seed, **kwargs)
    if distribution.startswith("zipf"):
        alpha = float(distribution.split(":", 1)[1]) if ":" in distribution else 1.5
        return synthetic_trace(n_models, rate, duration_s,
                               distribution="zipf", zipf_alpha=alpha,
                               seed=seed, **kwargs)
    if distribution == "uniform":
        return synthetic_trace(n_models, rate, duration_s,
                               distribution="uniform", seed=seed, **kwargs)
    raise ValueError(f"unknown distribution {distribution!r}")
