"""Workload traces and generators (paper §6.1)."""

from .arrival import (as_rng, gamma_burst_arrivals, piecewise_rate_arrivals,
                      poisson_arrivals, ramp_arrivals)
from .clients import (ClosedLoopClient, PatienceModel,
                      impatient_cancel_schedule)
from .generators import (azure_like_trace, ramp_trace, session_trace,
                         synthetic_trace, trace_from_distribution)
from .lmsys import ARENA_MODEL_NAMES, arena_trace
from .popularity import (make_model_ids, sample_models, uniform_popularity,
                         zipf_popularity)
from .spec import LengthSampler, Trace, TraceRequest
from .tenants import TenantWorkload, multi_tenant_trace

__all__ = [
    "as_rng", "gamma_burst_arrivals", "piecewise_rate_arrivals",
    "poisson_arrivals", "ramp_arrivals",
    "azure_like_trace", "ramp_trace", "session_trace", "synthetic_trace",
    "trace_from_distribution",
    "ARENA_MODEL_NAMES", "arena_trace",
    "make_model_ids", "sample_models", "uniform_popularity", "zipf_popularity",
    "LengthSampler", "Trace", "TraceRequest",
    "TenantWorkload", "multi_tenant_trace",
    "ClosedLoopClient", "PatienceModel", "impatient_cancel_schedule",
]
