"""Trace (de)serialization: one JSON object per line, like the paper's
artifact workload files (``azure.ar=0.5.jsonl``)."""

from __future__ import annotations

import json
from typing import List

from .spec import Trace, TraceRequest

__all__ = ["save_trace", "load_trace"]


def save_trace(trace: Trace, path: str) -> None:
    with open(path, "w") as f:
        header = {"model_ids": trace.model_ids,
                  "duration_s": trace.duration_s}
        f.write(json.dumps({"__header__": header}) + "\n")
        for req in trace:
            row = {
                "request_id": req.request_id,
                "model_id": req.model_id,
                "arrival_s": req.arrival_s,
                "prompt_tokens": req.prompt_tokens,
                "output_tokens": req.output_tokens,
            }
            # untenanted/undeadlined traces keep the exact legacy byte format
            if req.tenant_id is not None:
                row["tenant_id"] = req.tenant_id
            if req.deadline_s is not None:
                row["deadline_s"] = req.deadline_s
            if req.conversation_id is not None:
                row["conversation_id"] = req.conversation_id
            if req.shared_prefix_id is not None:
                row["shared_prefix_id"] = req.shared_prefix_id
            if req.shared_prefix_tokens:
                row["shared_prefix_tokens"] = req.shared_prefix_tokens
            f.write(json.dumps(row) + "\n")


def load_trace(path: str) -> Trace:
    requests: List[TraceRequest] = []
    model_ids: List[str] = []
    duration = 0.0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "__header__" in obj:
                model_ids = obj["__header__"]["model_ids"]
                duration = obj["__header__"]["duration_s"]
                continue
            requests.append(TraceRequest(**obj))
    if not model_ids:
        model_ids = sorted({r.model_id for r in requests})
    if duration == 0.0 and requests:
        duration = max(r.arrival_s for r in requests)
    return Trace(requests=requests, model_ids=model_ids,
                 duration_s=duration)
