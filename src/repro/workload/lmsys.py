"""Fig-1 style multi-model invocation trace (LMSys Chatbot-Arena proxy).

Figure 1 plots invocation counts per 5-minute window for 20 models over a
week: some variants are persistently dense (wizardlm-13b), others sporadic
(alpaca-13b), and activity waxes/wanes over days.  This generator produces a
trace with those characteristics: per-model base rates spanning orders of
magnitude, a diurnal modulation, and on/off activity episodes for the
sporadic tail.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .spec import LengthSampler, Trace, TraceRequest

__all__ = ["ARENA_MODEL_NAMES", "arena_trace"]

# the 20 model names from Fig 1, for familiar output
ARENA_MODEL_NAMES = [
    "wizardlm-13b", "vicuna-7b", "vicuna-13b", "stablelm-7b", "palm-2",
    "oasst-12b", "mpt-7b-chat", "llama-13b", "koala-13b", "guanaco-33b",
    "gpt4all-13b", "gpt-4", "gpt-3.5-turbo", "fastchat-t5-3b",
    "dolly-v2-12b", "claude-v1", "claude-instant-v1", "chatglm-6b",
    "alpaca-13b", "RWKV-4-14B",
]


def arena_trace(
    n_models: int = 20,
    duration_s: float = 7 * 24 * 3600.0,
    mean_rate: float = 0.02,
    seed: int = 0,
    sporadic_fraction: float = 0.4,
    length_sampler: Optional[LengthSampler] = None,
) -> Trace:
    """Generate a week-long arena-style trace.

    ``mean_rate`` is the system-wide average requests/second.  A
    ``sporadic_fraction`` of models follow an on/off episode process (long
    quiet stretches, Fig 1's yellow areas); the rest are continuously active
    with diurnal modulation.
    """
    rng = np.random.default_rng(seed)
    names = (ARENA_MODEL_NAMES[:n_models] if n_models <= len(ARENA_MODEL_NAMES)
             else [f"model-{i:02d}" for i in range(n_models)])
    sampler = length_sampler or LengthSampler()

    raw = rng.lognormal(0.0, 1.4, size=n_models)
    rates = raw / raw.sum() * mean_rate
    sporadic = rng.random(n_models) < sporadic_fraction

    requests: List[TraceRequest] = []
    rid = 0
    day = 24 * 3600.0
    for idx, (name, base_rate) in enumerate(zip(names, rates)):
        t = 0.0
        on = not sporadic[idx] or rng.random() < 0.5
        episode_end = t + float(rng.exponential(day / 2))
        while t < duration_s:
            # thinning: diurnal factor in [0.3, 1.7]
            diurnal = 1.0 + 0.7 * np.sin(2 * np.pi * t / day + idx)
            eff_rate = base_rate * max(diurnal, 0.05)
            if sporadic[idx] and not on:
                eff_rate = base_rate * 0.01
            if eff_rate <= 0:
                t += 60.0
                continue
            t += float(rng.exponential(1.0 / eff_rate))
            if sporadic[idx] and t > episode_end:
                on = not on
                episode_end = t + float(
                    rng.exponential(day / (1.0 if on else 2.0)))
            if t >= duration_s:
                break
            prompt, output = sampler.sample(rng)
            requests.append(TraceRequest(request_id=rid, model_id=name,
                                         arrival_s=t, prompt_tokens=prompt,
                                         output_tokens=output))
            rid += 1

    trace = Trace(requests=requests, model_ids=list(names),
                  duration_s=duration_s)
    for i, req in enumerate(trace.requests):
        req.request_id = i
    return trace
