"""Model-popularity distributions (paper §6.1: uniform, Zipf-α, Azure)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["uniform_popularity", "zipf_popularity", "sample_models",
           "make_model_ids"]


def make_model_ids(n_models: int, prefix: str = "variant") -> List[str]:
    """Stable variant names: variant-00 .. variant-NN."""
    width = max(2, len(str(n_models - 1)))
    return [f"{prefix}-{i:0{width}d}" for i in range(n_models)]


def uniform_popularity(n_models: int) -> np.ndarray:
    """All variants equally likely."""
    if n_models <= 0:
        raise ValueError("need at least one model")
    return np.full(n_models, 1.0 / n_models)


def zipf_popularity(n_models: int, alpha: float = 1.5) -> np.ndarray:
    """Zipf-α: popularity of the i-th model ∝ 1 / i^α (paper's skewed case)."""
    if n_models <= 0:
        raise ValueError("need at least one model")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    weights = 1.0 / np.power(np.arange(1, n_models + 1, dtype=np.float64), alpha)
    return weights / weights.sum()


def sample_models(popularity: Sequence[float], n_samples: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Draw model indices i.i.d. from a popularity vector."""
    p = np.asarray(popularity, dtype=np.float64)
    if not np.isclose(p.sum(), 1.0):
        raise ValueError(f"popularity must sum to 1, got {p.sum():.6f}")
    return rng.choice(len(p), size=n_samples, p=p)
