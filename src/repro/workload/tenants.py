"""Tenant-tagged trace generation for multi-tenant admission studies.

The paper's serving story assumes many tenants sharing one cluster; this
module materializes that assumption as workload.  Each
:class:`TenantWorkload` describes one tenant's offered load — its own
arrival rate, burstiness, model population, and length distribution — and
:func:`multi_tenant_trace` merges the per-tenant streams into a single
time-ordered :class:`~repro.workload.spec.Trace` whose requests carry
``tenant_id`` tags that the admission layer
(:mod:`repro.serving.tenancy`) bills against.

Per-tenant randomness is derived from ``(seed, tenant index)`` spawn keys,
so adding or re-ordering tenants never perturbs another tenant's stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .arrival import gamma_burst_arrivals, poisson_arrivals
from .popularity import (make_model_ids, sample_models, uniform_popularity,
                         zipf_popularity)
from .spec import LengthSampler, Trace, TraceRequest

__all__ = ["TenantWorkload", "multi_tenant_trace"]


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's offered load.

    ``rate`` is the tenant's mean requests/second; ``cv > 1`` makes its
    arrivals gamma-bursty (cv=1 is Poisson).  The tenant invokes
    ``n_models`` variants named ``{model_prefix}-NN`` under the requested
    popularity ``distribution``; pass explicit ``model_ids`` instead to
    share a variant pool with other tenants.
    """

    tenant_id: str
    rate: float
    n_models: int = 4
    distribution: str = "uniform"        # "uniform" | "zipf"
    zipf_alpha: float = 1.5
    cv: float = 1.0
    model_prefix: Optional[str] = None   # default: "<tenant_id>-variant"
    model_ids: Optional[Sequence[str]] = None
    length_sampler: Optional[LengthSampler] = None

    def __post_init__(self):
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.model_ids is None and self.n_models < 1:
            raise ValueError("need at least one model")
        if self.distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def resolved_model_ids(self) -> List[str]:
        if self.model_ids is not None:
            return list(self.model_ids)
        prefix = self.model_prefix or f"{self.tenant_id}-variant"
        return make_model_ids(self.n_models, prefix=prefix)

    def popularity(self) -> np.ndarray:
        n = len(self.resolved_model_ids())
        if self.distribution == "zipf":
            return zipf_popularity(n, alpha=self.zipf_alpha)
        return uniform_popularity(n)


def multi_tenant_trace(tenants: Sequence[TenantWorkload], duration_s: float,
                       seed: int = 0) -> Trace:
    """Merge per-tenant arrival streams into one tenant-tagged trace.

    Requests are numbered in global arrival order (stable FCFS identity,
    like every other generator); each request's ``tenant_id`` names the
    tenant that generated it.
    """
    if not tenants:
        raise ValueError("need at least one tenant workload")
    seen = set()
    for t in tenants:
        if t.tenant_id in seen:
            raise ValueError(f"duplicate tenant_id {t.tenant_id!r}")
        seen.add(t.tenant_id)

    requests: List[TraceRequest] = []
    all_models: List[str] = []
    for idx, tenant in enumerate(tenants):
        rng = np.random.default_rng([seed, idx])
        model_ids = tenant.resolved_model_ids()
        for m in model_ids:
            if m not in all_models:
                all_models.append(m)
        sampler = tenant.length_sampler or LengthSampler()
        if tenant.cv == 1.0:
            times = poisson_arrivals(tenant.rate, duration_s, rng)
        else:
            times = gamma_burst_arrivals(tenant.rate, duration_s, rng,
                                         cv=tenant.cv)
        picks = sample_models(tenant.popularity(), len(times), rng)
        for t, model_idx in zip(times, picks):
            prompt, output = sampler.sample(rng)
            requests.append(TraceRequest(
                request_id=0, model_id=model_ids[model_idx], arrival_s=t,
                prompt_tokens=prompt, output_tokens=output,
                tenant_id=tenant.tenant_id))

    requests.sort(key=lambda r: r.arrival_s)
    for i, req in enumerate(requests):
        req.request_id = i
    return Trace(requests=requests, model_ids=all_models,
                 duration_s=duration_s)
