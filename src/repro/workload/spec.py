"""Trace dataclasses shared by generators and serving engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["TraceRequest", "Trace", "LengthSampler"]


@dataclass
class TraceRequest:
    """One inference request in a workload trace.

    ``model_id`` names a fine-tuned variant (or the base model); prompt and
    output lengths are in tokens, sampled to match LMSys chat statistics.
    ``tenant_id`` optionally names the tenant the request bills to; ``None``
    (untenanted, the default for every pre-existing trace) is treated as
    the default tenant by the admission layer.  ``deadline_s`` is an
    *absolute* simulated time (same timeline as ``arrival_s``) by which
    the request must finish; past it the serving stack aborts the request
    as ``expired``, charging only the tokens actually generated.  ``None``
    (the default for every pre-existing trace) means no deadline.

    ``conversation_id`` groups the turns of one multi-turn session: turn
    *k+1*'s prompt is turn *k*'s full context (prompt + generated reply)
    plus the new user tokens, so a prefix cache can skip re-prefilling
    the shared history.  ``shared_prefix_id`` names a prompt region
    shared *across* conversations (a system prompt); the first
    ``shared_prefix_tokens`` prompt tokens belong to it.  All three
    default to "no session structure" and are inert unless an engine
    enables its prefix cache.
    """

    request_id: int
    model_id: str
    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    tenant_id: Optional[str] = None
    deadline_s: Optional[float] = None
    conversation_id: Optional[str] = None
    shared_prefix_id: Optional[str] = None
    shared_prefix_tokens: int = 0


@dataclass
class Trace:
    """A time-ordered request sequence over a set of model variants."""

    requests: List[TraceRequest]
    model_ids: List[str]
    duration_s: float

    def __post_init__(self):
        self.requests.sort(key=lambda r: (r.arrival_s, r.request_id))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def per_model_counts(self) -> Dict[str, int]:
        counts = {m: 0 for m in self.model_ids}
        for req in self.requests:
            counts[req.model_id] = counts.get(req.model_id, 0) + 1
        return counts

    @property
    def tenant_ids(self) -> List[str]:
        """Distinct tenants tagged on requests (untenanted excluded)."""
        return sorted({r.tenant_id for r in self.requests
                       if r.tenant_id is not None})

    def per_tenant_counts(self) -> Dict[Optional[str], int]:
        counts: Dict[Optional[str], int] = {}
        for req in self.requests:
            counts[req.tenant_id] = counts.get(req.tenant_id, 0) + 1
        return counts

    def arrival_rate(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.requests) / self.duration_s

    def windowed_counts(self, window_s: float) -> Dict[str, np.ndarray]:
        """Per-model invocation counts per time window (Fig 1's view)."""
        n_windows = max(1, int(np.ceil(self.duration_s / window_s)))
        out = {m: np.zeros(n_windows, dtype=np.int64) for m in self.model_ids}
        for req in self.requests:
            idx = min(int(req.arrival_s // window_s), n_windows - 1)
            out[req.model_id][idx] += 1
        return out


@dataclass
class LengthSampler:
    """Samples (prompt, output) token lengths.

    Defaults approximate the LMSys Chatbot-Arena conversations the paper
    replays: log-normal prompt lengths (median ≈ 50 tokens, long tail) and
    geometric-ish output lengths (mean ≈ 200 tokens), both clipped.
    """

    prompt_log_mean: float = 3.9
    prompt_log_sigma: float = 0.9
    output_mean: float = 200.0
    min_tokens: int = 4
    max_prompt: int = 1024
    max_output: int = 512

    def sample(self, rng: np.random.Generator) -> tuple:
        prompt = int(np.clip(rng.lognormal(self.prompt_log_mean,
                                           self.prompt_log_sigma),
                             self.min_tokens, self.max_prompt))
        output = int(np.clip(rng.geometric(1.0 / self.output_mean),
                             self.min_tokens, self.max_output))
        return prompt, output
