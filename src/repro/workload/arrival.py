"""Arrival processes: Poisson (the paper's default) and bursty variants."""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["poisson_arrivals", "gamma_burst_arrivals"]


def poisson_arrivals(rate: float, duration_s: float,
                     rng: np.random.Generator) -> List[float]:
    """Arrival timestamps of a homogeneous Poisson process.

    ``rate`` is the system-wide requests/second (the paper applies λ to the
    whole system, not per model).
    """
    if rate <= 0:
        return []
    times = []
    t = rng.exponential(1.0 / rate)
    while t < duration_s:
        times.append(float(t))
        t += rng.exponential(1.0 / rate)
    return times


def gamma_burst_arrivals(rate: float, duration_s: float,
                         rng: np.random.Generator,
                         cv: float = 4.0) -> List[float]:
    """Bursty arrivals via gamma-distributed inter-arrival gaps.

    ``cv`` is the coefficient of variation; cv=1 degenerates to Poisson,
    larger values produce the clumped traffic characteristic of the Azure
    serverless trace.
    """
    if rate <= 0:
        return []
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    times = []
    t = float(rng.gamma(shape, scale))
    while t < duration_s:
        times.append(t)
        t += float(rng.gamma(shape, scale))
    return times
