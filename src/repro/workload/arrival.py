"""Arrival processes: Poisson (the paper's default), bursty variants, and
piecewise-rate ramps for autoscaler studies.

Every arrival function takes its randomness as ``rng`` — a
``numpy.random.Generator``, an explicit integer seed, or ``None`` for a
fixed default seed — via :func:`as_rng`, so callers (benchmarks in
particular) can pin reproducible streams without constructing generators
themselves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["as_rng", "poisson_arrivals", "gamma_burst_arrivals",
           "piecewise_rate_arrivals", "ramp_arrivals"]

#: anything acceptable as a randomness source: a generator, a seed, or None
RNGLike = Union[np.random.Generator, int, Sequence[int], None]


def as_rng(rng: RNGLike) -> np.random.Generator:
    """Coerce a generator / explicit seed / ``None`` into a ``Generator``.

    ``None`` maps to seed 0 — deterministic by default — so run-to-run
    reproducibility never hinges on a caller remembering to seed.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(0 if rng is None else rng)


def poisson_arrivals(rate: float, duration_s: float,
                     rng: RNGLike = None) -> List[float]:
    """Arrival timestamps of a homogeneous Poisson process.

    ``rate`` is the system-wide requests/second (the paper applies λ to the
    whole system, not per model).
    """
    rng = as_rng(rng)
    if rate <= 0:
        return []
    times = []
    t = rng.exponential(1.0 / rate)
    while t < duration_s:
        times.append(float(t))
        t += rng.exponential(1.0 / rate)
    return times


def gamma_burst_arrivals(rate: float, duration_s: float,
                         rng: RNGLike = None,
                         cv: float = 4.0) -> List[float]:
    """Bursty arrivals via gamma-distributed inter-arrival gaps.

    ``cv`` is the coefficient of variation; cv=1 degenerates to Poisson,
    larger values produce the clumped traffic characteristic of the Azure
    serverless trace.
    """
    rng = as_rng(rng)
    if rate <= 0:
        return []
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    times = []
    t = float(rng.gamma(shape, scale))
    while t < duration_s:
        times.append(t)
        t += float(rng.gamma(shape, scale))
    return times


def piecewise_rate_arrivals(segments: Sequence[Tuple[float, float]],
                            rng: RNGLike = None,
                            cv: float = 1.0) -> List[float]:
    """Arrivals whose rate steps through ``(rate, duration_s)`` segments.

    The offered load an autoscaler reacts to: each segment draws its own
    (Poisson, or gamma-bursty for ``cv > 1``) process at that segment's
    rate, shifted to the segment's start.  A zero-rate segment is a quiet
    gap.
    """
    rng = as_rng(rng)
    times: List[float] = []
    offset = 0.0
    for rate, duration_s in segments:
        if duration_s < 0:
            raise ValueError("segment durations must be >= 0")
        if cv == 1.0:
            segment = poisson_arrivals(rate, duration_s, rng)
        else:
            segment = gamma_burst_arrivals(rate, duration_s, rng, cv=cv)
        times.extend(offset + t for t in segment)
        offset += duration_s
    return times


def ramp_arrivals(peak_rate: float, duration_s: float,
                  rng: RNGLike = None, base_rate: float = 0.0,
                  n_steps: int = 8, cv: float = 1.0) -> List[float]:
    """A triangular rate ramp: ``base_rate`` up to ``peak_rate`` and back.

    The canonical autoscaler stimulus — offered load rises over the first
    half, falls over the second, so a well-tuned controller's replica
    count should trace the same triangle.  The first and last steps run
    at ``base_rate`` and the middle step (two middle steps for even
    ``n_steps``) at exactly ``peak_rate``.
    """
    if n_steps < 3:
        raise ValueError("need at least 3 ramp steps")
    step_s = duration_s / n_steps
    rise = (n_steps - 1) // 2
    rates = [base_rate + (peak_rate - base_rate) *
             min(i, n_steps - 1 - i) / rise
             for i in range(n_steps)]
    return piecewise_rate_arrivals([(r, step_s) for r in rates], rng, cv=cv)
