"""Client behavior models: impatience (cancellation) and closed loops.

Real serving traffic is not fire-and-forget: clients disconnect, give up
when responses stall, and come back for another turn once the previous
one finishes.  This module materializes both behaviors on top of the
request-handle API:

* :class:`PatienceModel` + :func:`impatient_cancel_schedule` — per-tenant
  patience distributions turned into a deterministic cancel schedule
  (``(request_id, cancel_at_s)`` pairs): each request is abandoned
  ``patience`` seconds after its arrival unless it finishes first.  The
  schedule feeds ``gateway.replay(trace, cancels=...)`` (or per-handle
  ``cancel(at_s=...)``), which turns it into typed
  :class:`~repro.sim.Cancel` events — so abandonment happens at
  deterministic simulated times and replay stays record-identical.
* :class:`ClosedLoopClient` — a handle-driven multi-turn session: it
  submits a turn, registers ``add_done_callback`` on the handle, and —
  when the turn completes — schedules its next submission as a fresh
  :class:`~repro.sim.Arrival` at ``finish + think_time`` (no clock
  polling).  Optional per-turn ``patience_s``/``deadline_s`` make the
  client impatient; by default an abandoned turn ends the session, the
  way a user who gave up does not send a follow-up.

Per-tenant randomness derives from ``(seed, tenant)`` spawn keys like
:func:`~repro.workload.tenants.multi_tenant_trace`, so one tenant's
patience draws never perturb another's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .spec import Trace

__all__ = ["PatienceModel", "impatient_cancel_schedule", "ClosedLoopClient"]

_DEFAULT_KEY = "default"


@dataclass(frozen=True)
class PatienceModel:
    """How long a client waits before abandoning a request.

    ``mean_s`` is the mean patience; ``distribution`` is
    ``"exponential"`` (memoryless give-ups), ``"lognormal"`` (a long
    patient tail, ``sigma`` controlling its width), or ``"fixed"``.
    ``min_s`` floors every draw so pathological zero-patience samples
    cannot cancel a request the instant it arrives.
    """

    mean_s: float
    distribution: str = "exponential"   # "exponential"|"lognormal"|"fixed"
    sigma: float = 0.5
    min_s: float = 0.1

    def __post_init__(self):
        if self.mean_s <= 0:
            raise ValueError("mean_s must be > 0")
        if self.distribution not in ("exponential", "lognormal", "fixed"):
            raise ValueError(
                f"unknown patience distribution {self.distribution!r}")
        if self.min_s < 0:
            raise ValueError("min_s must be >= 0")

    def sample(self, rng: np.random.Generator) -> float:
        if self.distribution == "fixed":
            draw = self.mean_s
        elif self.distribution == "exponential":
            draw = float(rng.exponential(self.mean_s))
        else:
            # parameterize the lognormal so its mean is mean_s
            mu = np.log(self.mean_s) - 0.5 * self.sigma ** 2
            draw = float(rng.lognormal(mu, self.sigma))
        return max(draw, self.min_s)


def impatient_cancel_schedule(
        trace: Trace,
        patience: Union[PatienceModel, Dict[str, PatienceModel]],
        seed: int = 0) -> List[Tuple[int, float]]:
    """Turn per-tenant patience into a deterministic cancel schedule.

    ``patience`` is one :class:`PatienceModel` for every request or a
    ``tenant_id -> PatienceModel`` mapping (untenanted requests use the
    ``"default"`` key; tenants with no entry are infinitely patient).
    Returns ``(request_id, cancel_at_s)`` pairs with ``cancel_at =
    arrival + patience draw``, ordered by cancel time.  Draws use a
    per-tenant spawn-keyed rng over the tenant's requests in arrival
    order, so adding a tenant's model never changes another tenant's
    schedule.
    """
    if isinstance(patience, PatienceModel):
        models: Dict[str, Optional[PatienceModel]] = {}
        fallback: Optional[PatienceModel] = patience
    else:
        models = dict(patience)
        fallback = None

    by_tenant: Dict[str, List] = {}
    for request in trace:
        by_tenant.setdefault(request.tenant_id or _DEFAULT_KEY,
                             []).append(request)

    schedule: List[Tuple[int, float]] = []
    for tenant_id in sorted(by_tenant):
        model = models.get(tenant_id, fallback)
        if model is None:
            continue
        rng = np.random.default_rng(
            [seed, *(ord(c) for c in tenant_id)])
        for request in by_tenant[tenant_id]:
            schedule.append((request.request_id,
                             request.arrival_s + model.sample(rng)))
    schedule.sort(key=lambda pair: (pair[1], pair[0]))
    return schedule


class ClosedLoopClient:
    """A multi-turn session driven by request-handle completions.

    Each turn is one ``gateway.submit(...)``; when its handle reports
    done, the next turn is submitted with ``arrival_s = finish +
    think_time`` — i.e. scheduled as an :class:`~repro.sim.Arrival`
    event on the gateway's timeline, never by polling the clock.  The
    gateway can be any layer (engine-, cluster-, or tenant-backed): the
    handle API is identical.

    ``patience_s`` abandons a turn that long after its arrival (a
    :class:`PatienceModel` samples per turn; a float is fixed patience);
    ``deadline_s`` submits deadline-bounded turns instead.  When a turn
    is cancelled/expired/shed the session stops unless
    ``continue_after_abandon=True``.

    Drive the owning gateway (``step()`` / ``run_until_drained``) after
    :meth:`start`; inspect :attr:`handles` afterwards.
    """

    def __init__(self, gateway, model_id: str, n_turns: int,
                 prompt_tokens: int = 64, output_tokens: int = 32,
                 think_time_s: float = 1.0,
                 tenant_id: Optional[str] = None,
                 patience_s: Union[None, float, PatienceModel] = None,
                 deadline_s: Optional[float] = None,
                 continue_after_abandon: bool = False,
                 first_arrival_s: Optional[float] = None,
                 seed: int = 0):
        if n_turns < 1:
            raise ValueError("n_turns must be >= 1")
        self.gateway = gateway
        self.model_id = model_id
        self.n_turns = n_turns
        self.prompt_tokens = prompt_tokens
        self.output_tokens = output_tokens
        self.think_time_s = think_time_s
        self.tenant_id = tenant_id
        self.deadline_s = deadline_s
        self.continue_after_abandon = continue_after_abandon
        self._first_arrival_s = first_arrival_s
        if isinstance(patience_s, (int, float)):
            patience_s = PatienceModel(float(patience_s),
                                       distribution="fixed")
        self._patience = patience_s
        self._rng = np.random.default_rng(seed)
        self.handles: List = []
        self.abandoned = False

    @property
    def turns_submitted(self) -> int:
        return len(self.handles)

    @property
    def done(self) -> bool:
        """All turns submitted and terminal, or the session abandoned."""
        if self.abandoned and not self.continue_after_abandon:
            return bool(self.handles) and self.handles[-1].done
        return len(self.handles) == self.n_turns and \
            all(h.done for h in self.handles)

    def start(self) -> None:
        """Submit the first turn (at ``first_arrival_s`` or "now")."""
        if self.handles:
            raise RuntimeError("session already started")
        self._submit_turn(self._first_arrival_s)

    def _submit_turn(self, arrival_s: Optional[float]) -> None:
        handle = self.gateway.submit(
            self.model_id, self.prompt_tokens, self.output_tokens,
            arrival_s=arrival_s, tenant_id=self.tenant_id,
            deadline_s=self.deadline_s)
        self.handles.append(handle)
        if self._patience is not None:
            arrival = arrival_s if arrival_s is not None \
                else self.gateway.clock
            handle.cancel(at_s=arrival + self._patience.sample(self._rng))
        handle.add_done_callback(self._on_turn_done)

    def _on_turn_done(self, handle) -> None:
        record = handle.record()
        if not record.finished:
            self.abandoned = True
            if not self.continue_after_abandon:
                return
        if len(self.handles) >= self.n_turns:
            return
        # the next turn joins the timeline as a fresh Arrival event at
        # finish + think time — event-driven, no clock polling
        self._submit_turn(record.finish_s + self.think_time_s)
