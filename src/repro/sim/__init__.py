"""Discrete-event simulation kernel shared by every serving layer.

Before this package the repo had four hand-rolled clocks: the engine's
per-iteration float, the cluster's min-scan over replica clocks, the
tenancy layer's derived admission frontier, and the token bucket's
private refill clock.  ``repro.sim`` is the single authority they now
share:

* :class:`SimClock` — a point in simulated time with monotone advance;
* :class:`EventQueue` — a deterministic min-heap of typed events with
  ``peek_time`` idle-skip and O(log n) future-event counting;
* typed events (:class:`Arrival`, :class:`IterationDone`,
  :class:`BucketRefill`, :class:`AutoscalerTick`, :class:`ReplicaSpawn`,
  :class:`ReplicaDrain`) — the simulation's shared vocabulary;
* :class:`SimKernel` — clock + event journal + subscribers for a
  timeline owner (the cluster gateway, the tenancy frontier).

Layer mapping: :class:`~repro.serving.base.ServingEngine` sources
arrivals and stall-jumps from an :class:`EventQueue` on a
:class:`SimClock`; :class:`~repro.serving.cluster.ClusterGateway` owns a
:class:`SimKernel` whose clock is the cluster frontier and schedules
:class:`AutoscalerTick` events instead of polling;
:class:`~repro.serving.tenancy.TenantGateway` queues offered requests as
:class:`Arrival` events and learns bucket wake-ups from
:class:`BucketRefill` events the admission controller emits.
"""

from .clock import SimClock
from .events import (AdmissionDecision, Arrival, AutoscalerTick, BucketRefill,
                     Cancel, Event, IterationDone, KvTransfer,
                     PhaseTransition, ReplicaDrain, ReplicaSpawn,
                     TelemetryTick)
from .kernel import SimKernel
from .queue import EventQueue, KeyedHeap
from .sanitizer import SimSanitizerError, new_clock
from .trace_export import chrome_trace_events, export_chrome_trace

__all__ = [
    "SimClock", "EventQueue", "KeyedHeap", "SimKernel",
    "Event", "Arrival", "Cancel", "IterationDone", "BucketRefill",
    "AutoscalerTick", "ReplicaSpawn", "ReplicaDrain",
    "PhaseTransition", "AdmissionDecision", "TelemetryTick", "KvTransfer",
    "SimSanitizerError", "new_clock",
    "chrome_trace_events", "export_chrome_trace",
]
