"""Typed simulation events shared by every serving layer.

The serving stack is a discrete-event simulation; these dataclasses are
the vocabulary of that simulation.  Each event carries the simulated
``time`` it is scheduled for (or occurred at) and a ``sort_key`` used to
break ties deterministically — request-carrying events tie-break on the
request id, exactly matching the ``(arrival_s, request_id)`` heap tuples
the layers used before the kernel existed, so replay order is unchanged.

Producers and consumers:

* :class:`Arrival` — a request approaching a queue frontier.  Engines
  hold their not-yet-arrived submissions as ``Arrival`` events; the
  cluster holds unrouted trace requests; the admission layer holds
  offered-but-not-yet-due requests.
* :class:`IterationDone` — one executed engine iteration.  Emitted by
  :class:`~repro.serving.base.ServingEngine` through ``on_event`` for
  cross-layer instrumentation (the kernel journal, tests, benchmarks).
* :class:`BucketRefill` — a deferred request's token bucket becomes
  solvent.  Emitted by the admission controller so the tenancy frontier
  knows when to wake an otherwise idle system.
* :class:`Cancel` — a request leaves the system before finishing, either
  because its client gave up (``reason="cancel"``) or because its
  deadline passed (``reason="deadline"``).  Engines hold scheduled
  cancellations in an :class:`~repro.sim.EventQueue` next to their
  arrivals, so cancellation and deadline expiry happen at deterministic
  simulated times — replay with the same cancel schedule is
  record-identical, and replay with no cancels is bit-identical to a
  pre-cancellation run.
* :class:`AutoscalerTick` — the next scheduled controller observation.
  The cluster gateway schedules one tick ahead instead of polling the
  controller after every step.
* :class:`ReplicaSpawn` / :class:`ReplicaDrain` — replica-set changes,
  journaled so a run's scaling history is reconstructible from events.
* :class:`PhaseTransition` — a request crossing a lifecycle boundary
  (``queue → prefill [→ transfer] → decode → retire``).  Emitted by
  :class:`~repro.serving.base.ServingEngine` (and by the tenancy
  frontier for shed/rejected requests that never reach an engine) so the
  telemetry layer can assemble per-request spans without scraping
  per-request state.  The ``transfer`` phase only appears under
  disaggregated serving, between prefill completing on one pool and
  decode starting on the other.
* :class:`KvTransfer` — a request's KV blocks moving from its prefill
  worker to its decode worker over the interconnect.  Emitted by
  :class:`~repro.serving.disagg.DisaggregatedEngine` with the priced
  byte count (uncached suffix only when the prefix cache held the
  shared prefix) so journals and benchmarks can audit transfer cost
  against the hardware transfer model.
* :class:`AdmissionDecision` — the admission controller's verdict on one
  offered request (admitted / deferred / shed / rejected), emitted by
  :class:`~repro.serving.tenancy.AdmissionController`.
* :class:`TelemetryTick` — a periodic gauge-snapshot poll scheduled by
  :class:`~repro.telemetry.Telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Event", "Arrival", "Cancel", "IterationDone", "BucketRefill",
    "AutoscalerTick", "ReplicaSpawn", "ReplicaDrain",
    "PhaseTransition", "AdmissionDecision", "TelemetryTick",
    "KvTransfer",
]


@dataclass(frozen=True)
class Event:
    """Base class: anything with a scheduled simulated time."""

    time: float

    #: tie-break rank among events at the same time (requests use their id)
    @property
    def sort_key(self) -> float:
        return 0.0


@dataclass(frozen=True)
class Arrival(Event):
    """A request reaching a frontier (engine queue, router, admission)."""

    request: Any = None   # TraceRequest or ServingRequest (duck-typed)

    @property
    def sort_key(self) -> float:
        return self.request.request_id

    @property
    def request_id(self) -> int:
        return self.request.request_id


@dataclass(frozen=True)
class Cancel(Event):
    """A request is withdrawn at ``time``: client cancel or deadline.

    ``reason`` is ``"cancel"`` (the client gave up — the impatient-client
    workload model, an explicit :meth:`RequestHandle.cancel`) or
    ``"deadline"`` (the request's ``deadline_s`` passed before it
    finished).  A ``Cancel`` whose target already reached a terminal
    state is *stale* and ignored wherever it surfaces.
    """

    request_id: int = -1
    reason: str = "cancel"       # "cancel" | "deadline"

    @property
    def sort_key(self) -> float:
        return self.request_id


@dataclass(frozen=True)
class IterationDone(Event):
    """One executed engine iteration (time = clock after the iteration)."""

    iter_time_s: float = 0.0
    load_time_s: float = 0.0
    n_running: int = 0
    n_admitted: int = 0
    n_finished: int = 0
    source: Optional[str] = field(default=None, compare=False)


@dataclass(frozen=True)
class BucketRefill(Event):
    """A deferred request's per-tenant token bucket refills at ``time``."""

    tenant_id: str = ""
    request_id: Optional[int] = None

    @property
    def sort_key(self) -> float:
        return -1.0 if self.request_id is None else self.request_id


@dataclass(frozen=True)
class AutoscalerTick(Event):
    """The autoscaler's next scheduled observation of the cluster."""


@dataclass(frozen=True)
class ReplicaSpawn(Event):
    """A replica joined (or was revived into) the active set."""

    replica_id: int = -1
    revived: bool = False


@dataclass(frozen=True)
class ReplicaDrain(Event):
    """A replica stopped accepting new work and will retire when idle."""

    replica_id: int = -1


@dataclass(frozen=True)
class PhaseTransition(Event):
    """A request entered lifecycle ``phase`` at ``time``.

    Phases: ``"queue"`` (arrived at an engine queue), ``"prefill"``
    (first scheduled into a batch), ``"decode"`` (first output token),
    ``"retire"`` (reached a terminal state — ``status`` carries the
    terminal :class:`~repro.serving.request.RequestState` value, e.g.
    ``"finished"`` / ``"cancelled"`` / ``"expired"``).  ``source`` names
    the emitting engine/frontier and never participates in equality, so
    replay comparisons ignore which replica happened to host the span.
    """

    request_id: int = -1
    #: "queue" | "prefill" | "transfer" | "decode" | "retire"
    #: ("transfer" appears only under disaggregated serving)
    phase: str = "queue"
    model_id: str = ""
    tenant_id: Optional[str] = None
    status: str = ""          # terminal state value, retire only
    source: Optional[str] = field(default=None, compare=False)

    @property
    def sort_key(self) -> float:
        return self.request_id


@dataclass(frozen=True)
class KvTransfer(Event):
    """A request's KV blocks crossing the prefill→decode interconnect.

    ``time`` is when the transfer *starts* (prefill completion);
    ``transfer_s`` is the priced interconnect occupancy, so the decode
    pool sees the request arrive at ``time + transfer_s``.  ``nbytes``
    covers only the uncached KV suffix: when the prefix cache already
    holds the request's shared prefix on the decode side the cached
    blocks never cross the wire.  ``src``/``dst`` name the pool workers
    and never participate in equality, so replay comparisons ignore
    which worker pair happened to carry the request.
    """

    request_id: int = -1
    model_id: str = ""
    nbytes: int = 0
    transfer_s: float = 0.0
    tokens: int = 0           # KV token rows moved (uncached suffix)
    cached_tokens: int = 0    # prefix tokens that skipped the wire
    src: Optional[str] = field(default=None, compare=False)
    dst: Optional[str] = field(default=None, compare=False)

    @property
    def sort_key(self) -> float:
        return self.request_id


@dataclass(frozen=True)
class AdmissionDecision(Event):
    """The admission controller's verdict on one offered request.

    ``decision`` is the string value of the tenancy layer's decision
    enum: ``"admitted"`` / ``"deferred"`` / ``"shed"`` / ``"rejected"``.
    """

    request_id: int = -1
    tenant_id: str = ""
    decision: str = ""
    model_id: str = ""

    @property
    def sort_key(self) -> float:
        return self.request_id


@dataclass(frozen=True)
class TelemetryTick(Event):
    """A periodic gauge-snapshot poll on the telemetry timeline."""
