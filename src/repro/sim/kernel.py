"""The simulation kernel: one clock, an event journal, subscribers.

A :class:`SimKernel` is what a *timeline owner* (the cluster gateway, the
tenancy frontier) holds: the authoritative monotone clock for that
timeline plus an optional journal of every typed event that crossed it.
Layers below the owner (engines, buckets, the autoscaler) don't keep
their own notion of global time any more — they either read the kernel
clock or emit events into it.

The journal is the cross-layer instrumentation surface: with
``journal=True`` every emitted event is recorded in order, so tests can
assert that two runs (e.g. with idle-skip on and off) produced the same
*simulated history*, not just the same final records, and benchmarks can
count events instead of guessing at step counts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from . import sanitizer as _sanitizer
from .clock import SimClock
from .events import Event

__all__ = ["SimKernel"]

Subscriber = Callable[[Event], None]


class SimKernel:
    """One timeline: a monotone clock + event emission/journaling."""

    #: set by :func:`repro.sim.sanitizer.install` (idempotence marker)
    _sanitizer_installed: bool = False

    def __init__(self, journal: bool = False,
                 clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.journal: Optional[List[Event]] = [] if journal else None
        self._subscribers: Dict[Type[Event], List[Subscriber]] = {}
        # per-concrete-event-type dispatch cache: emit() is the kernel's
        # hottest path, and the subscriber set changes only at wiring time
        self._resolved: Dict[Type[Event], Tuple[Subscriber, ...]] = {}
        if _sanitizer.enabled():
            _sanitizer.install(self)

    @property
    def now(self) -> float:
        return self.clock.now

    def advance(self, to: float) -> float:
        """Advance the kernel clock monotonically; returns ``now``."""
        return self.clock.advance(to)

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def subscribe(self, event_type: Type[Event], fn: Subscriber) -> None:
        """Call ``fn`` for every emitted event of (a subclass of) type."""
        self._subscribers.setdefault(event_type, []).append(fn)
        self._resolved.clear()

    def _resolve(self, cls: Type[Event]) -> Tuple[Subscriber, ...]:
        fns = self._resolved.get(cls)
        if fns is None:
            # resolve the subclass checks once per concrete type, in
            # subscription order (identical notification order to the
            # old per-emit isinstance scan)
            fns = tuple(fn
                        for event_type, subs in self._subscribers.items()
                        if issubclass(cls, event_type)
                        for fn in subs)
            self._resolved[cls] = fns
        return fns

    def wants(self, event_type: Type[Event]) -> bool:
        """Would an emitted ``event_type`` be observed by anyone?

        True when the journal is on or at least one subscriber matches.
        Producers use this to skip *constructing* events nobody would
        see, keeping the zero-listeners path allocation-free.
        """
        if self.journal is not None:
            return True
        return bool(self._resolve(event_type))

    def emit(self, event: Event) -> None:
        """Record an event on this timeline and notify subscribers."""
        if self.journal is not None:
            self.journal.append(event)
        for fn in self._resolve(type(event)):
            fn(event)

    def reset(self) -> None:
        """Fresh timeline: clock to zero, journal emptied (subscribers
        survive — they are wiring, not state)."""
        self.clock.reset()
        if self.journal is not None:
            self.journal.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self.journal) if self.journal is not None else 0
        return f"SimKernel(now={self.now:.6f}, journaled={n})"
