"""Export a :class:`~repro.sim.SimKernel` journal as Chrome tracing JSON.

``SimKernel(journal=True)`` records every typed event that crossed a
timeline — engine iterations, replica spawns/drains, autoscaler ticks,
bucket refills, cancellations.  This module renders that journal in the
Chrome ``about:tracing`` / Perfetto JSON format, so a run's scheduling
history (including cancel/deadline activity) can be opened in
``chrome://tracing`` and inspected visually.

Mapping: :class:`~repro.sim.IterationDone` becomes a complete ("X") span
on its source engine's track, everything else an instant ("i") event;
simulated seconds become trace microseconds.  The CLI ``cluster``
subcommand exposes this through ``--trace-out``.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Union

from .events import (Arrival, AutoscalerTick, BucketRefill, Cancel, Event,
                     IterationDone, ReplicaDrain, ReplicaSpawn)

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_US = 1e6      # simulated seconds -> trace microseconds


def _instant(name: str, time_s: float, tid: str, **args: object) -> dict:
    return {"name": name, "ph": "i", "ts": time_s * _US, "pid": 0,
            "tid": tid, "s": "t", "args": args}


def chrome_trace_events(journal: Iterable[Event]) -> List[dict]:
    """One Chrome ``traceEvents`` dict per journaled event."""
    out: List[dict] = []
    for event in journal:
        if isinstance(event, IterationDone):
            span = event.iter_time_s + event.load_time_s
            out.append({
                "name": "iteration", "ph": "X",
                "ts": (event.time - span) * _US, "dur": span * _US,
                "pid": 0, "tid": event.source or "engine",
                "args": {"iter_time_s": event.iter_time_s,
                         "load_time_s": event.load_time_s,
                         "n_running": event.n_running,
                         "n_admitted": event.n_admitted,
                         "n_finished": event.n_finished}})
        elif isinstance(event, Cancel):
            out.append(_instant(f"cancel:{event.reason}", event.time,
                                "cancel", request_id=event.request_id))
        elif isinstance(event, ReplicaSpawn):
            out.append(_instant("spawn", event.time, "replicas",
                                replica_id=event.replica_id,
                                revived=event.revived))
        elif isinstance(event, ReplicaDrain):
            out.append(_instant("drain", event.time, "replicas",
                                replica_id=event.replica_id))
        elif isinstance(event, BucketRefill):
            out.append(_instant("bucket-refill", event.time,
                                f"tenant:{event.tenant_id}",
                                request_id=event.request_id))
        elif isinstance(event, AutoscalerTick):
            out.append(_instant("autoscaler-tick", event.time, "autoscaler"))
        elif isinstance(event, Arrival):
            out.append(_instant("arrival", event.time, "arrivals",
                                request_id=event.request_id))
        else:  # future event types still land on a generic track
            out.append(_instant(type(event).__name__, event.time, "events"))
    return out


def export_chrome_trace(journal: Iterable[Event],
                        path_or_file: Union[str, IO[str]]) -> int:
    """Write the journal as ``about:tracing`` JSON; returns event count."""
    events = chrome_trace_events(journal)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as f:
            json.dump(payload, f)
    else:
        json.dump(payload, path_or_file)
    return len(events)
