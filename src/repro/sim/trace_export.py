"""Export a :class:`~repro.sim.SimKernel` journal as Chrome tracing JSON.

``SimKernel(journal=True)`` records every typed event that crossed a
timeline — engine iterations, replica spawns/drains, autoscaler ticks,
bucket refills, cancellations, and (with telemetry wired) per-request
phase transitions.  This module renders that journal in the Chrome
``about:tracing`` / Perfetto JSON format, so a run's scheduling history
can be opened in ``chrome://tracing`` and inspected visually.

Mapping: :class:`~repro.sim.IterationDone` becomes a complete ("X") span
on its source engine's track; :class:`~repro.sim.PhaseTransition`
streams are folded into *nested* "X" slices — one outer request slice
per lifecycle, with ``queue``/``prefill``/``transfer``/``decode``
sub-slices under it
— on a per-request track carrying tenant/variant args.  Everything else
renders as an instant ("i") event; cancellations are attributed to the
originating tenant when the journal identifies one.  Simulated seconds
become trace microseconds.  The CLI ``cluster`` and ``tenancy``
subcommands expose this through ``--trace-out``.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from .events import (AdmissionDecision, Arrival, AutoscalerTick,
                     BucketRefill, Cancel, Event, IterationDone,
                     KvTransfer, PhaseTransition, ReplicaDrain,
                     ReplicaSpawn, TelemetryTick)

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_US = 1e6      # simulated seconds -> trace microseconds

#: lifecycle phase order used to close nested request sub-slices
#: ("transfer" only appears under disaggregated prefill/decode serving)
_PHASE_ORDER = ("queue", "prefill", "transfer", "decode")


def _instant(name: str, time_s: float, tid: str, **args: object) -> dict:
    return {"name": name, "ph": "i", "ts": time_s * _US, "pid": 0,
            "tid": tid, "s": "t", "args": args}


def _slice(name: str, start_s: float, end_s: float, tid: str,
           **args: object) -> dict:
    return {"name": name, "ph": "X", "ts": start_s * _US,
            "dur": max(0.0, end_s - start_s) * _US, "pid": 0,
            "tid": tid, "args": args}


class _RequestTrack:
    """Accumulates one request's identity + phase entry times."""

    __slots__ = ("tenant_id", "model_id", "source", "phases", "retire_s",
                 "status", "cancel_reason")

    def __init__(self) -> None:
        self.tenant_id: Optional[str] = None
        self.model_id: str = ""
        self.source: Optional[str] = None
        self.phases: Dict[str, float] = {}
        self.retire_s: Optional[float] = None
        self.status: str = ""
        self.cancel_reason: Optional[str] = None


def _scan_requests(journal: Iterable[Event]
                   ) -> Dict[int, _RequestTrack]:
    """First pass: fold request identity + lifecycle out of the journal."""
    tracks: Dict[int, _RequestTrack] = {}

    def track(rid: int) -> _RequestTrack:
        t = tracks.get(rid)
        if t is None:
            t = tracks[rid] = _RequestTrack()
        return t

    for event in journal:
        if isinstance(event, Arrival):
            t = track(event.request_id)
            req = event.request
            tenant = getattr(req, "tenant_id", None)
            if tenant is not None:
                t.tenant_id = tenant
            model = getattr(req, "model_id", "")
            if model:
                t.model_id = model
        elif isinstance(event, PhaseTransition):
            t = track(event.request_id)
            if event.tenant_id is not None:
                t.tenant_id = event.tenant_id
            if event.model_id:
                t.model_id = event.model_id
            if event.source is not None:
                t.source = event.source
            if event.phase == "retire":
                if t.retire_s is None:
                    t.retire_s = event.time
                    t.status = event.status or "finished"
            else:
                t.phases.setdefault(event.phase, event.time)
        elif isinstance(event, AdmissionDecision):
            t = track(event.request_id)
            if event.tenant_id:
                t.tenant_id = event.tenant_id
            if event.model_id:
                t.model_id = event.model_id
        elif isinstance(event, Cancel):
            track(event.request_id).cancel_reason = event.reason
    return tracks


def _request_slices(rid: int, t: _RequestTrack) -> List[dict]:
    """Nested "X" slices for one closed request lifecycle."""
    if t.retire_s is None or not t.phases:
        return []
    entered: List[Tuple[str, float]] = [
        (name, t.phases[name]) for name in _PHASE_ORDER
        if name in t.phases]
    start = entered[0][1]
    args: Dict[str, object] = {"request_id": rid, "status": t.status}
    if t.tenant_id is not None:
        args["tenant"] = t.tenant_id
    if t.model_id:
        args["variant"] = t.model_id
    if t.source is not None:
        args["replica"] = t.source
    if t.cancel_reason is not None:
        args["cancel_reason"] = t.cancel_reason
    tid = f"req:{rid}"
    out = [_slice(t.model_id or f"request-{rid}", start, t.retire_s,
                  tid, **args)]
    for i, (name, phase_start) in enumerate(entered):
        phase_end = entered[i + 1][1] if i + 1 < len(entered) \
            else t.retire_s
        out.append(_slice(name, phase_start, phase_end, tid,
                          request_id=rid))
    return out


def chrome_trace_events(journal: Iterable[Event]) -> List[dict]:
    """Chrome ``traceEvents`` dicts for a journal.

    Journal order is preserved for the instant/engine events; the folded
    per-request lifecycle slices follow, grouped by request id.
    :class:`~repro.sim.PhaseTransition` events render only through that
    folded form (an instant per transition would bury the trace).
    """
    journal = list(journal)
    tracks = _scan_requests(journal)
    out: List[dict] = []
    for event in journal:
        if isinstance(event, IterationDone):
            span = event.iter_time_s + event.load_time_s
            out.append({
                "name": "iteration", "ph": "X",
                "ts": (event.time - span) * _US, "dur": span * _US,
                "pid": 0, "tid": event.source or "engine",
                "args": {"iter_time_s": event.iter_time_s,
                         "load_time_s": event.load_time_s,
                         "n_running": event.n_running,
                         "n_admitted": event.n_admitted,
                         "n_finished": event.n_finished}})
        elif isinstance(event, Cancel):
            track = tracks.get(event.request_id)
            extra: Dict[str, object] = {}
            if track is not None and track.tenant_id is not None:
                extra["tenant"] = track.tenant_id
            out.append(_instant(f"cancel:{event.reason}", event.time,
                                "cancel", request_id=event.request_id,
                                **extra))
        elif isinstance(event, ReplicaSpawn):
            out.append(_instant("spawn", event.time, "replicas",
                                replica_id=event.replica_id,
                                revived=event.revived))
        elif isinstance(event, ReplicaDrain):
            out.append(_instant("drain", event.time, "replicas",
                                replica_id=event.replica_id))
        elif isinstance(event, BucketRefill):
            out.append(_instant("bucket-refill", event.time,
                                f"tenant:{event.tenant_id}",
                                request_id=event.request_id))
        elif isinstance(event, KvTransfer):
            out.append(_slice("kv-transfer", event.time,
                              event.time + event.transfer_s, "kv-transfer",
                              request_id=event.request_id,
                              variant=event.model_id, nbytes=event.nbytes,
                              tokens=event.tokens,
                              cached_tokens=event.cached_tokens,
                              src=event.src, dst=event.dst))
        elif isinstance(event, AutoscalerTick):
            out.append(_instant("autoscaler-tick", event.time, "autoscaler"))
        elif isinstance(event, AdmissionDecision):
            out.append(_instant(f"admission:{event.decision}", event.time,
                                f"tenant:{event.tenant_id}",
                                request_id=event.request_id,
                                variant=event.model_id))
        elif isinstance(event, TelemetryTick):
            out.append(_instant("telemetry-tick", event.time, "telemetry"))
        elif isinstance(event, PhaseTransition):
            pass    # folded into the nested request slices below
        elif isinstance(event, Arrival):
            out.append(_instant("arrival", event.time, "arrivals",
                                request_id=event.request_id))
        else:  # future event types still land on a generic track
            out.append(_instant(type(event).__name__, event.time, "events"))
    for rid in sorted(tracks):
        out.extend(_request_slices(rid, tracks[rid]))
    return out


def export_chrome_trace(journal: Iterable[Event],
                        path_or_file: Union[str, IO[str]]) -> int:
    """Write the journal as ``about:tracing`` JSON; returns event count."""
    events = chrome_trace_events(journal)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as f:
            json.dump(payload, f)
    else:
        json.dump(payload, path_or_file)
    return len(events)
