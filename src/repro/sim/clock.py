"""The simulated clock: one definition of "now" per timeline.

Every serving layer used to keep a private float clock and its own rules
for advancing it; :class:`SimClock` is the single primitive they now
share.  A clock is deliberately tiny — a mutable point in simulated time
with monotone ``advance`` and free-form ``tick`` — so that the *policy*
of when time moves stays in the layer that owns the timeline (an engine
iteration, a cluster frontier, an admission floor) while the *mechanism*
is common and auditable.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A point in simulated time.

    ``advance`` is monotone (a no-op when the target lies in the past),
    which is the invariant frontier clocks need; ``tick`` adds a strictly
    relative duration (an iteration's cost); ``reseat`` is the one
    sanctioned non-monotone mutation, for the few places that
    legitimately re-seat a timeline (engine reset, replica spawn at the
    cluster frontier).  Code outside this module must use these three
    methods rather than assigning :attr:`now` directly — simlint's
    SIM004 rule enforces that statically, and the runtime sanitizer
    (:mod:`repro.sim.sanitizer`) checks the dynamic counterpart.
    """

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def advance(self, to: float) -> float:
        """Move forward to ``to`` (never backward); returns ``now``."""
        if to > self.now:
            self.now = to
        return self.now

    def tick(self, dt: float) -> float:
        """Advance by a relative duration; returns the new ``now``."""
        self.now += dt
        return self.now

    def reseat(self, to: float) -> float:
        """Re-seat the timeline at ``to`` (may move backward).

        This is the explicit escape hatch for timeline owners: an engine
        reset, a replica spawned at the cluster frontier, an idle
        engine's clock bumped by the admission layer.  Keeping it a named
        method (instead of ``clock.now = x``) makes every non-monotone
        time mutation grep-able and lintable.
        """
        self.now = float(to)
        return self.now

    def reset(self, to: float = 0.0) -> None:
        self.now = float(to)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self.now:.6f})"
