"""Runtime sim-sanitizer: dynamic determinism checks for the sim kernel.

simlint (:mod:`repro.analysis`) enforces the repo's determinism rules
*statically*; this module asserts their dynamic counterparts while a
simulation runs.  Enable it with ``REPRO_SIM_SANITIZE=1`` (read at
import; tests can toggle with the :func:`sanitized` context manager) and
every :class:`~repro.sim.SimKernel` self-installs the checks at
construction:

* **monotone clock per timeline** — a sanitized clock rejects negative
  ``tick`` durations; ``advance`` is structurally monotone and
  ``reseat`` is the one audited escape hatch (SIM004's runtime twin);
* **no event scheduled in the past** — ``kernel.emit`` rejects
  kernel-timeline events (autoscaler ticks, replica spawns/drains)
  whose time precedes the kernel clock, and requires every event time
  to be finite; events published from *replica* timelines may lag the
  ratcheted kernel clock by design, so their monotonicity is enforced
  by the sanitized per-timeline clocks instead;
* **no second terminal transition** — a :class:`Cancel` crossing the
  kernel for a request that already terminated raises, as does a
  :class:`~repro.serving.handle.RequestHandle` finishing twice;
* **token-bucket conservation** — charge/refund amounts are finite and
  non-negative, the level never exceeds ``burst``, cumulative refunds
  never exceed cumulative charges (cancel-refund symmetry), and a
  charge never yields an eligibility earlier than the charge time.

Violations raise :class:`SimSanitizerError` carrying the offending
value *and* the publishing call site (the first stack frame outside
``repro/sim``), so a stray mutation three layers up is attributed to
the line that performed it, not to the kernel that noticed.
"""

from __future__ import annotations

import os
import traceback
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Set

from .clock import SimClock
from .events import (AutoscalerTick, Cancel, Event, ReplicaDrain,
                     ReplicaSpawn, TelemetryTick)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import SimKernel

__all__ = [
    "ENV_VAR", "SimSanitizerError", "enabled", "sanitized",
    "SanitizedClock", "new_clock", "install",
]

#: environment variable that turns the sanitizer on (``1``/``true``/…)
ENV_VAR = "REPRO_SIM_SANITIZE"

#: absolute tolerance for "in the past" time comparisons
_TIME_EPS = 1e-9
#: absolute tolerance for token-bucket conservation checks
_TOKEN_EPS = 1e-6


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in (
        "", "0", "false", "no", "off")


_active: bool = _env_enabled()


def enabled() -> bool:
    """Is the sanitizer active for newly constructed kernels/buckets?"""
    return _active


@contextmanager
def sanitized(active: bool = True) -> Iterator[None]:
    """Force the sanitizer on (or off) within a ``with`` block — the
    test hook; production use goes through ``REPRO_SIM_SANITIZE=1``."""
    global _active
    previous, _active = _active, active
    try:
        yield
    finally:
        _active = previous


class SimSanitizerError(AssertionError):
    """A dynamic determinism invariant was violated.

    Subclasses :class:`AssertionError` deliberately: these are the
    runtime *assertions* behind the SIM lint rules, and any test or
    harness treating assertion failures as fatal does the right thing.
    """


def _call_site() -> str:
    """The publishing call site: the innermost frame outside repro/sim."""
    here = os.path.dirname(os.path.abspath(__file__))
    for frame in reversed(traceback.extract_stack()):
        frame_dir = os.path.dirname(os.path.abspath(frame.filename))
        if frame_dir != here:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown call site>"


def _violation(message: str) -> SimSanitizerError:
    return SimSanitizerError(f"{message} [published at {_call_site()}]")


# --------------------------------------------------------------------- #
# clock
# --------------------------------------------------------------------- #
class SanitizedClock(SimClock):
    """A :class:`SimClock` that rejects backward ``tick`` durations.

    ``advance`` is monotone by construction and ``reseat`` is the
    sanctioned non-monotone mutation, so the only way a timeline can
    silently run backward is a negative tick — which this rejects."""

    __slots__ = ()

    def tick(self, dt: float) -> float:
        if dt < 0.0 or dt != dt:  # negative or NaN
            raise _violation(
                f"clock tick of {dt!r}s would move timeline backward "
                f"(now={self.now:.9f})")
        return super().tick(dt)


def new_clock(now: float = 0.0) -> SimClock:
    """The clock factory timeline owners use: sanitized when enabled."""
    return SanitizedClock(now) if _active else SimClock(now)


# --------------------------------------------------------------------- #
# kernel
# --------------------------------------------------------------------- #
def install(kernel: "SimKernel") -> "SimKernel":
    """Wrap one kernel's ``emit``/``reset`` with the dynamic checks.

    Called automatically from :class:`~repro.sim.SimKernel` construction
    when the sanitizer is enabled; idempotent, and callable explicitly
    on any kernel regardless of the environment flag.
    """
    if getattr(kernel, "_sanitizer_installed", False):
        return kernel
    kernel._sanitizer_installed = True
    kernel.clock = SanitizedClock(kernel.clock.now)
    terminal: Set[int] = set()
    inner_emit = kernel.emit
    inner_reset = kernel.reset

    def emit(event: Event) -> None:
        check_event(kernel, event, terminal)
        inner_emit(event)

    def reset() -> None:
        terminal.clear()
        inner_reset()
        kernel.clock = SanitizedClock(kernel.clock.now)

    kernel.emit = emit       # type: ignore[method-assign]
    kernel.reset = reset     # type: ignore[method-assign]
    return kernel


#: event types scheduled on the kernel's *own* timeline, for which
#: "never in the past" is checkable against the kernel clock.  Events
#: published from replica timelines (IterationDone, Cancel) may
#: legitimately lag the ratcheted kernel observation clock — a
#: late-routed arrival lands on an idle replica whose own clock trails
#: the frontier — and their monotonicity is enforced per-timeline by
#: :class:`SanitizedClock`.  BucketRefill eligibility is computed at a
#: request's arrival and may already have passed when a late-offered
#: request is charged retroactively.
_KERNEL_TIMELINE_EVENTS = (AutoscalerTick, ReplicaSpawn, ReplicaDrain,
                           TelemetryTick)


def check_event(kernel: "SimKernel", event: Event,
                terminal: Set[int]) -> None:
    """The per-emit assertions: no past events, no double-terminal."""
    if event.time != event.time or event.time == float("inf"):
        raise _violation(
            f"{type(event).__name__} carries a non-finite time "
            f"{event.time!r}")
    if isinstance(event, _KERNEL_TIMELINE_EVENTS) and \
            event.time < kernel.now - _TIME_EPS:
        raise _violation(
            f"{type(event).__name__} scheduled in the past: "
            f"event.time={event.time:.9f} < kernel.now={kernel.now:.9f}")
    if isinstance(event, Cancel):
        if event.request_id in terminal:
            raise _violation(
                f"request {event.request_id} received a second terminal "
                f"transition (Cancel reason={event.reason!r} at "
                f"t={event.time:.9f})")
        terminal.add(event.request_id)


# --------------------------------------------------------------------- #
# token buckets / handles (checks invoked from the serving layer)
# --------------------------------------------------------------------- #
def check_bucket_charge(cost: float, now: float, eligible: float) -> None:
    """A charge must be finite, non-negative, and never wake in the past."""
    if not (cost >= 0.0) or cost != cost or cost == float("inf"):
        raise _violation(f"token-bucket charge of {cost!r} tokens")
    if eligible < now - _TIME_EPS:
        raise _violation(
            f"token-bucket charge became eligible in the past: "
            f"eligible={eligible:.9f} < now={now:.9f}")


def check_bucket_refund(cost: float, tokens: float, burst: float,
                        charged_total: float, refunded_total: float) -> None:
    """Refunds are bounded by prior charges and never overfill the bucket."""
    if not (cost >= 0.0) or cost != cost or cost == float("inf"):
        raise _violation(f"token-bucket refund of {cost!r} tokens")
    if tokens > burst + _TOKEN_EPS:
        raise _violation(
            f"token-bucket level {tokens:.6f} exceeds burst {burst:.6f} "
            f"after refund")
    if refunded_total > charged_total + _TOKEN_EPS:
        raise _violation(
            f"cancel-refund asymmetry: cumulative refunds "
            f"{refunded_total:.6f} exceed cumulative charges "
            f"{charged_total:.6f}")


def check_meter(tokens_charged: float, tenant_id: Optional[str]) -> None:
    """A tenant's billing meter can never go negative."""
    if tokens_charged < -_TOKEN_EPS:
        raise _violation(
            f"billing meter for tenant {tenant_id!r} went negative: "
            f"{tokens_charged:.6f} tokens")


def check_handle_finish(request_id: int, already_terminal: bool) -> None:
    """A handle may reach a terminal status exactly once."""
    if already_terminal:
        raise _violation(
            f"request handle {request_id} finished twice (status "
            f"transition out of a terminal state)")
