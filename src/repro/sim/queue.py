"""The event queue: a min-heap of typed events with O(log n) idle-skip.

Every layer of the serving stack used to keep a private ``heapq`` of
``(time, id, payload)`` tuples plus ad-hoc linear scans over it (counting
future arrivals, peeking the next wake-up).  :class:`EventQueue` is that
heap, once: deterministic ordering by ``(time, sort_key, insertion)``,
``peek_time`` for idle-skip jumps, and a bisect-backed ``count_after``
so "how much of this queue is still in the future?" — the autoscaler's
backlog signal — costs O(log n) instead of a full scan.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort_right
from typing import (Any, Callable, Generic, Iterator, List, Optional, Tuple,
                    TypeVar)

from .events import Event

__all__ = ["EventQueue", "KeyedHeap"]

T = TypeVar("T")

#: compact the lazily-popped prefix of the sorted-times index once the
#: dead prefix outweighs the live suffix (amortized O(1) per pop)
_COMPACT_MIN = 64


class EventQueue:
    """Deterministic min-heap of :class:`~repro.sim.events.Event`.

    Events pop in ``(time, sort_key, insertion order)`` order — for
    request-carrying events that is ``(arrival_s, request_id)``, the
    exact ordering the serving layers' hand-rolled heaps used, so
    replacing them with the kernel queue is record-preserving.

    A parallel sorted list of scheduled times supports
    :meth:`count_after` (future events beyond a clock) by binary search;
    pops advance a head index into that list instead of deleting from
    the front, with periodic compaction.  Heap operations are O(log n);
    maintaining the sorted index makes :meth:`push` O(log n) search plus
    an insertion memmove — O(1) amortized for the (near-)arrival-ordered
    pushes replay and online submission produce, O(n) only for an
    adversarially reverse-ordered schedule.
    """

    __slots__ = ("_heap", "_times", "_head", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, float, int, Event]] = []
        self._times: List[float] = []
        self._head = 0
        self._seq = 0

    # ------------------------------------------------------------------ #
    def push(self, event: Event) -> None:
        """Schedule one event."""
        entry = (event.time, event.sort_key, self._seq, event)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        insort_right(self._times, event.time, lo=self._head)

    def peek_time(self) -> Optional[float]:
        """The earliest scheduled time (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0][3] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        event = heapq.heappop(self._heap)[3]
        self._drop_time()
        return event

    def pop_due(self, now: float) -> Iterator[Event]:
        """Yield (and remove) every event scheduled at or before ``now``.

        Events pushed *while iterating* are honored if they are also due
        — matching the drain-the-heap loops this replaces.
        """
        while self._heap and self._heap[0][0] <= now:
            yield self.pop()

    def count_after(self, t: float) -> int:
        """Events scheduled strictly after ``t`` — O(log n)."""
        return len(self._times) - bisect_right(self._times, t, lo=self._head)

    def remove_request(self, request_id: int) -> Optional[Event]:
        """Withdraw the event carrying ``request_id`` (cancellation).

        Matches any event exposing a ``request_id`` attribute (Arrival,
        Cancel, BucketRefill).  O(n) — cancellations are rare relative
        to pushes/pops, so the heap is rebuilt rather than tombstoned.
        Returns the removed event, or None if no event matches.
        """
        for i, entry in enumerate(self._heap):
            if getattr(entry[3], "request_id", None) == request_id:
                del self._heap[i]
                heapq.heapify(self._heap)
                idx = bisect_left(self._times, entry[0], lo=self._head)
                del self._times[idx]
                return entry[3]
        return None

    def in_order(self) -> List[Event]:
        """All queued events in pop order, without consuming them."""
        return [entry[3] for entry in sorted(self._heap)]

    def clear(self) -> None:
        self._heap.clear()
        self._times.clear()
        self._head = 0

    # ------------------------------------------------------------------ #
    def _drop_time(self) -> None:
        # the popped event is the minimum, so its time is the head of the
        # sorted index; advance the head lazily and compact occasionally
        self._head += 1
        if self._head >= _COMPACT_MIN and self._head * 2 >= len(self._times):
            del self._times[:self._head]
            self._head = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.peek_time()
        return f"EventQueue(n={len(self._heap)}, next={nxt})"


class KeyedHeap(Generic[T]):
    """A deterministic min-heap of ``(key, item)`` pairs.

    The generic sibling of :class:`EventQueue` for payloads that are not
    typed sim events (the admission layer's frontier queue, keyed by
    ``(eligible_s, arrival_s, request_id)``).  An insertion counter
    breaks any remaining key ties, so items themselves are never
    compared — ordering is a pure function of the keys callers supply,
    which is what keeps pop order deterministic.

    This class (and :class:`EventQueue`) are the only places in the tree
    allowed to touch :mod:`heapq` directly; simlint's SIM005 rule points
    everyone else here.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, int, T]] = []
        self._seq = 0

    def push(self, key: Any, item: T) -> None:
        """Schedule ``item`` under a totally-ordered ``key`` (tuple)."""
        heapq.heappush(self._heap, (key, self._seq, item))
        self._seq += 1

    def peek_key(self) -> Optional[Any]:
        """The smallest key (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def peek(self) -> Optional[T]:
        """The item under the smallest key (None when empty)."""
        return self._heap[0][2] if self._heap else None

    def pop(self) -> T:
        """Remove and return the item with the smallest key."""
        return heapq.heappop(self._heap)[2]

    def remove_where(self, predicate: Callable[[T], bool]) -> Optional[T]:
        """Withdraw the first item (in heap-internal order) matching
        ``predicate``; O(n) with a rebuild, like
        :meth:`EventQueue.remove_request`.  Returns it, or None."""
        for i, (_, _, item) in enumerate(self._heap):
            if predicate(item):
                del self._heap[i]
                heapq.heapify(self._heap)
                return item
        return None

    def clear(self) -> None:
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedHeap(n={len(self._heap)}, next={self.peek_key()})"
