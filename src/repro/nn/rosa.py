"""RoSA: robust adaptation — low-rank *plus* sparse adapters (§8).

The paper's discussion singles out emerging PEFT methods that LoRA-only
serving systems cannot host: RoSA (Nikdan et al., 2024) trains a low-rank
pair ``B A`` *and* a sparse matrix ``S`` per projection, so the effective
update is full-rank-capable.  DeltaZip serves these naturally — the merged
``scaling · B A + S`` is just another (very sparse) delta for the
decoupled path.

This module implements the adapter: attach (with a fixed sparse support
chosen by base-weight magnitude), train (explicit backward like the rest
of the substrate), detach, and conversion to a dense delta per layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .layers import Linear
from .tensoring import Module, Parameter
from .transformer import TransformerModel

__all__ = ["RoSAConfig", "RoSALinear", "RoSAAdapter", "attach_rosa",
           "detach_rosa", "merge_rosa"]


@dataclass(frozen=True)
class RoSAConfig:
    """Adapter shape: LoRA rank plus a sparse budget.

    ``sparse_density`` is the fraction of each wrapped weight matrix whose
    entries get an individually-trainable sparse correction.
    """

    rank: int = 4
    alpha: float = 8.0
    sparse_density: float = 0.01
    target_kinds: Tuple[str, ...] = ("q_proj", "v_proj")

    @property
    def scaling(self) -> float:
        return self.alpha / self.rank

    def __post_init__(self):
        if not 0.0 < self.sparse_density <= 1.0:
            raise ValueError("sparse_density must be in (0, 1]")
        if self.rank < 1:
            raise ValueError("rank must be >= 1")


class RoSALinear(Module):
    """Frozen Linear + trainable low-rank pair + trainable sparse values."""

    def __init__(self, base: Linear, config: RoSAConfig,
                 rng: np.random.Generator):
        self.base = base
        self.base.weight.trainable = False
        self.config = config
        r = config.rank
        out_f, in_f = base.out_features, base.in_features
        self.lora_a = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(r), size=(r, in_f))
            .astype(np.float32))
        self.lora_b = Parameter(np.zeros((out_f, r), dtype=np.float32))
        # sparse support: the largest-magnitude base entries (a practical
        # stand-in for RoSA's gradient-based support selection)
        k = max(1, int(config.sparse_density * out_f * in_f))
        flat = np.abs(base.weight.data).reshape(-1)
        threshold = np.partition(flat, -k)[-k]
        self.sparse_mask = np.abs(base.weight.data) >= threshold
        self.sparse_values = Parameter(
            np.zeros((out_f, in_f), dtype=np.float32))
        self._cached_input = None
        self._cached_ax = None

    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        ax = x @ self.lora_a.data.T
        if cache:
            self._cached_input = x
            self._cached_ax = ax
        sparse = self.sparse_values.data * self.sparse_mask
        return (self.base.forward(x, cache=cache)
                + self.config.scaling * (ax @ self.lora_b.data.T)
                + x @ sparse.T)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x, ax = self._cached_input, self._cached_ax
        if x is None:
            raise RuntimeError("RoSALinear.backward without cached forward")
        s = self.config.scaling
        out_f, in_f = self.base.out_features, self.base.in_features
        r = self.config.rank
        flat_g = grad_out.reshape(-1, out_f)
        flat_x = x.reshape(-1, in_f)
        flat_ax = ax.reshape(-1, r)

        self.lora_b.accumulate_grad(s * (flat_g.T @ flat_ax))
        grad_ax = s * (grad_out @ self.lora_b.data)
        self.lora_a.accumulate_grad(grad_ax.reshape(-1, r).T @ flat_x)
        self.sparse_values.accumulate_grad(
            (flat_g.T @ flat_x) * self.sparse_mask)

        grad_x = self.base.backward(grad_out)
        grad_x = grad_x + grad_ax @ self.lora_a.data
        grad_x = grad_x + grad_out @ (self.sparse_values.data
                                      * self.sparse_mask)
        self._cached_input = None
        self._cached_ax = None
        return grad_x

    def delta_weight(self) -> np.ndarray:
        """Dense equivalent update: ``scaling·B A + S``."""
        return (self.config.scaling * (self.lora_b.data @ self.lora_a.data)
                + self.sparse_values.data * self.sparse_mask)

    def __call__(self, x, cache=False):
        return self.forward(x, cache=cache)


@dataclass
class RoSAAdapter:
    """Extracted adapter: per-layer (A, B, sparse values, mask)."""

    config: RoSAConfig
    matrices: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]

    def nbytes(self, bytes_per_value: int = 2) -> int:
        """FP16 values + 4-byte indices per stored sparse entry."""
        total = 0
        for a, b, values, mask in self.matrices.values():
            total += (a.size + b.size) * bytes_per_value
            nnz = int(mask.sum())
            total += nnz * (bytes_per_value + 4)
        return total

    def delta_state_dict(self) -> Dict[str, np.ndarray]:
        """Dense per-layer deltas — servable through the delta path."""
        out = {}
        for name, (a, b, values, mask) in self.matrices.items():
            out[name + ".weight"] = (self.config.scaling * (b @ a)
                                     + values * mask).astype(np.float32)
        return out


def _iter_targets(model: TransformerModel, kinds: Tuple[str, ...]):
    attn = {"q_proj", "k_proj", "v_proj", "o_proj"}
    for i, block in enumerate(model.layers):
        for kind in kinds:
            owner_name = "self_attn" if kind in attn else "mlp"
            owner = getattr(block, owner_name)
            yield f"layers.{i}.{owner_name}.{kind}", owner, kind


def attach_rosa(model: TransformerModel, config: RoSAConfig,
                seed: int = 0) -> List[str]:
    """Wrap target projections with RoSALinear; freeze everything else."""
    for param in model.parameters():
        param.trainable = False
    rng = np.random.default_rng(seed)
    wrapped = []
    for name, owner, kind in _iter_targets(model, config.target_kinds):
        layer = getattr(owner, kind)
        if isinstance(layer, RoSALinear):
            raise ValueError(f"{name} already has a RoSA adapter")
        setattr(owner, kind, RoSALinear(layer, config, rng))
        wrapped.append(name)
    return wrapped


def detach_rosa(model: TransformerModel) -> RoSAAdapter:
    """Remove adapters, restore plain Linears, return the adapter."""
    matrices = {}
    config = None
    for i, block in enumerate(model.layers):
        for owner_name in ("self_attn", "mlp"):
            owner = getattr(block, owner_name)
            for kind, layer in list(vars(owner).items()):
                if isinstance(layer, RoSALinear):
                    config = layer.config
                    matrices[f"layers.{i}.{owner_name}.{kind}"] = (
                        layer.lora_a.data.copy(), layer.lora_b.data.copy(),
                        layer.sparse_values.data.copy(),
                        layer.sparse_mask.copy())
                    layer.base.weight.trainable = True
                    setattr(owner, kind, layer.base)
    for param in model.parameters():
        param.trainable = True
    if config is None:
        raise ValueError("no RoSA adapters attached to this model")
    return RoSAAdapter(config=config, matrices=matrices)


def merge_rosa(model: TransformerModel, adapter: RoSAAdapter) -> None:
    """Fold the adapter into the dense weights."""
    for name, delta in adapter.delta_state_dict().items():
        layer = model.get_linear(name)
        layer.weight.data = layer.weight.data + delta
