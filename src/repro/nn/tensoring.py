"""Parameter containers, initialization, and checkpoint (de)serialization.

The substrate deliberately avoids autograd frameworks: a model is a nested
structure of named float32 arrays (a *state dict*), and layers implement
explicit ``forward``/``backward``.  This file provides:

* :class:`Parameter` — an array plus its gradient accumulator.
* :class:`Module` — minimal base class with named-parameter traversal.
* state-dict helpers used by the compression pipeline, which treats a model
  as a flat ``{name: ndarray}`` mapping exactly like a HF checkpoint.
"""

from __future__ import annotations

import io
import zipfile
from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = [
    "Parameter",
    "Module",
    "init_normal",
    "init_uniform_he",
    "state_dict_nbytes",
    "save_state_dict",
    "load_state_dict",
    "clone_state_dict",
    "state_dicts_allclose",
]


class Parameter:
    """A trainable tensor with a gradient slot.

    Attributes:
        data: the parameter value (float32 ndarray).
        grad: accumulated gradient, same shape as ``data`` (or None).
        trainable: if False the optimizer skips this parameter (used to
            freeze base weights during LoRA fine-tuning).
    """

    __slots__ = ("data", "grad", "trainable")

    def __init__(self, data: np.ndarray, trainable: bool = True):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = None
        self.trainable = trainable

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the gradient slot (allocating it lazily)."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape}, trainable={self.trainable})"


class Module:
    """Minimal module base: children discovered via instance attributes.

    Subclasses register :class:`Parameter` attributes and sub-``Module``
    attributes; :meth:`named_parameters` walks them depth-first with
    dotted names, mirroring the familiar ``module.weight`` convention.
    """

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters as a flat ``{name: ndarray}`` mapping."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values in-place from a flat mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name], dtype=np.float32)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"expected {param.data.shape}, got {value.shape}"
                    )
                param.data = value.copy()


def init_normal(rng: np.random.Generator, shape: tuple, std: float = 0.02) -> np.ndarray:
    """Gaussian init, the GPT-style default."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def init_uniform_he(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """He-uniform init keyed on the fan-in (last dimension)."""
    fan_in = shape[-1]
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def state_dict_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Total bytes of a state dict at its stored dtype."""
    return sum(int(arr.nbytes) for arr in state.values())


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {name: arr.copy() for name, arr in state.items()}


def state_dicts_allclose(
    a: Dict[str, np.ndarray],
    b: Dict[str, np.ndarray],
    atol: float = 1e-6,
) -> bool:
    if set(a) != set(b):
        return False
    return all(np.allclose(a[k], b[k], atol=atol) for k in a)


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Persist a state dict as an npz-style zip archive."""
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        for name, arr in state.items():
            buf = io.BytesIO()
            np.save(buf, arr)
            zf.writestr(name + ".npy", buf.getvalue())


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Inverse of :func:`save_state_dict`."""
    state: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path, "r") as zf:
        for info in zf.infolist():
            name = info.filename
            if not name.endswith(".npy"):
                continue
            buf = io.BytesIO(zf.read(name))
            state[name[: -len(".npy")]] = np.load(buf)
    return state
