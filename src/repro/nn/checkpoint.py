"""Model checkpoints: config + weights in one archive.

A ``.ckpt`` file is a zip holding ``config.json`` (the TransformerConfig)
and one ``.npy`` per parameter — the unit the CLI's pretrain/finetune/
compress workflow passes around.
"""

from __future__ import annotations

import dataclasses
import io
import json
import zipfile

import numpy as np

from .tensoring import load_state_dict, save_state_dict
from .transformer import TransformerConfig, TransformerModel

__all__ = ["save_model", "load_model"]


def save_model(model: TransformerModel, path: str) -> None:
    """Persist config + weights."""
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        zf.writestr("config.json",
                    json.dumps(dataclasses.asdict(model.config), indent=1))
        for name, arr in model.state_dict().items():
            buf = io.BytesIO()
            np.save(buf, arr)
            zf.writestr(f"weights/{name}.npy", buf.getvalue())


def load_model(path: str) -> TransformerModel:
    """Inverse of :func:`save_model`."""
    with zipfile.ZipFile(path, "r") as zf:
        config = TransformerConfig(**json.loads(zf.read("config.json")))
        state = {}
        for info in zf.infolist():
            name = info.filename
            if not (name.startswith("weights/") and name.endswith(".npy")):
                continue
            key = name[len("weights/"):-len(".npy")]
            state[key] = np.load(io.BytesIO(zf.read(name)))
    model = TransformerModel(config, seed=0)
    model.load_state_dict(state)
    return model
