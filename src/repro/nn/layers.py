"""Core layers: Linear, RMSNorm, Embedding — with explicit forward/backward.

Backward passes cache whatever they need on ``self`` during forward (a
single-sample-in-flight convention that the training loop respects), which
keeps the substrate simple while still supporting full fine-tuning.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensoring import Module, Parameter, init_normal

__all__ = ["Linear", "RMSNorm", "Embedding"]


class Linear(Module):
    """Dense layer ``y = x @ W^T`` with weight of shape ``(out, in)``.

    No bias, matching Llama-family checkpoints.  The ``(out, in)`` layout is
    the same one the compression pipeline (and SparseGPT) assumes: rows are
    output channels, columns are input channels.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 std: float = 0.02):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_normal(rng, (out_features, in_features), std=std))
        self._cached_input = None

    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        if cache:
            self._cached_input = x
        return x @ self.weight.data.T

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/dy, accumulate dL/dW and return dL/dx."""
        x = self._cached_input
        if x is None:
            raise RuntimeError("Linear.backward called without a cached forward")
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad_out.reshape(-1, self.out_features)
        self.weight.accumulate_grad(flat_g.T @ flat_x)
        grad_in = grad_out @ self.weight.data
        self._cached_input = None
        return grad_in

    def __call__(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        return self.forward(x, cache=cache)


class RMSNorm(Module):
    """Llama-style RMS normalization with a learned scale."""

    def __init__(self, dim: int, eps: float = 1e-6):
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self._cached_input = None

    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        if cache:
            self._cached_input = x
        return F.rms_norm(x, self.weight.data, eps=self.eps)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cached_input
        if x is None:
            raise RuntimeError("RMSNorm.backward called without a cached forward")
        grad_x, grad_w = F.rms_norm_backward(x, self.weight.data, grad_out, eps=self.eps)
        self.weight.accumulate_grad(grad_w)
        self._cached_input = None
        return grad_x

    def __call__(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        return self.forward(x, cache=cache)


class Embedding(Module):
    """Token embedding table of shape ``(vocab, dim)``."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(init_normal(rng, (vocab_size, dim)))
        self._cached_indices = None

    def forward(self, indices: np.ndarray, cache: bool = False) -> np.ndarray:
        if cache:
            self._cached_indices = indices
        return self.weight.data[indices]

    def backward(self, grad_out: np.ndarray) -> None:
        indices = self._cached_indices
        if indices is None:
            raise RuntimeError("Embedding.backward called without a cached forward")
        grad = np.zeros_like(self.weight.data)
        flat_idx = indices.reshape(-1)
        flat_grad = grad_out.reshape(-1, self.dim)
        np.add.at(grad, flat_idx, flat_grad)
        self.weight.accumulate_grad(grad)
        self._cached_indices = None

    def __call__(self, indices: np.ndarray, cache: bool = False) -> np.ndarray:
        return self.forward(indices, cache=cache)
