"""Numpy transformer substrate: the "models" DeltaZip compresses and serves.

Public surface:

* :class:`TransformerConfig` / :class:`TransformerModel` — Llama-style LM.
* :func:`generate` / :func:`sequence_logprob` — decoding and scoring.
* :class:`Adam` / :func:`train_lm` — full-model fine-tuning.
* :func:`attach_lora` / :func:`detach_lora` / :func:`merge_lora` — adapters.
"""

from . import functional
from .attention import KVCache, MultiHeadAttention
from .generation import GenerationResult, generate, generate_batch, sequence_logprob
from .layers import Embedding, Linear, RMSNorm
from .lora import (LoRAAdapter, LoRAConfig, LoRALinear, attach_lora,
                   detach_lora, lora_nbytes, merge_lora)
from .rosa import (RoSAAdapter, RoSAConfig, RoSALinear, attach_rosa,
                   detach_rosa, merge_rosa)
from .tensoring import (Module, Parameter, clone_state_dict, load_state_dict,
                        save_state_dict, state_dict_nbytes,
                        state_dicts_allclose)
from .training import Adam, SGD, TrainingConfig, train_lm
from .transformer import (LINEAR_LAYER_KINDS, MLP, TransformerBlock,
                          TransformerConfig, TransformerModel)

__all__ = [
    "functional",
    "KVCache", "MultiHeadAttention",
    "GenerationResult", "generate", "generate_batch", "sequence_logprob",
    "Embedding", "Linear", "RMSNorm",
    "LoRAAdapter", "LoRAConfig", "LoRALinear", "attach_lora", "detach_lora",
    "lora_nbytes", "merge_lora",
    "RoSAAdapter", "RoSAConfig", "RoSALinear", "attach_rosa", "detach_rosa",
    "merge_rosa",
    "Module", "Parameter", "clone_state_dict", "load_state_dict",
    "save_state_dict", "state_dict_nbytes", "state_dicts_allclose",
    "Adam", "SGD", "TrainingConfig", "train_lm",
    "LINEAR_LAYER_KINDS", "MLP", "TransformerBlock", "TransformerConfig",
    "TransformerModel",
]
