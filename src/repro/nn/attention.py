"""Multi-head self-attention with RoPE, causal masking, and a KV cache.

Forward supports two modes:

* **full-sequence** (training / prefill): processes ``(batch, seq, dim)`` and
  optionally caches intermediates for the explicit backward pass;
* **incremental** (decode): processes one new token per sequence against a
  :class:`KVCache`, which is the code path the serving engine's cost model
  mirrors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Linear
from .tensoring import Module

__all__ = ["KVCache", "MultiHeadAttention"]


class KVCache:
    """Per-layer key/value cache for incremental decoding.

    Preallocates ``(batch, n_heads, max_seq, head_dim)`` buffers and tracks
    the number of valid positions.
    """

    def __init__(self, batch: int, n_heads: int, max_seq: int, head_dim: int):
        self.keys = np.zeros((batch, n_heads, max_seq, head_dim), dtype=np.float32)
        self.values = np.zeros((batch, n_heads, max_seq, head_dim), dtype=np.float32)
        self.length = 0
        self.max_seq = max_seq

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new positions; ``k``/``v`` are (batch, heads, new, head_dim)."""
        new = k.shape[2]
        if self.length + new > self.max_seq:
            raise ValueError(
                f"KV cache overflow: {self.length} + {new} > {self.max_seq}"
            )
        self.keys[:, :, self.length:self.length + new] = k
        self.values[:, :, self.length:self.length + new] = v
        self.length += new

    def view(self) -> tuple:
        """Return the valid (keys, values) slices."""
        return (
            self.keys[:, :, : self.length],
            self.values[:, :, : self.length],
        )


class MultiHeadAttention(Module):
    """Llama-style attention: q/k/v/o projections, RoPE, causal softmax.

    Supports grouped-query attention (GQA) via ``n_kv_heads < n_heads``:
    K/V are projected to ``n_kv_heads`` heads and each serves a contiguous
    group of ``n_heads // n_kv_heads`` query heads — the Llama-2-70B
    configuration the paper serves.
    """

    def __init__(self, dim: int, n_heads: int, max_seq: int,
                 rng: np.random.Generator, rope_base: float = 10000.0,
                 n_kv_heads: Optional[int] = None):
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.n_kv_heads = n_kv_heads if n_kv_heads is not None else n_heads
        if self.n_kv_heads < 1 or n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads {n_heads} not divisible by n_kv_heads "
                f"{self.n_kv_heads}")
        self.head_dim = dim // n_heads
        self.kv_dim = self.n_kv_heads * self.head_dim
        self.max_seq = max_seq
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, self.kv_dim, rng)
        self.v_proj = Linear(dim, self.kv_dim, rng)
        self.o_proj = Linear(dim, dim, rng)
        cos, sin = F.rope_frequencies(self.head_dim, max_seq, base=rope_base)
        self._rope_cos = cos
        self._rope_sin = sin
        self._ctx = None

    @property
    def group_size(self) -> int:
        """Query heads per KV head."""
        return self.n_heads // self.n_kv_heads

    # ------------------------------------------------------------------ #
    # shape helpers
    # ------------------------------------------------------------------ #
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _split_kv_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_kv_heads,
                         self.head_dim).transpose(0, 2, 1, 3)

    def _expand_kv(self, x: np.ndarray) -> np.ndarray:
        """Repeat each KV head across its query-head group."""
        if self.group_size == 1:
            return x
        return np.repeat(x, self.group_size, axis=1)

    def _reduce_kv_grad(self, grad: np.ndarray) -> np.ndarray:
        """Sum per-query-head grads back onto their shared KV head."""
        if self.group_size == 1:
            return grad
        b, h, t, hd = grad.shape
        return grad.reshape(b, self.n_kv_heads, self.group_size, t,
                            hd).sum(axis=2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, t, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * hd)

    def _rope(self, x: np.ndarray, offset: int, inverse: bool = False) -> np.ndarray:
        sin = -self._rope_sin if inverse else self._rope_sin
        return F.apply_rope(x, self._rope_cos, sin, position_offset=offset)

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        kv_cache: Optional[KVCache] = None,
        cache: bool = False,
    ) -> np.ndarray:
        """Attend over ``x`` of shape (batch, seq, dim).

        With a ``kv_cache``, ``x`` holds only the *new* positions and the
        cache supplies the earlier keys/values (incremental decode / chunked
        prefill). ``cache=True`` stores intermediates for :meth:`backward`
        and is only valid without a KV cache.
        """
        if cache and kv_cache is not None:
            raise ValueError("training-mode cache and KV cache are exclusive")
        offset = kv_cache.length if kv_cache is not None else 0
        q = self._split_heads(self.q_proj(x, cache=cache))
        k = self._split_kv_heads(self.k_proj(x, cache=cache))
        v = self._split_kv_heads(self.v_proj(x, cache=cache))
        q_rot = self._rope(q, offset)
        k_rot = self._rope(k, offset)

        if kv_cache is not None:
            kv_cache.append(k_rot, v)
            keys, values = kv_cache.view()
        else:
            keys, values = k_rot, v
        keys = self._expand_kv(keys)
        values = self._expand_kv(values)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q_rot @ keys.transpose(0, 1, 3, 2)) * scale
        t_new = q_rot.shape[2]
        t_total = keys.shape[2]
        if t_new > 1 or kv_cache is None:
            # mask future positions relative to each query's absolute index
            q_pos = np.arange(offset, offset + t_new)[:, None]
            k_pos = np.arange(t_total)[None, :]
            scores = np.where(k_pos > q_pos, -np.inf, scores)
        attn = F.softmax(scores, axis=-1)
        context = attn @ values
        merged = self._merge_heads(context)
        out = self.o_proj(merged, cache=cache)
        if cache:
            self._ctx = {
                "q_rot": q_rot, "keys": keys, "values": values,
                "attn": attn, "scale": scale, "offset": offset,
            }
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the full-sequence forward; returns dL/dx."""
        if self._ctx is None:
            raise RuntimeError("attention backward called without cached forward")
        ctx = self._ctx
        q_rot, keys, values = ctx["q_rot"], ctx["keys"], ctx["values"]
        attn, scale, offset = ctx["attn"], ctx["scale"], ctx["offset"]

        grad_merged = self.o_proj.backward(grad_out)
        b, t, _ = grad_merged.shape
        grad_context = grad_merged.reshape(b, t, self.n_heads, self.head_dim)
        grad_context = grad_context.transpose(0, 2, 1, 3)

        grad_attn = grad_context @ values.transpose(0, 1, 3, 2)
        grad_v = attn.transpose(0, 1, 3, 2) @ grad_context
        # softmax backward
        inner = np.sum(grad_attn * attn, axis=-1, keepdims=True)
        grad_scores = attn * (grad_attn - inner)
        grad_q_rot = (grad_scores @ keys) * scale
        grad_k_rot = (grad_scores.transpose(0, 1, 3, 2) @ q_rot) * scale

        # GQA: fold per-query-head K/V grads onto their shared KV heads
        grad_k_rot = self._reduce_kv_grad(grad_k_rot)
        grad_v = self._reduce_kv_grad(grad_v)

        grad_q = self._rope(grad_q_rot, offset, inverse=True)
        grad_k = self._rope(grad_k_rot, offset, inverse=True)

        grad_x = self.q_proj.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.k_proj.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.v_proj.backward(self._merge_heads(grad_v))
        self._ctx = None
        return grad_x

    def __call__(self, x, kv_cache=None, cache=False):
        return self.forward(x, kv_cache=kv_cache, cache=cache)
