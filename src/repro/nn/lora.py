"""LoRA: low-rank adapters attached to the substrate's linear layers.

LoRA replaces the update of a frozen weight ``W`` with ``W + (alpha/r) B A``
where ``A`` is (r, in) and ``B`` is (out, r).  The adapters here serve two
roles in the reproduction:

* **quality comparison** (Fig 2, Table 2): LoRA fine-tuning vs FMT accuracy;
* **serving** (Figs 14/15): the Punica-style LoRA engine batches adapter
  matmuls the same way DeltaZip batches delta matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .layers import Linear
from .tensoring import Module, Parameter
from .transformer import TransformerModel

__all__ = ["LoRAConfig", "LoRALinear", "LoRAAdapter", "attach_lora",
           "detach_lora", "merge_lora", "lora_nbytes"]


@dataclass(frozen=True)
class LoRAConfig:
    """Adapter shape; ``target_kinds`` selects which projections get adapters
    (default: attention q/v, the original LoRA paper's recipe)."""

    rank: int = 8
    alpha: float = 16.0
    target_kinds: Tuple[str, ...] = ("q_proj", "v_proj")

    @property
    def scaling(self) -> float:
        return self.alpha / self.rank


class LoRALinear(Module):
    """A frozen Linear wrapped with trainable low-rank matrices A and B."""

    def __init__(self, base: Linear, config: LoRAConfig, rng: np.random.Generator):
        self.base = base
        self.base.weight.trainable = False
        self.config = config
        r = config.rank
        # A ~ N(0, 1/r), B = 0 => adapter starts as the identity update
        self.lora_a = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(r),
                       size=(r, base.in_features)).astype(np.float32))
        self.lora_b = Parameter(np.zeros((base.out_features, r), dtype=np.float32))
        self._cached_input = None
        self._cached_ax = None

    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        ax = x @ self.lora_a.data.T
        if cache:
            self._cached_input = x
            self._cached_ax = ax
        return self.base.forward(x, cache=cache) + \
            self.config.scaling * (ax @ self.lora_b.data.T)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x, ax = self._cached_input, self._cached_ax
        if x is None:
            raise RuntimeError("LoRALinear.backward without cached forward")
        s = self.config.scaling
        in_f = self.base.in_features
        r = self.config.rank
        flat_g = grad_out.reshape(-1, self.base.out_features)
        flat_ax = ax.reshape(-1, r)
        flat_x = x.reshape(-1, in_f)
        self.lora_b.accumulate_grad(s * (flat_g.T @ flat_ax))
        grad_ax = s * (grad_out @ self.lora_b.data)
        self.lora_a.accumulate_grad(grad_ax.reshape(-1, r).T @ flat_x)
        grad_x_base = self.base.backward(grad_out)  # base frozen but dL/dx needed
        grad_x = grad_x_base + grad_ax @ self.lora_a.data
        self._cached_input = None
        self._cached_ax = None
        return grad_x

    def delta_weight(self) -> np.ndarray:
        """The dense equivalent of this adapter: ``scaling * B @ A``."""
        return self.config.scaling * (self.lora_b.data @ self.lora_a.data)

    def __call__(self, x, cache=False):
        return self.forward(x, cache=cache)


@dataclass
class LoRAAdapter:
    """Extracted adapter weights keyed by the wrapped layer's dotted name."""

    config: LoRAConfig
    matrices: Dict[str, Tuple[np.ndarray, np.ndarray]]  # name -> (A, B)

    def nbytes(self, bytes_per_value: int = 2) -> int:
        """Serialized size at FP16 (the format LoRA systems swap)."""
        total = 0
        for a, b in self.matrices.values():
            total += (a.size + b.size) * bytes_per_value
        return total


def _iter_target_linears(model: TransformerModel,
                         target_kinds: Tuple[str, ...]):
    attn_kinds = {"q_proj", "k_proj", "v_proj", "o_proj"}
    for i, block in enumerate(model.layers):
        for kind in target_kinds:
            owner_name = "self_attn" if kind in attn_kinds else "mlp"
            owner = getattr(block, owner_name)
            yield f"layers.{i}.{owner_name}.{kind}", owner, kind


def attach_lora(model: TransformerModel, config: LoRAConfig,
                seed: int = 0) -> List[str]:
    """Wrap the configured projections with LoRALinear in-place.

    Freezes every non-adapter parameter so the optimizer only updates A/B.
    Returns the dotted names of the wrapped layers.
    """
    for param in model.parameters():
        param.trainable = False
    rng = np.random.default_rng(seed)
    wrapped = []
    for name, owner, kind in _iter_target_linears(model, config.target_kinds):
        layer = getattr(owner, kind)
        if isinstance(layer, LoRALinear):
            raise ValueError(f"{name} already has a LoRA adapter attached")
        setattr(owner, kind, LoRALinear(layer, config, rng))
        wrapped.append(name)
    return wrapped


def detach_lora(model: TransformerModel) -> LoRAAdapter:
    """Remove adapters, restore plain Linears, return the extracted adapter."""
    matrices: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    config = None
    for i, block in enumerate(model.layers):
        for owner_name in ("self_attn", "mlp"):
            owner = getattr(block, owner_name)
            for kind, layer in list(vars(owner).items()):
                if isinstance(layer, LoRALinear):
                    config = layer.config
                    matrices[f"layers.{i}.{owner_name}.{kind}"] = (
                        layer.lora_a.data.copy(), layer.lora_b.data.copy())
                    layer.base.weight.trainable = True
                    setattr(owner, kind, layer.base)
    for param in model.parameters():
        param.trainable = True
    if config is None:
        raise ValueError("no LoRA adapters attached to this model")
    return LoRAAdapter(config=config, matrices=matrices)


def merge_lora(model: TransformerModel, adapter: LoRAAdapter) -> None:
    """Fold adapter deltas into the base weights (``W += s * B A``)."""
    for name, (a, b) in adapter.matrices.items():
        layer = model.get_linear(name + ".weight")
        layer.weight.data = layer.weight.data + \
            adapter.config.scaling * (b @ a).astype(np.float32)


def lora_nbytes(model_dim: int, n_layers: int, config: LoRAConfig,
                mlp_hidden: int = 0) -> int:
    """Analytic adapter size for the serving cost model (FP16 bytes)."""
    attn_kinds = {"q_proj", "k_proj", "v_proj", "o_proj"}
    total = 0
    for kind in config.target_kinds:
        if kind in attn_kinds:
            fan_in, fan_out = model_dim, model_dim
        elif kind == "down_proj":
            fan_in, fan_out = mlp_hidden, model_dim
        else:  # gate/up
            fan_in, fan_out = model_dim, mlp_hidden
        total += config.rank * (fan_in + fan_out)
    return total * n_layers * 2
