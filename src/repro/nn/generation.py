"""Autoregressive decoding: prefill + incremental decode with KV caches.

This is the functional counterpart of the serving engine's two phases
(§2.1 of the paper): ``prefill`` processes the whole prompt in one forward
pass, ``decode_step`` produces one token per call.  The batched helpers are
what the model-quality harness uses to grade downstream tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from . import functional as F
from .transformer import TransformerModel

__all__ = ["GenerationResult", "generate", "generate_batch", "sequence_logprob"]


@dataclass
class GenerationResult:
    """Tokens produced for one prompt (prompt excluded)."""

    prompt: List[int]
    tokens: List[int]
    finished_by_eos: bool

    @property
    def full_sequence(self) -> List[int]:
        return list(self.prompt) + list(self.tokens)


def generate(
    model: TransformerModel,
    prompt: List[int],
    max_new_tokens: int = 32,
    temperature: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    eos_token: Optional[int] = None,
) -> GenerationResult:
    """Greedy (``temperature == 0``) or sampled decoding for one prompt."""
    if eos_token is None:
        eos_token = model.config.eos_token
    if temperature > 0 and rng is None:
        rng = np.random.default_rng(0)

    caches = model.new_kv_caches(batch=1)
    tokens = np.asarray(prompt, dtype=np.int64)[None, :]
    logits = model(tokens, kv_caches=caches)
    out: List[int] = []
    finished = False
    next_logits = logits[0, -1]
    budget = min(max_new_tokens, model.config.max_seq - len(prompt))
    for _ in range(budget):
        if temperature > 0:
            probs = F.softmax(next_logits / temperature)
            token = int(rng.choice(len(probs), p=probs))
        else:
            token = int(np.argmax(next_logits))
        out.append(token)
        if token == eos_token:
            finished = True
            break
        step = np.asarray([[token]], dtype=np.int64)
        logits = model(step, kv_caches=caches)
        next_logits = logits[0, -1]
    return GenerationResult(prompt=list(prompt), tokens=out, finished_by_eos=finished)


def generate_batch(
    model: TransformerModel,
    prompts: List[List[int]],
    max_new_tokens: int = 32,
    temperature: float = 0.0,
    seed: int = 0,
) -> List[GenerationResult]:
    """Decode several prompts (loop of single-sequence decodes).

    Functional batching is not needed for quality evaluation; the *serving*
    layer models batched execution analytically.
    """
    rng = np.random.default_rng(seed)
    return [
        generate(model, prompt, max_new_tokens=max_new_tokens,
                 temperature=temperature, rng=rng)
        for prompt in prompts
    ]


def sequence_logprob(model: TransformerModel, prompt: List[int],
                     continuation: List[int]) -> float:
    """Sum of log-probabilities of ``continuation`` given ``prompt``.

    The lm-eval-harness-style scoring primitive: multiple-choice tasks pick
    the answer with the highest continuation log-probability.
    """
    if not continuation:
        raise ValueError("continuation must be non-empty")
    full = np.asarray(prompt + continuation, dtype=np.int64)[None, :]
    logits = model(full[:, :-1])
    logp = F.log_softmax(logits, axis=-1)[0]
    total = 0.0
    start = len(prompt) - 1
    for offset, token in enumerate(continuation):
        total += float(logp[start + offset, token])
    return total
