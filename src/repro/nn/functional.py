"""Numerical primitives for the numpy transformer substrate.

All functions operate on ``numpy.ndarray`` and are written to be stable in
float32: softmax subtracts the row max, cross-entropy works in log-space, and
RMSNorm adds an epsilon under the square root.  Backward helpers are provided
for the subset of ops used by the fine-tuning loop (``repro.nn.training``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "silu",
    "silu_backward",
    "gelu",
    "rms_norm",
    "rms_norm_backward",
    "rope_frequencies",
    "apply_rope",
    "cross_entropy",
    "cross_entropy_backward",
    "causal_mask",
    "one_hot",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def silu_backward(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of SiLU with respect to its input."""
    sig = 1.0 / (1.0 + np.exp(-x))
    return grad_out * (sig * (1.0 + x * (1.0 - sig)))


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU, as used by GPT-style models."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer norm (Llama-style, no mean subtraction)."""
    variance = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def rms_norm_backward(
    x: np.ndarray,
    weight: np.ndarray,
    grad_out: np.ndarray,
    eps: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of RMSNorm w.r.t. input and weight.

    Returns ``(grad_x, grad_weight)``.
    """
    d = x.shape[-1]
    variance = np.mean(x * x, axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(variance + eps)
    x_hat = x * inv_rms
    grad_weight = np.sum(grad_out * x_hat, axis=tuple(range(x.ndim - 1)))
    g = grad_out * weight
    # d/dx of x * inv_rms: inv_rms * (g - x_hat * mean(g * x_hat))
    dot = np.sum(g * x_hat, axis=-1, keepdims=True) / d
    grad_x = inv_rms * (g - x_hat * dot)
    return grad_x, grad_weight


def rope_frequencies(head_dim: int, max_seq_len: int, base: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """Precompute rotary-embedding cos/sin tables.

    Returns ``(cos, sin)`` each of shape ``(max_seq_len, head_dim // 2)``.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2, dtype=np.float64) / head_dim))
    positions = np.arange(max_seq_len, dtype=np.float64)
    angles = np.outer(positions, inv_freq)
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


def apply_rope(
    x: np.ndarray,
    cos: np.ndarray,
    sin: np.ndarray,
    position_offset: int = 0,
) -> np.ndarray:
    """Apply rotary position embeddings.

    ``x`` has shape ``(..., seq_len, head_dim)``; ``cos``/``sin`` are the
    precomputed tables from :func:`rope_frequencies`.  ``position_offset``
    supports incremental decoding with a KV cache.
    """
    seq_len = x.shape[-2]
    half = x.shape[-1] // 2
    c = cos[position_offset:position_offset + seq_len]
    s = sin[position_offset:position_offset + seq_len]
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated_1 = x1 * c - x2 * s
    rotated_2 = x2 * c + x1 * s
    return np.concatenate([rotated_1, rotated_2], axis=-1)


def causal_mask(seq_len: int, dtype=np.float32) -> np.ndarray:
    """Additive causal mask of shape ``(seq_len, seq_len)``: 0 on/below the
    diagonal, ``-inf`` above."""
    mask = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
    out = np.zeros((seq_len, seq_len), dtype=dtype)
    out[mask] = -np.inf
    return out


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array to float32."""
    flat = indices.reshape(-1)
    out = np.zeros((flat.size, num_classes), dtype=np.float32)
    out[np.arange(flat.size), flat] = 1.0
    return out.reshape(*indices.shape, num_classes)


def cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    ignore_index: int = -100,
) -> float:
    """Mean cross-entropy over positions whose target is not ``ignore_index``.

    ``logits`` has shape ``(..., vocab)``, ``targets`` the matching integer
    shape.
    """
    log_probs = log_softmax(logits, axis=-1)
    flat_logp = log_probs.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    if not np.any(valid):
        return 0.0
    picked = flat_logp[np.nonzero(valid)[0], flat_targets[valid]]
    return float(-np.mean(picked))


def cross_entropy_backward(
    logits: np.ndarray,
    targets: np.ndarray,
    ignore_index: int = -100,
) -> np.ndarray:
    """Gradient of mean cross-entropy with respect to the logits."""
    probs = softmax(logits, axis=-1)
    flat_probs = probs.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    n_valid = int(np.sum(valid))
    grad = flat_probs.copy()
    if n_valid == 0:
        return np.zeros_like(logits)
    valid_rows = np.nonzero(valid)[0]
    grad[valid_rows, flat_targets[valid]] -= 1.0
    grad[~valid] = 0.0
    grad /= n_valid
    return grad.reshape(logits.shape)
