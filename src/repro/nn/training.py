"""Optimizers and the full-model fine-tuning (FMT) loop.

FMT is the paradigm DeltaZip serves: every parameter is updated, producing a
checkpoint whose *delta* against the base is small-magnitude (Fig 3) and
therefore highly compressible.  The same loop doubles as the pre-training
driver for the tiny base models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .tensoring import Module, Parameter
from .transformer import TransformerModel

__all__ = ["Adam", "SGD", "TrainingConfig", "train_lm", "iterate_minibatches"]


class SGD:
    """Plain SGD with optional gradient clipping."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 clip_norm: Optional[float] = 1.0):
        self.params = [p for p in params if p.trainable]
        self.lr = lr
        self.clip_norm = clip_norm

    def step(self) -> None:
        scale = _clip_scale(self.params, self.clip_norm)
        for p in self.params:
            if p.grad is None:
                continue
            p.data -= self.lr * scale * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with bias correction; state keyed by parameter identity."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, clip_norm: Optional[float] = 1.0):
        self.params = [p for p in params if p.trainable]
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        scale = _clip_scale(self.params, self.clip_norm)
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = scale * p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def _clip_scale(params: Sequence[Parameter], clip_norm: Optional[float]) -> float:
    if clip_norm is None:
        return 1.0
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    norm = np.sqrt(total)
    if norm <= clip_norm or norm == 0.0:
        return 1.0
    return float(clip_norm / norm)


@dataclass
class TrainingConfig:
    """Hyper-parameters for :func:`train_lm`."""

    epochs: int = 5
    batch_size: int = 16
    lr: float = 1e-3
    weight_decay: float = 0.0
    clip_norm: Optional[float] = 1.0
    seed: int = 0
    log_every: int = 0  # 0 disables logging
    optimizer: str = "adam"  # "adam" | "sgd"


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
    """Shuffle then yield (inputs, targets) minibatches."""
    n = inputs.shape[0]
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield inputs[idx], targets[idx]


def train_lm(
    model: TransformerModel,
    inputs: np.ndarray,
    targets: np.ndarray,
    config: TrainingConfig,
    callback: Optional[Callable[[int, float], None]] = None,
) -> List[float]:
    """Train a language model on (inputs, targets) token arrays.

    ``inputs``/``targets`` are int arrays of shape (n_examples, seq_len);
    positions with target ``-100`` are ignored by the loss (prompt masking).
    Returns the mean loss per epoch.
    """
    rng = np.random.default_rng(config.seed)
    if config.optimizer == "adam":
        opt = Adam(model.parameters(), lr=config.lr,
                   weight_decay=config.weight_decay, clip_norm=config.clip_norm)
    elif config.optimizer == "sgd":
        opt = SGD(model.parameters(), lr=config.lr, clip_norm=config.clip_norm)
    else:
        raise ValueError(f"unknown optimizer {config.optimizer!r}")

    history: List[float] = []
    for epoch in range(config.epochs):
        losses = []
        for x, y in iterate_minibatches(inputs, targets, config.batch_size, rng):
            opt.zero_grad()
            loss = model.loss(x, y, cache=True)
            model.loss_backward()
            opt.step()
            losses.append(loss)
        mean_loss = float(np.mean(losses)) if losses else 0.0
        history.append(mean_loss)
        if callback is not None:
            callback(epoch, mean_loss)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            print(f"[train] epoch {epoch + 1}/{config.epochs} loss={mean_loss:.4f}")
    return history
