"""Llama-style decoder-only transformer built on the explicit-grad layers.

The architecture follows Llama-2: RMSNorm pre-norm, RoPE attention, SwiGLU
MLP, tied-free LM head.  A :class:`TransformerConfig` names the handful of
size presets the experiments use (stand-ins for the paper's 7B/13B/70B
checkpoints at CPU-trainable scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from . import functional as F
from .attention import KVCache, MultiHeadAttention
from .layers import Embedding, Linear, RMSNorm
from .tensoring import Module

__all__ = ["TransformerConfig", "MLP", "TransformerBlock", "TransformerModel",
           "LINEAR_LAYER_KINDS"]

# the per-block linear layers DeltaZip serves in low precision (paper §5.1)
LINEAR_LAYER_KINDS = ("q_proj", "k_proj", "v_proj", "o_proj",
                      "gate_proj", "up_proj", "down_proj")


@dataclass(frozen=True)
class TransformerConfig:
    """Model shape. ``name`` identifies the preset in experiment output."""

    name: str = "tiny"
    vocab_size: int = 128
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 4
    mlp_hidden: int = 128
    max_seq: int = 128
    rope_base: float = 10000.0
    eos_token: int = 1
    pad_token: int = 0
    n_kv_heads: Optional[int] = None  # < n_heads enables GQA (Llama-70B)

    @property
    def kv_heads(self) -> int:
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @staticmethod
    def tiny(vocab_size: int = 128, max_seq: int = 128) -> "TransformerConfig":
        return TransformerConfig(name="tiny", vocab_size=vocab_size, dim=64,
                                 n_layers=2, n_heads=4, mlp_hidden=128,
                                 max_seq=max_seq)

    @staticmethod
    def small(vocab_size: int = 128, max_seq: int = 128) -> "TransformerConfig":
        return TransformerConfig(name="small", vocab_size=vocab_size, dim=96,
                                 n_layers=3, n_heads=6, mlp_hidden=192,
                                 max_seq=max_seq)

    @staticmethod
    def medium(vocab_size: int = 256, max_seq: int = 256) -> "TransformerConfig":
        return TransformerConfig(name="medium", vocab_size=vocab_size, dim=128,
                                 n_layers=4, n_heads=8, mlp_hidden=256,
                                 max_seq=max_seq)

    @staticmethod
    def tiny_gqa(vocab_size: int = 128, max_seq: int = 128) -> "TransformerConfig":
        """Grouped-query variant (2 query heads per KV head, 70B-style)."""
        return TransformerConfig(name="tiny-gqa", vocab_size=vocab_size,
                                 dim=64, n_layers=2, n_heads=4,
                                 n_kv_heads=2, mlp_hidden=128,
                                 max_seq=max_seq)


class MLP(Module):
    """SwiGLU MLP: ``down(silu(gate(x)) * up(x))``."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        self.gate_proj = Linear(dim, hidden, rng)
        self.up_proj = Linear(dim, hidden, rng)
        self.down_proj = Linear(hidden, dim, rng)
        self._ctx = None

    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        gate = self.gate_proj(x, cache=cache)
        up = self.up_proj(x, cache=cache)
        act = F.silu(gate)
        hidden = act * up
        if cache:
            self._ctx = {"gate": gate, "up": up, "act": act}
        return self.down_proj(hidden, cache=cache)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._ctx is None:
            raise RuntimeError("MLP backward called without cached forward")
        ctx = self._ctx
        grad_hidden = self.down_proj.backward(grad_out)
        grad_act = grad_hidden * ctx["up"]
        grad_up = grad_hidden * ctx["act"]
        grad_gate = F.silu_backward(ctx["gate"], grad_act)
        grad_x = self.gate_proj.backward(grad_gate)
        grad_x = grad_x + self.up_proj.backward(grad_up)
        self._ctx = None
        return grad_x

    def __call__(self, x, cache=False):
        return self.forward(x, cache=cache)


class TransformerBlock(Module):
    """Pre-norm decoder block: attention + MLP with residuals."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        self.input_norm = RMSNorm(config.dim)
        self.self_attn = MultiHeadAttention(
            config.dim, config.n_heads, config.max_seq, rng,
            rope_base=config.rope_base, n_kv_heads=config.n_kv_heads)
        self.post_norm = RMSNorm(config.dim)
        self.mlp = MLP(config.dim, config.mlp_hidden, rng)

    def forward(self, x: np.ndarray, kv_cache: Optional[KVCache] = None,
                cache: bool = False) -> np.ndarray:
        h = x + self.self_attn(self.input_norm(x, cache=cache),
                               kv_cache=kv_cache, cache=cache)
        return h + self.mlp(self.post_norm(h, cache=cache), cache=cache)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_h = grad_out + self.post_norm.backward(self.mlp.backward(grad_out))
        grad_x = grad_h + self.input_norm.backward(self.self_attn.backward(grad_h))
        return grad_x

    def __call__(self, x, kv_cache=None, cache=False):
        return self.forward(x, kv_cache=kv_cache, cache=cache)


class TransformerModel(Module):
    """Decoder-only LM.  ``forward`` returns logits of shape (B, T, vocab)."""

    def __init__(self, config: TransformerConfig, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.config = config
        self.embed_tokens = Embedding(config.vocab_size, config.dim, rng)
        self.layers = [TransformerBlock(config, rng) for _ in range(config.n_layers)]
        self.final_norm = RMSNorm(config.dim)
        self.lm_head = Linear(config.dim, config.vocab_size, rng)

    # -------------------------------------------------------------- #
    def new_kv_caches(self, batch: int) -> List[KVCache]:
        c = self.config
        head_dim = c.dim // c.n_heads
        return [KVCache(batch, c.kv_heads, c.max_seq, head_dim)
                for _ in range(c.n_layers)]

    def forward(self, tokens: np.ndarray,
                kv_caches: Optional[List[KVCache]] = None,
                cache: bool = False) -> np.ndarray:
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        h = self.embed_tokens(tokens, cache=cache)
        for i, block in enumerate(self.layers):
            kv = kv_caches[i] if kv_caches is not None else None
            h = block(h, kv_cache=kv, cache=cache)
        h = self.final_norm(h, cache=cache)
        return self.lm_head(h, cache=cache)

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop from dL/dlogits into all parameter gradients."""
        grad_h = self.lm_head.backward(grad_logits)
        grad_h = self.final_norm.backward(grad_h)
        for block in reversed(self.layers):
            grad_h = block.backward(grad_h)
        self.embed_tokens.backward(grad_h)

    def loss(self, tokens: np.ndarray, targets: np.ndarray,
             cache: bool = False) -> float:
        logits = self.forward(tokens, cache=cache)
        self._last_logits = logits
        self._last_targets = targets
        return F.cross_entropy(logits, targets)

    def loss_backward(self) -> None:
        grad = F.cross_entropy_backward(self._last_logits, self._last_targets)
        self.backward(grad)

    def __call__(self, tokens, kv_caches=None, cache=False):
        return self.forward(tokens, kv_caches=kv_caches, cache=cache)

    # -------------------------------------------------------------- #
    # Views used by the compression pipeline
    # -------------------------------------------------------------- #
    def linear_layer_names(self) -> List[str]:
        """Dotted names of every compressible linear weight, in layer order.

        Mirrors the paper's choice (§5.1): all q/k/v/o and MLP projections;
        embeddings and norms stay FP16 (this is also why Gemma-style models
        with large embeddings see lower end-to-end ratios — Table 1).
        """
        attn_kinds = {"q_proj", "k_proj", "v_proj", "o_proj"}
        names = []
        for i in range(len(self.layers)):
            for kind in LINEAR_LAYER_KINDS:
                owner = "self_attn" if kind in attn_kinds else "mlp"
                names.append(f"layers.{i}.{owner}.{kind}.weight")
        return names

    def get_linear(self, name: str) -> Linear:
        """Resolve a dotted linear-weight name to its Linear module."""
        parts = name.split(".")
        if parts[-1] == "weight":
            parts = parts[:-1]
        obj = self
        for part in parts:
            obj = obj[int(part)] if part.isdigit() else getattr(obj, part)
        if not isinstance(obj, Linear):
            raise TypeError(f"{name} does not resolve to a Linear (got {type(obj)})")
        return obj
