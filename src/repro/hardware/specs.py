"""GPU and node specifications for the analytical cost models.

Numbers come from public spec sheets; they parameterize roofline models, so
what matters downstream is their *relative* magnitudes (compute vs memory
bandwidth vs interconnect vs storage), which set where the paper's
crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["GPUSpec", "NodeSpec", "GPU_SPECS", "A800", "A100", "RTX3090",
           "node_from_name"]


@dataclass(frozen=True)
class GPUSpec:
    """A GPU model's capability envelope.

    Attributes:
        name: marketing name.
        fp16_tflops: dense FP16 tensor-core peak (TFLOPS).
        sparse_speedup: throughput multiplier of 2:4 sparse tensor cores
            over dense (2.0 on Ampere-class parts; 1.0 = no support).
        hbm_gbps: device-memory bandwidth (GB/s).
        memory_gb: device memory capacity.
        kernel_launch_us: host-side kernel launch latency (µs).
        dynamic_launch_us: device-side (dynamic parallelism) child-kernel
            launch latency — much cheaper than a host launch.
        pcie_gbps: host link bandwidth (GB/s, unidirectional).
        nvlink_gbps: peer link bandwidth (GB/s); 0 when absent.
        mma_efficiency: sustained fraction of peak for large GEMMs.
    """

    name: str
    fp16_tflops: float
    sparse_speedup: float
    hbm_gbps: float
    memory_gb: float
    kernel_launch_us: float = 5.0
    dynamic_launch_us: float = 1.0
    pcie_gbps: float = 25.0
    nvlink_gbps: float = 0.0
    mma_efficiency: float = 0.8

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * (1 << 30))

    @property
    def peak_flops(self) -> float:
        return self.fp16_tflops * 1e12

    @property
    def hbm_bytes_per_s(self) -> float:
        return self.hbm_gbps * 1e9


A800 = GPUSpec(name="A800-80G", fp16_tflops=312.0, sparse_speedup=2.0,
               hbm_gbps=2039.0, memory_gb=80.0, nvlink_gbps=400.0)
A100 = GPUSpec(name="A100-80G", fp16_tflops=312.0, sparse_speedup=2.0,
               hbm_gbps=2039.0, memory_gb=80.0, nvlink_gbps=600.0)
RTX3090 = GPUSpec(name="RTX-3090", fp16_tflops=71.0, sparse_speedup=2.0,
                  hbm_gbps=936.0, memory_gb=24.0, nvlink_gbps=0.0,
                  pcie_gbps=25.0)

GPU_SPECS: Dict[str, GPUSpec] = {
    "a800": A800,
    "a100": A100,
    "rtx3090": RTX3090,
}


@dataclass(frozen=True)
class NodeSpec:
    """A server node: GPUs plus host memory and storage.

    Attributes:
        gpu: GPU model installed.
        n_gpus: GPUs per node.
        host_memory_gb: CPU DRAM capacity.
        disk_gbps: storage read bandwidth (all-NVMe parallel FS over
            50 Gbps RoCE in the paper's testbed ≈ 6 GB/s).
        disk_latency_s: per-object storage access latency.
        pcie_latency_s: per-transfer host-link latency.
    """

    gpu: GPUSpec
    n_gpus: int = 4
    host_memory_gb: float = 2048.0
    disk_gbps: float = 6.0
    disk_latency_s: float = 2e-3
    pcie_latency_s: float = 20e-6

    @property
    def host_memory_bytes(self) -> int:
        return int(self.host_memory_gb * (1 << 30))


def node_from_name(gpu_name: str, n_gpus: int = 4, **overrides) -> NodeSpec:
    """Build a NodeSpec from a GPU registry key (e.g. ``"a800"``)."""
    key = gpu_name.lower()
    if key not in GPU_SPECS:
        raise KeyError(f"unknown GPU {gpu_name!r}; known: {sorted(GPU_SPECS)}")
    return NodeSpec(gpu=GPU_SPECS[key], n_gpus=n_gpus, **overrides)
