"""Roofline kernel cost models: dense / quantized / sparse GEMM and SBMM.

Every model returns seconds.  The common shape is

    time = max(flops / effective_compute, bytes / memory_bandwidth) + launch

which captures the two regimes the paper leans on:

* **decode** (tiny input rows): memory-bound — time tracks *weight bytes*,
  so 4-bit sparse deltas are ~5-10x faster to apply than FP16 weights;
* **prefill** (large input rows): compute-bound — 2:4 structured sparsity
  engages the sparse tensor cores for up to 2x over dense peak (Fig 6),
  while quantization-only kernels dequantize into the *dense* pipeline and
  plateau at dense peak.

SBMM (§5.2) composes per-delta GEMMs four ways, mirroring Fig 7/17:
``fp16_forloop``, ``naive_forloop`` (low-precision, one launch per delta),
``bmm`` (stacked torch.bmm-style), ``sbmm_reorder`` ("Ours": grouped
requests, still per-delta launches) and ``sbmm`` ("Ours+": one dynamic-
parallelism launch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .specs import GPUSpec

__all__ = ["GemmShape", "dense_gemm_time", "quantized_gemm_time",
           "sparse_quantized_gemm_time", "achieved_flops_ratio",
           "SBMM_IMPLEMENTATIONS", "sbmm_time", "SBMMBreakdown"]

# random-access penalty for gather/scatter of requests that are not grouped
# by delta: effective HBM bandwidth fraction for the activation traffic ...
_SCATTERED_BW_FRACTION = 0.25
# ... plus a fixed per-request gather/scatter cost (uncoalesced row moves)
_RANDOM_ACCESS_US_PER_REQUEST = 3.0
# fraction of peak compute reachable by a GEMM with m input rows
_SMALL_M_KNEE = 64.0


@dataclass(frozen=True)
class GemmShape:
    """Problem size ``(m x k) @ (k x n)^T``: m = tokens, k = in, n = out."""

    m: int
    k: int
    n: int

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.k * self.n


def _compute_efficiency(m: int, base_efficiency: float) -> float:
    """GEMMs with few rows cannot fill the SMs; ramp toward peak with m."""
    fill = min(1.0, m / _SMALL_M_KNEE)
    return base_efficiency * (0.15 + 0.85 * fill)


def _weight_bytes(shape: GemmShape, weight_bits: float,
                  sparse_density: float = 1.0,
                  index_bits: float = 0.0) -> float:
    per_value = weight_bits * sparse_density + index_bits * sparse_density
    return shape.k * shape.n * per_value / 8.0


def _activation_bytes(shape: GemmShape, scattered: bool = False) -> float:
    raw = (shape.m * shape.k + shape.m * shape.n) * 2.0
    return raw / _SCATTERED_BW_FRACTION if scattered else raw


def dense_gemm_time(shape: GemmShape, gpu: GPUSpec,
                    include_launch: bool = True,
                    scattered: bool = False) -> float:
    """FP16 x FP16 GEMM."""
    eff = _compute_efficiency(shape.m, gpu.mma_efficiency)
    compute = shape.flops / (gpu.peak_flops * eff)
    mem = (_weight_bytes(shape, 16.0) + _activation_bytes(shape, scattered)) \
        / gpu.hbm_bytes_per_s
    launch = gpu.kernel_launch_us * 1e-6 if include_launch else 0.0
    return max(compute, mem) + launch


def quantized_gemm_time(shape: GemmShape, gpu: GPUSpec, weight_bits: int,
                        include_launch: bool = True,
                        scattered: bool = False) -> float:
    """INTx x FP16 GEMM (dequantize-into-MMA, Marlin-style).

    Weight traffic shrinks with the bit width, but compute still runs on the
    dense pipeline (dequantization fuses in), so large-m performance matches
    dense peak.
    """
    eff = _compute_efficiency(shape.m, gpu.mma_efficiency)
    compute = shape.flops / (gpu.peak_flops * eff)
    mem = (_weight_bytes(shape, float(weight_bits))
           + _activation_bytes(shape, scattered)) / gpu.hbm_bytes_per_s
    launch = gpu.kernel_launch_us * 1e-6 if include_launch else 0.0
    return max(compute, mem) + launch


def sparse_quantized_gemm_time(shape: GemmShape, gpu: GPUSpec,
                               weight_bits: int, density: float = 0.5,
                               include_launch: bool = True,
                               scattered: bool = False) -> float:
    """2:4-sparse INTx x FP16 GEMM (Sparse-Marlin-style).

    Keeps only ``density`` of the weights (plus 2-bit metadata) and executes
    on sparse tensor cores: ``sparse_speedup`` x dense peak at large m.
    """
    eff = _compute_efficiency(shape.m, gpu.mma_efficiency)
    # dense-equivalent flops executed at the sparse tensor-core peak
    peak = gpu.peak_flops * gpu.sparse_speedup
    compute = shape.flops / (peak * eff)
    mem = (_weight_bytes(shape, float(weight_bits), sparse_density=density,
                         index_bits=2.0)
           + _activation_bytes(shape, scattered)) / gpu.hbm_bytes_per_s
    launch = gpu.kernel_launch_us * 1e-6 if include_launch else 0.0
    return max(compute, mem) + launch


def achieved_flops_ratio(shape: GemmShape, gpu: GPUSpec, kind: str,
                         weight_bits: int = 16) -> float:
    """Achieved FLOPs normalized to *dense FP16 peak* (Fig 6's y-axis).

    ``kind``: "fp16", "quant", or "sparse_quant".
    """
    if kind == "fp16":
        t = dense_gemm_time(shape, gpu, include_launch=False)
    elif kind == "quant":
        t = quantized_gemm_time(shape, gpu, weight_bits, include_launch=False)
    elif kind == "sparse_quant":
        t = sparse_quantized_gemm_time(shape, gpu, weight_bits,
                                       include_launch=False)
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return (shape.flops / t) / gpu.peak_flops


# --------------------------------------------------------------------------- #
# SBMM: batched multi-delta matmul
# --------------------------------------------------------------------------- #
SBMM_IMPLEMENTATIONS = ("fp16_forloop", "fp16_bmm", "naive_forloop",
                        "sbmm_reorder", "sbmm")


@dataclass
class SBMMBreakdown:
    """Total and compute-only time of one batched multi-delta matmul."""

    total: float
    compute: float

    @property
    def overhead(self) -> float:
        return self.total - self.compute


def sbmm_time(requests_per_delta: Sequence[int], shape_k: int, shape_n: int,
              gpu: GPUSpec, impl: str = "sbmm", weight_bits: int = 4,
              density: float = 0.5) -> SBMMBreakdown:
    """Time to compute ``y_i = x_i @ Δ_{idx_i}`` for a batch (Fig 7/8/17).

    ``requests_per_delta`` lists the number of requests per distinct delta
    in the batch (zeros allowed and skipped).
    """
    counts = [c for c in requests_per_delta if c > 0]
    if impl not in SBMM_IMPLEMENTATIONS:
        raise ValueError(f"unknown SBMM impl {impl!r}")
    if not counts:
        return SBMMBreakdown(total=0.0, compute=0.0)
    launch = gpu.kernel_launch_us * 1e-6
    child_launch = gpu.dynamic_launch_us * 1e-6

    def delta_compute(count: int, scattered: bool) -> float:
        s = GemmShape(m=count, k=shape_k, n=shape_n)
        if impl.startswith("fp16"):
            return dense_gemm_time(s, gpu, include_launch=False,
                                   scattered=scattered)
        return sparse_quantized_gemm_time(s, gpu, weight_bits,
                                          density=density,
                                          include_launch=False,
                                          scattered=scattered)

    gather = _RANDOM_ACCESS_US_PER_REQUEST * 1e-6 * sum(counts)

    if impl == "fp16_forloop":
        compute = sum(delta_compute(c, scattered=True) for c in counts)
        total = compute + launch * len(counts) + gather
    elif impl == "fp16_bmm":
        # stack per-request weight copies, then one batched dense kernel
        total_reqs = sum(counts)
        stack_bytes = total_reqs * shape_k * shape_n * 2.0
        stack_time = stack_bytes / gpu.hbm_bytes_per_s
        compute = sum(dense_gemm_time(GemmShape(1, shape_k, shape_n), gpu,
                                      include_launch=False)
                      for _ in range(total_reqs))
        total = compute + stack_time + launch
    elif impl == "naive_forloop":
        # low-precision kernels, but one launch per delta and ungrouped I/O
        compute = sum(delta_compute(c, scattered=True) for c in counts)
        total = compute + launch * len(counts) + gather
    elif impl == "sbmm_reorder":
        # requests grouped per delta: contiguous I/O, still serial launches
        compute = sum(delta_compute(c, scattered=False) for c in counts)
        total = compute + launch * len(counts)
    else:  # sbmm ("Ours+"): one host launch; children run concurrently
        per_delta = [delta_compute(c, scattered=False) for c in counts]
        compute = sum(per_delta)
        # children overlap across SMs: serialization is bounded by the
        # largest delta plus a small per-child scheduling cost
        overlapped = max(per_delta) + child_launch * len(counts)
        total = launch + max(overlapped, compute / _sbmm_parallelism(gpu, len(counts)))
    return SBMMBreakdown(total=total, compute=compute)


def _sbmm_parallelism(gpu: GPUSpec, n_deltas: int) -> float:
    """How many child kernels can genuinely overlap (SM-bound)."""
    return float(min(n_deltas, 8))
