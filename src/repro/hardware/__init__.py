"""Analytical GPU / memory / interconnect cost models (the simulated
testbed standing in for the paper's 4xA800 cluster)."""

from .cluster import (Cluster, ClusterCapacityError, GPUNode, SimulatedGPU,
                      allreduce_time)
from .kernels import (GemmShape, SBMM_IMPLEMENTATIONS, SBMMBreakdown,
                      achieved_flops_ratio, dense_gemm_time,
                      quantized_gemm_time, sbmm_time,
                      sparse_quantized_gemm_time)
from .memory import MemoryPool, OutOfMemoryError, Tier, TransferModel
from .specs import (A100, A800, GPU_SPECS, GPUSpec, NodeSpec, RTX3090,
                    node_from_name)

__all__ = [
    "Cluster", "ClusterCapacityError", "GPUNode", "SimulatedGPU",
    "allreduce_time",
    "GemmShape", "SBMM_IMPLEMENTATIONS", "SBMMBreakdown",
    "achieved_flops_ratio", "dense_gemm_time", "quantized_gemm_time",
    "sbmm_time", "sparse_quantized_gemm_time",
    "MemoryPool", "OutOfMemoryError", "Tier", "TransferModel",
    "A100", "A800", "GPU_SPECS", "GPUSpec", "NodeSpec", "RTX3090",
    "node_from_name",
]
