"""Multi-GPU node model: tensor-parallel groups, collective costs, and the
multi-node :class:`Cluster` that allocates whole nodes to serving replicas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .memory import MemoryPool, Tier, TransferModel
from .specs import GPUSpec, NodeSpec, node_from_name

__all__ = ["SimulatedGPU", "GPUNode", "allreduce_time",
           "Cluster", "ClusterCapacityError"]

_NVLINK_LATENCY_S = 5e-6
_PCIE_P2P_LATENCY_S = 15e-6


@dataclass
class SimulatedGPU:
    """One device: a memory pool plus its spec."""

    index: int
    spec: GPUSpec
    memory: MemoryPool = field(init=False)

    def __post_init__(self):
        self.memory = MemoryPool(name=f"gpu{self.index}",
                                 capacity=self.spec.memory_bytes)


def allreduce_time(nbytes: float, n_gpus: int, gpu: GPUSpec) -> float:
    """Ring all-reduce cost across a tensor-parallel group.

    Ring moves ``2 (n-1)/n`` of the buffer per GPU over the peer link; with
    no NVLink (RTX 3090) traffic crosses PCIe, which is the effect behind
    Fig 18's platform gap.
    """
    if n_gpus <= 1:
        return 0.0
    link_gbps = gpu.nvlink_gbps if gpu.nvlink_gbps > 0 else gpu.pcie_gbps
    latency = _NVLINK_LATENCY_S if gpu.nvlink_gbps > 0 else _PCIE_P2P_LATENCY_S
    volume = 2.0 * (n_gpus - 1) / n_gpus * nbytes
    return latency * 2 * (n_gpus - 1) + volume / (link_gbps * 1e9)


@dataclass
class GPUNode:
    """A server with ``n_gpus`` identical devices and a shared host tier."""

    spec: NodeSpec
    gpus: List[SimulatedGPU] = field(init=False)
    host_memory: MemoryPool = field(init=False)
    transfers: TransferModel = field(init=False)

    def __post_init__(self):
        self.gpus = [SimulatedGPU(index=i, spec=self.spec.gpu)
                     for i in range(self.spec.n_gpus)]
        self.host_memory = MemoryPool(name="host",
                                      capacity=self.spec.host_memory_bytes)
        self.transfers = TransferModel(node=self.spec)

    @property
    def gpu_spec(self) -> GPUSpec:
        return self.spec.gpu

    def tp_group(self, degree: int) -> List[SimulatedGPU]:
        """First ``degree`` GPUs as a tensor-parallel serving group."""
        if degree < 1 or degree > len(self.gpus):
            raise ValueError(
                f"tensor-parallel degree {degree} not in [1, {len(self.gpus)}]")
        return self.gpus[:degree]

    def load_time(self, nbytes: float, src: Tier, dst: Tier,
                  decompress_gbps=None) -> float:
        return self.transfers.time(nbytes, src, dst,
                                   decompress_gbps=decompress_gbps)

    def allreduce(self, nbytes: float, degree: int) -> float:
        return allreduce_time(nbytes, degree, self.spec.gpu)


class ClusterCapacityError(RuntimeError):
    """Raised when a node allocation exceeds the cluster's node count."""


class Cluster:
    """A homogeneous pool of :class:`GPUNode` servers.

    The serving layer allocates whole nodes to replicas (one engine per
    node, the paper's one-TP-group-per-deployment shape) and returns them
    when a replica drains.  Nodes are minted lazily so an autoscaler can
    declare a large ``n_nodes`` ceiling without paying for memory pools it
    never touches.
    """

    def __init__(self, spec: NodeSpec, n_nodes: int = 1):
        if n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.spec = spec
        self.n_nodes = n_nodes
        self._free: List[GPUNode] = []
        self._allocated: List[GPUNode] = []

    @classmethod
    def from_name(cls, name: str = "a800", n_nodes: int = 1,
                  gpus_per_node: int = 4) -> "Cluster":
        """Build a cluster of ``n_nodes`` identical named-spec servers."""
        return cls(node_from_name(name, gpus_per_node), n_nodes)

    # ------------------------------------------------------------------ #
    @property
    def n_allocated(self) -> int:
        return len(self._allocated)

    @property
    def n_free(self) -> int:
        return self.n_nodes - len(self._allocated)

    def acquire(self) -> GPUNode:
        """Allocate one node (fresh memory pools) to a replica."""
        if self.n_free <= 0:
            raise ClusterCapacityError(
                f"all {self.n_nodes} nodes are allocated")
        node = self._free.pop() if self._free else GPUNode(self.spec)
        self._allocated.append(node)
        return node

    def release(self, node: GPUNode) -> None:
        """Return a node to the free pool (replica drained)."""
        # identity, not dataclass equality: same-spec nodes compare equal
        for i, allocated in enumerate(self._allocated):
            if allocated is node:
                del self._allocated[i]
                self._free.append(node)
                return
        raise ValueError("node was not allocated from this cluster")
