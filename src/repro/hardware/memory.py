"""Memory-hierarchy model: GPU HBM ↔ host DRAM ↔ disk transfers.

The serving engine charges these times when swapping deltas (or whole
models, for the vLLM-SCB baseline) across tiers — the paper's §5.4
"hierarchical management strategy".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from .specs import NodeSpec

__all__ = ["Tier", "TransferModel", "MemoryPool", "OutOfMemoryError"]


class Tier(str, Enum):
    GPU = "gpu"
    CPU = "cpu"
    DISK = "disk"


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds a pool's capacity."""


@dataclass
class TransferModel:
    """Transfer-time calculator between adjacent tiers."""

    node: NodeSpec

    def time(self, nbytes: float, src: Tier, dst: Tier,
             decompress_gbps: Optional[float] = None) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst``.

        Disk transfers may pass through a lossless decompression stage
        (``decompress_gbps``) which pipelines with the read, so the slower
        of the two dominates.
        """
        if src == dst:
            return 0.0
        pair = (src, dst)
        if Tier.DISK in pair:
            read = nbytes / (self.node.disk_gbps * 1e9)
            if decompress_gbps is not None and decompress_gbps > 0:
                read = max(read, nbytes / (decompress_gbps * 1e9))
            # disk->gpu also crosses PCIe; stages pipeline, slowest wins
            if Tier.GPU in pair:
                pcie = nbytes / (self.node.gpu.pcie_gbps * 1e9)
                read = max(read, pcie)
            return self.node.disk_latency_s + read
        # cpu <-> gpu over PCIe
        return self.node.pcie_latency_s + nbytes / (self.node.gpu.pcie_gbps * 1e9)


@dataclass
class MemoryPool:
    """Byte-granular allocation tracking for one tier.

    Serving components allocate named objects (model weights, deltas, KV
    blocks); the pool enforces capacity and answers residency queries.
    """

    name: str
    capacity: int
    _objects: Dict[str, int] = field(default_factory=dict)

    @property
    def used(self) -> int:
        return sum(self._objects.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def contains(self, key: str) -> bool:
        return key in self._objects

    def size_of(self, key: str) -> int:
        return self._objects[key]

    def allocate(self, key: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if key in self._objects:
            raise KeyError(f"{key!r} already allocated in pool {self.name}")
        if nbytes > self.free:
            raise OutOfMemoryError(
                f"pool {self.name}: need {nbytes}, free {self.free}")
        self._objects[key] = nbytes

    def release(self, key: str) -> int:
        if key not in self._objects:
            raise KeyError(f"{key!r} not allocated in pool {self.name}")
        return self._objects.pop(key)

    def resize(self, key: str, nbytes: int) -> None:
        """Grow/shrink an allocation (KV cache growth during decode)."""
        if key not in self._objects:
            raise KeyError(f"{key!r} not allocated in pool {self.name}")
        delta = nbytes - self._objects[key]
        if delta > self.free:
            raise OutOfMemoryError(
                f"pool {self.name}: resize needs {delta} more, free {self.free}")
        self._objects[key] = nbytes

    def keys(self):
        return list(self._objects)
