"""simlint output formats: text, JSON, and SARIF-lite.

* **text** — one ``path:line:col: RULE message`` line per finding plus
  a summary line; what humans read in a terminal.
* **json** — ``{"findings": [...], "count": N, "rules": {...}}``; what
  CI uploads as an artifact and scripts consume.
* **sarif** — a minimal SARIF 2.1.0 document (one run, one driver, one
  result per finding) so code-scanning UIs can ingest the output.
  "Lite" because it carries locations and messages, not flows or
  fix-its.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Sequence

from .findings import Finding
from .rules import rule_docs

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]


def render_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "tool": "simlint",
        "count": len(findings),
        "rules": dict(rule_docs()),
        "findings": [
            {"path": f.path, "line": f.line, "col": f.col,
             "rule": f.rule, "message": f.message}
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding]) -> str:
    rules: List[Dict[str, object]] = [
        {"id": rule_id, "shortDescription": {"text": summary}}
        for rule_id, summary in rule_docs()
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                },
            }],
        }
        for f in findings
    ]
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "simlint", "rules": rules}},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)


REPORTERS: Dict[str, Callable[[Sequence[Finding]], str]] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
