"""The simlint rules: eight AST checks behind the repo's determinism story.

Every rule is an :class:`ast.NodeVisitor` over one file's tree, sharing
a :class:`FileContext` that pre-computes the things rules keep needing:
import-alias resolution (``import numpy as np`` / ``from time import
perf_counter``), a child→parent map, and the file's position inside the
package (``sim``, ``serving``, ``workload`` scoping).

The rules, and the replay-identity invariant each one protects:

========  ==============================================================
SIM001    wall-clock access (``time.time``/``perf_counter``/
          ``datetime.now``…) — simulated time must come from SimClock
SIM002    unseeded global RNG (``random.*`` module calls,
          ``np.random.*`` legacy API, argless ``default_rng()``) in
          sim/serving/workload — randomness must flow from seeded,
          spawn-keyed generators
SIM003    iterating a set (or ``dict.keys()``) into an order-sensitive
          sink — heap pushes, event emission, balancer choice, float
          accumulation — hash-randomized order diverges across processes
SIM004    assigning clock/time attributes (``.now``, ``*_clock``)
          outside SimClock/SimKernel — mutate time through
          ``advance``/``tick``/``reseat`` only
SIM005    ``heapq`` outside ``sim/queue.py`` — one deterministic heap
          implementation (EventQueue/KeyedHeap), not N ad-hoc ones
SIM006    float ``==``/``!=`` on ``*_s`` time values — exact equality
          on accumulated float time is replay-fragile
SIM007    mutable default arguments (functions and dataclass fields) —
          shared mutable state leaks across requests/replicas
SIM008    constructing a sim event without routing it through a publish
          path (``emit``/``push``/``on_event``/``publish``) — stealth
          events bypass the journal and break replay identity
========  ==============================================================
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Type

from .findings import Finding

__all__ = ["FileContext", "Rule", "RULES", "rule_docs"]


# --------------------------------------------------------------------- #
# shared per-file context
# --------------------------------------------------------------------- #
class FileContext:
    """Everything the rules share about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.AST):
        self.path = PurePosixPath(path).as_posix()
        self.source = source
        self.tree = tree
        self.parts: Tuple[str, ...] = PurePosixPath(self.path).parts
        #: ``import x.y as z`` -> {"z": "x.y"}; ``import x`` -> {"x": "x"}
        self.module_aliases: Dict[str, str] = {}
        #: ``from x.y import a as b`` -> {"b": "x.y.a"}
        self.from_imports: Dict[str, str] = {}
        #: child -> parent node
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or
                                        alias.name.split(".")[0]] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    # ------------------------------------------------------------------ #
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to an import-aware dotted path
        (``np.random.shuffle`` -> ``numpy.random.shuffle``), or None for
        anything rooted in a local value (``self.rng.shuffle``)."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.module_aliases:
            chain.append(self.module_aliases[base])
        elif base in self.from_imports:
            chain.append(self.from_imports[base])
        else:
            return None
        return ".".join(reversed(chain))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def has_component(self, *names: str) -> bool:
        """Does the file live under any of these path components?"""
        return any(name in self.parts for name in names)

    def is_file(self, *tails: str) -> bool:
        """Does the path end with any ``pkg/module.py`` tail?"""
        return any(self.path.endswith(tail) for tail in tails)


# --------------------------------------------------------------------- #
# rule base
# --------------------------------------------------------------------- #
class Rule(ast.NodeVisitor):
    """One simlint rule over one file."""

    id: str = ""
    summary: str = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        """Path-level scoping; True means the rule runs on this file."""
        return True

    def run(self) -> List[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), rule=self.id,
            message=message))


# --------------------------------------------------------------------- #
# SIM001 — wall-clock access
# --------------------------------------------------------------------- #
_WALL_CLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockRule(Rule):
    id = "SIM001"
    summary = ("wall-clock access; simulated components must take time "
               "from SimClock")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            self.report(node, f"wall-clock call {dotted}(); use the "
                              f"simulation clock (SimClock/SimKernel) so "
                              f"runs replay identically")
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# SIM002 — unseeded global RNG
# --------------------------------------------------------------------- #
#: numpy.random attributes that are seeded-generator machinery, not the
#: legacy global-state API
_NP_RANDOM_OK: FrozenSet[str] = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "BitGenerator", "MT19937",
})


class GlobalRngRule(Rule):
    id = "SIM002"
    summary = ("unseeded global RNG; draw from seeded, spawn-keyed "
               "generators (as_rng / SeedSequence.spawn)")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.has_component("sim", "serving", "workload")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted:
            self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random" and (node.args or node.keywords):
                return  # random.Random(seed) is a seeded instance
            self.report(node, f"global-state RNG call {dotted}(); use a "
                              f"seeded numpy Generator keyed by "
                              f"SeedSequence.spawn instead")
            return
        if dotted.startswith("numpy.random."):
            attr = parts[-1]
            if attr == "default_rng" and not node.args and not node.keywords:
                self.report(node, "default_rng() without a seed is "
                                  "nondeterministic across runs; pass a "
                                  "seed or a spawned SeedSequence")
            elif attr not in _NP_RANDOM_OK:
                self.report(node, f"legacy numpy global RNG {dotted}(); "
                                  f"use a seeded Generator "
                                  f"(numpy.random.default_rng(seed))")


# --------------------------------------------------------------------- #
# SIM003 — set iteration order feeding order-sensitive sinks
# --------------------------------------------------------------------- #
#: call names that consume elements in an order-sensitive way
_ORDER_SINKS: FrozenSet[str] = frozenset({
    "push", "heappush", "emit", "submit", "schedule", "schedule_cancel",
    "offer", "route", "choose", "append",
})


def _is_setish(node: ast.AST) -> bool:
    """Is this expression a set (or dict-keys view) whose iteration
    order is hash-dependent?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_setish(node.left) or _is_setish(node.right)
    return False


class SetOrderRule(Rule):
    id = "SIM003"
    summary = ("set/dict-keys iteration flowing into an order-sensitive "
               "sink (heap push, event emission, float accumulation); "
               "wrap the iterable in sorted()")

    def visit_For(self, node: ast.For) -> None:
        if _is_setish(node.iter) and self._body_has_sink(node.body):
            self.report(node, "iterating a set into an order-sensitive "
                              "sink; hash randomization makes the order "
                              "differ across processes — iterate "
                              "sorted(...) instead")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # sum(f(x) for x in some_set) — float accumulation over
        # hash-ordered elements
        if isinstance(node.func, ast.Name) and node.func.id == "sum" and \
                node.args and isinstance(node.args[0],
                                         (ast.GeneratorExp, ast.ListComp)):
            comp = node.args[0]
            if any(_is_setish(gen.iter) for gen in comp.generators):
                self.report(node, "sum() over a set-ordered iterable; "
                                  "float addition is non-associative, so "
                                  "hash order changes the result — sum "
                                  "over sorted(...)")
        self.generic_visit(node)

    def _body_has_sink(self, body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and \
                        isinstance(node.op, ast.Add):
                    return True
                if isinstance(node, ast.Call):
                    func = node.func
                    name = func.id if isinstance(func, ast.Name) else (
                        func.attr if isinstance(func, ast.Attribute)
                        else None)
                    if name in _ORDER_SINKS:
                        return True
        return False


# --------------------------------------------------------------------- #
# SIM004 — direct clock mutation
# --------------------------------------------------------------------- #
class ClockMutationRule(Rule):
    id = "SIM004"
    summary = ("direct clock/time attribute mutation; go through "
               "SimClock.advance/tick/reseat")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        # the clock itself (and the kernel that owns it) are the
        # sanctioned mutation sites
        return not ctx.is_file("sim/clock.py", "sim/kernel.py")

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and (
                target.attr == "now" or target.attr.endswith("_clock")):
            self.report(target, f"direct mutation of time attribute "
                                f"'.{target.attr}'; use "
                                f"SimClock.advance/tick (monotone) or "
                                f"reseat (audited) instead")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# SIM005 — heapq outside sim/queue.py
# --------------------------------------------------------------------- #
class HeapqRule(Rule):
    id = "SIM005"
    summary = ("heapq outside sim/queue.py; use EventQueue/KeyedHeap so "
               "every heap shares the deterministic tie-break")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return not ctx.is_file("sim/queue.py")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "heapq" or alias.name.startswith("heapq."):
                self.report(node, "import of heapq; use "
                                  "repro.sim.queue.EventQueue/KeyedHeap "
                                  "(deterministic tie-break built in)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "heapq":
            self.report(node, "import from heapq; use "
                              "repro.sim.queue.EventQueue/KeyedHeap "
                              "(deterministic tie-break built in)")
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# SIM006 — float equality on *_s time values
# --------------------------------------------------------------------- #
def _time_operand(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id.endswith("_s"):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.endswith("_s"):
        return node.attr
    return None


class TimeEqualityRule(Rule):
    id = "SIM006"
    summary = ("== / != on *_s float time values; compare with a "
               "tolerance or <=/>= against a boundary")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            name = _time_operand(left) or _time_operand(right)
            if name is None:
                continue
            other = right if _time_operand(left) else left
            if isinstance(other, ast.Constant) and other.value is None:
                continue  # `x_s == None` is an identity check, not float eq
            self.report(node, f"exact float equality on time value "
                              f"'{name}'; accumulated simulated time is "
                              f"replay-fragile under ==/!= — use a "
                              f"tolerance or an ordering comparison")
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# SIM007 — mutable default arguments
# --------------------------------------------------------------------- #
def _mutable_default(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("list", "dict", "set"):
        return True
    return False


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


class MutableDefaultRule(Rule):
    id = "SIM007"
    summary = ("mutable default argument / dataclass field; one shared "
               "object leaks state across requests and replicas")

    def _check_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _mutable_default(default):
                self.report(default, f"mutable default argument in "
                                     f"{node.name}(); the single shared "
                                     f"object carries state across calls "
                                     f"— default to None (or use "
                                     f"dataclasses.field)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass(node):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        self._bad_field_value(stmt.value):
                    self.report(stmt, "mutable dataclass field default; "
                                      "use field(default_factory=...) so "
                                      "each instance owns its container")
        self.generic_visit(node)

    def _bad_field_value(self, value: Optional[ast.AST]) -> bool:
        if _mutable_default(value):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name == "field":
                for kw in value.keywords:
                    if kw.arg == "default" and _mutable_default(kw.value):
                        return True
        return False


# --------------------------------------------------------------------- #
# SIM008 — events constructed outside the publish path
# --------------------------------------------------------------------- #
#: the typed sim events (kept in sync with repro.sim.events by a test)
_EVENT_CLASSES: FrozenSet[str] = frozenset({
    "Arrival", "Cancel", "IterationDone", "BucketRefill",
    "AutoscalerTick", "ReplicaSpawn", "ReplicaDrain",
    "PhaseTransition", "AdmissionDecision", "TelemetryTick",
    "KvTransfer",
})

#: call names that constitute the kernel publish path
_PUBLISH_CALLS: FrozenSet[str] = frozenset({
    "emit", "push", "on_event", "publish",
})


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class EventRoutingRule(Rule):
    id = "SIM008"
    summary = ("sim event constructed outside the kernel publish path "
               "(emit/push/publish); stealth events bypass the journal")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        if not ctx.has_component("sim", "serving"):
            return False
        # events.py defines the classes; the sanitizer and trace export
        # inspect events, they do not schedule them
        return not ctx.is_file("sim/events.py", "sim/sanitizer.py",
                               "sim/trace_export.py")

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in _EVENT_CLASSES and not self._routed(node):
            self.report(node, f"{name} constructed outside the publish "
                              f"path; route events through kernel.emit / "
                              f"queue.push so the journal stays the "
                              f"single source of replay truth")
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def _routed(self, node: ast.Call) -> bool:
        parent = self.ctx.parent(node)
        # direct: emit(Arrival(...)) / queue.push(Cancel(...))
        if isinstance(parent, ast.Call) and node in parent.args and \
                _call_name(parent) in _PUBLISH_CALLS:
            return True
        # factory: `return Arrival(...)` / `yield Arrival(...)` defers
        # publishing to the caller (which the rule checks there)
        if isinstance(parent, (ast.Return, ast.Yield)):
            return True
        # named then published: ev = Arrival(...); ... kernel.emit(ev)
        if isinstance(parent, ast.Assign):
            names = {t.id for t in parent.targets
                     if isinstance(t, ast.Name)}
            if names and self._published_later(node, names):
                return True
        return False

    def _published_later(self, node: ast.Call, names: set) -> bool:
        scope = self.ctx.enclosing_function(node) or self.ctx.tree
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Call) and \
                    _call_name(sub) in _PUBLISH_CALLS:
                for arg in sub.args:
                    if isinstance(arg, ast.Name) and arg.id in names:
                        return True
            elif isinstance(sub, (ast.Return, ast.Yield)) and \
                    isinstance(sub.value, ast.Name) and \
                    sub.value.id in names:
                return True
        return False


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
RULES: Tuple[Type[Rule], ...] = (
    WallClockRule, GlobalRngRule, SetOrderRule, ClockMutationRule,
    HeapqRule, TimeEqualityRule, MutableDefaultRule, EventRoutingRule,
)


def rule_docs() -> List[Tuple[str, str]]:
    """(rule id, one-line summary) for every registered rule."""
    return [(rule.id, rule.summary) for rule in RULES]
