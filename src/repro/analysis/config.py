"""simlint configuration: exclusions, rule selection, inline pragmas.

Three layers, strongest last:

1. **pyproject.toml** — ``[tool.simlint]`` holds ``select`` / ``ignore``
   and a ``[tool.simlint.per-path-ignore]`` table mapping a path prefix
   to the rules ignored under it.  The *exclusion* list is deliberately
   NOT a simlint key: simlint reads ``[tool.ruff] extend-exclude`` so
   ruff and simlint share one list (benchmarks/examples) and cannot
   drift — a unit test pins the sharing.
2. **CLI / API arguments** — ``--select`` / ``--ignore`` narrow the
   loaded config.
3. **Inline pragmas** — ``# simlint: disable=SIM001,SIM004`` suppresses
   those rules on its physical line (anchor line of the flagged AST
   node), bare ``# simlint: disable`` suppresses all rules on the line,
   and ``# simlint: disable-file=SIM005`` anywhere in a file suppresses
   the rules for the whole file.  Pragmas are parsed from real COMMENT
   tokens (``tokenize``), so a pragma-shaped string literal is inert.

TOML parsing uses :mod:`tomllib` when available (Python ≥ 3.11) and
falls back to a tiny line-oriented parser that understands the subset
this repo's pyproject actually uses (tables, strings, string arrays) —
the repo supports 3.10 and must not grow dependencies.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

__all__ = ["LintConfig", "Pragmas", "parse_pragmas", "load_pyproject",
           "DEFAULT_EXCLUDE"]

#: exclusions that always apply, on top of the shared pyproject list
DEFAULT_EXCLUDE: Tuple[str, ...] = (
    ".git", "__pycache__", ".hypothesis", ".pytest_cache", "build", "dist",
)

#: the shared exclusion list used when no pyproject.toml is found
FALLBACK_SHARED_EXCLUDE: Tuple[str, ...] = ("benchmarks", "examples")

_ALL_RULES_SENTINEL = "ALL"


# --------------------------------------------------------------------- #
# minimal TOML loading (tomllib when present, subset parser otherwise)
# --------------------------------------------------------------------- #
def _tiny_toml(text: str) -> Dict[str, Dict[str, object]]:
    """Parse the TOML subset simlint needs: ``[table]`` headers, string
    values, booleans, and (possibly multiline) arrays of strings.  Lines
    it does not understand are skipped — unknown value types in other
    tools' tables must not break lint config loading."""
    tables: Dict[str, Dict[str, object]] = {}
    current: Dict[str, object] = tables.setdefault("", {})
    pending_key: Optional[str] = None
    pending_buf = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending_key is not None:
            pending_buf += " " + line
            if _array_closed(pending_buf):
                current[pending_key] = _parse_array(pending_buf)
                pending_key = None
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line.strip("[]").strip().strip('"')
            current = tables.setdefault(name, {})
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if value.startswith("["):
            if _array_closed(value):
                current[key] = _parse_array(value)
            else:
                pending_key, pending_buf = key, value
        elif value.startswith('"'):
            current[key] = value[1:].split('"', 1)[0]
        elif value.split("#", 1)[0].strip() in ("true", "false"):
            current[key] = value.split("#", 1)[0].strip() == "true"
        # other value kinds (numbers, inline tables) are skipped
    return tables


def _array_closed(buf: str) -> bool:
    return buf.count("[") <= buf.count("]")


def _parse_array(buf: str) -> List[str]:
    return re.findall(r'"([^"]*)"', buf)


def load_pyproject(path: Path) -> Dict[str, Dict[str, object]]:
    """Load a pyproject.toml into ``{dotted-table-name: {key: value}}``."""
    text = path.read_text()
    try:
        import tomllib
        data = tomllib.loads(text)
        flat: Dict[str, Dict[str, object]] = {}
        _flatten(data, "", flat)
        return flat
    except ImportError:  # Python 3.10: the baked-in subset parser
        return _tiny_toml(text)


def _flatten(node: Mapping[str, object], prefix: str,
             out: Dict[str, Dict[str, object]]) -> None:
    scalars: Dict[str, object] = {}
    for key, value in node.items():
        if isinstance(value, dict):
            _flatten(value, f"{prefix}.{key}" if prefix else key, out)
        else:
            scalars[key] = value
    if scalars or prefix:
        out.setdefault(prefix, {}).update(scalars)


# --------------------------------------------------------------------- #
# config
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LintConfig:
    """Effective simlint configuration for one run."""

    #: path components / posix prefixes excluded from linting entirely
    #: (shared with ruff via ``[tool.ruff] extend-exclude``)
    exclude: Tuple[str, ...] = FALLBACK_SHARED_EXCLUDE + DEFAULT_EXCLUDE
    #: only these rules run (None = all registered rules)
    select: Optional[FrozenSet[str]] = None
    #: these rules never run
    ignore: FrozenSet[str] = frozenset()
    #: (path-prefix, rules-ignored-under-it) pairs, most specific wins
    per_path_ignore: Tuple[Tuple[str, FrozenSet[str]], ...] = ()

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, start: Optional[Path] = None,
             select: Optional[Set[str]] = None,
             ignore: Optional[Set[str]] = None) -> "LintConfig":
        """Build the config from the nearest pyproject.toml (searching
        ``start`` and its parents) plus explicit select/ignore."""
        pyproject = _find_pyproject(start or Path.cwd())
        exclude: Tuple[str, ...] = FALLBACK_SHARED_EXCLUDE
        file_select: Optional[FrozenSet[str]] = None
        file_ignore: FrozenSet[str] = frozenset()
        per_path: Tuple[Tuple[str, FrozenSet[str]], ...] = ()
        if pyproject is not None:
            tables = load_pyproject(pyproject)
            ruff = tables.get("tool.ruff", {})
            shared = ruff.get("extend-exclude")
            if isinstance(shared, list):
                exclude = tuple(str(e) for e in shared)
            simlint = tables.get("tool.simlint", {})
            raw_select = simlint.get("select")
            if isinstance(raw_select, list) and raw_select:
                file_select = frozenset(str(r) for r in raw_select)
            raw_ignore = simlint.get("ignore")
            if isinstance(raw_ignore, list):
                file_ignore = frozenset(str(r) for r in raw_ignore)
            table = tables.get("tool.simlint.per-path-ignore", {})
            per_path = tuple(
                (prefix, frozenset(_rule_list(rules)))
                for prefix, rules in sorted(table.items())
                if _rule_list(rules))
        if select:
            file_select = frozenset(select)
        if ignore:
            file_ignore = file_ignore | frozenset(ignore)
        return cls(exclude=exclude + DEFAULT_EXCLUDE, select=file_select,
                   ignore=file_ignore, per_path_ignore=per_path)

    # ------------------------------------------------------------------ #
    def excluded(self, path: str) -> bool:
        """Is this (posix, repo-relative) path excluded from linting?"""
        parts = path.split("/")
        for entry in self.exclude:
            entry = entry.rstrip("/")
            if "/" in entry:
                if path.startswith(entry + "/") or path == entry or \
                        ("/" + entry + "/") in path or \
                        path.endswith("/" + entry):
                    return True
            elif entry in parts:
                return True
        return False

    def rule_enabled(self, rule_id: str, path: str) -> bool:
        """Does ``rule_id`` apply to ``path`` under this config?"""
        if self.select is not None and rule_id not in self.select:
            return False
        if rule_id in self.ignore:
            return False
        for prefix, rules in self.per_path_ignore:
            if path.startswith(prefix) and rule_id in rules:
                return False
        return True


def _rule_list(value: object) -> List[str]:
    if isinstance(value, list):
        return [str(v) for v in value]
    if isinstance(value, str):
        return [r.strip() for r in value.split(",") if r.strip()]
    return []


def _find_pyproject(start: Path) -> Optional[Path]:
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        path = candidate / "pyproject.toml"
        if path.is_file():
            return path
    return None


# --------------------------------------------------------------------- #
# pragmas
# --------------------------------------------------------------------- #
_PRAGMA = re.compile(
    r"#\s*simlint:\s*(disable-file|disable)\s*(?:=\s*([A-Za-z0-9_,\s]+))?")


@dataclass
class Pragmas:
    """Inline suppressions for one file."""

    #: rules disabled for the whole file (None element = all rules)
    file_rules: Set[str] = field(default_factory=set)
    file_all: bool = False
    #: line -> rules disabled on that line
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    #: lines where all rules are disabled
    line_all: Set[int] = field(default_factory=set)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.file_all or rule_id in self.file_rules:
            return True
        if line in self.line_all:
            return True
        return rule_id in self.line_rules.get(line, ())


def parse_pragmas(source: str) -> Pragmas:
    """Extract ``# simlint:`` pragmas from real comment tokens."""
    pragmas = Pragmas()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return pragmas
    for line, comment in comments:
        match = _PRAGMA.search(comment)
        if not match:
            continue
        kind, raw_rules = match.groups()
        rules = {r.strip().upper() for r in (raw_rules or "").split(",")
                 if r.strip()}
        if kind == "disable-file":
            if rules:
                pragmas.file_rules |= rules
            else:
                pragmas.file_all = True
        else:
            if rules:
                pragmas.line_rules.setdefault(line, set()).update(rules)
            else:
                pragmas.line_all.add(line)
    return pragmas
