"""repro.analysis — simlint, the determinism static-analysis pass.

The serving stack's replay-identity guarantee (same seed + same trace
=> byte-identical journals and request records, across processes and
platforms) only holds if nothing reads wall clocks, draws from global
RNG state, iterates hash-ordered sets into order-sensitive sinks, or
schedules events behind the kernel's back.  simlint enforces those
idioms statically; :mod:`repro.sim.sanitizer` asserts the dynamic
counterparts at run time (``REPRO_SIM_SANITIZE=1``).

CLI::

    python -m repro.analysis [paths] --format text|json|sarif

API::

    from repro.analysis import check_paths, check_source
    assert check_paths(["src"]) == []

Rules SIM001–SIM008 are documented in :mod:`repro.analysis.rules` and
in the README's "Determinism: rules and enforcement" section.
Suppressions: ``# simlint: disable=SIM001`` on the offending line,
``# simlint: disable-file=SIM005`` anywhere in a file, per-path ignores
in ``[tool.simlint.per-path-ignore]``, and the exclusion list shared
with ruff via ``[tool.ruff] extend-exclude``.
"""

from .config import LintConfig, Pragmas, parse_pragmas
from .engine import check_paths, check_source
from .findings import PARSE_RULE, Finding
from .reporters import render_json, render_sarif, render_text
from .rules import RULES, rule_docs

__all__ = [
    "Finding", "PARSE_RULE", "LintConfig", "Pragmas", "parse_pragmas",
    "check_paths", "check_source", "RULES", "rule_docs",
    "render_text", "render_json", "render_sarif",
]
