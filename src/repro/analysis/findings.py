"""The unit of simlint output: one typed, locatable finding.

A :class:`Finding` is deliberately flat and hashable — reporters render
it three ways (text, JSON, SARIF-lite), tests compare lists of them
directly, and the natural sort order ``(path, line, col, rule)`` is the
stable presentation order every reporter uses.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "PARSE_RULE"]

#: pseudo-rule id attached to files that fail to parse
PARSE_RULE = "SIM000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str      # repo-relative posix path
    line: int      # 1-indexed
    col: int       # 0-indexed (ast convention)
    rule: str      # "SIM001" … "SIM008" (or SIM000 for parse errors)
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
