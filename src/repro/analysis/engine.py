"""The simlint engine: parse, run rules, filter pragmas, sort.

Two entry points:

* :func:`check_source` — lint one string of source (the unit tests'
  workhorse: seed a violation, assert the rule fires; write the clean
  idiom, assert it does not).
* :func:`check_paths` — walk files/directories, honouring the config's
  exclusion list, and return every finding in ``(path, line, col,
  rule)`` order.  ``check_paths(["src"]) == []`` is the repo's
  self-cleanliness contract, pinned by a test and by CI.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .config import LintConfig, parse_pragmas
from .findings import PARSE_RULE, Finding
from .rules import RULES, FileContext

__all__ = ["check_source", "check_paths", "iter_python_files"]


def check_source(source: str, path: str = "<string>",
                 config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one source string as if it lived at ``path``."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        detail = exc.msg if isinstance(exc, SyntaxError) else str(exc)
        return [Finding(path=path, line=line, col=col, rule=PARSE_RULE,
                        message=f"file does not parse: {detail}")]
    ctx = FileContext(path, source, tree)
    pragmas = parse_pragmas(source)
    findings: List[Finding] = []
    for rule_cls in RULES:
        if not config.rule_enabled(rule_cls.id, ctx.path):
            continue
        if not rule_cls.applies_to(ctx):
            continue
        for finding in rule_cls(ctx).run():
            if not pragmas.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Sequence[str],
                      config: LintConfig) -> Iterable[Path]:
    """Expand files/directories into the linted ``.py`` file set, in a
    deterministic (sorted) order, skipping excluded paths."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            candidates = []
        for candidate in candidates:
            rel = candidate.as_posix()
            if rel in seen or config.excluded(rel):
                continue
            seen.add(rel)
            yield candidate


def check_paths(paths: Sequence[str],
                config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint files and directories; the pytest-importable API."""
    if config is None:
        start = Path(paths[0]) if paths else Path.cwd()
        config = LintConfig.load(start=start)
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(
                path=path.as_posix(), line=1, col=0, rule=PARSE_RULE,
                message=f"file is unreadable: {exc}"))
            continue
        findings.extend(check_source(source, path=path.as_posix(),
                                     config=config))
    return sorted(findings)
