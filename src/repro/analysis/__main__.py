"""``python -m repro.analysis`` — the simlint CLI.

Usage::

    python -m repro.analysis [paths...] [--format text|json|sarif]
                             [--select SIM001,SIM004] [--ignore SIM006]
                             [--fail-on-findings] [--list-rules]

Paths default to ``src``.  Exit status: 0 when clean, 1 when findings
exist, 2 on usage errors.  ``--fail-on-findings`` makes the contract
explicit at the call site (CI uses it); it is also the default
behaviour, as for any linter.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Set

from .config import LintConfig
from .engine import check_paths
from .reporters import REPORTERS
from .rules import rule_docs

__all__ = ["main"]


def _rule_set(values: List[str]) -> Optional[Set[str]]:
    rules = {part.strip().upper() for value in values
             for part in value.split(",") if part.strip()}
    return rules or None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism static analysis for the "
                    "serving stack")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="output format")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rules to run exclusively")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rules to skip")
    parser.add_argument("--fail-on-findings", action="store_true",
                        help="exit 1 when findings exist (the default; "
                             "this flag states the contract explicitly)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in rule_docs():
            print(f"{rule_id}  {summary}")
        return 0

    config = LintConfig.load(start=Path(args.paths[0]),
                             select=_rule_set(args.select),
                             ignore=_rule_set(args.ignore))
    findings = check_paths(args.paths, config=config)
    print(REPORTERS[args.format](findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
