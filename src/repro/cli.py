"""Command-line interface for the DeltaZip reproduction.

Mirrors the paper artifact's script workflow::

    repro pretrain  --size small --out base.ckpt
    repro finetune  --base base.ckpt --task math --out math.ckpt
    repro compress  --base base.ckpt --finetuned math.ckpt \\
                    --preset deltazip-4bit --out math.dzip
    repro evaluate  --model math.ckpt --task math
    repro trace     --distribution azure --rate 0.5 --out azure.jsonl
    repro simulate  --trace azure.jsonl --model llama-13b --systems both
    repro tenancy   --tenants "agg:3.0:1.0:batch,gold:0.3:2.0:interactive" \\
                    --policy both --shed
    repro scenarios all --quick --gauges-out gauges.json

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

_PRESETS = {
    "deltazip-4bit": "deltazip_4bit",
    "deltazip-2bit": "deltazip_2bit",
    "sparsegpt-4bit": "sparsegpt_4bit",
    "awq-4bit": "awq_4bit",
}


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_pretrain(args) -> int:
    from repro.evaluation import pretrain_base_model
    from repro.nn import TransformerConfig
    from repro.nn.checkpoint import save_model

    factory = getattr(TransformerConfig, args.size.replace("-", "_"))
    config = factory()
    model = pretrain_base_model(config, n_sequences=args.sequences,
                                epochs=args.epochs, seed=args.seed)
    save_model(model, args.out)
    print(f"pretrained {config.name} base "
          f"({model.num_parameters():,} params) -> {args.out}")
    return 0


def _cmd_finetune(args) -> int:
    from repro.evaluation import make_task, run_fmt, run_lora
    from repro.nn.checkpoint import load_model, save_model

    base = load_model(args.base)
    task = make_task(args.task)
    if args.method == "fmt":
        result = run_fmt(base, task, n_train=args.samples,
                         epochs=args.epochs, lr=args.lr, seed=args.seed)
    else:
        result = run_lora(base, task, rank=args.lora_rank,
                          n_train=args.samples, epochs=args.epochs,
                          lr=args.lr * 5, seed=args.seed)
    save_model(result.model, args.out)
    if args.calibration_out:
        np.save(args.calibration_out, result.calibration_tokens)
    print(f"fine-tuned ({args.method}) on {args.task} -> {args.out}")
    return 0


def _cmd_compress(args) -> int:
    from repro.compression import (CompressionConfig, DeltaCompressor,
                                   save_compressed_delta)
    from repro.nn.checkpoint import load_model

    base = load_model(args.base)
    finetuned = load_model(args.finetuned)
    config = getattr(CompressionConfig, _PRESETS[args.preset])()
    calib = np.load(args.calibration) if args.calibration else None
    compressor = DeltaCompressor(config)
    artifact = compressor.compress(finetuned, base.state_dict(), calib,
                                   model_id=args.model_id)
    save_compressed_delta(artifact, args.out)
    report = compressor.last_report
    print(f"compressed {args.model_id!r} with {args.preset} in "
          f"{report.seconds:.1f}s")
    print(f"  ratio: {artifact.compression_ratio():.2f}x end-to-end, "
          f"{artifact.linear_compression_ratio():.2f}x on linear weights")
    print(f"  bytes: {artifact.nbytes():,} "
          f"(FP16: {artifact.nbytes_uncompressed():,})")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.evaluation import evaluate_task, make_task
    from repro.nn.checkpoint import load_model

    task = make_task(args.task)
    model = load_model(args.model)
    if args.delta:
        from repro.compression import load_compressed_delta
        artifact = load_compressed_delta(args.delta)
        model.load_state_dict(artifact.to_state_dict(model.state_dict()))
        label = f"{args.model} + {args.delta}"
    else:
        label = args.model
    result = evaluate_task(model, task, args.examples, seed=args.seed)
    print(f"{label}: {args.task} accuracy "
          f"{result.percent:.1f}% ({result.n_examples} examples)")
    return 0


def _cmd_trace(args) -> int:
    from repro.workload import trace_from_distribution
    from repro.workload.io import save_trace

    trace = trace_from_distribution(args.distribution, args.models,
                                    rate=args.rate, duration_s=args.duration,
                                    seed=args.seed)
    save_trace(trace, args.out)
    print(f"{len(trace)} requests over {args.duration:.0f}s "
          f"({args.distribution}, λ={args.rate}) -> {args.out}")
    return 0


def _simulate_manager(engine_cls, spec, trace, ratio):
    """Build the registry the way the target engine consumes variants."""
    from repro.serving import ModelManager

    mgr = ModelManager(spec)
    mgr.register_base("base")
    for m in trace.model_ids:
        engine_cls.register_variant(mgr, m, "base", ratio)
    return mgr


def _ttft_decomposition(res):
    """Mean (prefill_s, transfer_s, decode_s) over finished records.

    TTFT = queue wait + prefill compute + (disagg only) KV transfer;
    everything after the first token is decode.
    """
    recs = [r for r in res.records
            if r.finished and r.first_token_s is not None]
    if not recs:
        return 0.0, 0.0, 0.0
    n = len(recs)
    xfer = sum(r.transfer_s for r in recs) / n
    prefill = sum(max(0.0, (r.first_token_s - r.arrival_s)
                      - r.queue_wait_s - r.transfer_s) for r in recs) / n
    decode = sum(r.finish_s - r.first_token_s for r in recs) / n
    return prefill, xfer, decode


def _cmd_simulate(args) -> int:
    from repro.hardware import GPUNode, node_from_name
    from repro.serving import (ENGINES, EngineConfig, MODEL_SPECS,
                               SchedulerConfig, create_engine)
    from repro.workload.io import load_trace

    trace = load_trace(args.trace)
    spec = MODEL_SPECS[args.model]
    node = GPUNode(node_from_name(args.gpu, args.gpus))
    names = {"all": sorted(ENGINES),
             "both": ["deltazip", "vllm-scb"]}.get(args.systems,
                                                   [args.systems])

    results = {}
    for name in names:
        mgr = _simulate_manager(ENGINES[name], spec, trace, args.ratio)
        # pool/shard sizing only applies to the engines that have pools
        extra = {}
        if name == "disagg":
            extra = {"prefill_workers": args.prefill_workers,
                     "decode_workers": args.decode_workers}
        elif name == "sharded" and args.tp_degree is not None:
            extra = {"tp_degree": args.tp_degree}
        engine = create_engine(
            name, mgr, node,
            scheduler_config=SchedulerConfig(
                max_batch_requests=args.batch,
                max_concurrent_deltas=args.deltas),
            engine_config=EngineConfig(
                tp_degree=args.tp,
                prefix_cache=args.prefix_cache,
                prefix_block_tokens=args.prefix_block),
            **extra)
        results[name] = engine.run(trace)

    print(f"{'system':10s} {'thr(rps)':>9s} {'p50_e2e':>8s} "
          f"{'p99_e2e':>8s} {'mean_ttft':>10s} {'p50_ttft':>9s} "
          f"{'p99_ttft':>9s} {'prefill':>8s} {'xfer':>7s} "
          f"{'decode':>8s} {'pfx_hit':>8s}")
    for name, res in results.items():
        prefill_s, xfer_s, decode_s = _ttft_decomposition(res)
        stats = res.stats
        hit = stats.prefix_hit_rate if stats is not None else 0.0
        print(f"{name:10s} {res.throughput_within(trace.duration_s):9.3f} "
              f"{res.percentile_e2e_s(50):8.2f} "
              f"{res.percentile_e2e_s(99):8.2f} "
              f"{res.mean_ttft_s():10.3f} "
              f"{res.percentile_ttft_s(50):9.3f} "
              f"{res.percentile_ttft_s(99):9.3f} "
              f"{prefill_s:8.3f} {xfer_s:7.3f} {decode_s:8.3f} "
              f"{hit:8.2f}")
        if args.verbose and res.stats is not None:
            s = res.stats
            print(f"  iterations={s.iterations} swap_ins={s.swap_ins} "
                  f"evictions={s.evictions} preemptions={s.preemptions} "
                  f"mean_batch={s.mean_batch_size:.1f} "
                  f"mean_deltas={s.mean_deltas_per_batch:.1f}")
            if s.prefix_lookups:
                print(f"  prefix: hit_rate={s.prefix_hit_rate:.2f} "
                      f"saved_tokens={s.prefix_hit_tokens} "
                      f"evictions={s.prefix_evictions}")
    return 0


def _cmd_cluster(args) -> int:
    from repro.hardware import Cluster
    from repro.serving import (Autoscaler, ClusterGateway, ENGINES,
                               EngineConfig, MODEL_SPECS, SchedulerConfig,
                               create_engine, summarize)
    from repro.workload.io import load_trace

    trace = load_trace(args.trace)
    spec = MODEL_SPECS[args.model]
    replica_counts = [int(n) for n in args.replicas.split(",")]
    # engines never mutate the registry, so the sweep shares one manager
    mgr = _simulate_manager(ENGINES[args.engine], spec, trace, args.ratio)

    print(f"{'replicas':>8s} {'thr(rps)':>9s} {'makespan':>9s} "
          f"{'p50_e2e':>8s} {'p99_e2e':>8s} {'p50_ttft':>9s} "
          f"{'p99_ttft':>9s} {'peak':>5s}")
    for n in replica_counts:
        autoscaler = None
        ceiling = n
        if args.autoscale:
            ceiling = max(n, args.max_replicas)
            autoscaler = Autoscaler(
                min_replicas=args.min_replicas, max_replicas=args.max_replicas,
                high_queue_per_replica=args.high_queue,
                low_queue_per_replica=args.low_queue)
        cluster = Cluster.from_name(args.gpu, n_nodes=ceiling,
                                    gpus_per_node=args.gpus)

        def factory(node, mgr=mgr):
            return create_engine(
                args.engine, mgr, node,
                scheduler_config=SchedulerConfig(
                    max_batch_requests=args.batch,
                    max_concurrent_deltas=args.deltas),
                engine_config=EngineConfig(
                    tp_degree=args.tp,
                    prefix_cache=args.prefix_cache,
                    prefix_block_tokens=args.prefix_block))

        telemetry = None
        if args.telemetry_interval is not None:
            from repro.telemetry import Telemetry
            telemetry = Telemetry(interval_s=args.telemetry_interval)
        gateway = ClusterGateway(engine_factory=factory, cluster=cluster,
                                 n_replicas=n, balancer=args.balancer,
                                 autoscaler=autoscaler,
                                 journal=bool(args.trace_out),
                                 telemetry=telemetry)
        res = gateway.replay(trace)
        if telemetry is not None:
            _print_telemetry(telemetry)
        if args.trace_out:
            from repro.sim import export_chrome_trace
            # one file per swept replica count: spawn/drain/tick/cancel
            # and per-iteration spans, viewable in chrome://tracing
            out = args.trace_out if len(replica_counts) == 1 else \
                f"{args.trace_out}.r{n}.json"
            n_events = export_chrome_trace(gateway.kernel.journal, out)
            print(f"  wrote {n_events} trace events -> {out}")
        s = summarize(res)
        peak = res.config.get("max_replicas_seen", n)
        print(f"{n:8d} {res.throughput_within(trace.duration_s):9.3f} "
              f"{s['makespan_s']:9.1f} {s['p50_e2e_s']:8.2f} "
              f"{s['p99_e2e_s']:8.2f} {s['p50_ttft_s']:9.3f} "
              f"{s['p99_ttft_s']:9.3f} {peak:5d}")
        if args.verbose and autoscaler is not None:
            for sample in autoscaler.history:
                if sample.action:
                    print(f"  t={sample.clock_s:8.1f}s {sample.action} -> "
                          f"{sample.n_replicas} replicas "
                          f"(queue/replica {sample.queue_per_replica:.1f})")
    return 0


def _print_telemetry(telemetry) -> None:
    """One-paragraph gauge/span digest of a telemetry-wired run."""
    spans = telemetry.spans.summary()
    latest = telemetry.latest()
    print(f"  telemetry: {len(telemetry.gauges)} gauge snapshots, "
          f"{spans['n_closed']} spans closed "
          f"({spans['n_active']} still open)")
    phases = spans["phases"]
    xfer = ""
    if phases.get("transfer", {}).get("p95_s"):
        xfer = f"transfer {phases['transfer']['p95_s']:.2f}s  "
    print(f"    p95 queue {phases['queue']['p95_s']:.2f}s  "
          f"prefill {phases['prefill']['p95_s']:.2f}s  "
          f"{xfer}decode {phases['decode']['p95_s']:.2f}s  "
          f"e2e {phases['e2e']['p95_s']:.2f}s")
    if latest is not None:
        print(f"    last tick t={latest.time_s:.0f}s: "
              f"backlog={latest.backlog} replicas={latest.n_replicas} "
              f"batch_occ={latest.batch_occupancy:.2f} "
              f"shed/s={latest.shed_rate_per_s:.2f}")


def _parse_tenant_specs(text: str):
    """``name:rate[:weight[:slo_class]]`` comma-separated → tenant specs."""
    from repro.serving.tenancy import SLO_CLASSES, Tenant
    from repro.workload import TenantWorkload

    contracts, workloads = [], []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if not 2 <= len(parts) <= 4 or not parts[0]:
            raise ValueError(
                f"bad tenant spec {chunk!r}; want name:rate[:weight[:slo]]")
        name, rate = parts[0], float(parts[1])
        weight = float(parts[2]) if len(parts) > 2 else 1.0
        slo_class = parts[3] if len(parts) > 3 else "standard"
        if slo_class not in SLO_CLASSES:
            raise ValueError(f"unknown slo class {slo_class!r}; "
                             f"known: {sorted(SLO_CLASSES)}")
        contracts.append(Tenant(name, weight=weight, slo_class=slo_class))
        workloads.append(TenantWorkload(name, rate=rate))
    return contracts, workloads


def _cmd_tenancy(args) -> int:
    from repro.hardware import GPUNode, node_from_name
    from repro.serving import (ENGINES, EngineConfig, MODEL_SPECS,
                               SchedulerConfig, ServingGateway, TenantGateway,
                               create_engine, jain_fairness_index)
    from repro.workload import multi_tenant_trace

    contracts, workloads = _parse_tenant_specs(args.tenants)
    trace = multi_tenant_trace(workloads, duration_s=args.duration,
                               seed=args.seed)
    spec = MODEL_SPECS[args.model]
    node = GPUNode(node_from_name(args.gpu, args.gpus))
    engine_cls = ENGINES[args.engine]
    mgr = _simulate_manager(engine_cls, spec, trace, args.ratio)
    policies = ["fcfs", "vtc"] if args.policy == "both" else [args.policy]

    for policy in policies:
        engine = create_engine(
            args.engine, mgr, node,
            scheduler_config=SchedulerConfig(
                max_batch_requests=args.batch,
                max_concurrent_deltas=args.deltas),
            engine_config=EngineConfig(tp_degree=args.tp))
        telemetry = None
        if args.telemetry_interval is not None or args.trace_out:
            from repro.telemetry import Telemetry
            telemetry = Telemetry(
                interval_s=args.telemetry_interval
                if args.telemetry_interval is not None else 1.0,
                journal=bool(args.trace_out))
        gateway = TenantGateway(ServingGateway(engine),
                                tenants=contracts, policy=policy,
                                shed=args.shed,
                                engine_queue_depth=args.depth,
                                telemetry=telemetry)
        result = gateway.replay(trace)
        if telemetry is not None:
            _print_telemetry(telemetry)
        if args.trace_out and telemetry is not None:
            from repro.sim import export_chrome_trace
            # per-policy file: admission verdicts, cancels (tenant-
            # attributed), and nested request/phase lifecycle slices
            out = args.trace_out if len(policies) == 1 else \
                f"{args.trace_out}.{policy}.json"
            n_events = export_chrome_trace(telemetry.kernel.journal, out)
            print(f"  wrote {n_events} trace events -> {out}")

        attainment = gateway.slo_attainment(result)
        print(f"\n=== policy: {policy}"
              f"{' + shed' if args.shed else ''}  "
              f"({result.n_requests}/{len(trace)} served) ===")
        print(f"{'tenant':12s} {'offered':>7s} {'done':>6s} {'shed':>5s} "
              f"{'rej':>4s} {'p50_ttft':>9s} {'p99_ttft':>9s} "
              f"{'slo':>6s} {'attain':>7s}")
        for contract in contracts:
            stats = gateway.controller.stats[contract.tenant_id]
            sliced = result.for_tenant(contract.tenant_id)
            print(f"{contract.tenant_id:12s} {stats.offered:7d} "
                  f"{sliced.n_requests:6d} {stats.shed:5d} "
                  f"{stats.rejected:4d} "
                  f"{sliced.percentile_ttft_s(50):9.2f} "
                  f"{sliced.percentile_ttft_s(99):9.2f} "
                  f"{contract.slo_s:6.0f} "
                  f"{attainment[contract.tenant_id]:7.1%}")
        print(f"Jain fairness (SLO attainment): "
              f"{jain_fairness_index(list(attainment.values())):.3f}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.telemetry.scenarios import run_all, run_scenario

    if args.name == "all":
        reports = run_all(quick=args.quick, seed=args.seed)
    else:
        reports = [run_scenario(args.name, quick=args.quick,
                                seed=args.seed)]
    all_ok = True
    for report in reports:
        print(f"=== {report.name}: "
              f"{'PASS' if report.ok else 'FAIL'} ===")
        print(f"    {report.description}")
        for inv in report.invariants:
            mark = "ok " if inv.passed else "FAIL"
            print(f"  [{mark}] {inv.name}: {inv.detail}")
        all_ok = all_ok and report.ok
    if args.gauges_out:
        import json
        payload = {r.name: r.as_dict() for r in reports}
        with open(args.gauges_out, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote gauge series for {len(reports)} scenario(s) "
              f"-> {args.gauges_out}")
    return 0 if all_ok else 1


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DeltaZip reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pretrain", help="pre-train a base model")
    p.add_argument("--size", default="tiny",
                   choices=["tiny", "small", "medium", "tiny-gqa"])
    p.add_argument("--sequences", type=int, default=192)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_pretrain)

    p = sub.add_parser("finetune", help="fine-tune a base checkpoint")
    p.add_argument("--base", required=True)
    p.add_argument("--task", required=True)
    p.add_argument("--method", default="fmt", choices=["fmt", "lora"])
    p.add_argument("--lora-rank", type=int, default=4)
    p.add_argument("--samples", type=int, default=256)
    p.add_argument("--epochs", type=int, default=8)
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--calibration-out", default=None)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_finetune)

    p = sub.add_parser("compress", help="ΔCompress a fine-tuned checkpoint")
    p.add_argument("--base", required=True)
    p.add_argument("--finetuned", required=True)
    p.add_argument("--preset", default="deltazip-4bit",
                   choices=sorted(_PRESETS))
    p.add_argument("--calibration", default=None,
                   help=".npy of calibration token ids")
    p.add_argument("--model-id", default="variant")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("evaluate", help="task accuracy of a checkpoint")
    p.add_argument("--model", required=True,
                   help="base (with --delta) or standalone checkpoint")
    p.add_argument("--delta", default=None,
                   help="optional .dzip applied on top of --model")
    p.add_argument("--task", required=True)
    p.add_argument("--examples", type=int, default=100)
    p.add_argument("--seed", type=int, default=1234)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("trace", help="generate a workload trace")
    p.add_argument("--distribution", default="azure",
                   help="uniform | zipf:<alpha> | azure | session "
                        "(multi-turn conversations with a shared "
                        "system prompt)")
    p.add_argument("--models", type=int, default=32)
    p.add_argument("--rate", type=float, default=0.5)
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("simulate", help="serve a trace in simulation")
    p.add_argument("--trace", required=True)
    p.add_argument("--model", default="llama-13b",
                   choices=["llama-7b", "llama-13b", "llama-70b",
                            "pythia-2.8b"])
    p.add_argument("--gpu", default="a800")
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--tp", type=int, default=4)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--deltas", type=int, default=8)
    p.add_argument("--ratio", type=float, default=10.0,
                   help="assumed delta compression ratio")
    p.add_argument("--prefix-cache", action="store_true",
                   help="enable prefix/KV-cache reuse for conversation "
                        "and shared-system-prompt traffic")
    p.add_argument("--prefix-block", type=int, default=32,
                   help="KV block size (tokens) for the prefix cache")
    p.add_argument("--prefill-workers", type=int, default=1,
                   help="disagg: prefill pool size (workers)")
    p.add_argument("--decode-workers", type=int, default=1,
                   help="disagg: decode pool size (workers)")
    p.add_argument("--tp-degree", type=int, default=None,
                   help="sharded: total tensor-parallel degree across "
                        "nodes (default: --tp, i.e. single node)")
    # importing the package (not just .base) registers the engine classes
    from repro.serving import ENGINES
    p.add_argument("--systems", default="both",
                   choices=sorted(ENGINES) + ["all", "both"],
                   help="one registered engine, 'all' of them, or 'both' "
                        "(deltazip + vllm-scb)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("cluster",
                       help="serve a trace on a multi-replica cluster")
    p.add_argument("--trace", required=True)
    p.add_argument("--model", default="llama-13b",
                   choices=["llama-7b", "llama-13b", "llama-70b",
                            "pythia-2.8b"])
    p.add_argument("--engine", default="deltazip",
                   choices=sorted(ENGINES))
    p.add_argument("--replicas", default="1,2,4",
                   help="comma-separated replica counts to sweep")
    from repro.serving import BALANCERS
    p.add_argument("--balancer", default="least-outstanding",
                   choices=sorted(BALANCERS))
    p.add_argument("--autoscale", action="store_true",
                   help="let a queue-driven controller resize the set")
    p.add_argument("--min-replicas", type=int, default=1)
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument("--high-queue", type=float, default=8.0,
                   help="scale-up watermark (outstanding per replica)")
    p.add_argument("--low-queue", type=float, default=1.0,
                   help="scale-down watermark (outstanding per replica)")
    p.add_argument("--gpu", default="a800")
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--tp", type=int, default=4)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--deltas", type=int, default=8)
    p.add_argument("--ratio", type=float, default=10.0,
                   help="assumed delta compression ratio")
    p.add_argument("--prefix-cache", action="store_true",
                   help="enable prefix/KV-cache reuse for conversation "
                        "and shared-system-prompt traffic")
    p.add_argument("--prefix-block", type=int, default=32,
                   help="KV block size (tokens) for the prefix cache")
    p.add_argument("--trace-out", default=None,
                   help="write the run's kernel journal as Chrome "
                        "about:tracing JSON (one file per replica count)")
    p.add_argument("--telemetry-interval", type=float, default=None,
                   help="wire the live ops plane and poll gauges every "
                        "N simulated seconds")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("tenancy",
                       help="multi-tenant admission control study")
    p.add_argument("--tenants",
                   default="agg:3.0:1.0:batch,"
                           "gold:0.3:2.0:interactive,"
                           "silver:0.3:1.0:standard",
                   help="comma-separated name:rate[:weight[:slo_class]]")
    p.add_argument("--policy", default="both",
                   choices=["fcfs", "vtc", "both"])
    p.add_argument("--shed", action="store_true",
                   help="drop requests whose predicted TTFT breaches "
                        "their tenant's SLO")
    p.add_argument("--depth", type=int, default=None,
                   help="frontier queue depth (engine-side admits per "
                        "replica); default: unbounded for fcfs, one "
                        "engine batch (--batch) for vtc")
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--model", default="llama-13b",
                   choices=["llama-7b", "llama-13b", "llama-70b",
                            "pythia-2.8b"])
    p.add_argument("--engine", default="deltazip", choices=sorted(ENGINES))
    p.add_argument("--gpu", default="a800")
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--tp", type=int, default=4)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--deltas", type=int, default=8)
    p.add_argument("--ratio", type=float, default=10.0,
                   help="assumed delta compression ratio")
    p.add_argument("--telemetry-interval", type=float, default=None,
                   help="wire the live ops plane and poll gauges every "
                        "N simulated seconds")
    p.add_argument("--trace-out", default=None,
                   help="write the telemetry journal (admission verdicts, "
                        "tenant-attributed cancels, nested request/phase "
                        "spans) as Chrome about:tracing JSON; one file "
                        "per policy")
    p.set_defaults(func=_cmd_tenancy)

    from repro.telemetry.scenarios import SCENARIO_NAMES
    p = sub.add_parser("scenarios",
                       help="run named stress drills with asserted "
                            "recovery invariants")
    p.add_argument("name", choices=SCENARIO_NAMES + ("all",),
                   help="which drill to run (or 'all')")
    p.add_argument("--quick", action="store_true",
                   help="shorter traces (CI smoke mode)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--gauges-out", default=None,
                   help="write each scenario's gauge series + invariant "
                        "verdicts as JSON")
    p.set_defaults(func=_cmd_scenarios)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
