"""The DeltaZip facade: the end-to-end system of paper Fig 4.

Glues the three components together behind one object:

* **Delta Compressor** — ``register_finetuned`` extracts + compresses the
  delta of an uploaded FMT checkpoint against its base (offline);
* **Model Manager** — tracks artifacts, lineage, and measured sizes;
* **Serving** — ``runner()`` gives the functional decoupled executor for
  real generation across variants, and ``session`` builds an at-scale
  serving session (any registered engine) using the *measured*
  compression ratios of the registered artifacts; sessions replay
  offline traces or accept online submissions through the gateway.

Example::

    dz = DeltaZip(base_model)
    dz.register_finetuned("vicuna", finetuned_model, calib_tokens)
    out = dz.generate("vicuna", prompt_tokens)
    session = dz.session("deltazip", served_spec=LLAMA_13B).build()
    result = session.replay(trace)           # offline
    rid = session.submit("vicuna", 128, 64)  # ... or online
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.artifacts import CompressedDelta
from ..compression.configs import CompressionConfig
from ..compression.pipeline import DeltaCompressor
from ..hardware.cluster import GPUNode
from ..nn.lora import LoRAAdapter
from ..nn.transformer import TransformerModel
from ..serving.base import EngineConfig
from ..serving.metrics import ServingResult
from ..serving.models import ServedModelSpec
from ..serving.runner import DecoupledModelRunner
from ..serving.scheduler import SchedulerConfig
from ..workload.spec import Trace
from .session import ServingSession, ServingSessionBuilder

__all__ = ["DeltaZip"]


class DeltaZip:
    """Serve many full-model-tuned variants of one base model."""

    def __init__(self, base_model: TransformerModel,
                 compression: Optional[CompressionConfig] = None,
                 base_model_id: str = "base"):
        self.base_model = base_model
        self.base_model_id = base_model_id
        self.base_state = base_model.state_dict()
        self.compression = compression or CompressionConfig.deltazip_4bit()
        self.artifacts: Dict[str, CompressedDelta] = {}
        self.adapters: Dict[str, LoRAAdapter] = {}
        self._runner: Optional[DecoupledModelRunner] = None

    # ------------------------------------------------------------------ #
    # registration (the offline path of Fig 4)
    # ------------------------------------------------------------------ #
    def register_finetuned(
        self,
        model_id: str,
        model: TransformerModel,
        calibration_tokens: Optional[np.ndarray],
        config: Optional[CompressionConfig] = None,
    ) -> CompressedDelta:
        """Compress and store an FMT checkpoint's delta."""
        if model_id in self.artifacts or model_id in self.adapters:
            raise ValueError(f"model {model_id!r} already registered")
        if model.config != self.base_model.config:
            raise ValueError("fine-tuned model shape differs from the base")
        compressor = DeltaCompressor(config or self.compression)
        artifact = compressor.compress(
            model, self.base_state, calibration_tokens,
            model_id=model_id, base_model_id=self.base_model_id)
        self.artifacts[model_id] = artifact
        self._runner = None  # invalidate cached runner
        return artifact

    def register_lora(self, model_id: str, adapter: LoRAAdapter) -> None:
        """Register a PEFT adapter directly (Fig 4's LoRA path)."""
        if model_id in self.artifacts or model_id in self.adapters:
            raise ValueError(f"model {model_id!r} already registered")
        self.adapters[model_id] = adapter

    @property
    def registered_models(self) -> List[str]:
        return sorted(list(self.artifacts) + list(self.adapters))

    def compression_ratio(self, model_id: str) -> float:
        return self.artifacts[model_id].compression_ratio()

    # ------------------------------------------------------------------ #
    # functional serving
    # ------------------------------------------------------------------ #
    def runner(self) -> DecoupledModelRunner:
        """The decoupled executor with every registered delta loaded."""
        if self._runner is None:
            self._runner = DecoupledModelRunner(self.base_model,
                                                self.artifacts)
        return self._runner

    def generate(self, model_id: str, prompt: Sequence[int],
                 max_new_tokens: int = 16) -> List[int]:
        """Greedy generation from one registered variant (or the base)."""
        variant = model_id if model_id != self.base_model_id else "__base__"
        return self.runner().generate([list(prompt)], [variant],
                                      max_new_tokens=max_new_tokens)[0]

    def generate_batch(self, model_ids: Sequence[str],
                       prompts: Sequence[Sequence[int]],
                       max_new_tokens: int = 16) -> List[List[int]]:
        """Batched multi-variant generation (the Fig 4 serving path)."""
        variants = [m if m != self.base_model_id else "__base__"
                    for m in model_ids]
        return self.runner().generate([list(p) for p in prompts], variants,
                                      max_new_tokens=max_new_tokens)

    # ------------------------------------------------------------------ #
    # at-scale serving (simulation)
    # ------------------------------------------------------------------ #
    def session(self, engine: str = "deltazip",
                served_spec: Optional[ServedModelSpec] = None
                ) -> ServingSessionBuilder:
        """Fluent builder for an at-scale serving session.

        ``engine`` names any entry in the :data:`~repro.serving.ENGINES`
        registry.  The returned builder configures hardware and scheduling,
        and ``build()`` yields a :class:`~repro.core.session.ServingSession`
        exposing both offline ``replay(trace)`` and the online ``submit``
        path::

            result = (dz.session("deltazip", served_spec=LLAMA_13B)
                        .on_node("a800", gpus=4)
                        .with_scheduler(max_batch_requests=32)
                        .replay(trace))
        """
        return ServingSessionBuilder(self, engine=engine,
                                     served_spec=served_spec)

    def simulate(
        self,
        trace: Trace,
        served_spec: ServedModelSpec,
        node: Optional[GPUNode] = None,
        scheduler: Optional[SchedulerConfig] = None,
        engine: Optional[EngineConfig] = None,
        default_ratio: Optional[float] = None,
    ) -> ServingResult:
        """Deprecated: use :meth:`session` (kept as a thin wrapper).

        Replays the trace on a ``deltazip`` session with the measured
        compression ratios of the registered artifacts.  Every model id in
        the trace must be registered unless ``default_ratio`` supplies a
        fallback.
        """
        warnings.warn(
            "DeltaZip.simulate is deprecated; use "
            "DeltaZip.session(...).build().replay(trace) instead",
            DeprecationWarning, stacklevel=2)
        builder = self.session("deltazip", served_spec=served_spec)
        if node is not None:
            builder.on_node(node)
        if scheduler is not None:
            builder.with_scheduler(scheduler)
        if engine is not None:
            builder.with_engine_config(engine)
        if default_ratio is not None:
            builder.with_default_ratio(default_ratio)
        return builder.replay(trace)
