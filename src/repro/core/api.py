"""The DeltaZip facade: the end-to-end system of paper Fig 4.

Glues the three components together behind one object:

* **Delta Compressor** — ``register_finetuned`` extracts + compresses the
  delta of an uploaded FMT checkpoint against its base (offline);
* **Model Manager** — tracks artifacts, lineage, and measured sizes;
* **Serving** — ``runner()`` gives the functional decoupled executor for
  real generation across variants, and ``simulate`` runs the
  discrete-event engine on a workload trace using the *measured*
  compression ratios of the registered artifacts.

Example::

    dz = DeltaZip(base_model)
    dz.register_finetuned("vicuna", finetuned_model, calib_tokens)
    out = dz.generate("vicuna", prompt_tokens)
    result = dz.simulate(trace, served_spec=LLAMA_13B)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.artifacts import CompressedDelta
from ..compression.configs import CompressionConfig
from ..compression.pipeline import DeltaCompressor
from ..hardware.cluster import GPUNode
from ..hardware.specs import NodeSpec, node_from_name
from ..nn.lora import LoRAAdapter
from ..nn.transformer import TransformerModel
from ..serving.engine import DeltaZipEngine, EngineConfig
from ..serving.metrics import ServingResult
from ..serving.model_manager import ModelManager
from ..serving.models import ServedModelSpec
from ..serving.runner import DecoupledModelRunner
from ..serving.scheduler import SchedulerConfig
from ..workload.spec import Trace

__all__ = ["DeltaZip"]


class DeltaZip:
    """Serve many full-model-tuned variants of one base model."""

    def __init__(self, base_model: TransformerModel,
                 compression: Optional[CompressionConfig] = None,
                 base_model_id: str = "base"):
        self.base_model = base_model
        self.base_model_id = base_model_id
        self.base_state = base_model.state_dict()
        self.compression = compression or CompressionConfig.deltazip_4bit()
        self.artifacts: Dict[str, CompressedDelta] = {}
        self.adapters: Dict[str, LoRAAdapter] = {}
        self._runner: Optional[DecoupledModelRunner] = None

    # ------------------------------------------------------------------ #
    # registration (the offline path of Fig 4)
    # ------------------------------------------------------------------ #
    def register_finetuned(
        self,
        model_id: str,
        model: TransformerModel,
        calibration_tokens: Optional[np.ndarray],
        config: Optional[CompressionConfig] = None,
    ) -> CompressedDelta:
        """Compress and store an FMT checkpoint's delta."""
        if model_id in self.artifacts or model_id in self.adapters:
            raise ValueError(f"model {model_id!r} already registered")
        if model.config != self.base_model.config:
            raise ValueError("fine-tuned model shape differs from the base")
        compressor = DeltaCompressor(config or self.compression)
        artifact = compressor.compress(
            model, self.base_state, calibration_tokens,
            model_id=model_id, base_model_id=self.base_model_id)
        self.artifacts[model_id] = artifact
        self._runner = None  # invalidate cached runner
        return artifact

    def register_lora(self, model_id: str, adapter: LoRAAdapter) -> None:
        """Register a PEFT adapter directly (Fig 4's LoRA path)."""
        if model_id in self.artifacts or model_id in self.adapters:
            raise ValueError(f"model {model_id!r} already registered")
        self.adapters[model_id] = adapter

    @property
    def registered_models(self) -> List[str]:
        return sorted(list(self.artifacts) + list(self.adapters))

    def compression_ratio(self, model_id: str) -> float:
        return self.artifacts[model_id].compression_ratio()

    # ------------------------------------------------------------------ #
    # functional serving
    # ------------------------------------------------------------------ #
    def runner(self) -> DecoupledModelRunner:
        """The decoupled executor with every registered delta loaded."""
        if self._runner is None:
            self._runner = DecoupledModelRunner(self.base_model,
                                                self.artifacts)
        return self._runner

    def generate(self, model_id: str, prompt: Sequence[int],
                 max_new_tokens: int = 16) -> List[int]:
        """Greedy generation from one registered variant (or the base)."""
        variant = model_id if model_id != self.base_model_id else "__base__"
        return self.runner().generate([list(prompt)], [variant],
                                      max_new_tokens=max_new_tokens)[0]

    def generate_batch(self, model_ids: Sequence[str],
                       prompts: Sequence[Sequence[int]],
                       max_new_tokens: int = 16) -> List[List[int]]:
        """Batched multi-variant generation (the Fig 4 serving path)."""
        variants = [m if m != self.base_model_id else "__base__"
                    for m in model_ids]
        return self.runner().generate([list(p) for p in prompts], variants,
                                      max_new_tokens=max_new_tokens)

    # ------------------------------------------------------------------ #
    # at-scale simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        trace: Trace,
        served_spec: ServedModelSpec,
        node: Optional[GPUNode] = None,
        scheduler: Optional[SchedulerConfig] = None,
        engine: Optional[EngineConfig] = None,
        default_ratio: Optional[float] = None,
    ) -> ServingResult:
        """Run the discrete-event engine with measured compression ratios.

        Every model id in the trace must be registered (its *measured*
        ratio sizes the swaps) unless ``default_ratio`` supplies a fallback.
        """
        node = node or GPUNode(node_from_name("a800", 4))
        manager = ModelManager(served_spec)
        manager.register_base(self.base_model_id)
        for model_id in trace.model_ids:
            if model_id == self.base_model_id:
                continue
            if model_id in self.artifacts:
                ratio = self.artifacts[model_id].compression_ratio()
                manager.register_delta(model_id, self.base_model_id, ratio,
                                       config=self.artifacts[model_id].config)
            elif default_ratio is not None:
                manager.register_delta(model_id, self.base_model_id,
                                       default_ratio)
            else:
                raise KeyError(
                    f"trace model {model_id!r} is not registered and no "
                    f"default_ratio was given")
        eng = DeltaZipEngine(
            manager, node,
            scheduler or SchedulerConfig(),
            engine or EngineConfig())
        return eng.run(trace)
