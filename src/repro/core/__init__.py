"""Public facade for the DeltaZip reproduction."""

from .api import DeltaZip
from .session import ServingSession, ServingSessionBuilder

__all__ = ["DeltaZip", "ServingSession", "ServingSessionBuilder"]
