"""Public facade for the DeltaZip reproduction."""

from .api import DeltaZip

__all__ = ["DeltaZip"]
