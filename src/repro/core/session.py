"""Fluent serving-session builder for the :class:`~repro.core.DeltaZip` facade.

The at-scale entry point used to be one monolithic ``DeltaZip.simulate``
call that required a fully pre-materialized offline trace.  The builder
splits configuration from execution and exposes *both* workload paths::

    session = (dz.session(engine="deltazip")
                 .serving(LLAMA_13B)
                 .on_node("a800", gpus=4)
                 .with_scheduler(max_batch_requests=32)
                 .build())

    session.replay(trace)                      # offline trace replay
    rid = session.submit("vicuna", 128, 64)    # ... or online submission
    session.run_until_drained()

Scaling out is one more builder call: ``.with_replicas(4)`` serves through
a :class:`~repro.serving.cluster.ClusterGateway` over one engine per node,
and ``.with_autoscaler(...)`` lets a queue-driven controller spawn and
drain replicas at runtime::

    session = (dz.session("deltazip")
                 .serving(LLAMA_13B)
                 .with_replicas(4, balancer="lineage")
                 .with_autoscaler(max_replicas=8, high_queue_per_replica=6)
                 .build())

Multi-tenant admission control layers on the same way:
``.with_tenants(...)`` declares per-tenant contracts (weights, SLO
classes, token-bucket rates, quotas) and ``.with_admission(...)`` picks
the frontier policy (FCFS or VTC fair queueing, optional SLO-aware
shedding); the session then serves through a
:class:`~repro.serving.tenancy.TenantGateway` and ``submit`` accepts a
``tenant_id``::

    session = (dz.session("deltazip")
                 .serving(LLAMA_13B)
                 .with_tenants(Tenant("burst", rate_tokens_per_s=500.0),
                               Tenant("gold", weight=4.0,
                                      slo_class="interactive"))
                 .with_admission(policy="vtc", shed=True)
                 .build())
    session.submit("vicuna", 128, 64, tenant_id="gold")

Any engine registered in :data:`~repro.serving.base.ENGINES` can back a
session; registered artifacts contribute their *measured* compression
ratios to the simulated swap sizes, exactly as the legacy ``simulate``
path did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

from ..hardware.cluster import Cluster, GPUNode
from ..hardware.specs import node_from_name
from ..serving.base import (ENGINES, EngineConfig, ServingEngine,
                            create_engine)
from ..serving.cluster import (Autoscaler, AutoscalerConfig, ClusterGateway,
                               LoadBalancer, Replica)
from ..serving.gateway import ServingGateway
from ..serving.metrics import ServingResult
from ..serving.model_manager import ModelManager
from ..serving.models import ServedModelSpec
from ..serving.scheduler import SchedulerConfig
from ..serving.tenancy import (AdmissionController, Tenant, TenantGateway)
from ..workload.spec import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .api import DeltaZip

__all__ = ["ServingSessionBuilder", "ServingSession"]


class ServingSessionBuilder:
    """Accumulates serving configuration; ``build()`` makes the session."""

    def __init__(self, system: "DeltaZip", engine: str = "deltazip",
                 served_spec: Optional[ServedModelSpec] = None):
        if engine not in ENGINES:
            raise KeyError(f"unknown engine {engine!r}; "
                           f"registered: {sorted(ENGINES)}")
        self._system = system
        self._engine_name = engine
        self._spec = served_spec
        self._node: Optional[GPUNode] = None
        self._scheduler: Optional[SchedulerConfig] = None
        self._engine_config: Optional[EngineConfig] = None
        self._default_ratio: Optional[float] = None
        self._n_replicas = 1
        self._balancer: Union[str, LoadBalancer] = "least-outstanding"
        self._autoscaler: Optional[Autoscaler] = None
        self._cluster: Optional[Cluster] = None
        self._tenants: List[Tenant] = []
        self._admission: Optional[AdmissionController] = None
        self._admission_kwargs: Optional[dict] = None
        self._engine_kwargs: dict = {}

    # ------------------------------------------------------------------ #
    def serving(self, spec: ServedModelSpec) -> "ServingSessionBuilder":
        """The served model's size class (sizes weights, KV, swaps)."""
        self._spec = spec
        return self

    def on_node(self, node: Union[GPUNode, str] = "a800",
                gpus: int = 4) -> "ServingSessionBuilder":
        """The GPU node to serve on: a ``GPUNode`` or a spec name.

        With replicas this also sets the per-replica node shape (each
        replica gets its own node of this spec from the cluster)."""
        if isinstance(node, str):
            node = GPUNode(node_from_name(node, gpus))
        self._node = node
        return self

    def on_cluster(self, cluster: Union[Cluster, str],
                   nodes: int = 4, gpus: int = 4) -> "ServingSessionBuilder":
        """The multi-node cluster replicas draw their nodes from: a
        :class:`~repro.hardware.cluster.Cluster` or a GPU spec name."""
        if isinstance(cluster, str):
            cluster = Cluster.from_name(cluster, n_nodes=nodes,
                                        gpus_per_node=gpus)
        self._cluster = cluster
        return self

    def with_replicas(self, n: int,
                      balancer: Union[str, LoadBalancer, None] = None
                      ) -> "ServingSessionBuilder":
        """Serve through ``n`` engine replicas behind a load balancer
        (``round-robin`` | ``least-outstanding`` | ``lineage``)."""
        if n < 1:
            raise ValueError("need at least one replica")
        self._n_replicas = n
        if balancer is not None:
            self._balancer = balancer
        return self

    def with_autoscaler(self, config: Union[Autoscaler, AutoscalerConfig,
                                            None] = None,
                        **kwargs) -> "ServingSessionBuilder":
        """Queue-driven replica autoscaling: pass an ``Autoscaler``, an
        ``AutoscalerConfig``, or config kwargs."""
        if config is not None and kwargs:
            raise ValueError("pass either a config object or kwargs")
        if isinstance(config, Autoscaler):
            self._autoscaler = config
        elif isinstance(config, AutoscalerConfig):
            self._autoscaler = Autoscaler(config)
        else:
            self._autoscaler = Autoscaler(**kwargs)
        return self

    def with_tenants(self, *tenants: Tenant) -> "ServingSessionBuilder":
        """Declare per-tenant contracts (weight, SLO class, token-bucket
        rate/burst, quota); implies an admission layer in front of the
        gateway.  See :class:`~repro.serving.tenancy.Tenant`."""
        if not tenants:
            raise ValueError("pass at least one Tenant")
        self._tenants.extend(tenants)
        return self

    def with_admission(self, controller: Optional[AdmissionController] = None,
                       **kwargs) -> "ServingSessionBuilder":
        """Admission policy at the frontier: pass an
        :class:`~repro.serving.tenancy.AdmissionController` or its kwargs
        (``policy="fcfs"|"vtc"``, ``shed=True``, ``engine_queue_depth``,
        ...)."""
        if controller is not None and kwargs:
            raise ValueError("pass either a controller or kwargs")
        if controller is not None:
            self._admission = controller
        else:
            self._admission_kwargs = kwargs
        return self

    def with_scheduler(self, config: Optional[SchedulerConfig] = None,
                       **kwargs) -> "ServingSessionBuilder":
        """Scheduler limits: pass a ``SchedulerConfig`` or its kwargs."""
        if config is not None and kwargs:
            raise ValueError("pass either a SchedulerConfig or kwargs")
        self._scheduler = config or SchedulerConfig(**kwargs)
        return self

    def with_engine_config(self, config: Optional[EngineConfig] = None,
                           **kwargs) -> "ServingSessionBuilder":
        """Engine knobs: pass an ``EngineConfig`` or its kwargs."""
        if config is not None and kwargs:
            raise ValueError("pass either an EngineConfig or kwargs")
        self._engine_config = config or EngineConfig(**kwargs)
        return self

    def disaggregated(self, prefill: int = 1, decode: int = 1,
                      block_tokens: Optional[int] = None
                      ) -> "ServingSessionBuilder":
        """Serve through the disaggregated prefill/decode engine:
        ``prefill``/``decode`` size the two worker pools and
        ``block_tokens`` bounds each prefill chunk (default
        :data:`~repro.serving.disagg.DEFAULT_PREFILL_CHUNK_TOKENS`).
        Composes with ``.with_replicas``/``.with_tenants`` — each
        replica is then one disaggregated engine."""
        self._engine_name = "disagg"
        self._engine_kwargs = {"prefill_workers": prefill,
                               "decode_workers": decode}
        if block_tokens is not None:
            self._engine_kwargs["prefill_chunk_tokens"] = block_tokens
        return self

    def sharded(self, tp: int) -> "ServingSessionBuilder":
        """Serve through the multi-node tensor-parallel engine with a
        total TP degree of ``tp`` (sharded across however many nodes of
        the ``.on_node`` shape it takes, with the inter-node allreduce
        surcharge priced per iteration)."""
        self._engine_name = "sharded"
        self._engine_kwargs = {"tp_degree": tp}
        return self

    def with_default_ratio(self, ratio: float) -> "ServingSessionBuilder":
        """Fallback compression ratio for unregistered trace models."""
        self._default_ratio = ratio
        return self

    # ------------------------------------------------------------------ #
    def build(self) -> "ServingSession":
        if self._spec is None:
            raise ValueError(
                "no served model spec: call .serving(spec) or pass "
                "served_spec= to session()")
        system = self._system
        manager = ModelManager(self._spec)
        manager.register_base(system.base_model_id)
        engine_cls = ENGINES[self._engine_name]
        # registered artifacts contribute their measured ratios up front
        for model_id, artifact in sorted(system.artifacts.items()):
            engine_cls.register_variant(manager, model_id,
                                        system.base_model_id,
                                        artifact.compression_ratio(),
                                        config=artifact.config)

        if self._n_replicas == 1 and self._autoscaler is None \
                and self._cluster is None:
            node = self._node or GPUNode(node_from_name("a800", 4))
            engine = self._make_engine(manager, node)
            gateway: Union[ServingGateway, ClusterGateway] = \
                ServingGateway(engine)
        else:
            cluster = self._cluster
            if cluster is None:
                ceiling = self._n_replicas
                if self._autoscaler is not None:
                    ceiling = max(ceiling,
                                  self._autoscaler.config.max_replicas)
                template = self._node or GPUNode(node_from_name("a800", 4))
                cluster = Cluster(template.spec, n_nodes=ceiling)
            # an explicitly-passed cluster that is too small for the replica
            # ceiling is rejected by ClusterGateway itself
            gateway = ClusterGateway(
                engine_factory=lambda node: self._make_engine(manager, node),
                cluster=cluster, n_replicas=self._n_replicas,
                balancer=self._balancer, autoscaler=self._autoscaler)
        return ServingSession(self._wrap_admission(gateway), manager,
                              system.base_model_id, engine_cls,
                              self._default_ratio)

    def _wrap_admission(self, gateway):
        """Layer the admission frontier over the gateway when configured."""
        if self._admission is None and self._admission_kwargs is None \
                and not self._tenants:
            return gateway
        if self._admission is not None:
            # idempotent across repeated build() and tolerant of a
            # controller that already carries some of the tenants
            for tenant in self._tenants:
                if tenant.tenant_id not in self._admission.tenants:
                    self._admission.register(tenant)
            return TenantGateway(gateway, controller=self._admission)
        return TenantGateway(gateway, tenants=tuple(self._tenants),
                             **(self._admission_kwargs or {}))

    def _make_engine(self, manager: ModelManager,
                     node: GPUNode) -> ServingEngine:
        return create_engine(self._engine_name, manager, node,
                             scheduler_config=self._scheduler,
                             engine_config=self._engine_config,
                             **self._engine_kwargs)

    def replay(self, trace: Trace) -> ServingResult:
        """Convenience: ``build()`` then replay the trace."""
        return self.build().replay(trace)


class ServingSession:
    """A live serving deployment: online ``submit`` plus trace ``replay``.

    Backed by a single-replica
    :class:`~repro.serving.gateway.ServingGateway`, a multi-replica
    :class:`~repro.serving.cluster.ClusterGateway`, or either behind a
    :class:`~repro.serving.tenancy.TenantGateway` admission frontier —
    the session surface is identical, so clients are replica-count- and
    tenancy-agnostic.
    """

    def __init__(self, gateway: Union[ServingGateway, ClusterGateway,
                                      TenantGateway],
                 manager: ModelManager, base_model_id: str,
                 engine_cls=None, default_ratio: Optional[float] = None):
        self.gateway = gateway
        self.manager = manager
        self.base_model_id = base_model_id
        self.default_ratio = default_ratio
        inner = self._inner_gateway
        self._engine_cls = engine_cls or (
            type(inner.engine) if isinstance(inner, ServingGateway)
            else None)

    # ------------------------------------------------------------------ #
    @property
    def _inner_gateway(self) -> Union[ServingGateway, ClusterGateway]:
        """The serving gateway under any admission frontier."""
        return self.gateway.inner \
            if isinstance(self.gateway, TenantGateway) else self.gateway

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The admission controller (None without a tenancy layer)."""
        return self.gateway.controller \
            if isinstance(self.gateway, TenantGateway) else None

    @property
    def engine(self) -> Optional[ServingEngine]:
        """The backing engine (single-replica sessions only)."""
        inner = self._inner_gateway
        return inner.engine if isinstance(inner, ServingGateway) else None

    @property
    def replicas(self) -> List[Replica]:
        """The live replica set (empty for single-replica sessions)."""
        inner = self._inner_gateway
        return list(inner.replicas) \
            if isinstance(inner, ClusterGateway) else []

    def submit(self, model_id: str, prompt_len: int, output_len: int,
               arrival_s: Optional[float] = None,
               tenant_id: Optional[str] = None,
               deadline_s: Optional[float] = None):
        """Submit one online request; returns its
        :class:`~repro.serving.handle.RequestHandle`.

        The handle streams this request's tokens (``for t, n in
        handle.tokens``), exposes ``status``/``record()``, supports
        ``cancel(at_s=...)``, and still coerces to the integer request id
        for pre-handle call sites.  ``deadline_s`` (seconds from
        arrival) bounds the request's completion.
        """
        self._ensure_registered(model_id)
        return self.gateway.submit(model_id, prompt_len, output_len,
                                   arrival_s=arrival_s, tenant_id=tenant_id,
                                   deadline_s=deadline_s)

    def cancel(self, request_id, at_s: Optional[float] = None) -> None:
        """Cancel a submitted request (by handle or id) at ``at_s``."""
        self.gateway.cancel(int(request_id), at_s=at_s)

    def handle(self, request_id):
        """The :class:`RequestHandle` for a submitted request id."""
        return self.gateway.handle(int(request_id))

    def step(self) -> bool:
        return self.gateway.step()

    def run_until_drained(self) -> ServingResult:
        return self.gateway.run_until_drained()

    def result(self) -> ServingResult:
        return self.gateway.result()

    def replay(self, trace: Trace, cancels=None) -> ServingResult:
        """Replay an offline trace (bit-identical to legacy simulate).

        ``cancels`` optionally schedules client cancellations as
        ``(request_id, at_s)`` pairs (see
        :func:`~repro.workload.clients.impatient_cancel_schedule`)."""
        for model_id in trace.model_ids:
            self._ensure_registered(model_id)
        return self.gateway.replay(trace, cancels=cancels)

    @property
    def clock(self) -> float:
        return self.gateway.clock

    # ------------------------------------------------------------------ #
    def _ensure_registered(self, model_id: str) -> None:
        if model_id == self.base_model_id or model_id in self.manager:
            return
        if self.default_ratio is not None:
            self._engine_cls.register_variant(
                self.manager, model_id, self.base_model_id,
                self.default_ratio)
            return
        raise KeyError(
            f"trace model {model_id!r} is not registered and no "
            f"default_ratio was given")
