"""Disaggregated prefill/decode serving and multi-node sharded serving.

Modern LLM serving separates the two phases of a request's life onto
different machines (DistServe, Splitwise): *prefill* is compute-bound
and batches well by tokens, *decode* is memory-bound and batches well
by requests, so colocating them forces one pool's batching policy onto
the other.  This module builds that architecture on top of the existing
engine template:

* :class:`DisaggregatedEngine` (registered ``disagg``) owns two
  heterogeneous worker pools acquired from a :class:`~repro.hardware.
  cluster.Cluster` — a prefill pool running chunked prefill to
  completion and a decode pool running continuous batching.  When a
  request's prefill finishes, its KV blocks cross the pool interconnect
  as a typed :class:`~repro.sim.KvTransfer` event priced by
  :func:`~repro.serving.kv_transfer.plan_kv_transfer` (uncached suffix
  only when the prefill side's prefix cache held the shared prefix),
  and the request resumes decoding on the least-loaded decode worker.
* :class:`PoolAutoscaler` makes scaling pool-aware: separate
  watermarks, cooldowns, and spawn/drain per role, so a prefill-heavy
  burst grows the prefill pool without over-provisioning decode.
* :class:`ShardedEngine` (registered ``sharded``) spans one
  tensor-parallel group across several cluster nodes, charging the
  per-layer inter-node ring all-reduce over the same interconnect
  model on top of the intra-node collective already priced by
  :class:`~repro.serving.costs.IterationCostModel`.

Determinism contract: pool workers are full
:class:`~repro.serving.engine.DeltaZipEngine` instances on their own
kernel clocks; the owner steps whichever busy worker is earliest
(ties broken by worker id), decode workers never idle-jump past the
prefill frontier (a handoff can only be scheduled at or after the
prefill worker's clock), and idle jumps are clamped to autoscaler
check boundaries — so run-to-run and idle-skip replays produce
identical records, and every existing engine is bit-identical with
disaggregation off (nothing in this module runs unless constructed).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from ..hardware.cluster import Cluster, GPUNode
from ..sim import Event, KvTransfer, PhaseTransition
from ..workload.spec import TraceRequest
from .base import (Admission, EngineConfig, ServingEngine, register_engine)
from .costs import BatchComposition
from .engine import DeltaZipEngine
from .kv_transfer import InterconnectModel, plan_kv_transfer
from .metrics import EngineStats
from .model_manager import ArtifactKind, ModelManager
from .models import FP16
from .prefix_cache import PrefixCache
from .request import RequestState, ServingRequest
from .scheduler import SchedulerConfig

__all__ = [
    "DEFAULT_PREFILL_CHUNK_TOKENS", "PoolScalingPolicy", "PoolSample",
    "PoolAutoscaler", "DisaggregatedEngine", "ShardedEngine",
]

#: token budget of one chunked-prefill slab on a prefill worker
DEFAULT_PREFILL_CHUNK_TOKENS = 512


# --------------------------------------------------------------------- #
# pool workers
# --------------------------------------------------------------------- #
class _PoolWorker(DeltaZipEngine):
    """One pool member: a DeltaZip engine on its own timeline.

    Workers forward tokens, finishes, and events to the owning
    :class:`DisaggregatedEngine`, which maintains the canonical
    (client-visible) request objects.  ``draining`` workers accept no
    new routes but run their queue dry before their node is released.
    """

    def __init__(self, owner: "DisaggregatedEngine", role: str,
                 worker_id: int, manager: ModelManager, node: GPUNode,
                 scheduler_config: SchedulerConfig,
                 engine_config: EngineConfig):
        self.owner = owner
        self.role = role
        self.worker_id = worker_id
        self.draining = False
        self.name = f"disagg.{role}{worker_id}"
        super().__init__(manager, node, scheduler_config, engine_config)
        self.on_token = self._token_to_owner
        self.on_finish = self._finish_to_owner

    # forwarded hooks (permanent: owner state is read at call time) ----- #
    def _token_to_owner(self, req: ServingRequest, clock_s: float) -> None:
        self.owner._on_worker_token(self, req, clock_s)

    def _finish_to_owner(self, req: ServingRequest, clock_s: float) -> None:
        self.owner._on_worker_finish(self, req, clock_s)

    def _event_to_owner(self, event: Event) -> None:
        self.owner._on_worker_event(self, event)

    def flush_residency(self) -> None:
        """Cold-start state drop for a worker revived onto a fresh node:
        resident deltas, prefetch futures, and the prefix pool are gone
        (the new node's memory starts empty); swap-ins repay naturally."""
        self._resident.clear()
        self._resident_bytes = 0
        self._cpu_ready_s.clear()
        if self._prefix_cache is not None:
            self._prefix_cache = PrefixCache(self.config.prefix_block_tokens)
        self._prefix_refs.clear()

    def _next_wake(self) -> Optional[float]:
        """Clamp idle jumps to the owner's next autoscaler check so the
        controller observes the pools at its scheduled boundaries in both
        idle-skip modes (a jump may not overshoot a check)."""
        wake = super()._next_wake()
        bound = self.owner._scaler_bound()
        if wake is not None and bound is not None and \
                self.clock < bound < wake:
            return bound
        return wake


class _PrefillWorker(_PoolWorker):
    """Prefill pool member: chunked prefill, requests retire after one
    token (their surrogate trace asks for exactly one output token)."""

    def iteration_cost(self,
                       admitted: List[ServingRequest]) -> Optional[float]:
        batch = self._compose(self.running, admitted)
        if batch.empty:
            return None
        self._last_batch = batch
        chunk = self.owner.prefill_chunk_tokens
        if batch.decode_per_delta or batch.prefill_tokens <= chunk:
            return self.cost.iteration_time(batch, self.config.variant_kind)
        # chunked prefill: slab the token budget across deltas in id
        # order; later slabs attend over earlier ones (context grows)
        total = 0.0
        processed = 0
        remaining = dict(sorted(batch.prefill_tokens_per_delta.items()))
        while remaining:
            slab: Dict[str, int] = {}
            space = chunk
            for delta_id in sorted(remaining):
                if space <= 0:
                    break
                take = min(remaining[delta_id], space)
                slab[delta_id] = take
                space -= take
            for delta_id, take in slab.items():
                left = remaining[delta_id] - take
                if left:
                    remaining[delta_id] = left
                else:
                    del remaining[delta_id]
            total += self.cost.iteration_time(
                BatchComposition(decode_per_delta={},
                                 prefill_tokens_per_delta=slab,
                                 context_tokens=batch.context_tokens
                                 + processed),
                self.config.variant_kind)
            processed += sum(slab.values())
        return total


class _DecodeWorker(_PoolWorker):
    """Decode pool member: continuous batching over handed-off requests.

    Arrivals are *resumes*, not fresh prefills: the owner seeds each
    handed-off request as already prefilled (KV arrived over the wire),
    so the engine's swap-resume path admits it straight into decode.
    """

    def _reset_engine(self) -> None:
        super()._reset_engine()
        # prefix reuse is priced once, on the prefill side; the decode
        # pool sees only post-transfer KV state
        self._prefix_cache = None
        self._seeded: Dict[int, int] = {}

    def seed(self, request_id: int, cached_prefix_tokens: int) -> None:
        self._seeded[request_id] = cached_prefix_tokens

    def on_arrival(self, request: ServingRequest) -> None:
        cached = self._seeded.pop(request.request_id, None)
        if cached is not None:
            request.generated_tokens = 1      # the prefill pool's token
            request.prefilled = True
            request.cached_prefix_tokens = cached
            self.owner._note_arrived(request.request_id)
        super().on_arrival(request)

    def _bounded_jump(self, target: float) -> float:
        # never idle-jump past the prefill frontier: a busy prefill
        # worker at clock T can still hand off a request arriving >= T,
        # so the decode clock must not pass T before that submit lands.
        bound = self.owner._prefill_frontier()
        if bound is not None and target > bound:
            target = max(self.clock, bound)
        return super()._bounded_jump(target)


# --------------------------------------------------------------------- #
# pool-aware autoscaling
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PoolScalingPolicy:
    """Per-role watermarks for the pool autoscaler."""

    min_workers: int = 1
    max_workers: int = 4
    high_backlog_per_worker: float = 8.0
    low_backlog_per_worker: float = 1.0
    scale_up_cooldown_s: float = 5.0
    scale_down_cooldown_s: float = 30.0


@dataclass(frozen=True)
class PoolSample:
    """One autoscaler action on one pool (observability record)."""

    clock_s: float
    role: str
    action: str            # "scale-up" | "scale-down"
    n_workers: int         # active (non-draining) workers after the action
    backlog_per_worker: float


class PoolAutoscaler:
    """Separate spawn/drain control loops for the prefill and decode
    pools.  Checks run at fixed simulated intervals; each role compares
    its backlog per active worker against its own watermarks, so a
    prefill-heavy burst grows only the prefill pool.  Spawns prefer
    reviving a draining/parked worker (warm pool) before acquiring a
    fresh cluster node.  One autoscaler drives one engine."""

    def __init__(self, prefill: PoolScalingPolicy = PoolScalingPolicy(),
                 decode: PoolScalingPolicy = PoolScalingPolicy(),
                 check_interval_s: float = 2.0):
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        self.prefill = prefill
        self.decode = decode
        self.check_interval_s = check_interval_s
        self.history: List[PoolSample] = []
        self._cooldown_until: Dict[str, float] = {}
        self.reset()

    def reset(self) -> None:
        self.history = []
        self._cooldown_until = {"prefill": 0.0, "decode": 0.0}

    def policy(self, role: str) -> PoolScalingPolicy:
        return self.prefill if role == "prefill" else self.decode

    def control(self, engine: "DisaggregatedEngine", at_s: float) -> None:
        """One observation of both pools at simulated time ``at_s``."""
        for role in ("prefill", "decode"):
            policy = self.policy(role)
            active = engine.active_workers(role)
            backlog = engine.pool_backlog(role)
            per = backlog / max(1, len(active))
            if at_s < self._cooldown_until[role]:
                continue
            action = ""
            if per > policy.high_backlog_per_worker and \
                    len(active) < policy.max_workers:
                if engine._grow_pool(role, at_s):
                    action = "scale-up"
                    self._cooldown_until[role] = \
                        at_s + policy.scale_up_cooldown_s
            elif per < policy.low_backlog_per_worker and \
                    len(active) > policy.min_workers:
                if engine._shrink_pool(role):
                    action = "scale-down"
                    self._cooldown_until[role] = \
                        at_s + policy.scale_down_cooldown_s
            if action:
                self.history.append(PoolSample(
                    clock_s=at_s, role=role, action=action,
                    n_workers=len(engine.active_workers(role)),
                    backlog_per_worker=per))


# --------------------------------------------------------------------- #
# the disaggregated engine
# --------------------------------------------------------------------- #
@register_engine
class DisaggregatedEngine(ServingEngine):
    """Prefill/decode disaggregation over heterogeneous worker pools.

    The engine satisfies the full :class:`~repro.serving.base.
    ServingEngine` protocol (submit/step/abort/lookup/backlog/
    build_result) by *delegation*: every request is routed to a prefill
    worker at submit time (conversation affinity when the prefix cache
    is on, least-outstanding otherwise), runs prefill to completion
    there, pays the priced KV transfer, and finishes decoding on a
    decode worker.  The owner keeps the canonical request object whose
    record is what clients, gateways, and metrics observe — worker-side
    surrogate requests are an implementation detail.
    """

    name = "disagg"
    variant_artifact = ArtifactKind.DELTA
    include_stats = True

    def __init__(self, manager: ModelManager, node: GPUNode,
                 scheduler_config: SchedulerConfig,
                 engine_config: EngineConfig = EngineConfig(),
                 prefill_workers: int = 1, decode_workers: int = 1,
                 prefill_chunk_tokens: int = DEFAULT_PREFILL_CHUNK_TOKENS,
                 cluster: Optional[Cluster] = None,
                 link: Optional[InterconnectModel] = None,
                 pool_autoscaler: Optional[PoolAutoscaler] = None):
        if prefill_workers < 1 or decode_workers < 1:
            raise ValueError("each pool needs at least one worker")
        if prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1")
        self.scheduler_config = scheduler_config
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self._n_prefill = prefill_workers
        self._n_decode = decode_workers
        self._link = link if link is not None else InterconnectModel()
        self._scaler = pool_autoscaler
        ceiling = prefill_workers + decode_workers
        if pool_autoscaler is not None:
            ceiling = max(prefill_workers,
                          pool_autoscaler.prefill.max_workers) + \
                max(decode_workers, pool_autoscaler.decode.max_workers)
        self._cluster = cluster if cluster is not None \
            else Cluster(node.spec, n_nodes=ceiling)
        super().__init__(manager, node, engine_config)

    @classmethod
    def build(cls, manager: ModelManager, node: GPUNode,
              scheduler_config: Optional[SchedulerConfig] = None,
              engine_config: Optional[EngineConfig] = None,
              **kwargs: Any) -> "ServingEngine":
        return cls(manager, node, scheduler_config or SchedulerConfig(),
                   engine_config or EngineConfig(), **kwargs)

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def _reset_engine(self) -> None:
        for worker in list(getattr(self, "_prefill_pool", [])) + \
                list(getattr(self, "_decode_pool", [])):
            self._cluster.release(worker.node)
        self._next_worker_id = 0
        self._prefill_pool: List[_PoolWorker] = []
        self._decode_pool: List[_PoolWorker] = []
        self._parked: List[_PoolWorker] = []   # drained, node released
        self._owner_of: Dict[int, _PoolWorker] = {}
        self._cancel_log: Dict[int, List[Tuple[float, str]]] = {}
        self._conv_home: Dict[str, _PoolWorker] = {}
        self._in_transfer: Set[int] = set()
        self._kv_transfers = 0
        self._kv_transfer_bytes = 0
        self._kv_transfer_s = 0.0
        self._max_prefill_seen = self._n_prefill
        self._max_decode_seen = self._n_decode
        self._next_check_s: Optional[float] = None
        if self._scaler is not None:
            self._scaler.reset()
            self._next_check_s = self._scaler.check_interval_s
        for _ in range(self._n_prefill):
            self._spawn_worker("prefill", 0.0)
        for _ in range(self._n_decode):
            self._spawn_worker("decode", 0.0)

    def _spawn_worker(self, role: str, at_s: float) -> _PoolWorker:
        node = self._cluster.acquire()
        worker_cls = _PrefillWorker if role == "prefill" else _DecodeWorker
        worker = worker_cls(self, role, self._next_worker_id,
                            self.manager, node, self.scheduler_config,
                            self.config)
        self._next_worker_id += 1
        worker.clock = at_s
        self._pool(role).append(worker)
        return worker

    def _pool(self, role: str) -> List[_PoolWorker]:
        return self._prefill_pool if role == "prefill" \
            else self._decode_pool

    def _all_workers(self) -> List[_PoolWorker]:
        return self._prefill_pool + self._decode_pool

    def active_workers(self, role: str) -> List[_PoolWorker]:
        """Non-draining members of one pool (the routable set)."""
        return [w for w in self._pool(role) if not w.draining]

    def pool_backlog(self, role: str) -> int:
        """Arrived-but-unfinished work attributable to one pool; KV
        moves in flight count against decode (that is where they land).
        """
        backlog = sum(w.backlog for w in self._pool(role))
        if role == "decode":
            backlog += len(self._in_transfer)
        return backlog

    # aggregated stats: the owner's counters are derived, so the base
    # class's ``self.stats = EngineStats()`` in reset() is a no-op here
    @property
    def stats(self) -> EngineStats:
        agg = EngineStats()
        workers = list(getattr(self, "_prefill_pool", [])) + \
            list(getattr(self, "_decode_pool", [])) + \
            list(getattr(self, "_parked", []))
        for worker in workers:
            ws = worker.stats
            for f in dataclass_fields(EngineStats):
                setattr(agg, f.name,
                        getattr(agg, f.name) + getattr(ws, f.name))
        agg.kv_transfers += getattr(self, "_kv_transfers", 0)
        agg.kv_transfer_bytes += getattr(self, "_kv_transfer_bytes", 0)
        agg.kv_transfer_s += getattr(self, "_kv_transfer_s", 0.0)
        return agg

    @stats.setter
    def stats(self, value: EngineStats) -> None:
        pass  # derived from the pools; base reset's assignment is moot

    # ------------------------------------------------------------------ #
    # clock: the cluster frontier sees the earliest busy worker
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> float:
        workers = list(getattr(self, "_prefill_pool", [])) + \
            list(getattr(self, "_decode_pool", []))
        if not workers:
            return 0.0
        # workers with arrived work advance on event-exact boundaries;
        # a worker whose only work is a *pending* future arrival (a KV
        # handoff in flight) reports that arrival time instead of its
        # raw clock, which under dense-quantum stepping creeps through
        # intermediate positions skip-mode never visits — outer layers
        # (the tenancy frontier) must see the same "now" in both modes
        active = [w.clock for w in workers
                  if w.running or w.backlog > 0]
        if active:
            return min(active)
        waiting = []
        for w in workers:
            if w.unfinished > 0:
                nxt = w._pending.peek_time()
                waiting.append(w.clock if nxt is None
                               else max(w.clock, nxt))
        if waiting:
            return min(waiting)
        return max(w.clock for w in workers)

    @clock.setter
    def clock(self, value: float) -> None:
        # outer layers re-seat idle engines (replica spawn, floor bumps):
        # lift every worker that lags, never rewind one that leads
        for worker in self._all_workers():
            if value > worker.clock:
                worker.clock = value

    # ------------------------------------------------------------------ #
    # submission and routing
    # ------------------------------------------------------------------ #
    def submit(self, request: TraceRequest) -> ServingRequest:
        req = ServingRequest(trace=request)
        self._live[request.request_id] = req
        self._n_submitted += 1
        worker = self._route_prefill(request)
        self._owner_of[request.request_id] = worker
        # the prefill surrogate asks for exactly one token: prefill plus
        # the first decode step, after which the worker retires it and
        # the owner hands the KV state to the decode pool
        worker.submit(replace(request, output_tokens=1)
                      if request.output_tokens > 1 else request)
        return req

    def _route_prefill(self, request: TraceRequest) -> _PoolWorker:
        pool = self.active_workers("prefill") or self._prefill_pool
        conv = request.conversation_id
        if self.config.prefix_cache and conv is not None:
            home = self._conv_home.get(conv)
            if home is not None and not home.draining and \
                    home in self._prefill_pool:
                return home
            chosen = min(pool, key=lambda w: (w.unfinished, w.worker_id))
            self._conv_home[conv] = chosen
            return chosen
        return min(pool, key=lambda w: (w.unfinished, w.worker_id))

    def _route_decode(self) -> _PoolWorker:
        pool = self.active_workers("decode") or self._decode_pool
        return min(pool, key=lambda w: (w.unfinished, w.worker_id))

    def schedule_cancel(self, request_id: int, at_s: float,
                        reason: str = "cancel") -> None:
        worker = self._owner_of.get(request_id)
        if worker is None:
            canonical = self._live.get(request_id)
            if canonical is not None and canonical.terminal:
                return           # stale: already terminal, nothing to do
            raise KeyError(f"unknown request {request_id}")
        # remembered so a handoff after this call re-arms the cancel on
        # the decode worker (deadlines re-arm themselves via the trace)
        self._cancel_log.setdefault(request_id, []).append(
            (float(at_s), reason))
        worker.schedule_cancel(request_id, at_s, reason)

    def _apply_cancel(self, request_id: int,
                      reason: str) -> Optional[ServingRequest]:
        canonical = self._live.get(request_id)
        worker = self._owner_of.get(request_id)
        if canonical is None or canonical.terminal or worker is None:
            return None
        if worker._apply_cancel(request_id, reason) is None:
            return None
        return canonical          # finalized via the worker finish hook

    # ------------------------------------------------------------------ #
    # stepping
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        self._sync_hooks()
        limit = self.config.max_sim_seconds
        candidates = [w for w in self._all_workers()
                      if w.unfinished > 0 and w.clock < limit]
        candidates.sort(key=lambda w: (w.clock, w.worker_id))
        progress = False
        for worker in candidates:
            before = (worker.clock, worker.unfinished)
            if not worker.step():
                continue
            if (worker.clock, worker.unfinished) != before:
                progress = True
                break
            # a clamped idle jump moved nothing: let an earlier-frontier
            # worker (already stepped) or the next candidate make time
        self._run_autoscaler()
        return progress

    def _sync_hooks(self) -> None:
        has_sink = self.on_event is not None
        phases = self.emit_phases and has_sink
        for worker in self._all_workers():
            worker.emit_phases = phases
            worker.on_event = worker._event_to_owner if has_sink else None

    def _prefill_frontier(self) -> Optional[float]:
        times = [w.clock for w in self._prefill_pool if w.unfinished > 0]
        return min(times) if times else None

    def _scaler_bound(self) -> Optional[float]:
        return self._next_check_s

    def _event_frontier(self) -> float:
        """The earliest point any worker can still act: raw clocks for
        workers with arrived work, next-arrival times for pending-only
        ones.  Unlike the tenancy-facing ``clock`` (which prefers busy
        workers), this never ignores a worker that will wake soon, so it
        crosses an autoscaler check boundary at the same position in
        event order under both idle-skip and dense-quantum stepping —
        how far an idle worker's clock happened to creep cannot change
        when a scale action lands relative to the surrounding handoffs.
        """
        vals = []
        for w in self._all_workers():
            if w.running or w.backlog > 0:
                vals.append(w.clock)
            elif w.unfinished > 0:
                nxt = w._pending.peek_time()
                vals.append(w.clock if nxt is None else max(w.clock, nxt))
        return min(vals) if vals else self.clock

    def _run_autoscaler(self) -> None:
        scaler = self._scaler
        if scaler is None or self._next_check_s is None:
            return
        if self.unfinished == 0:
            return                # a drained system never rescales
        now = self._event_frontier()
        while self._next_check_s is not None and now >= self._next_check_s:
            at_s = self._next_check_s
            scaler.control(self, at_s)
            self._next_check_s = at_s + scaler.check_interval_s
        self._reap_drained()

    def _grow_pool(self, role: str, at_s: float) -> bool:
        """Add one worker to a pool: un-drain the youngest draining
        member, revive a parked one onto a fresh node, or acquire a new
        node.  Returns False when the cluster is exhausted."""
        pool = self._pool(role)
        draining = [w for w in pool if w.draining]
        if draining:
            revived = max(draining, key=lambda w: w.worker_id)
            revived.draining = False
            self._note_pool_peak(role)
            return True
        parked = [w for w in self._parked if w.role == role]
        if parked and self._cluster.n_free > 0:
            worker = max(parked, key=lambda w: w.worker_id)
            self._parked.remove(worker)
            worker.node = self._cluster.acquire()
            worker.flush_residency()
            worker.draining = False
            worker.clock = at_s
            pool.append(worker)
            pool.sort(key=lambda w: w.worker_id)
            self._note_pool_peak(role)
            return True
        if self._cluster.n_free > 0:
            self._spawn_worker(role, at_s)
            self._note_pool_peak(role)
            return True
        return False

    def _shrink_pool(self, role: str) -> bool:
        """Mark the least-loaded (youngest on ties) worker draining; it
        keeps serving its queue and is reaped once idle."""
        active = self.active_workers(role)
        if len(active) <= 1:
            return False
        worker = min(active, key=lambda w: (w.unfinished, -w.worker_id))
        worker.draining = True
        return True

    def _reap_drained(self) -> None:
        for pool in (self._prefill_pool, self._decode_pool):
            drained = [w for w in pool if w.draining and w.unfinished == 0]
            for worker in drained:
                pool.remove(worker)
                self._cluster.release(worker.node)
                self._parked.append(worker)
                stale = [conv for conv, home in self._conv_home.items()
                         if home is worker]
                for conv in stale:
                    del self._conv_home[conv]

    def _note_pool_peak(self, role: str) -> None:
        n = len(self.active_workers(role))
        if role == "prefill":
            self._max_prefill_seen = max(self._max_prefill_seen, n)
        else:
            self._max_decode_seen = max(self._max_decode_seen, n)

    # ------------------------------------------------------------------ #
    # worker callbacks: canonical request maintenance + KV handoff
    # ------------------------------------------------------------------ #
    def _on_worker_token(self, worker: _PoolWorker, req: ServingRequest,
                         clock_s: float) -> None:
        canonical = self._live.get(req.request_id)
        if canonical is None:
            return
        if canonical.first_token_s is None:
            canonical.first_token_s = clock_s
            canonical.state = RequestState.RUNNING
        if req.generated_tokens > canonical.generated_tokens:
            canonical.generated_tokens = req.generated_tokens
        if self.on_token is not None:
            self.on_token(canonical, clock_s)

    def _on_worker_finish(self, worker: _PoolWorker, req: ServingRequest,
                          clock_s: float) -> None:
        canonical = self._live.get(req.request_id)
        if canonical is None:
            return
        self._fold_timing(canonical, req)
        if worker.role == "decode" \
                or req.state is not RequestState.FINISHED \
                or canonical.trace.output_tokens <= 1:
            self._finalize(canonical, req, clock_s)
            return
        self._handoff(worker, canonical, req)

    @staticmethod
    def _fold_timing(canonical: ServingRequest,
                     req: ServingRequest) -> None:
        canonical.queue_wait_s += req.queue_wait_s
        canonical.loading_s += req.loading_s
        canonical.inference_s += req.inference_s
        canonical.preemptions += req.preemptions
        canonical.skipped_line = canonical.skipped_line or req.skipped_line
        if req.cached_prefix_tokens:
            canonical.cached_prefix_tokens = req.cached_prefix_tokens
        if canonical.first_scheduled_s is None:
            canonical.first_scheduled_s = req.first_scheduled_s

    def _handoff(self, src: _PoolWorker, canonical: ServingRequest,
                 req: ServingRequest) -> None:
        rid = canonical.request_id
        assert req.finish_s is not None
        start_s = req.finish_s
        plan = plan_kv_transfer(self.manager.spec, self._link,
                                context_tokens=req.context_length,
                                cached_prefix_tokens=req.cached_prefix_tokens)
        canonical.transfer_s = plan.transfer_s
        self._kv_transfers += 1
        self._kv_transfer_bytes += plan.nbytes
        self._kv_transfer_s += plan.transfer_s
        dst = self._route_decode()
        emit = self.on_event
        if emit is not None:
            emit(KvTransfer(
                time=start_s, request_id=rid, model_id=canonical.model_id,
                nbytes=plan.nbytes, transfer_s=plan.transfer_s,
                tokens=plan.tokens, cached_tokens=plan.cached_tokens,
                src=src.name, dst=dst.name))
            if self.emit_phases:
                emit(PhaseTransition(
                    time=start_s, request_id=rid, phase="transfer",
                    model_id=canonical.model_id,
                    tenant_id=canonical.tenant_id, source=self.name))
        self._owner_of[rid] = dst
        self._in_transfer.add(rid)
        dst.seed(rid, req.cached_prefix_tokens)
        dst.submit(replace(canonical.trace,
                           arrival_s=start_s + plan.transfer_s))
        for at_s, reason in self._cancel_log.get(rid, ()):
            dst.schedule_cancel(rid, at_s, reason)

    def _note_arrived(self, request_id: int) -> None:
        self._in_transfer.discard(request_id)

    def _finalize(self, canonical: ServingRequest, req: ServingRequest,
                  clock_s: float) -> None:
        rid = canonical.request_id
        if req.generated_tokens > canonical.generated_tokens:
            canonical.generated_tokens = req.generated_tokens
        canonical.state = req.state
        canonical.finish_s = req.finish_s
        if canonical.first_token_s is None:
            canonical.first_token_s = req.first_token_s
        self._cancel_log.pop(rid, None)
        self._in_transfer.discard(rid)
        self._owner_of.pop(rid, None)
        self._retire_terminal(canonical)
        if self.on_finish is not None:
            self.on_finish(canonical, clock_s)

    # phase translation: worker-local lifecycles map onto the canonical
    # queue → prefill → transfer → decode → retire span; the owner's own
    # _retire_terminal emits retire, _handoff emits transfer
    _PREFILL_PHASE_MAP = {"queue": "queue", "prefill": "prefill"}
    _DECODE_PHASE_MAP = {"prefill": "decode"}

    def _on_worker_event(self, worker: _PoolWorker, event: Event) -> None:
        emit = self.on_event
        if emit is None:
            return
        if isinstance(event, PhaseTransition):
            mapping = self._PREFILL_PHASE_MAP if worker.role == "prefill" \
                else self._DECODE_PHASE_MAP
            phase = mapping.get(event.phase)
            if phase is None:
                return
            if phase != event.phase:
                event = replace(event, phase=phase, source=self.name)
            emit(event)
            return
        emit(event)

    # ------------------------------------------------------------------ #
    # protocol surface the pools satisfy jointly
    # ------------------------------------------------------------------ #
    @property
    def backlog(self) -> int:
        return sum(w.backlog for w in self._all_workers()) + \
            len(self._in_transfer)

    def has_queued(self) -> bool:
        return any(w.has_queued() for w in self._all_workers())

    def on_arrival(self, request: ServingRequest) -> None:
        raise AssertionError("disagg routes at submit; no owner queue")

    def admit(self) -> Admission:
        raise AssertionError("disagg steps its pools; no owner admission")

    def iteration_cost(self,
                       admitted: List[ServingRequest]) -> Optional[float]:
        raise AssertionError("disagg steps its pools; no owner iterations")

    def utilization(self) -> Dict[str, float]:
        workers = self._all_workers()
        if not workers:
            return {"batch_occupancy": 0.0, "kv_occupancy": 0.0}
        batch = 0.0
        kv = 0.0
        for worker in workers:
            util = worker.utilization()
            batch += util["batch_occupancy"]
            kv += util["kv_occupancy"]
        return {"batch_occupancy": batch / len(workers),
                "kv_occupancy": kv / len(workers)}

    def pool_gauges(self) -> Dict[str, float]:
        """Per-pool occupancy/backlog for the telemetry gauge board."""
        def occupancy(pool: List[_PoolWorker]) -> float:
            if not pool:
                return 0.0
            return sum(w.utilization()["batch_occupancy"]
                       for w in pool) / len(pool)
        return {
            "prefill_workers": float(len(self.active_workers("prefill"))),
            "decode_workers": float(len(self.active_workers("decode"))),
            "prefill_occupancy": occupancy(self._prefill_pool),
            "decode_occupancy": occupancy(self._decode_pool),
            "prefill_backlog": float(self.pool_backlog("prefill")),
            "decode_backlog": float(self.pool_backlog("decode")),
        }

    def result_config(self) -> Dict[str, object]:
        cfg: Dict[str, object] = {
            "tp_degree": self.config.tp_degree,
            "variant_kind": self.config.variant_kind,
            "max_batch_requests": self.scheduler_config.max_batch_requests,
            "max_concurrent_deltas":
                self.scheduler_config.max_concurrent_deltas,
            "prefill_workers": self._n_prefill,
            "decode_workers": self._n_decode,
            "prefill_chunk_tokens": self.prefill_chunk_tokens,
            "kv_link_gbps": self._link.gbps,
        }
        if self._scaler is not None:
            cfg["max_prefill_workers_seen"] = self._max_prefill_seen
            cfg["max_decode_workers_seen"] = self._max_decode_seen
        if self.config.prefix_cache:
            cfg["prefix_cache"] = True
            cfg["prefix_block_tokens"] = self.config.prefix_block_tokens
        return cfg


# --------------------------------------------------------------------- #
# sharded multi-node tensor parallelism
# --------------------------------------------------------------------- #
@register_engine
class ShardedEngine(DeltaZipEngine):
    """One tensor-parallel group spanning several cluster nodes.

    The intra-node collective stage is already priced by
    :class:`~repro.serving.costs.IterationCostModel` (NVLink/PCIe ring
    inside the node); this engine adds the hierarchical *inter-node*
    stage: per layer, two ring all-reduces of the activation block
    across ``n_nodes`` participants over the RDMA interconnect.  Node
    membership is validated against :meth:`GPUNode.tp_group` on every
    node acquired from the cluster.
    """

    name = "sharded"
    variant_artifact = ArtifactKind.DELTA
    include_stats = True

    def __init__(self, manager: ModelManager, node: GPUNode,
                 scheduler_config: SchedulerConfig,
                 engine_config: EngineConfig = EngineConfig(),
                 tp_degree: Optional[int] = None,
                 n_nodes: Optional[int] = None,
                 cluster: Optional[Cluster] = None,
                 link: Optional[InterconnectModel] = None):
        tp = tp_degree if tp_degree is not None else engine_config.tp_degree
        per_node_gpus = node.spec.n_gpus
        if n_nodes is None:
            n_nodes = max(1, -(-tp // per_node_gpus))
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if tp % n_nodes:
            raise ValueError(
                f"tp degree {tp} does not shard evenly over "
                f"{n_nodes} nodes")
        self._n_nodes = n_nodes
        self._per_node_tp = tp // n_nodes
        self._link = link if link is not None else InterconnectModel()
        self._shard_nodes: List[GPUNode] = [node]
        if n_nodes > 1:
            src = cluster if cluster is not None \
                else Cluster(node.spec, n_nodes=n_nodes - 1)
            for _ in range(n_nodes - 1):
                self._shard_nodes.append(src.acquire())
        for member in self._shard_nodes:
            member.tp_group(self._per_node_tp)  # validates the degree
        super().__init__(manager, node, scheduler_config,
                         replace(engine_config, tp_degree=tp))

    def iteration_cost(self,
                       admitted: List[ServingRequest]) -> Optional[float]:
        cost = super().iteration_cost(admitted)
        if cost is None or self._n_nodes <= 1:
            return cost
        batch = self._last_batch
        assert batch is not None
        rows = batch.decode_requests + batch.prefill_tokens
        if rows <= 0:
            return cost
        spec = self.manager.spec
        per_layer = self._link.allreduce_time(rows * spec.dim * FP16,
                                              self._n_nodes)
        return cost + 2 * spec.n_layers * per_layer

    def result_config(self) -> Dict[str, object]:
        cfg = super().result_config()
        cfg["n_nodes"] = self._n_nodes
        cfg["per_node_tp"] = self._per_node_tp
        cfg["interconnect_gbps"] = self._link.gbps
        return cfg
