"""Baseline engines (§6.1): vLLM-SCB and per-variant dedicated serving.

``VLLMSCBEngine`` is the paper's constructed baseline: vLLM extended with
**S**\\ wapping of whole FP16 models, **C**\\ ontinuous batching (looping over
the models resident in GPU memory — no cross-model batching), and
**B**\\ atching of same-model requests.  It treats every fine-tuned variant
as an independent full model, so GPU memory fits only a couple of variants
and a queue-head miss forces a multi-second full-model swap on the critical
path — the two pathologies Fig 16 visualizes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..hardware.cluster import GPUNode
from ..hardware.memory import Tier
from ..workload.spec import Trace
from .costs import IterationCostModel
from .engine import (EngineConfig, TimelineEvent, _FULL_MODEL_LOADER_FACTOR,
                     _WORKSPACE_FRACTION)
from .metrics import ServingResult
from .model_manager import ModelManager
from .request import RequestState, ServingRequest

__all__ = ["VLLMSCBEngine", "DedicatedEngine"]

_KV_RESERVE_FRACTION = 0.3  # SCB reserves a fixed KV share like vLLM


class VLLMSCBEngine:
    """Swap + continuous batching + same-model batching over full models."""

    name = "vllm-scb"

    def __init__(self, manager: ModelManager, node: GPUNode,
                 engine_config: EngineConfig = EngineConfig(),
                 max_batch_requests: int = 32,
                 loader_factor: float = _FULL_MODEL_LOADER_FACTOR,
                 preload: bool = False):
        self.manager = manager
        self.node = node
        self.config = engine_config
        self.max_batch_requests = max_batch_requests
        self.loader_factor = loader_factor
        self.preload = preload  # dedicated deployments start warm
        self.cost = IterationCostModel(
            spec=manager.spec, gpu=node.gpu_spec,
            tp_degree=engine_config.tp_degree)

    # ------------------------------------------------------------------ #
    def run(self, trace: Trace, collect_timeline: bool = False) -> ServingResult:
        cfg = self.config
        spec = self.manager.spec
        group_capacity = self.node.gpu_spec.memory_bytes * cfg.tp_degree
        usable = group_capacity * (1.0 - _WORKSPACE_FRACTION)
        weight_budget = usable * (1.0 - _KV_RESERVE_FRACTION)
        kv_budget_tokens = int(usable * _KV_RESERVE_FRACTION
                               // spec.kv_bytes_per_token())
        model_bytes = spec.fp16_nbytes
        max_resident = max(1, int(weight_budget // model_bytes))

        requests = [ServingRequest(trace=t) for t in trace]
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        queue: List[ServingRequest] = []
        running: List[ServingRequest] = []
        finished: List[ServingRequest] = []
        timeline: List[TimelineEvent] = []
        resident: "OrderedDict[str, bool]" = OrderedDict()
        in_cpu: Set[str] = set()
        if self.preload:
            # warm start: pre-stage the first models the trace will ask for
            for req in pending:
                if len(resident) >= max_resident:
                    break
                if req.model_id not in resident:
                    resident[req.model_id] = True
                    in_cpu.add(req.model_id)

        clock = 0.0
        next_arrival = 0
        n_total = len(requests)

        while len(finished) < n_total and clock < cfg.max_sim_seconds:
            while next_arrival < n_total and \
                    pending[next_arrival].arrival_s <= clock:
                queue.append(pending[next_arrival])
                next_arrival += 1
            if not running and not queue:
                if next_arrival >= n_total:
                    break
                clock = max(clock, pending[next_arrival].arrival_s)
                continue

            # swap for the queue head if its model is missing (weights are
            # read-only: eviction just frees the slot, the load pays the
            # standard checkpoint-loader cost)
            load_time = 0.0
            if queue:
                head_model = queue[0].model_id
                if head_model not in resident:
                    active = {r.model_id for r in running}
                    while len(resident) >= max_resident:
                        if self._evict_lru(resident, active) is None:
                            break
                    if len(resident) < max_resident:
                        src = Tier.CPU if head_model in in_cpu else Tier.DISK
                        load_time += self.loader_factor * self.node.load_time(
                            model_bytes, src, Tier.GPU)
                        resident[head_model] = True
                        in_cpu.add(head_model)

            # admit queued requests whose model is resident (FCFS), within
            # the KV reserve
            capacity = self.max_batch_requests - len(running)
            kv_in_use = sum(r.context_length for r in running)
            admitted: List[ServingRequest] = []
            still: List[ServingRequest] = []
            for req in queue:
                need = req.trace.prompt_tokens + 1
                if capacity > 0 and req.model_id in resident \
                        and kv_in_use + need <= kv_budget_tokens:
                    admitted.append(req)
                    capacity -= 1
                    kv_in_use += need
                else:
                    still.append(req)
            queue = still
            for model_id in {r.model_id for r in running + admitted}:
                if model_id in resident:
                    resident.move_to_end(model_id)

            admitted_ids = {r.request_id for r in admitted}
            for req in admitted:
                req.state = RequestState.RUNNING
                if req.first_scheduled_s is None:
                    req.first_scheduled_s = clock
                    req.queue_wait_s = clock - req.arrival_s
                req.loading_s += load_time

            rows: Dict[str, int] = {}
            prefill: Dict[str, int] = {}
            context = 0
            for req in running:
                rows[req.model_id] = rows.get(req.model_id, 0) + 1
                context += req.context_length
            for req in admitted:
                prefill[req.model_id] = prefill.get(req.model_id, 0) \
                    + req.trace.prompt_tokens
            iter_time = self.cost.fullmodel_iteration_time(
                rows, context, prefill)
            if iter_time == 0.0 and load_time == 0.0:
                # nothing runnable: fast-forward to the next arrival
                if next_arrival < n_total:
                    clock = max(clock, pending[next_arrival].arrival_s)
                    continue
                break
            clock += iter_time + load_time

            for req in admitted:
                req.prefilled = True
                req.generated_tokens += 1
                req.first_token_s = clock
                req.inference_s += iter_time
                running.append(req)
            for req in running:
                if req.request_id in admitted_ids:
                    continue
                req.generated_tokens += 1
                req.inference_s += iter_time

            newly_done = [r for r in running if r.done]
            for req in newly_done:
                req.state = RequestState.FINISHED
                req.finish_s = clock
                finished.append(req)
                if collect_timeline:
                    timeline.append(TimelineEvent(
                        request_id=req.request_id, model_id=req.model_id,
                        arrival_s=req.arrival_s,
                        queue_until_s=req.first_scheduled_s,
                        loading_until_s=req.first_scheduled_s + req.loading_s,
                        finish_s=req.finish_s))
            running = [r for r in running if not r.done]

        records = [r.record() for r in finished]
        makespan = max((r.finish_s for r in records), default=clock) - \
            min((r.arrival_s for r in records), default=0.0)
        result = ServingResult(
            engine=self.name, records=records, makespan_s=max(makespan, 1e-9),
            config={"tp_degree": cfg.tp_degree,
                    "max_resident_models": max_resident,
                    "max_batch_requests": self.max_batch_requests})
        if collect_timeline:
            result.config["timeline"] = timeline
        return result

    @staticmethod
    def _evict_lru(resident: "OrderedDict[str, bool]",
                   active: Set[str]) -> Optional[str]:
        for model_id in resident:
            if model_id not in active:
                resident.pop(model_id)
                return model_id
        return None


class DedicatedEngine:
    """Upper-bound reference: every variant owns its own TP group.

    No swapping, no cross-variant queueing — just per-variant continuous
    batching.  Used to contextualize cost/latency trade-offs (§8 notes
    DeltaZip targets the regime where dedicating GPUs is too expensive).
    """

    name = "dedicated"

    def __init__(self, manager: ModelManager, node: GPUNode,
                 engine_config: EngineConfig = EngineConfig(),
                 max_batch_requests: int = 32):
        self.manager = manager
        self.node = node
        self.config = engine_config
        self.max_batch_requests = max_batch_requests
        self.cost = IterationCostModel(
            spec=manager.spec, gpu=node.gpu_spec,
            tp_degree=engine_config.tp_degree)

    def run(self, trace: Trace, collect_timeline: bool = False) -> ServingResult:
        all_records = []
        last_finish = 0.0
        first_arrival = min((r.arrival_s for r in trace), default=0.0)
        for model_id in trace.model_ids:
            sub_requests = [r for r in trace if r.model_id == model_id]
            if not sub_requests:
                continue
            sub = Trace(requests=list(sub_requests), model_ids=[model_id],
                        duration_s=trace.duration_s)
            result = self._run_single(sub)
            all_records.extend(result.records)
            if result.records:
                last_finish = max(last_finish,
                                  max(r.finish_s for r in result.records))
        makespan = max(last_finish - first_arrival, 1e-9)
        return ServingResult(engine=self.name, records=all_records,
                             makespan_s=makespan,
                             config={"tp_degree": self.config.tp_degree})

    def _run_single(self, trace: Trace) -> ServingResult:
        engine = VLLMSCBEngine(self.manager, self.node, self.config,
                               self.max_batch_requests, preload=False)
        # dedicated groups keep their one model resident from the start
        engine.preload = True
        return engine.run(trace)
