"""Baseline engines (§6.1): vLLM-SCB and per-variant dedicated serving.

``VLLMSCBEngine`` is the paper's constructed baseline: vLLM extended with
**S**\\ wapping of whole FP16 models, **C**\\ ontinuous batching (looping over
the models resident in GPU memory — no cross-model batching), and
**B**\\ atching of same-model requests.  It treats every fine-tuned variant
as an independent full model, so GPU memory fits only a couple of variants
and a queue-head miss forces a multi-second full-model swap on the critical
path — the two pathologies Fig 16 visualizes.

Both baselines ride on the shared :class:`~repro.serving.base.ServingEngine`
iteration loop; only admission/swap policy and batch pricing differ.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

from ..hardware.cluster import GPUNode
from ..hardware.memory import Tier
from .base import (FULL_MODEL_LOADER_FACTOR, KV_RESERVE_FRACTION,
                   WORKSPACE_FRACTION, Admission, EngineConfig,
                   ServingEngine, register_engine)
from .costs import IterationCostModel
from .metrics import ServingResult
from .model_manager import ArtifactKind, ModelManager
from .request import ServingRequest
from .scheduler import SchedulerConfig

__all__ = ["VLLMSCBEngine", "DedicatedEngine"]


@register_engine
class VLLMSCBEngine(ServingEngine):
    """Swap + continuous batching + same-model batching over full models."""

    name = "vllm-scb"
    variant_artifact = ArtifactKind.FULL

    def __init__(self, manager: ModelManager, node: GPUNode,
                 engine_config: EngineConfig = EngineConfig(),
                 max_batch_requests: int = 32,
                 loader_factor: float = FULL_MODEL_LOADER_FACTOR,
                 preload: bool = False):
        self.max_batch_requests = max_batch_requests
        self.loader_factor = loader_factor
        self.preload = preload  # dedicated deployments start warm
        self.cost = IterationCostModel(
            spec=manager.spec, gpu=node.gpu_spec,
            tp_degree=engine_config.tp_degree)
        super().__init__(manager, node, engine_config)

    @classmethod
    def build(cls, manager, node, scheduler_config=None, engine_config=None,
              **kwargs):
        if scheduler_config is not None:
            kwargs.setdefault("max_batch_requests",
                              scheduler_config.max_batch_requests)
        return cls(manager, node, engine_config or EngineConfig(), **kwargs)

    # ------------------------------------------------------------------ #
    # template hooks
    # ------------------------------------------------------------------ #
    def _reset_engine(self) -> None:
        spec = self.manager.spec
        group_capacity = self.node.gpu_spec.memory_bytes * \
            self.config.tp_degree
        usable = group_capacity * (1.0 - WORKSPACE_FRACTION)
        weight_budget = usable * (1.0 - KV_RESERVE_FRACTION)
        self._kv_budget_tokens = int(usable * KV_RESERVE_FRACTION
                                     // spec.kv_bytes_per_token())
        self._model_bytes = spec.fp16_nbytes
        self._max_resident = max(1, int(weight_budget // self._model_bytes))
        self._queue: List[ServingRequest] = []
        self._resident: "OrderedDict[str, bool]" = OrderedDict()
        self._in_cpu: Set[str] = set()
        self._warmed = False

    def _before_step(self) -> None:
        if self.preload and not self._warmed:
            # warm start: pre-stage the first models the workload will ask
            # for (in arrival order over everything submitted so far)
            for event in self._pending.in_order():
                if len(self._resident) >= self._max_resident:
                    break
                model_id = event.request.model_id
                if model_id not in self._resident:
                    self._resident[model_id] = True
                    self._in_cpu.add(model_id)
        self._warmed = True

    def on_arrival(self, request: ServingRequest) -> None:
        self._queue.append(request)

    def has_queued(self) -> bool:
        return bool(self._queue)

    def remove_queued(self, request_id):
        for i, req in enumerate(self._queue):
            if req.request_id == request_id:
                return self._queue.pop(i)
        return None

    def admit(self) -> Admission:
        # swap for the queue head if its model is missing (weights are
        # read-only: eviction just frees the slot, the load pays the
        # standard checkpoint-loader cost)
        load_time = 0.0
        if self._queue:
            head_model = self._queue[0].model_id
            if head_model not in self._resident:
                active = {r.model_id for r in self.running}
                while len(self._resident) >= self._max_resident:
                    if self._evict_lru(self._resident, active) is None:
                        break
                if len(self._resident) < self._max_resident:
                    src = Tier.CPU if head_model in self._in_cpu else Tier.DISK
                    load_time += self.loader_factor * self.node.load_time(
                        self._model_bytes, src, Tier.GPU)
                    self._resident[head_model] = True
                    self._in_cpu.add(head_model)

        # admit queued requests whose model is resident (FCFS), within
        # the KV reserve
        capacity = self.max_batch_requests - len(self.running)
        kv_in_use = sum(r.context_length for r in self.running)
        admitted: List[ServingRequest] = []
        still: List[ServingRequest] = []
        for req in self._queue:
            need = req.trace.prompt_tokens + 1
            if capacity > 0 and req.model_id in self._resident \
                    and kv_in_use + need <= self._kv_budget_tokens:
                admitted.append(req)
                capacity -= 1
                kv_in_use += need
            else:
                still.append(req)
        self._queue = still
        for model_id in {r.model_id for r in self.running + admitted}:
            if model_id in self._resident:
                self._resident.move_to_end(model_id)
        return Admission(admitted=admitted, load_time_s=load_time)

    def iteration_cost(self, admitted: List[ServingRequest]) -> Optional[float]:
        rows: Dict[str, int] = {}
        prefill: Dict[str, int] = {}
        context = 0
        for req in self.running:
            rows[req.model_id] = rows.get(req.model_id, 0) + 1
            context += req.context_length
        for req in admitted:
            prefill[req.model_id] = prefill.get(req.model_id, 0) \
                + req.trace.prompt_tokens
        iter_time = self.cost.fullmodel_iteration_time(rows, context, prefill)
        return None if iter_time == 0.0 else iter_time

    def result_config(self) -> Dict[str, object]:
        return {"tp_degree": self.config.tp_degree,
                "max_resident_models": self._max_resident,
                "max_batch_requests": self.max_batch_requests}

    @staticmethod
    def _evict_lru(resident: "OrderedDict[str, bool]",
                   active: Set[str]) -> Optional[str]:
        for model_id in resident:
            if model_id not in active:
                resident.pop(model_id)
                return model_id
        return None


@register_engine
class DedicatedEngine(ServingEngine):
    """Upper-bound reference: every variant owns its own TP group.

    No swapping, no cross-variant queueing — just per-variant continuous
    batching.  Used to contextualize cost/latency trade-offs (§8 notes
    DeltaZip targets the regime where dedicating GPUs is too expensive).

    Implemented as a fan-out over per-variant :class:`VLLMSCBEngine`
    groups (each preloaded with its one model); ``submit``/``step``
    delegate, so the engine still speaks the online protocol.
    """

    name = "dedicated"
    variant_artifact = ArtifactKind.FULL

    def __init__(self, manager: ModelManager, node: GPUNode,
                 engine_config: EngineConfig = EngineConfig(),
                 max_batch_requests: int = 32):
        self.max_batch_requests = max_batch_requests
        super().__init__(manager, node, engine_config)

    @classmethod
    def build(cls, manager, node, scheduler_config=None, engine_config=None,
              **kwargs):
        if scheduler_config is not None:
            kwargs.setdefault("max_batch_requests",
                              scheduler_config.max_batch_requests)
        return cls(manager, node, engine_config or EngineConfig(), **kwargs)

    # ------------------------------------------------------------------ #
    # protocol overrides (delegation instead of the template loop)
    # ------------------------------------------------------------------ #
    def _reset_engine(self) -> None:
        self._groups: Dict[str, VLLMSCBEngine] = {}
        self._request_group: Dict[int, VLLMSCBEngine] = {}

    def _group_for(self, model_id: str) -> VLLMSCBEngine:
        group = self._groups.get(model_id)
        if group is None:
            group = VLLMSCBEngine(self.manager, self.node, self.config,
                                  self.max_batch_requests, preload=True)
            self._groups[model_id] = group
        self._sync_hooks()
        return group

    def _sync_hooks(self) -> None:
        # groups must see callback (re)assignments made after creation —
        # e.g. a gateway token listener registered mid-session.  Under a
        # releasing record policy the finish path also drops the
        # request→group routing entry, keeping this map O(active).
        finish = self.on_finish if self._keep_requests \
            else self._fanout_finish
        for group in self._groups.values():
            group.on_token = self.on_token
            group.on_finish = finish
            group.on_event = self.on_event

    def _fanout_finish(self, req: ServingRequest, clock_s: float) -> None:
        self._request_group.pop(req.request_id, None)
        cb = self.on_finish
        if cb is not None:
            cb(req, clock_s)

    def submit(self, request) -> ServingRequest:
        self._n_submitted += 1
        group = self._group_for(request.model_id)
        self._request_group[request.request_id] = group
        return group.submit(request)

    def lookup(self, request_id):
        group = self._request_group.get(request_id)
        return group.lookup(request_id) if group is not None else None

    def schedule_cancel(self, request_id, at_s, reason="cancel"):
        group = self._request_group.get(request_id)
        if group is None:
            raise KeyError(f"unknown request {request_id}")
        group.schedule_cancel(request_id, at_s, reason=reason)

    def abort(self, request_id, reason="cancel"):
        group = self._request_group.get(request_id)
        return group.abort(request_id, reason=reason) \
            if group is not None else None

    @property
    def unfinished(self) -> int:
        return sum(g.unfinished for g in self._groups.values())

    @property
    def clock(self) -> float:
        return max((g.clock for g in self._groups.values()), default=0.0)

    @clock.setter
    def clock(self, value: float) -> None:
        # per-group clocks are authoritative; only a fresh zero (a reset
        # or a spawn onto an idle timeline) is meaningful here
        if value != 0.0:
            raise AttributeError("DedicatedEngine clock is derived from "
                                 "its per-variant groups")

    def step(self) -> bool:
        self._sync_hooks()
        progressed = False
        for model_id in sorted(self._groups):
            group = self._groups[model_id]
            if group.unfinished > 0 and \
                    group.clock < group.config.max_sim_seconds:
                progressed = group.step() or progressed
        return progressed

    def run_until_drained(self) -> None:
        # groups are independent GPU sets: drain each on its own timeline
        self._sync_hooks()
        for model_id in sorted(self._groups):
            self._groups[model_id].run_until_drained()

    def build_result(self) -> ServingResult:
        subs = [self._groups[m].build_result()
                for m in sorted(self._groups)]
        return ServingResult.merge(
            subs, engine=self.name,
            config={"tp_degree": self.config.tp_degree})
