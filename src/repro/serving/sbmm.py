"""Functional SBMM: Selective Batched Matrix Multiplication (§5.2).

The numpy realization of the kernel's *semantics*: given per-request inputs
``x_i`` and a delta index per request, compute ``y_i = x_i @ Δ_{idx_i}^T``.
The serving engine prices this with :func:`repro.hardware.kernels.sbmm_time`;
this module computes real outputs so correctness (request reordering,
grouping, output scatter) is testable, and provides the request-grouping
pass the job scheduler applies before launch.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["group_requests_by_delta", "sbmm_forward", "sbmm_reference"]


def group_requests_by_delta(indices: Sequence[int]) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
    """Reorder request positions so same-delta requests are contiguous.

    Returns ``(order, groups)`` where ``order`` is a permutation of request
    positions (stable within a delta, deltas in first-appearance order) and
    ``groups`` maps delta index -> positions (in original numbering).
    This is the scheduler-side reordering of §5.2 that removes random
    memory access.
    """
    idx = np.asarray(indices, dtype=np.int64)
    groups: Dict[int, List[int]] = {}
    for pos, delta in enumerate(idx):
        groups.setdefault(int(delta), []).append(pos)
    order = np.concatenate([np.asarray(v, dtype=np.int64)
                            for v in groups.values()]) if groups.values() else \
        np.zeros(0, dtype=np.int64)
    return order, {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}


def sbmm_forward(x: np.ndarray, deltas: Sequence[np.ndarray],
                 indices: Sequence[int]) -> np.ndarray:
    """Grouped multi-delta matmul: ``y[i] = x[i] @ deltas[indices[i]].T``.

    ``x`` is (B, k); each delta is (n, k) (Linear layout).  Requests are
    grouped per delta so each distinct delta is multiplied once against a
    contiguous sub-batch — the kernel's execution strategy.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"x must be (batch, k), got {x.shape}")
    idx = np.asarray(indices, dtype=np.int64)
    if idx.shape[0] != x.shape[0]:
        raise ValueError("one delta index per request required")
    if idx.size and (idx.min() < 0 or idx.max() >= len(deltas)):
        raise IndexError("delta index out of range")
    n_out = deltas[0].shape[0] if deltas else 0
    y = np.zeros((x.shape[0], n_out), dtype=np.float32)
    _, groups = group_requests_by_delta(idx)
    for delta_idx, positions in groups.items():
        w = deltas[delta_idx]
        if w.shape[0] != n_out:
            raise ValueError("all deltas must share the output dimension")
        y[positions] = x[positions] @ w.T
    return y


def sbmm_reference(x: np.ndarray, deltas: Sequence[np.ndarray],
                   indices: Sequence[int]) -> np.ndarray:
    """Per-request loop oracle for testing the grouped implementation."""
    x = np.asarray(x)
    idx = np.asarray(indices, dtype=np.int64)
    outs = [x[i:i + 1] @ deltas[int(idx[i])].T for i in range(x.shape[0])]
    return np.concatenate(outs, axis=0).astype(np.float32) if outs else \
        np.zeros((0, 0), dtype=np.float32)
