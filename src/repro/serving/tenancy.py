"""Multi-tenant admission control at the cluster frontier.

The paper's multi-variant serving story assumes many tenants sharing one
deployment; this module adds the control layer that makes sharing safe:

* :class:`Tenant` — one tenant's contract: fair-share ``weight``, SLO
  class (or an explicit TTFT SLO), a token-bucket rate limit
  (``rate_tokens_per_s`` / ``burst_tokens``), and an outstanding-request
  quota (``max_outstanding``);
* :class:`TokenBucket` — the classic leaky/token bucket on the simulated
  clock, with borrow-ahead semantics so deferred requests serialize on a
  per-tenant virtual timeline;
* :class:`AdmissionController` — decides, per offered request:
  **reject** (quota or rate bound exceeded), **shed** (predicted TTFT
  under the current backlog breaches the tenant's SLO), **defer**
  (queue until the bucket refills), or **admit**; admitted work queues at
  the frontier in either FCFS arrival order or VTC fair order
  (per-tenant virtual token counters with counter-lift, after Sheng et
  al.'s Virtual Token Counter and the FairServe family);
* :class:`TenantGateway` — wraps a
  :class:`~repro.serving.gateway.ServingGateway` or
  :class:`~repro.serving.cluster.ClusterGateway` behind the same
  ``submit`` / ``step`` / ``run_until_drained`` / ``replay`` surface,
  holding requests at the frontier and releasing them through
  ``inner.ingest`` in admission order while keeping the engine-side queue
  shallow enough (``engine_queue_depth``) for the fair order to survive
  the engines' internal FCFS scheduling.

With the default tenant, FCFS order, and no limits the layer is a pure
pass-through: replaying an untenanted trace produces records identical to
``gateway.replay(trace)`` without admission control.

Cancellation is first-class: ``submit`` returns a
:class:`~repro.serving.handle.RequestHandle`, and a request withdrawn
(or deadline-expired) at any point gets its un-served token-bucket
charge refunded, its quota slot released, its VTC counter lifted back
down by the un-served weighted work, and a ``cancelled``/``expired``
count in its tenant's :class:`TenantAdmissionStats` — abandoning work
never costs a tenant future admission capacity or scheduling priority.

Time comes from the :mod:`repro.sim` kernel: the admission clock is
*derived* from the wrapped gateway's frontier (``inner.frontier`` — the
single clock authority, owned by the cluster kernel or the engine's
:class:`~repro.sim.SimClock`) rather than maintained here; offered
requests queue as :class:`~repro.sim.Arrival` events, and the controller
publishes a :class:`~repro.sim.BucketRefill` event whenever a token
bucket defers a request (journal/subscriber instrumentation — the
authoritative wake-up time remains
:meth:`AdmissionController.next_eligible_s`, which the frontier polls).
The tenancy layer also feeds :attr:`AdmissionController.total_queued`
back into the cluster autoscaler
(:meth:`~repro.serving.cluster.ClusterGateway.set_admission_probe`), so
frontier-held requests count as offered load and the cluster scales
before shedding starts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..sim import (Arrival, BucketRefill, Cancel, EventQueue, KeyedHeap,
                   SimKernel)
from ..sim import events as sim_events
from ..sim import sanitizer as _sanitizer
from ..workload.spec import Trace, TraceRequest
from .cluster import ClusterGateway
from .gateway import CancelSchedule, ServingGateway, TokenCallback
from .handle import HandleStatus, RequestHandle
from .metrics import ServingResult, summarize
from .request import (DEFAULT_TENANT, RequestRecord,
                      synthesized_abort_record)
from .streaming_metrics import RecordPolicy

__all__ = [
    "DEFAULT_TENANT", "SLO_CLASSES", "Tenant", "TokenBucket",
    "AdmissionDecision", "TenantAdmissionStats", "AdmissionController",
    "TenantGateway",
]

#: SLO classes and their default TTFT targets (seconds)
SLO_CLASSES: Dict[str, float] = {
    "interactive": 10.0,
    "standard": 30.0,
    "batch": 120.0,
}

#: completions needed before the shed predictor trusts its rate estimate
_MIN_COMPLETIONS_FOR_PREDICTION = 8

#: fallback frontier-queue depth (per replica) when VTC is on, no depth was
#: given, and the engine's batch size cannot be inferred
_DEFAULT_VTC_DEPTH = 4


@dataclass(frozen=True)
class Tenant:
    """One tenant's serving contract.

    ``weight`` scales the tenant's fair share under VTC scheduling.
    ``slo_class`` picks a default TTFT SLO from :data:`SLO_CLASSES`;
    ``ttft_slo_s`` overrides it.  ``rate_tokens_per_s`` meters admission
    in model tokens (prompt + output) through a token bucket of capacity
    ``burst_tokens`` (default: four seconds of rate); ``max_outstanding``
    caps the tenant's in-system requests (queued at the frontier plus
    dispatched-but-unfinished).  A tenant with neither a rate nor a quota
    is unthrottled.

    ``patience_s`` models the tenant's *clients*: how long they actually
    wait for a first token before abandoning.  When set, the shed policy
    trips at ``min(slo_s, patience_s)`` — work predicted to outlast the
    clients' patience is shed preemptively even when it would technically
    meet the SLO, because its tokens would be wasted on an abandoned
    request anyway.  ``None`` (default) keeps the SLO-only behavior.
    """

    tenant_id: str
    weight: float = 1.0
    slo_class: str = "standard"
    ttft_slo_s: Optional[float] = None
    rate_tokens_per_s: Optional[float] = None
    burst_tokens: Optional[float] = None
    max_outstanding: Optional[int] = None
    patience_s: Optional[float] = None

    def __post_init__(self):
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(f"unknown slo_class {self.slo_class!r}; "
                             f"known: {sorted(SLO_CLASSES)}")
        if self.rate_tokens_per_s is not None and self.rate_tokens_per_s <= 0:
            raise ValueError("rate_tokens_per_s must be > 0 when set")
        if self.burst_tokens is not None:
            if self.rate_tokens_per_s is None:
                raise ValueError("burst_tokens needs rate_tokens_per_s")
            if self.burst_tokens <= 0:
                raise ValueError("burst_tokens must be > 0")
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1 when set")
        if self.patience_s is not None and self.patience_s <= 0:
            raise ValueError("patience_s must be > 0 when set")

    @property
    def slo_s(self) -> float:
        """The TTFT SLO the shed policy enforces for this tenant."""
        if self.ttft_slo_s is not None:
            return self.ttft_slo_s
        return SLO_CLASSES[self.slo_class]

    @property
    def shed_threshold_s(self) -> float:
        """The predicted-TTFT level the shed policy trips at: the SLO,
        tightened to the clients' abandonment patience when that is the
        binding constraint."""
        if self.patience_s is not None:
            return min(self.slo_s, self.patience_s)
        return self.slo_s

    @property
    def unthrottled(self) -> bool:
        return self.rate_tokens_per_s is None and self.max_outstanding is None

    def resolved_burst(self) -> Optional[float]:
        if self.rate_tokens_per_s is None:
            return None
        return self.burst_tokens if self.burst_tokens is not None \
            else 4.0 * self.rate_tokens_per_s

    def renamed(self, tenant_id: str) -> "Tenant":
        """This contract applied to a different tenant id (the template
        mechanism behind auto-registered tenants)."""
        return Tenant(tenant_id=tenant_id, weight=self.weight,
                      slo_class=self.slo_class, ttft_slo_s=self.ttft_slo_s,
                      rate_tokens_per_s=self.rate_tokens_per_s,
                      burst_tokens=self.burst_tokens,
                      max_outstanding=self.max_outstanding,
                      patience_s=self.patience_s)


class TokenBucket:
    """Token bucket on the simulated clock, with borrow-ahead.

    ``charge`` always succeeds and returns the time the charged request
    becomes eligible; when the bucket lacks tokens the balance goes
    negative, so successive deferred requests serialize at ``1/rate``
    spacing on the tenant's virtual timeline (a virtual-finish-time rate
    limiter, not a drop-tail one).

    The bucket holds no clock of its own: ``_refilled_s`` is merely the
    kernel time of its last refill (state, like the token balance), and
    every ``now`` it sees comes from the caller's timeline — ultimately
    :attr:`TenantGateway._frontier`, i.e. the one :mod:`repro.sim`
    clock.  When a charge defers, the controller publishes the wake-up
    as a :class:`~repro.sim.BucketRefill` event for the journal and any
    subscribers; the frontier's actual idle-skip target comes from
    :meth:`AdmissionController.next_eligible_s`.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst <= 0:
            raise ValueError("burst must be > 0")
        self.rate = rate
        self.burst = burst
        self.reset()

    def reset(self) -> None:
        self._tokens = self.burst
        self._refilled_s = 0.0        # kernel time of the last refill
        # conservation meters for the runtime sanitizer (cancel-refund
        # symmetry is checked against these when REPRO_SIM_SANITIZE=1)
        self._charged_total = 0.0
        self._refunded_total = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def _advance(self, now: float) -> None:
        now = max(now, self._refilled_s)   # simulated time never rewinds
        self._tokens = min(self.burst,
                           self._tokens + (now - self._refilled_s) * self.rate)
        self._refilled_s = now

    def eligible_at(self, cost: float, now: float) -> float:
        """When a charge of ``cost`` would become eligible (no mutation)."""
        now = max(now, self._refilled_s)
        tokens = min(self.burst,
                     self._tokens + (now - self._refilled_s) * self.rate)
        if tokens >= cost:
            return now
        return now + (cost - tokens) / self.rate

    def charge(self, cost: float, now: float) -> float:
        """Consume ``cost`` tokens at ``now``; returns the eligible time."""
        self._advance(now)
        if self._tokens >= cost:
            eligible = self._refilled_s
        else:
            eligible = self._refilled_s + (cost - self._tokens) / self.rate
        self._tokens -= cost
        self._charged_total += cost
        if _sanitizer.enabled():
            _sanitizer.check_bucket_charge(cost, now, eligible)
        return eligible

    def refund(self, cost: float) -> None:
        """Return tokens from a charge that was ultimately not admitted."""
        before = self._tokens
        self._tokens = min(self.burst, self._tokens + cost)
        # symmetry is metered on tokens actually restored: the burst cap
        # may absorb part of a refund by contract (see the unit tests)
        self._refunded_total += self._tokens - before
        if _sanitizer.enabled():
            _sanitizer.check_bucket_refund(cost, self._tokens, self.burst,
                                           self._charged_total,
                                           self._refunded_total)


class AdmissionDecision(str, Enum):
    ADMITTED = "admitted"    # eligible immediately
    DEFERRED = "deferred"    # queued until its token bucket refills
    SHED = "shed"            # dropped: predicted TTFT breaches the SLO
    REJECTED = "rejected"    # dropped: quota or deferral bound exceeded


@dataclass
class TenantAdmissionStats:
    """Per-tenant admission counters (the denominator SLO math needs).

    ``cancelled`` / ``expired`` count requests the tenant's clients
    withdrew (or whose deadlines passed) after acceptance — at the
    frontier or mid-batch; their un-served token charge is refunded, so
    ``tokens_charged`` meters only work actually performed.
    """

    tenant_id: str
    offered: int = 0
    admitted: int = 0
    deferred: int = 0
    shed: int = 0
    rejected: int = 0
    cancelled: int = 0
    expired: int = 0
    tokens_charged: float = 0.0

    @property
    def accepted(self) -> int:
        """Requests that entered the system (admitted or deferred)."""
        return self.admitted + self.deferred

    @property
    def dropped(self) -> int:
        return self.shed + self.rejected

    @property
    def withdrawn(self) -> int:
        """Accepted requests that did not run to completion."""
        return self.cancelled + self.expired


class AdmissionController:
    """Decides and orders what crosses the cluster frontier.

    ``policy`` picks the frontier-queue order: ``"fcfs"`` (arrival order,
    the legacy behavior) or ``"vtc"`` (per-tenant virtual token counters:
    the queued tenant with the smallest counter goes next, counters are
    charged ``(prefill_weight·prompt + decode_weight·output) / weight``
    per dispatched request, and an idle tenant's counter is lifted to the
    smallest known counter on re-arrival so sleeping never banks
    unbounded credit).  ``shed=True`` drops a request at offer time when
    the predicted TTFT under the current backlog exceeds its tenant's
    SLO.  Unknown tenant ids auto-register from ``default_tenant`` (an
    unthrottled best-effort contract unless one is given).
    """

    def __init__(self, tenants: Sequence[Tenant] = (),
                 policy: str = "fcfs", shed: bool = False,
                 engine_queue_depth: Optional[int] = None,
                 default_tenant: Optional[Tenant] = None,
                 prefill_weight: float = 1.0, decode_weight: float = 1.0,
                 counter_lift: bool = True,
                 max_defer_s: Optional[float] = None):
        if policy not in ("fcfs", "vtc"):
            raise ValueError(f"unknown admission policy {policy!r}")
        if engine_queue_depth is not None and engine_queue_depth < 1:
            raise ValueError("engine_queue_depth must be >= 1 when set")
        self.policy = policy
        self.shed = shed
        self.engine_queue_depth = engine_queue_depth
        self.prefill_weight = prefill_weight
        self.decode_weight = decode_weight
        self.counter_lift = counter_lift
        self.max_defer_s = max_defer_s
        self._kernel: Optional[SimKernel] = None
        self._template = default_tenant or Tenant(DEFAULT_TENANT)
        self.tenants: Dict[str, Tenant] = {}
        for tenant in tenants:
            self.register(tenant)
        self.reset()

    def bind(self, kernel: SimKernel) -> None:
        """Attach the timeline this controller emits events into.

        :class:`TenantGateway` binds its kernel here so bucket
        deferrals surface as :class:`~repro.sim.BucketRefill` events
        (journaled and subscribable) instead of staying private bucket
        state.  The events are observability, not control flow: release
        timing is still computed by :meth:`next_eligible_s`.
        """
        self._kernel = kernel

    # ------------------------------------------------------------------ #
    # tenant registry
    # ------------------------------------------------------------------ #
    def register(self, tenant: Tenant) -> Tenant:
        if tenant.tenant_id in self.tenants:
            raise ValueError(f"duplicate tenant {tenant.tenant_id!r}")
        self.tenants[tenant.tenant_id] = tenant
        return tenant

    def tenant(self, tenant_id: Optional[str]) -> Tenant:
        """The (auto-registering) contract for a request's tenant id."""
        tid = tenant_id or DEFAULT_TENANT
        existing = self.tenants.get(tid)
        if existing is not None:
            return existing
        return self.register(self._template.renamed(tid))

    @property
    def passthrough(self) -> bool:
        """True when admission cannot change any outcome: FCFS order, no
        shedding, unbounded dispatch, and every contract unthrottled —
        the configuration under which replay stays bit-identical to the
        wrapped gateway."""
        return (self.policy == "fcfs" and not self.shed
                and self.engine_queue_depth is None
                and self._template.unthrottled
                and all(t.unthrottled for t in self.tenants.values()))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        # FCFS admission order: a deterministic keyed heap on
        # (eligible_s, arrival_s, request_id) — the sim kernel's heap
        # primitive, so no layer-private heapq survives here (SIM005)
        self._fcfs: KeyedHeap[TraceRequest] = KeyedHeap()
        self._vtc: Dict[str, Deque[Tuple[float, TraceRequest]]] = {}
        self._counters: Dict[str, float] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._queued: Dict[str, int] = {}
        self._inflight: Dict[str, int] = {}
        self.stats: Dict[str, TenantAdmissionStats] = {}
        self.decisions: Dict[int, AdmissionDecision] = {}
        for tid, tenant in self.tenants.items():
            self._init_tenant_state(tid, tenant)

    def _init_tenant_state(self, tid: str, tenant: Tenant) -> None:
        self._counters.setdefault(tid, 0.0)
        self._queued.setdefault(tid, 0)
        self._inflight.setdefault(tid, 0)
        self._vtc.setdefault(tid, deque())
        self.stats.setdefault(tid, TenantAdmissionStats(tid))
        if tenant.rate_tokens_per_s is not None and tid not in self._buckets:
            self._buckets[tid] = TokenBucket(tenant.rate_tokens_per_s,
                                             tenant.resolved_burst())

    # ------------------------------------------------------------------ #
    # queue state
    # ------------------------------------------------------------------ #
    @property
    def total_queued(self) -> int:
        return sum(self._queued.values())

    def queued_for(self, tenant_id: Optional[str]) -> int:
        return self._queued.get(tenant_id or DEFAULT_TENANT, 0)

    def inflight_for(self, tenant_id: Optional[str]) -> int:
        return self._inflight.get(tenant_id or DEFAULT_TENANT, 0)

    def load_of(self, tenant_id: Optional[str]) -> int:
        """Queued-at-frontier plus dispatched-but-unfinished."""
        tid = tenant_id or DEFAULT_TENANT
        return self._queued.get(tid, 0) + self._inflight.get(tid, 0)

    def active_tenants(self) -> List[str]:
        """Tenants with work in the system right now."""
        return [tid for tid in self._counters if self.load_of(tid) > 0]

    # ------------------------------------------------------------------ #
    # the decision point
    # ------------------------------------------------------------------ #
    def offer(self, request: TraceRequest,
              predicted_ttft_s: Optional[float] = None) -> AdmissionDecision:
        """Decide one request's fate as it reaches the frontier.

        Decisions are made *at the request's arrival time*: the token
        bucket refills to ``request.arrival_s`` before being charged.
        Accepted requests queue inside the controller until
        :meth:`pop` releases them.
        """
        tenant = self.tenant(request.tenant_id)
        tid = tenant.tenant_id
        self._init_tenant_state(tid, tenant)
        stats = self.stats[tid]
        stats.offered += 1

        if tenant.max_outstanding is not None and \
                self.load_of(tid) >= tenant.max_outstanding:
            stats.rejected += 1
            self.decisions[request.request_id] = AdmissionDecision.REJECTED
            self._emit_decision(request, tid, AdmissionDecision.REJECTED)
            return AdmissionDecision.REJECTED

        if self.shed and predicted_ttft_s is not None and \
                predicted_ttft_s > tenant.shed_threshold_s:
            stats.shed += 1
            self.decisions[request.request_id] = AdmissionDecision.SHED
            self._emit_decision(request, tid, AdmissionDecision.SHED)
            return AdmissionDecision.SHED

        arrival = request.arrival_s
        eligible = arrival
        cost = float(request.prompt_tokens + request.output_tokens)
        bucket = self._buckets.get(tid)
        if bucket is not None:
            eligible = bucket.charge(cost, arrival)
            if self.max_defer_s is not None and \
                    eligible - arrival > self.max_defer_s:
                bucket.refund(cost)
                stats.rejected += 1
                self.decisions[request.request_id] = \
                    AdmissionDecision.REJECTED
                self._emit_decision(request, tid, AdmissionDecision.REJECTED)
                return AdmissionDecision.REJECTED
        # the billing meter: every accepted request's tokens are charged
        # to its tenant (metered or not) — serving.economics prices them
        stats.tokens_charged += cost
        if eligible > arrival and self._kernel is not None:
            self._kernel.emit(BucketRefill(time=eligible, tenant_id=tid,
                                           request_id=request.request_id))

        if self.policy == "vtc" and self.counter_lift and \
                self.load_of(tid) == 0:
            # counter-lift: a returning tenant re-enters at the floor of
            # the *active* tenants' counters — at parity, not with the
            # absolute priority its banked idle credit would buy (the
            # tenant itself has no work yet, so it is never in `active`)
            active = [self._counters[t] for t in self._counters
                      if self.load_of(t) > 0]
            if active:
                self._counters[tid] = max(self._counters[tid], min(active))

        if self.policy == "vtc":
            self._vtc[tid].append((eligible, request))
        else:
            self._fcfs.push((eligible, arrival, request.request_id), request)
        self._queued[tid] = self._queued.get(tid, 0) + 1

        decision = AdmissionDecision.ADMITTED if eligible <= arrival \
            else AdmissionDecision.DEFERRED
        if decision is AdmissionDecision.ADMITTED:
            stats.admitted += 1
        else:
            stats.deferred += 1
        self.decisions[request.request_id] = decision
        self._emit_decision(request, tid, decision)
        return decision

    def _emit_decision(self, request: TraceRequest, tid: str,
                       decision: AdmissionDecision) -> None:
        """Publish the verdict as a typed sim event (telemetry/journal).

        Gated on :meth:`SimKernel.wants` so the no-listeners path
        constructs nothing — admission stays allocation-free when
        neither a journal nor a telemetry layer is attached.
        """
        kernel = self._kernel
        if kernel is not None and \
                kernel.wants(sim_events.AdmissionDecision):
            kernel.emit(sim_events.AdmissionDecision(
                time=request.arrival_s, request_id=request.request_id,
                tenant_id=tid, decision=decision.value,
                model_id=request.model_id))

    # ------------------------------------------------------------------ #
    # the release point
    # ------------------------------------------------------------------ #
    def has_eligible(self, now: float) -> bool:
        if self.policy == "vtc":
            return any(q and q[0][0] <= now for q in self._vtc.values())
        return bool(self._fcfs) and self._fcfs.peek_key()[0] <= now

    def next_eligible_s(self) -> Optional[float]:
        """Earliest time any queued request becomes releasable."""
        if self.policy == "vtc":
            heads = [q[0][0] for q in self._vtc.values() if q]
            return min(heads) if heads else None
        return self._fcfs.peek_key()[0] if self._fcfs else None

    def pop(self, now: float) -> Optional[TraceRequest]:
        """Release the next request in admission order (or None).

        FCFS releases by (eligibility, arrival); VTC releases the
        eligible tenant with the smallest virtual token counter and
        charges the counter for the released request's work.
        """
        if self.policy == "fcfs":
            if not self._fcfs or self._fcfs.peek_key()[0] > now:
                return None
            request = self._fcfs.pop()
            tid = request.tenant_id or DEFAULT_TENANT
        else:
            candidates = [tid for tid, q in self._vtc.items()
                          if q and q[0][0] <= now]
            if not candidates:
                return None
            tid = min(candidates, key=lambda t: (self._counters[t], t))
            _, request = self._vtc[tid].popleft()
            tenant = self.tenant(tid)
            work = self.prefill_weight * request.prompt_tokens + \
                self.decode_weight * request.output_tokens
            self._counters[tid] += work / tenant.weight
        self._queued[tid] -= 1
        self._inflight[tid] = self._inflight.get(tid, 0) + 1
        return request

    def on_complete(self, record: RequestRecord) -> None:
        """A dispatched request finished; its tenant's slot frees up."""
        tid = record.tenant_id or DEFAULT_TENANT
        if self._inflight.get(tid, 0) > 0:
            self._inflight[tid] -= 1

    # ------------------------------------------------------------------ #
    # cancellation: withdrawals and refunds
    # ------------------------------------------------------------------ #
    def cancel(self, request_id: int,
               reason: str = "cancel") -> Optional[TraceRequest]:
        """Withdraw a frontier-queued request before dispatch.

        Removes it from the admission order (FCFS heap or its tenant's
        VTC queue), refunds its full token-bucket charge and billing
        meter (no work was performed), and counts the withdrawal in the
        tenant's stats.  The VTC counter needs no lift: counters are
        charged at :meth:`pop`, which this request never reached.
        Returns the withdrawn request, or None if it is not queued here.
        """
        request = self._fcfs.remove_where(
            lambda r: r.request_id == request_id)
        if request is None:
            for queue in self._vtc.values():
                for i, (_, queued) in enumerate(queue):
                    if queued.request_id == request_id:
                        request = queued
                        del queue[i]
                        break
                if request is not None:
                    break
        if request is None:
            return None
        tid = request.tenant_id or DEFAULT_TENANT
        self._queued[tid] -= 1
        cost = float(request.prompt_tokens + request.output_tokens)
        bucket = self._buckets.get(tid)
        if bucket is not None:
            bucket.refund(cost)
        self.stats[tid].tokens_charged -= cost
        if _sanitizer.enabled():
            _sanitizer.check_meter(self.stats[tid].tokens_charged, tid)
        self.note_withdrawn(tid, reason)
        return request

    def refund_unserved(self, record: RequestRecord) -> float:
        """Refund the un-served share of a dispatched request's charge.

        Called when a dispatched request aborts (``cancelled`` /
        ``expired``): the tokens never generated — the whole prompt if
        prefill never ran, plus the un-generated output — flow back into
        the tenant's token bucket and off its billing meter, and under
        VTC the tenant's fair-share counter is lifted back down by the
        weighted un-served work, so abandoning work never costs future
        scheduling priority.  Returns the refunded token count.
        """
        tid = record.tenant_id or DEFAULT_TENANT
        self.tenant(tid)                      # auto-register if needed
        unserved_prompt = record.prompt_tokens \
            if record.first_token_s is None else 0
        unserved_output = max(0, record.output_tokens - record.tokens_served)
        refund = float(unserved_prompt + unserved_output)
        if refund > 0:
            bucket = self._buckets.get(tid)
            if bucket is not None:
                bucket.refund(refund)
            self.stats[tid].tokens_charged -= refund
            if _sanitizer.enabled():
                _sanitizer.check_meter(self.stats[tid].tokens_charged, tid)
            if self.policy == "vtc":
                lift = (self.prefill_weight * unserved_prompt +
                        self.decode_weight * unserved_output) / \
                    self.tenant(tid).weight
                self._counters[tid] = max(0.0, self._counters[tid] - lift)
        self.note_withdrawn(tid, "deadline" if record.status == "expired"
                            else "cancel")
        return refund

    def note_withdrawn(self, tenant_id: Optional[str], reason: str) -> None:
        """Count one cancellation/expiry in the tenant's stats."""
        tid = tenant_id or DEFAULT_TENANT
        self._init_tenant_state(tid, self.tenant(tid))
        if reason == "deadline":
            self.stats[tid].expired += 1
        else:
            self.stats[tid].cancelled += 1

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, float]:
        """Current VTC counters (per tenant; monotone except for
        cancellation refunds — for tests/plots)."""
        return dict(self._counters)

    def summary(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "shed": self.shed,
            "engine_queue_depth": self.engine_queue_depth,
            "prefill_weight": self.prefill_weight,
            "decode_weight": self.decode_weight,
            "tenants": sorted(self.tenants),
            "offered": sum(s.offered for s in self.stats.values()),
            "admitted": sum(s.admitted for s in self.stats.values()),
            "deferred": sum(s.deferred for s in self.stats.values()),
            "shed_requests": sum(s.shed for s in self.stats.values()),
            "rejected": sum(s.rejected for s in self.stats.values()),
            "cancelled": sum(s.cancelled for s in self.stats.values()),
            "expired": sum(s.expired for s in self.stats.values()),
        }


class TenantGateway:
    """Admission-controlled frontend over a serving or cluster gateway.

    Exposes the familiar ``submit`` / ``step`` / ``run_until_drained`` /
    ``replay`` / ``result`` surface.  Requests first pass the
    :class:`AdmissionController`; accepted ones queue *at the frontier*
    and are released into the wrapped gateway in admission order, at most
    ``engine_queue_depth`` per active replica outstanding, so the fair
    order is preserved through the engines' internal FCFS scheduling.
    Rejected and shed requests never reach an engine; they are visible in
    :attr:`AdmissionController.stats` and ``result().config["admission"]``.

    The shed predictor estimates TTFT from the recent completion rate:
    under FCFS every queued request is ahead of a newcomer; under VTC a
    tenant's expected wait scales with its *own* backlog over its
    weighted fair share.
    """

    def __init__(self, gateway: Union[ServingGateway, ClusterGateway],
                 controller: Optional[AdmissionController] = None,
                 tenants: Sequence[Tenant] = (), journal: bool = False,
                 telemetry=None,
                 **controller_kwargs):
        if controller is not None and (tenants or controller_kwargs):
            raise ValueError("pass either a controller or tenant/kwargs")
        self.inner = gateway
        self.controller = controller or AdmissionController(
            tenants=tenants, **controller_kwargs)
        # the admission timeline: a separate journal from the cluster's
        # (frontier events here, replica events there) on a clock that
        # shadows the inner gateway's frontier; the controller publishes
        # BucketRefill wake-ups into it
        self.kernel = SimKernel(journal=journal)
        self.controller.bind(self.kernel)
        gateway.add_completion_listener(self._completion_hook)
        if isinstance(gateway, ClusterGateway):
            # admission-aware autoscaling: frontier-held requests count
            # as offered load in the cluster's watermark signal
            gateway.set_admission_probe(lambda: self.controller.total_queued)
        self._pending = EventQueue()      # offered-but-not-due Arrivals
        self._token_listeners: List[TokenCallback] = []
        self._token_tap = False           # inner token fanout installed?
        self._cancels = EventQueue()      # frontier-level Cancel events
        #: reason="cancel" schedules to forward when a request dispatches
        self._scheduled_cancels: Dict[int, Tuple[float, str]] = {}
        self._dispatched_ids: set = set()
        self._terminal_ids: set = set()   # resolved at this layer/below
        self._frontier_records: List[RequestRecord] = []
        self._handles: Dict[int, RequestHandle] = {}
        self._next_id = 0
        self._floor = 0.0                 # admission-time frontier floor
        self._dispatched_unfinished = 0
        self._recent_finish: Deque[float] = deque(
            maxlen=8 * _MIN_COMPLETIONS_FOR_PREDICTION)
        self._telemetry = None
        if telemetry is not None:
            telemetry.attach_tenancy(self)

    @property
    def telemetry(self):
        """The attached :class:`repro.telemetry.Telemetry`, or None."""
        return self._telemetry

    # ------------------------------------------------------------------ #
    # the single-gateway surface
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> float:
        return self.inner.clock

    @property
    def backlog(self) -> int:
        return self.inner.backlog

    @property
    def unfinished(self) -> int:
        """In-system requests: frontier-queued plus dispatched-unfinished
        (rejected and shed requests are gone, not unfinished)."""
        return len(self._pending) + self.controller.total_queued + \
            self._dispatched_unfinished

    @property
    def record_policy(self) -> RecordPolicy:
        """The wrapped gateway's record-retention policy."""
        return getattr(self.inner, "record_policy", RecordPolicy.KEEP_ALL)

    def submit(self, model_id: str, prompt_len: int, output_len: int,
               arrival_s: Optional[float] = None,
               tenant_id: Optional[str] = None,
               deadline_s: Optional[float] = None,
               conversation_id: Optional[str] = None) -> RequestHandle:
        """Submit one request for a tenant; returns its
        :class:`~repro.serving.handle.RequestHandle`.

        The admission decision for a request arriving "now" is made
        immediately and is readable via :meth:`decision` (a shed or
        rejected request's handle is terminal at once, status ``SHED``).
        ``deadline_s`` (relative to arrival) bounds completion: a
        request still held at the admission frontier when its deadline
        passes expires there — its bucket charge refunded, its quota
        slot released — and a dispatched one is aborted mid-batch by the
        owning engine.
        """
        if prompt_len < 1 or output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 when set")
        if arrival_s is None:
            arrival_s = max(self.inner.clock, self._floor)
        absolute_deadline = None if deadline_s is None \
            else float(arrival_s) + float(deadline_s)
        request = TraceRequest(request_id=self._next_id, model_id=model_id,
                               arrival_s=float(arrival_s),
                               prompt_tokens=int(prompt_len),
                               output_tokens=int(output_len),
                               tenant_id=tenant_id,
                               deadline_s=absolute_deadline,
                               conversation_id=conversation_id)
        self._next_id += 1
        handle = RequestHandle(request.request_id, self, model_id,
                               tenant_id=tenant_id,
                               deadline_s=absolute_deadline)
        self._handles[request.request_id] = handle
        self._install_token_tap()
        self._admit_request(request)
        now = self._frontier()
        self._apply_due_cancels(now)
        self._offer_due(now)
        self._dispatch(now)
        return handle

    def ingest(self, request: TraceRequest) -> int:
        """Queue a fully-formed request (verbatim id and arrival)."""
        self._admit_request(request)
        self._next_id = max(self._next_id, request.request_id + 1)
        return request.request_id

    def _admit_request(self, request: TraceRequest) -> None:
        self._pending.push(Arrival(time=request.arrival_s, request=request))
        if request.deadline_s is not None:
            # frontier-side expiry watch; once dispatched, the owning
            # engine schedules its own deadline Cancel from the trace
            self._cancels.push(Cancel(time=request.deadline_s,
                                      request_id=request.request_id,
                                      reason="deadline"))

    def cancel(self, request_id: int, at_s: Optional[float] = None,
               reason: str = "cancel") -> None:
        """Cancel one request at simulated time ``at_s`` (default: now).

        Wherever the request currently is: still pending (not yet
        offered), queued at the admission frontier (it is withdrawn with
        a full bucket/billing refund), or dispatched (the cancel is
        forwarded to the wrapped gateway and the un-served charge is
        refunded when the abort record comes back)."""
        rid = int(request_id)
        if rid in self._terminal_ids:
            return
        if at_s is None:
            at_s = self._frontier()
        if rid in self._dispatched_ids:
            self.inner.cancel(rid, at_s=at_s, reason=reason)
            return
        self._cancels.push(Cancel(time=float(at_s), request_id=rid,
                                  reason=reason))
        # every *explicit* cancel is forwarded if the request dispatches
        # first (earliest wins); only the implicit trace-deadline watch
        # stays behind, because the owning engine re-derives it from
        # ``TraceRequest.deadline_s`` at submit
        existing = self._scheduled_cancels.get(rid)
        if existing is None or at_s < existing[0]:
            self._scheduled_cancels[rid] = (float(at_s), reason)

    def handle(self, request_id: int) -> Optional[RequestHandle]:
        """The handle for a request submitted through this gateway."""
        return self._handles.get(int(request_id))

    def add_token_listener(self, listener: TokenCallback) -> None:
        """Register a per-token callback spanning the wrapped gateway —
        the streaming parity of ``add_completion_listener``.  Survives
        :meth:`reset`."""
        self._token_listeners.append(listener)
        self._install_token_tap()

    def _install_token_tap(self) -> None:
        """Lazily fan inner token events into this layer's listeners and
        handles (on demand, so replay paths stay hook-free)."""
        if self._token_tap:
            return
        self._token_tap = True
        self.inner.add_token_listener(self._token_fanout)

    def _token_fanout(self, request_id: int, model_id: str,
                      n_generated: int, clock: float) -> None:
        for listener in self._token_listeners:
            listener(request_id, model_id, n_generated, clock)
        handle = self._handles.get(request_id)
        if handle is not None:
            handle._push_token(clock, n_generated)

    def decision(self, request_id: int) -> Optional[AdmissionDecision]:
        """The admission decision for a request (None while pending)."""
        return self.controller.decisions.get(request_id)

    def step(self) -> bool:
        """Advance the system one scheduling event.

        Applies due cancellations/expiries, offers arrivals the frontier
        has reached, releases eligible queued work in admission order,
        then steps the wrapped gateway.  When the gateway is idle but
        admission still holds future work (a deferred request waiting on
        its bucket, a future arrival, a scheduled cancel or deadline),
        the frontier jumps to the next admission event.
        """
        inner = self.inner
        if isinstance(inner, ServingGateway) and \
                inner.engine.clock >= inner.engine.config.max_sim_seconds:
            return False
        now = self._frontier()
        self._apply_due_cancels(now)
        self._offer_due(now)
        self._dispatch(now)
        if inner.step():
            return True
        nxt = self._next_event_s()
        if nxt is None or nxt <= now:
            # nothing new can become actionable (wedged or fully drained)
            return False
        self._floor = max(self._floor, nxt)
        now = self._frontier()
        cancelled = self._apply_due_cancels(now)
        offered = self._offer_due(now)
        dispatched = self._dispatch(now)
        if inner.step():
            return True
        return bool(offered or dispatched or cancelled) and \
            self._next_event_s() is not None

    def run_until_drained(self) -> ServingResult:
        while self.step():
            pass
        return self.result()

    def result(self) -> ServingResult:
        """The wrapped gateway's result plus admission telemetry.

        Requests cancelled or expired while still held at the admission
        frontier appear as ``cancelled``/``expired`` records alongside
        the engine-side ones; shed and rejected requests stay out (they
        are visible through handles and the admission stats)."""
        result = self.inner.result()
        if self._frontier_records:
            merged = ServingResult.merge(
                [result, ServingResult(engine=result.engine,
                                       records=list(self._frontier_records),
                                       makespan_s=1e-9)],
                engine=result.engine, config=result.config)
            merged.stats = result.stats
            result = merged
        result.config["admission"] = self.controller.summary()
        return result

    def slo_attainment(self,
                       result: Optional[ServingResult] = None
                       ) -> Dict[str, float]:
        """Per-tenant fraction of *offered* requests that finished within
        the tenant's TTFT SLO — shed and rejected requests count as
        misses, which is what makes shedding a trade and not a cheat.
        Cancelled/expired requests meet the SLO only if their first
        token actually arrived in time before the abort.  A tenant that
        was never offered anything attains trivially (1.0).
        """
        result = result if result is not None else self.result()
        out: Dict[str, float] = {}
        for tid, stats in sorted(self.controller.stats.items()):
            tenant = self.controller.tenant(tid)
            sliced = result.for_tenant(tid)
            sketch = sliced.stream
            if sketch is not None and not sketch.complete:
                # streaming fallback (records sampled/dropped): finished
                # requests meeting the TTFT SLO, sketch-approximate
                # within the relative error around the threshold.
                # Aborted requests whose first token still arrived in
                # time are not individually tracked without records, so
                # this bound is slightly conservative under abandonment.
                met = sketch.slo_met_count(tenant.slo_s, metric="ttft")
            else:
                met = sum(1 for r in sliced.records
                          if (r.finished or r.first_token_s is not None)
                          and r.ttft_s <= tenant.slo_s)
            out[tid] = met / stats.offered if stats.offered else 1.0
        return out

    def streaming_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant ``summarize()`` rows straight off the streaming
        plane — O(tenants × sketch bins) regardless of how many requests
        retired, so it is callable mid-flight at million-request scale
        (the always-on dashboard read).  Under ``KEEP_ALL`` the rows are
        the exact record-based values; under ``SAMPLE_K``/``DROP`` they
        come from the sketches within the documented error."""
        result = self.result()
        return {tenant: summarize(result.for_tenant(tenant))
                for tenant in result.tenant_ids}

    def billing(self, gpu, n_gpus: int,
                system: Optional[str] = None) -> Dict[str, float]:
        """Per-tenant showback for the run so far: the deployment's bill
        (:func:`~repro.serving.economics.deployment_cost`) split by each
        tenant's metered ``tokens_charged``.  Returns tenant id → USD."""
        from .economics import cost_per_tenant, deployment_cost
        cost = deployment_cost(self.inner.result(), gpu, n_gpus,
                               system=system)
        return cost_per_tenant(cost, self.controller.stats)

    def replay(self, trace: Trace,
               cancels: Optional[CancelSchedule] = None) -> ServingResult:
        """Serve a pre-materialized (optionally tenant-tagged) trace.

        Every request faces admission when the simulation frontier
        reaches its arrival.  In the pass-through configuration (default
        tenant, FCFS, no limits) the records are identical to replaying
        the trace on the wrapped gateway directly.  ``cancels`` schedules
        client cancellations as ``(request_id, at_s)`` pairs — the
        impatient-client model; ``None`` replays bit-identically to a
        pre-cancellation run.
        """
        self.reset()
        for request in trace:
            self.ingest(request)
        if cancels is not None:
            for request_id, at_s in cancels:
                self.cancel(request_id, at_s=at_s)
        return self.run_until_drained()

    def reset(self) -> None:
        self.inner.reset()
        self.controller.reset()
        self.kernel.reset()
        self._pending.clear()
        self._cancels.clear()
        self._scheduled_cancels.clear()
        self._dispatched_ids.clear()
        self._terminal_ids.clear()
        self._frontier_records.clear()
        self._handles.clear()
        self._recent_finish.clear()
        self._next_id = 0
        self._floor = 0.0
        self._dispatched_unfinished = 0
        if self._telemetry is not None:
            self._telemetry.reset()      # idempotent (inner resets it too)

    # ------------------------------------------------------------------ #
    # handle plumbing
    # ------------------------------------------------------------------ #
    def _status_of(self, request_id: int) -> HandleStatus:
        """Live status for a handle: QUEUED before admission, ADMITTED
        while accepted-and-waiting at the frontier, then the wrapped
        gateway's view once dispatched."""
        if request_id in self._dispatched_ids:
            return self.inner._status_of(request_id)
        decision = self.controller.decisions.get(request_id)
        if decision in (AdmissionDecision.ADMITTED,
                        AdmissionDecision.DEFERRED):
            return HandleStatus.ADMITTED
        if decision in (AdmissionDecision.SHED, AdmissionDecision.REJECTED):
            return HandleStatus.SHED
        return HandleStatus.QUEUED

    # ------------------------------------------------------------------ #
    # frontier mechanics
    # ------------------------------------------------------------------ #
    def _frontier(self) -> float:
        """The admission clock: the wrapped gateway's kernel frontier
        (the point the simulation cannot retreat behind), floored by
        explicit frontier jumps taken while everything was idle.  The
        inner gateway owns the clock; this layer only derives from it —
        the admission kernel's own clock just ratchets along as the
        monotone envelope, timestamping the journal."""
        now = max(self.inner.frontier, self._floor)
        self.kernel.clock.advance(now)
        return now

    def _next_event_s(self) -> Optional[float]:
        """Earliest future admission event: a queued arrival, a token
        bucket refill (the BucketRefill wake-ups the controller tracks),
        or a scheduled cancel/deadline for frontier-held work."""
        events = []
        if self._pending:
            events.append(self._pending.peek_time())
        if self._cancels:
            events.append(self._cancels.peek_time())
        eligible = self.controller.next_eligible_s()
        if eligible is not None:
            events.append(eligible)
        return min(events) if events else None

    def _apply_due_cancels(self, now: float) -> int:
        """Apply cancels/expiries whose time the frontier has reached to
        requests still held at this layer.  Cancels targeting dispatched
        or already-terminal requests are stale here: dispatched ones are
        handled by the owning engine (deadlines) or were forwarded at
        dispatch (client cancels).  Returns the number of events popped
        (stale included — popping one is frontier progress)."""
        count = 0
        for event in self._cancels.pop_due(now):
            count += 1
            rid = event.request_id
            if rid in self._terminal_ids or rid in self._dispatched_ids:
                continue
            self._scheduled_cancels.pop(rid, None)
            request = self.controller.cancel(rid, reason=event.reason)
            if request is None:
                arrival = self._pending.remove_request(rid)
                if arrival is None:
                    continue          # unknown or resolved elsewhere
                request = arrival.request
                # withdrawn before it was even offered: no charge to
                # refund, but the withdrawal still counts in stats
                self.controller.note_withdrawn(request.tenant_id,
                                               event.reason)
            self._retire_at_frontier(request, event.time, event.reason)
        return count

    def _retire_at_frontier(self, request: TraceRequest, at_s: float,
                            reason: str) -> None:
        """Terminal record for a request withdrawn at the frontier."""
        status = "expired" if reason == "deadline" else "cancelled"
        if self.kernel.wants(sim_events.PhaseTransition):
            self.kernel.emit(sim_events.PhaseTransition(
                time=at_s, request_id=request.request_id, phase="retire",
                model_id=request.model_id, tenant_id=request.tenant_id,
                status=status, source="frontier"))
        record = synthesized_abort_record(request, at_s, status)
        self._frontier_records.append(record)
        self._terminal_ids.add(request.request_id)
        handle = self._handles.get(request.request_id)
        if handle is not None:
            handle._finish(record)

    def _offer_due(self, now: float) -> int:
        count = 0
        for event in self._pending.pop_due(now):
            request = event.request
            predicted = self._predicted_ttft_s(request.tenant_id)
            decision = self.controller.offer(request,
                                             predicted_ttft_s=predicted)
            if decision in (AdmissionDecision.SHED,
                            AdmissionDecision.REJECTED):
                self._resolve_dropped(request)
            count += 1
        return count

    def _resolve_dropped(self, request: TraceRequest) -> None:
        """A shed/rejected request is terminal immediately: its handle
        (if any) gets a synthesized ``shed`` record.  Dropped requests
        never enter :meth:`result` — they are visible through handles
        and :attr:`AdmissionController.stats`, keeping served-side
        metrics identical to the pre-handle behavior."""
        rid = request.request_id
        self._terminal_ids.add(rid)
        self._scheduled_cancels.pop(rid, None)
        handle = self._handles.get(rid)
        if handle is not None:
            handle._finish(synthesized_abort_record(
                request, request.arrival_s, "shed"))

    def _dispatch(self, now: float) -> int:
        controller = self.controller
        depth = self._effective_depth()
        count = 0
        bumped = False
        while controller.has_eligible(now) and \
                (depth is None or self._dispatched_unfinished < depth):
            request = controller.pop(now)
            if request is None:      # pragma: no cover - has_eligible guard
                break
            if not bumped and not controller.passthrough:
                # the released request physically reaches the engine at
                # `now`; idle engines must not serve it in their past
                self._bump_idle_engines(now)
                bumped = True
            rid = request.request_id
            self.inner.ingest(request)
            self._dispatched_unfinished += 1
            self._dispatched_ids.add(rid)
            # the request left the frontier: its deadline watch moves to
            # the owning engine (scheduled from the trace at submit), and
            # a pending client cancel is forwarded to the wrapped gateway
            while self._cancels.remove_request(rid) is not None:
                pass
            scheduled = self._scheduled_cancels.pop(rid, None)
            if scheduled is not None:
                self.inner.cancel(rid, at_s=scheduled[0],
                                  reason=scheduled[1])
            count += 1
        return count

    def _effective_depth(self) -> Optional[int]:
        depth = self.controller.engine_queue_depth
        if depth is None:
            if self.controller.policy == "fcfs":
                return None
            # auto depth: one full batch per replica keeps the engines
            # saturated while every excess request waits at the frontier
            # in fair order (deeper engine queues would re-serialize the
            # backlog FCFS inside the engine)
            depth = self._engine_batch_size() or _DEFAULT_VTC_DEPTH
        if isinstance(self.inner, ClusterGateway):
            return depth * max(1, len(self.inner.active_replicas()))
        return depth

    def _engine_batch_size(self) -> Optional[int]:
        inner = self.inner
        if isinstance(inner, ClusterGateway):
            active = inner.active_replicas()
            engine = active[0].engine if active else None
        else:
            engine = inner.engine
        if engine is None:
            return None
        scheduler_config = getattr(engine, "scheduler_config", None)
        if scheduler_config is not None:
            return scheduler_config.max_batch_requests
        return getattr(engine, "max_batch_requests", None)

    def _bump_idle_engines(self, now: float) -> None:
        inner = self.inner
        if isinstance(inner, ClusterGateway):
            for replica in inner.active_replicas():
                if replica.unfinished == 0:
                    replica.engine.clock = max(replica.engine.clock, now)
        elif inner.unfinished == 0:
            inner.engine.clock = max(inner.engine.clock, now)

    # ------------------------------------------------------------------ #
    # shed prediction
    # ------------------------------------------------------------------ #
    def _service_rate(self) -> Optional[float]:
        """Completions per second over the recent window (None = cold)."""
        if len(self._recent_finish) < _MIN_COMPLETIONS_FOR_PREDICTION:
            return None
        span = self._recent_finish[-1] - self._recent_finish[0]
        if span <= 0:
            return None
        return (len(self._recent_finish) - 1) / span

    def _predicted_ttft_s(self, tenant_id: Optional[str]) -> Optional[float]:
        """Expected TTFT for one more request from this tenant, under the
        current backlog and admission order."""
        rate = self._service_rate()
        if rate is None:
            return None
        controller = self.controller
        if controller.policy == "fcfs":
            ahead = self._dispatched_unfinished + controller.total_queued
            return (ahead + 1) / rate
        tenant = controller.tenant(tenant_id)
        active = set(controller.active_tenants()) | {tenant.tenant_id}
        total_weight = sum(controller.tenant(t).weight for t in active)
        share = tenant.weight / total_weight
        own = controller.load_of(tenant.tenant_id)
        return (own + 1) / (rate * share)

    def _completion_hook(self, record: RequestRecord) -> None:
        self._dispatched_unfinished = max(0, self._dispatched_unfinished - 1)
        self._dispatched_ids.discard(record.request_id)
        self._terminal_ids.add(record.request_id)
        if record.finished:
            # aborted completions are excluded from the service-rate
            # window: they did not finish a unit of work
            self._recent_finish.append(record.finish_s)
        self.controller.on_complete(record)
        if not record.finished:
            self.controller.refund_unserved(record)
        if self.record_policy is RecordPolicy.KEEP_ALL:
            handle = self._handles.get(record.request_id)
        else:
            # releasing policy: keep the frontier handle map O(active)
            # (terminal handles answer from their own record)
            handle = self._handles.pop(record.request_id, None)
        if handle is not None:
            handle._finish(record)
